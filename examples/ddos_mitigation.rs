//! DDoS mitigation end to end on the emulated switch: train → compile →
//! install → replay a mixed 40 Gbps trace through the Fig.-4 pipeline with
//! a live controller installing blacklist rules.
//!
//! ```text
//! cargo run --release --example ddos_mitigation
//! ```

use iguard::core::early::EarlyModel;
use iguard::prelude::*;
use iguard::switch::pipeline::PipelineConfig as SwitchPipelineConfig;
use iguard::switch::replay::{ControlPlaneModel, ReplayConfig};
use iguard_iforest::IsolationForestConfig;
use iguard_runtime::rng::Rng;

fn main() {
    let mut rng = Rng::seed_from_u64(21);
    let cfg = ExtractConfig { log_compress: true, ..Default::default() };

    // Train the full deployment on benign traffic.
    println!("training deployment (teacher -> iGuard -> rules)...");
    let train_trace = benign_trace(700, 20.0, &mut rng);
    let train = extract_flows(&train_trace, &cfg);
    let mag = Magnifier::fit(
        &train.features,
        &MagnifierConfig { epochs: 60, ..Default::default() },
        &mut rng,
    );
    let mut teacher = DetectorTeacher(mag);
    let ig = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 64, ..Default::default() };
    let mut forest = IGuardForest::fit(&train.features, &mut teacher, &ig, &mut rng);
    forest.distill(&train.features, &mut teacher, ig.k_augment, &mut rng);
    // Calibrate the vote threshold on a small held-out mix.
    {
        let val_b = extract_flows(&benign_trace(200, 10.0, &mut rng), &cfg);
        let val_a = extract_flows(&Attack::UdpDdos.trace(60, 10.0, &mut rng), &cfg);
        let mut feats = val_b.features.clone();
        feats.extend_rows(&val_a.features);
        let mut labels = vec![false; val_b.len()];
        labels.extend(vec![true; val_a.len()]);
        let scores = forest.scores(&feats);
        // Pick the vote fraction maximising macro F1.
        let mut best = (0.5, -1.0);
        for thr in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7] {
            let pred: Vec<bool> = scores.iter().map(|&s| s > thr).collect();
            let f1 = macro_f1(&labels, &pred);
            if f1 > best.1 {
                best = (thr, f1);
            }
        }
        forest.set_vote_threshold(best.0);
        println!("  vote threshold {:.2} (val F1 {:.3})", best.0, best.1);
    }
    let fl_rules = RuleSet::from_iguard(&forest, 400_000).expect("rule budget");
    // Early-packet PL model for the brown path.
    let pl_trace = benign_trace(300, 10.0, &mut rng);
    let pl_feats = iguard_bench_first_packets(&pl_trace);
    let pl_cfg = IsolationForestConfig { n_trees: 10, subsample: 64, contamination: 0.05 };
    let early = EarlyModel::train(&pl_feats, &pl_cfg, 400_000, &mut rng).expect("PL rules");
    println!("  {} FL rules, {} PL rules installed", fl_rules.len(), early.n_rules());

    // Build the attack scenario: benign + UDP flood on a 40 Gbps link.
    let benign = benign_trace(300, 15.0, &mut rng);
    let flood = Attack::UdpDdos.trace(120, 15.0, &mut rng);
    let trace = Trace::merge(vec![benign, flood]);
    println!(
        "replaying {} packets ({:.1}% attack) through the data plane...",
        trace.len(),
        trace.malicious_fraction() * 100.0
    );

    let mut pipeline = Pipeline::new(
        SwitchPipelineConfig { log_compress: true, ..Default::default() },
        fl_rules,
        early.rules.clone(),
    );
    let mut controller = Controller::new(ControllerConfig::default());
    let report = replay(
        &trace,
        &mut pipeline,
        &mut controller,
        &ReplayConfig { control_plane: ControlPlaneModel::iguard(), ..Default::default() },
    );

    let cm = report.confusion();
    println!("\n-- mitigation report --");
    println!("packets: {}  dropped: {}", report.packets, report.dropped);
    println!(
        "per-packet recall {:.3}, precision {:.3}, macro F1 {:.3}",
        cm.recall(),
        cm.precision(),
        cm.macro_f1()
    );
    println!("blacklist entries installed: {}", pipeline.blacklist_len());
    println!(
        "paths: blacklist {} brown {} blue {} purple {} orange {} (+{} loopback)",
        pipeline.paths().blacklist,
        pipeline.paths().brown,
        pipeline.paths().blue,
        pipeline.paths().purple,
        pipeline.paths().orange,
        pipeline.paths().green_loopback,
    );
    println!(
        "throughput {:.2} Gbps, avg latency {:.1} ns, digest bandwidth {:.1} KBps",
        report.throughput_gbps, report.avg_latency_ns, report.digest_kbps
    );
}

/// PL features of each flow's first packet.
fn iguard_bench_first_packets(trace: &Trace) -> iguard_runtime::Dataset {
    use std::collections::HashSet;
    let mut seen = HashSet::new();
    let mut out = iguard_runtime::Dataset::default();
    for p in &trace.packets {
        if seen.insert(p.five.canonical()) {
            out.push_row(&iguard::flow::features::packet_level_features(p));
        }
    }
    out
}
