//! Quickstart: train iGuard on benign IoT traffic, compile whitelist
//! rules, and detect a Mirai scan — the full §3.2 pipeline in ~60 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use iguard::prelude::*;
use iguard_runtime::rng::Rng;

fn main() {
    let mut rng = Rng::seed_from_u64(7);

    // 1. Traffic. Benign IoT mixture for training; a Mirai telnet scan as
    //    the threat. Features are the 13 switch-extractable flow stats,
    //    log-compressed (monotone, so rules stay switch-realizable).
    println!("generating traffic...");
    let benign = benign_trace(600, 20.0, &mut rng);
    let mirai = Attack::Mirai.trace(120, 20.0, &mut rng);
    let cfg = ExtractConfig { log_compress: true, ..Default::default() };
    let train = extract_flows(&benign, &cfg);
    println!("  {} benign training flows", train.len());

    // 2. Teacher: a Magnifier-style asymmetric autoencoder fitted on
    //    benign flows only (unsupervised — no attack labels anywhere).
    println!("training the autoencoder teacher...");
    let mag = Magnifier::fit(
        &train.features,
        &MagnifierConfig { epochs: 60, ..Default::default() },
        &mut rng,
    );
    let mut teacher = DetectorTeacher(mag);

    // 3. Student: autoencoder-guided isolation forest + knowledge
    //    distillation (paper §3.2.1–§3.2.2).
    println!("guided training + distillation...");
    let ig_cfg = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 64, ..Default::default() };
    let mut forest = IGuardForest::fit(&train.features, &mut teacher, &ig_cfg, &mut rng);
    forest.distill(&train.features, &mut teacher, ig_cfg.k_augment, &mut rng);
    // Favour recall: flag a flow when a quarter of the trees vote
    // malicious (the benchmark harness tunes this on validation).
    forest.set_vote_threshold(0.25);

    // 4. Compile to whitelist rules (paper §3.2.3) and check fidelity.
    let rules = RuleSet::from_iguard(&forest, 400_000).expect("rule budget");
    let test_benign = extract_flows(&benign_trace(200, 10.0, &mut rng), &cfg);
    let agreement = consistency(
        &rules.predictions(&test_benign.features),
        &forest.predictions(&test_benign.features),
    );
    println!("  {} whitelist rules, consistency with forest: {agreement:.4}", rules.len());

    // 5. Detect.
    let attack_flows = extract_flows(&mirai, &cfg);
    let caught = attack_flows.features.iter_rows().filter(|f| rules.predict(f)).count();
    let fps = test_benign.features.iter_rows().filter(|f| rules.predict(f)).count();
    println!(
        "detected {caught}/{} Mirai flow segments; {fps}/{} benign false positives",
        attack_flows.len(),
        test_benign.len()
    );
    let f1 = {
        let mut truth = vec![true; attack_flows.len()];
        truth.extend(vec![false; test_benign.len()]);
        let mut pred = rules.predictions(&attack_flows.features);
        pred.extend(rules.predictions(&test_benign.features));
        macro_f1(&truth, &pred)
    };
    println!("macro F1 = {f1:.3}");
}
