//! Adversarial robustness (paper Tables 2–3): how detection holds up when
//! the attacker throttles to 1/100 rate, blends attack flows with
//! benign-looking padding, or poisons the training set.
//!
//! ```text
//! cargo run --release --example adversarial_robustness
//! ```

use iguard::prelude::*;
use iguard::synth::adversarial::{evasion_blend, low_rate, poison_training_set};
use iguard_runtime::rng::Rng;

fn train_rules(train_features: &iguard_runtime::Dataset, rng: &mut Rng) -> (IGuardForest, RuleSet) {
    let mag =
        Magnifier::fit(train_features, &MagnifierConfig { epochs: 60, ..Default::default() }, rng);
    let teacher = DetectorTeacher(mag);
    let ig = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 64, ..Default::default() };
    let mut forest = IGuardForest::fit(train_features, &teacher, &ig, rng);
    forest.distill(train_features, &teacher, ig.k_augment, rng);
    forest.set_vote_threshold(0.25);
    let rules = RuleSet::from_iguard(&forest, 400_000).expect("rule budget");
    (forest, rules)
}

fn eval(rules: &RuleSet, benign: &LabeledFlows, attack: &LabeledFlows) -> (f64, f64) {
    let recall = attack.features.iter_rows().filter(|f| rules.predict(f)).count() as f64
        / attack.len().max(1) as f64;
    let fpr = benign.features.iter_rows().filter(|f| rules.predict(f)).count() as f64
        / benign.len().max(1) as f64;
    (recall, fpr)
}

fn main() {
    let mut rng = Rng::seed_from_u64(55);
    let cfg = ExtractConfig { log_compress: true, ..Default::default() };

    println!("training the clean deployment...");
    let train = extract_flows(&benign_trace(700, 20.0, &mut rng), &cfg);
    let (_forest, rules) = train_rules(&train.features, &mut rng);
    let benign_test = extract_flows(&benign_trace(250, 10.0, &mut rng), &cfg);

    // Baseline: native-rate UDP flood.
    let flood = Attack::UdpDdos.trace(100, 10.0, &mut rng);
    let native = extract_flows(&flood, &cfg);
    let (r0, fpr) = eval(&rules, &benign_test, &native);
    println!("\nnative UDP DDoS:      recall {:.1}%  (benign FPR {:.1}%)", r0 * 100.0, fpr * 100.0);

    // Low-rate adversary: stretch IPDs by 100x.
    let slow = extract_flows(&low_rate(&flood, 100.0), &cfg);
    let (r1, _) = eval(&rules, &benign_test, &slow);
    println!("low-rate (1/100):     recall {:.1}%", r1 * 100.0);

    // Evasion adversary: 1 attack packet per 4 benign-mimicking pads.
    let blended = extract_flows(&evasion_blend(&flood, 4, &mut rng), &cfg);
    let (r2, _) = eval(&rules, &benign_test, &blended);
    println!("evasion blend (1:4):  recall {:.1}%", r2 * 100.0);

    // Poisoning adversary: retrain with 10% attack samples presented as
    // benign, then evaluate on native-rate flood.
    println!("\nretraining with a 10% poisoned training set...");
    let poison_src = extract_flows(&Attack::UdpDdos.trace(120, 20.0, &mut rng), &cfg);
    let poisoned = poison_training_set(&train.features, &poison_src.features, 0.10, &mut rng);
    let (_pf, prules) = train_rules(&poisoned, &mut rng);
    let (r3, pfpr) = eval(&prules, &benign_test, &native);
    println!("poisoned (10%):       recall {:.1}%  (benign FPR {:.1}%)", r3 * 100.0, pfpr * 100.0);
    println!("\npaper shape: detection degrades gracefully, not catastrophically (Tables 2-3)");
}
