//! IoT botnet hunt: one trained deployment screened against the whole
//! botnet family (Mirai, Aidra, Bashlite and the router-NAT variants) —
//! the "unseen attack" property of unsupervised detection: nothing about
//! any botnet was used during training.
//!
//! ```text
//! cargo run --release --example iot_botnet_hunt
//! ```

use iguard::prelude::*;
use iguard_runtime::rng::Rng;

fn main() {
    let mut rng = Rng::seed_from_u64(33);
    let cfg = ExtractConfig { log_compress: true, ..Default::default() };

    println!("training once on benign traffic only...");
    let train = extract_flows(&benign_trace(700, 20.0, &mut rng), &cfg);
    let mag = Magnifier::fit(
        &train.features,
        &MagnifierConfig { epochs: 60, ..Default::default() },
        &mut rng,
    );
    let mut teacher = DetectorTeacher(mag);
    let ig = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 64, ..Default::default() };
    let mut forest = IGuardForest::fit(&train.features, &mut teacher, &ig, &mut rng);
    forest.distill(&train.features, &mut teacher, ig.k_augment, &mut rng);
    // Calibrate the vote threshold on a small labelled validation mix —
    // the role the paper's validation grid search plays. Only *one* known
    // attack is used for calibration; the others stay unseen.
    {
        let val_b = extract_flows(&benign_trace(200, 10.0, &mut rng), &cfg);
        let val_a = extract_flows(&Attack::Mirai.trace(60, 10.0, &mut rng), &cfg);
        let mut feats = val_b.features.clone();
        feats.extend_rows(&val_a.features);
        let mut labels = vec![false; val_b.len()];
        labels.extend(vec![true; val_a.len()]);
        let scores = forest.scores(&feats);
        let mut best = (0.25, -1.0);
        for thr in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
            let pred: Vec<bool> = scores.iter().map(|&s| s > thr).collect();
            let f1 = macro_f1(&labels, &pred);
            if f1 > best.1 {
                best = (thr, f1);
            }
        }
        forest.set_vote_threshold(best.0);
        println!("  vote threshold {:.2} (val F1 {:.3})", best.0, best.1);
    }
    let rules = RuleSet::from_iguard(&forest, 400_000).expect("rule budget");
    println!("  {} whitelist rules\n", rules.len());

    let benign_test = extract_flows(&benign_trace(250, 10.0, &mut rng), &cfg);
    let fp_rate = benign_test.features.iter_rows().filter(|f| rules.predict(f)).count() as f64
        / benign_test.len() as f64;

    println!("{:<22} {:>9} {:>9} {:>9}", "botnet", "flows", "caught", "recall");
    let family = [Attack::Mirai, Attack::Aidra, Attack::Bashlite, Attack::MiraiRouterFilter];
    for attack in family {
        let flows = extract_flows(&attack.trace(100, 10.0, &mut rng), &cfg);
        let caught = flows.features.iter_rows().filter(|f| rules.predict(f)).count();
        println!(
            "{:<22} {:>9} {:>9} {:>8.1}%",
            attack.name(),
            flows.len(),
            caught,
            caught as f64 / flows.len() as f64 * 100.0
        );
    }
    println!("\nbenign false-positive rate: {:.1}%", fp_rate * 100.0);
    println!("(the same rule table, never shown a single botnet packet during training)");
}
