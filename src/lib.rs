//! # iGuard — autoencoder-distilled isolation forests for switch data planes
//!
//! A from-scratch Rust reproduction of *"iGuard: Efficient Isolation Forest
//! Design for Malicious Traffic Detection in Programmable Switches"*
//! (CoNEXT '24). This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`nn`] | from-scratch neural nets (dense + dilated conv, Adam, autoencoders) |
//! | [`flow`] | wire formats, 5-tuples, flow tables, feature extraction |
//! | [`synth`] | benign IoT + 15 attack traffic generators, adversarial transforms |
//! | [`iforest`] | conventional Isolation Forest baseline |
//! | [`models`] | kNN / PCA / X-means / VAE / Magnifier anomaly detectors |
//! | [`core`] | **the contribution**: guided training, distillation, whitelist rules |
//! | [`switch`] | Tofino-like data-plane emulator, TCAM + resource model |
//! | [`metrics`] | macro-F1, ROC/PR AUC, consistency, reward |
//!
//! ## Quickstart
//!
//! ```
//! use iguard::prelude::*;
//!
//! let mut rng = Rng::seed_from_u64(7);
//! // 1. Traffic: benign IoT + a Mirai scan, as log-compressed flow features.
//! let benign = benign_trace(300, 10.0, &mut rng);
//! let attack = Attack::Mirai.trace(60, 10.0, &mut rng);
//! let cfg = ExtractConfig { log_compress: true, ..Default::default() };
//! let train = extract_flows(&benign, &cfg);
//!
//! // 2. Teacher: a Magnifier autoencoder trained on benign flows only.
//! let mag_cfg = MagnifierConfig { epochs: 30, ..Default::default() };
//! let teacher = Magnifier::fit(&train.features, &mag_cfg, &mut rng);
//! let teacher = DetectorTeacher(teacher);
//!
//! // 3. iGuard: guided training + distillation + whitelist rules.
//! let ig_cfg = IGuardConfig { n_trees: 5, subsample: 64, ..Default::default() };
//! let mut forest = IGuardForest::fit(&train.features, &teacher, &ig_cfg, &mut rng);
//! forest.distill(&train.features, &teacher, 16, &mut rng);
//! let rules = RuleSet::from_iguard(&forest, 100_000).unwrap();
//!
//! // 4. Attack flows draw more malicious tree votes than benign ones.
//! let test = extract_flows(&attack, &cfg);
//! let mean = |xs: &Dataset| -> f64 {
//!     xs.iter_rows().map(|f| forest.score(f)).sum::<f64>() / xs.rows() as f64
//! };
//! assert!(mean(&test.features) > mean(&train.features));
//! # let _ = rules;
//! ```

#![forbid(unsafe_code)]

pub use iguard_core as core;
pub use iguard_flow as flow;
pub use iguard_iforest as iforest;
pub use iguard_metrics as metrics;
pub use iguard_models as models;
pub use iguard_nn as nn;
pub use iguard_switch as switch;
pub use iguard_synth as synth;

pub use iguard_runtime as runtime;
pub use iguard_telemetry as telemetry;

/// The names most applications need.
pub mod prelude {
    pub use iguard_runtime::rng::{Rng, SliceRandom};
    pub use iguard_runtime::Dataset;

    pub use iguard_core::early::EarlyModel;
    pub use iguard_core::error::{IguardError, TcamError};
    pub use iguard_core::forest::{IGuardConfig, IGuardForest};
    pub use iguard_core::rules::RuleSet;
    pub use iguard_core::teacher::{DetectorTeacher, EnsembleTeacher, OracleTeacher, Teacher};
    pub use iguard_flow::features::{FeatureSet, MAGNIFIER_DIM, PL_DIM, SWITCH_FL_DIM};
    pub use iguard_flow::five_tuple::FiveTuple;
    pub use iguard_flow::packet::Packet;
    pub use iguard_flow::table::FlowTableConfig;
    pub use iguard_iforest::{IsolationForest, IsolationForestConfig};
    pub use iguard_metrics::{consistency, macro_f1, pr_auc, roc_auc, DetectionSummary};
    pub use iguard_models::detector::AnomalyDetector;
    pub use iguard_models::magnifier::MagnifierConfig;
    pub use iguard_models::Magnifier;
    pub use iguard_switch::controller::{Controller, ControllerConfig};
    pub use iguard_switch::data_plane::DataPlane;
    pub use iguard_switch::pipeline::{Pipeline, PipelineConfig};
    pub use iguard_switch::replay::{replay, ReplayConfig};
    pub use iguard_switch::resources::{ResourceModel, ResourceUsage};
    pub use iguard_switch::sharded::{ShardedPipeline, ShardedPipelineConfig};
    pub use iguard_switch::tcam::{compile_ruleset, compile_ruleset_checked, FieldSpec, TcamTable};
    pub use iguard_synth::attacks::{Attack, ALL_ATTACKS};
    pub use iguard_synth::benign::benign_trace;
    pub use iguard_synth::trace::{extract_flows, ExtractConfig, LabeledFlows, Trace};
}
