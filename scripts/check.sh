#!/usr/bin/env bash
# Canonical pre-merge check: tier-1 gate + formatting, fully offline.
#
#   scripts/check.sh
#
# The workspace has no external dependencies, so every step runs with
# --offline against an empty registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== tier-1: cargo build --release --offline =="
cargo build --release --offline --workspace --all-targets

echo "== tier-1: cargo test -q --offline =="
cargo test -q --offline --workspace

echo "All checks passed."
