#!/usr/bin/env bash
# Canonical pre-merge check: tier-1 gate + formatting, fully offline.
#
#   scripts/check.sh
#
# The workspace has no external dependencies, so every step runs with
# --offline against an empty registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== tier-1: cargo build --release --offline (warnings are errors) =="
RUSTFLAGS="-D warnings" cargo build --release --offline --workspace --all-targets

echo "== tier-1: cargo test -q --offline (IGUARD_WORKERS=1) =="
IGUARD_WORKERS=1 cargo test -q --offline --workspace

echo "== cargo test -q --offline (IGUARD_WORKERS=8) =="
IGUARD_WORKERS=8 cargo test -q --offline --workspace

echo "== shard invariance suite (explicit) =="
cargo test -q --offline -p iguard-switch --test shard_invariance

echo "== chaos gate: fault-injected control loop (fixed seeds, workers 1 and 8) =="
# The chaos suite bakes in two fixed fault seeds (CHAOS_SEEDS = [11, 47])
# and asserts convergence + byte-identical fingerprints across shard and
# worker counts; running it at both worker extremes is the gate.
IGUARD_WORKERS=1 cargo test -q --offline -p iguard-switch --test chaos
IGUARD_WORKERS=8 cargo test -q --offline -p iguard-switch --test chaos
IGUARD_WORKERS=8 cargo test -q --offline -p iguard-switch --test controller_idempotence

echo "== TCAM/float parity gate: exhaustive grid sweeps (workers 1 and 8) =="
# Four lookup paths (float linear, float index, TCAM linear, TCAM index)
# pinned to one truth table over every representable key of small grids,
# including sub-quantum and infinite-bound cubes.
IGUARD_WORKERS=1 cargo test -q --offline -p iguard-switch --test tcam_parity
IGUARD_WORKERS=8 cargo test -q --offline -p iguard-switch --test tcam_parity

echo "== SoA parity gate: columnar batch path vs scalar oracle (workers 1 and 8) =="
# The batch pipeline must produce byte-identical verdicts, digests, and
# counters to the per-packet scalar walk at every batch size and split.
IGUARD_WORKERS=1 cargo test -q --offline -p iguard-switch --test soa_parity
IGUARD_WORKERS=8 cargo test -q --offline -p iguard-switch --test soa_parity

echo "== scale parity gate: sketched admission vs exact pipeline (workers 1 and 8) =="
# Unbudgeted SketchedPipeline must fingerprint-match Pipeline; budgeted
# runs must hold the resident-byte cap and stay within the shed-work
# FP/FN bound (DESIGN.md sec. 12).
IGUARD_WORKERS=1 cargo test -q --offline -p iguard-switch --test scale_parity
IGUARD_WORKERS=8 cargo test -q --offline -p iguard-switch --test scale_parity

echo "== ruleset swap gate: rule-diff engine + hitless versioned swap (workers 1 and 8) =="
# Diff/apply round-trips, mid-swap verdict membership (every packet sees
# exactly one complete ruleset), scripted-swap convergence under the PR-4
# fault plans, and byte-identical fingerprints across shard x worker
# combinations (DESIGN.md sec. 13).
IGUARD_WORKERS=1 cargo test -q --offline -p iguard-switch --test ruleset_swap
IGUARD_WORKERS=8 cargo test -q --offline -p iguard-switch --test ruleset_swap

echo "== overload gate: state-exhaustion canon + timeout rebirth (workers 1 and 8) =="
# Idle-timeout boundary properties, grid-invariant overload fingerprints
# under the adversarial scenario canon, and the degraded-mode
# enter/shed/exit cycle with full recovery (DESIGN.md sec. 15).
IGUARD_WORKERS=1 cargo test -q --offline -p iguard-switch --test overload
IGUARD_WORKERS=8 cargo test -q --offline -p iguard-switch --test overload

echo "== phase parity gate: early verdicts across the grid (workers 1 and 8) =="
# Phase fingerprints byte-identical across shard x worker combinations
# for every phase configuration, a ruleset-free schedule bit-identical
# to single-shot, and scalar/columnar/sharded/sketched backends in
# packet-for-packet agreement with phases live (DESIGN.md sec. 16).
IGUARD_WORKERS=1 cargo test -q --offline -p iguard-switch --test phase_parity
IGUARD_WORKERS=8 cargo test -q --offline -p iguard-switch --test phase_parity

echo "== bench reporter smoke run (shard + chaos + rule-index + sketch + swap + overload sweeps) =="
smoke_out="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
smoke7_out="$(mktemp /tmp/bench_smoke_pr7.XXXXXX.json)"
smoke8_out="$(mktemp /tmp/bench_smoke_pr8.XXXXXX.json)"
smoke9_out="$(mktemp /tmp/bench_smoke_pr9.XXXXXX.json)"
smoke10_out="$(mktemp /tmp/bench_smoke_pr10.XXXXXX.json)"
trap 'rm -f "$smoke_out" "$smoke7_out" "$smoke8_out" "$smoke9_out" "$smoke10_out"' EXIT
# bench_report itself hard-fails on indexed-vs-linear verdict divergence,
# on a sub-2x index speedup at >=256 rules, on sketched/exact fingerprint
# divergence, on a budget overrun, on a per-batch steady-state
# allocation, and on any PR-9 overload gate (grid fingerprint
# divergence, missed degraded cycle, FP inflation, stale storm state,
# admission seam, golden matrix). IGUARD_PR7_FLOWS shrinks the 1M-flow
# streaming sweep for CI.
IGUARD_PR7_FLOWS=8000 cargo run -q --release --offline -p iguard-bench --bin bench_report -- \
    --smoke --out "$smoke_out" --out-pr7 "$smoke7_out" --out-pr8 "$smoke8_out" \
    --out-pr9 "$smoke9_out" --out-pr10 "$smoke10_out"
test -s "$smoke_out" || { echo "bench_report wrote an empty report"; exit 1; }
grep -q '"schema": "iguard-bench-pr6"' "$smoke_out" \
    || { echo "bench_report schema marker missing"; exit 1; }
grep -q '"shard_sweep"' "$smoke_out" \
    || { echo "bench_report shard_sweep section missing"; exit 1; }
grep -q '"deterministic_across_shards": true' "$smoke_out" \
    || { echo "bench_report determinism marker missing"; exit 1; }
grep -q '"chaos_sweep"' "$smoke_out" \
    || { echo "bench_report chaos_sweep section missing"; exit 1; }
grep -q '"deterministic_replay": true' "$smoke_out" \
    || { echo "bench_report chaos determinism marker missing"; exit 1; }
grep -q '"rule_index"' "$smoke_out" \
    || { echo "bench_report rule_index section missing"; exit 1; }
grep -q '"replay_parity"' "$smoke_out" \
    || { echo "bench_report replay_parity section missing"; exit 1; }
grep -q '"soa_replay"' "$smoke_out" \
    || { echo "bench_report soa_replay section missing"; exit 1; }
# The rule-index sweep, the replay-parity section, and the SoA replay
# gate must each carry the verdict-equality marker. bench_report itself
# hard-fails if the columnar replay is below 2x the scalar path.
[ "$(grep -c '"verdicts_identical": true' "$smoke_out")" -eq 3 ] \
    || { echo "bench_report verdict-parity markers missing"; exit 1; }
# The sketched runs share the process, so their counters must appear in
# the verified telemetry snapshot.
for marker in switch.sketch.promoted switch.sketch.absorbed switch.sketch.evicted; do
    grep -q "\"$marker\"" "$smoke_out" \
        || { echo "telemetry marker $marker missing"; exit 1; }
done
# The ruleset-swap sweep runs in the same process: the transactional
# lifecycle counters (entry writes, atomic swaps, idempotent replays,
# stale rejections) must all be on the board in the snapshot.
for marker in switch.ruleset.installed switch.ruleset.removed switch.ruleset.swaps \
              switch.ruleset.stale switch.ruleset.replayed \
              switch.controller.drift_trigger core.drift.fired; do
    grep -q "\"$marker\"" "$smoke_out" \
        || { echo "telemetry marker $marker missing"; exit 1; }
done
test -s "$smoke7_out" || { echo "bench_report wrote an empty PR7 report"; exit 1; }
grep -q '"schema": "iguard-bench-pr7"' "$smoke7_out" \
    || { echo "bench_report pr7 schema marker missing"; exit 1; }
grep -q '"exact_mode_parity": true' "$smoke7_out" \
    || { echo "bench_report sketched exact-parity marker missing"; exit 1; }
grep -q '"budgets_respected": true' "$smoke7_out" \
    || { echo "bench_report budget marker missing"; exit 1; }
grep -q '"steady_state_allocation_free": true' "$smoke7_out" \
    || { echo "bench_report allocation-probe marker missing"; exit 1; }
test -s "$smoke8_out" || { echo "bench_report wrote an empty PR8 report"; exit 1; }
grep -q '"schema": "iguard-bench-pr8"' "$smoke8_out" \
    || { echo "bench_report pr8 schema marker missing"; exit 1; }
grep -q '"fired_on_shift": true' "$smoke8_out" \
    || { echo "bench_report drift-trigger marker missing"; exit 1; }
grep -q '"perturbed_diff_below_full_reinstall": true' "$smoke8_out" \
    || { echo "bench_report diff-churn marker missing"; exit 1; }
grep -q '"misclassified_during_swap": 0' "$smoke8_out" \
    || { echo "bench_report hitless-swap marker missing"; exit 1; }
grep -q '"byte_identical": true' "$smoke8_out" \
    || { echo "bench_report swap-determinism marker missing"; exit 1; }
test -s "$smoke9_out" || { echo "bench_report wrote an empty PR9 report"; exit 1; }
grep -q '"schema": "iguard-bench-pr9"' "$smoke9_out" \
    || { echo "bench_report pr9 schema marker missing"; exit 1; }
# Every canon scenario's shard x worker grid must carry the
# byte-identical certificate, and the storm scenarios must have cycled
# degraded mode (entered, shed, exited, fully recovered).
[ "$(grep -c '"grid_byte_identical": true' "$smoke9_out")" -eq 4 ] \
    || { echo "bench_report overload grid-determinism markers missing"; exit 1; }
grep -q '"degraded_cycle_observed": true' "$smoke9_out" \
    || { echo "bench_report degraded-cycle marker missing"; exit 1; }
grep -q '"confusion_matches_fresh": true' "$smoke9_out" \
    || { echo "bench_report overload recovery marker missing"; exit 1; }
grep -q '"tightens_only_under_pressure": true' "$smoke9_out" \
    || { echo "bench_report admission-tightening marker missing"; exit 1; }
grep -q '"ttm_packets"' "$smoke9_out" \
    || { echo "bench_report time-to-mitigation CDF missing"; exit 1; }
# The overload sweep shares the process, so its pressure/shedding
# telemetry must be on the board in the verified snapshot.
for marker in switch.flow_table.pressure switch.overload.degraded_enter \
              switch.overload.degraded_exit switch.overload.shed_benign \
              switch.overload.admission_tightened; do
    grep -q "\"$marker\"" "$smoke_out" \
        || { echo "telemetry marker $marker missing"; exit 1; }
done
test -s "$smoke10_out" || { echo "bench_report wrote an empty PR10 report"; exit 1; }
grep -q '"schema": "iguard-bench-pr10"' "$smoke10_out" \
    || { echo "bench_report pr10 schema marker missing"; exit 1; }
# Every canon scenario must certify both the phases-disabled twin
# (bit-identical to single-shot) and the shard x worker grid.
[ "$(grep -c '"disabled_matches_single_shot": true' "$smoke10_out")" -eq 4 ] \
    || { echo "bench_report phase single-shot-equivalence markers missing"; exit 1; }
[ "$(grep -c '"grid_byte_identical": true' "$smoke10_out")" -eq 4 ] \
    || { echo "bench_report phase grid-determinism markers missing"; exit 1; }
grep -q '"ttm_packets_by_phase"' "$smoke10_out" \
    || { echo "bench_report per-phase detection-latency CDF missing"; exit 1; }
grep -q '"unchanged": true' "$smoke10_out" \
    || { echo "bench_report phase golden-matrix marker missing"; exit 1; }
# The phase sweep shares the process: boundary/convict/escalate
# telemetry and the training-side counters must be on the board.
for marker in switch.phase.boundary switch.phase.convicted switch.phase.escalated \
              core.phase.trained core.phase.warm_starts; do
    grep -q "\"$marker\"" "$smoke_out" \
        || { echo "telemetry marker $marker missing"; exit 1; }
done

echo "All checks passed."
