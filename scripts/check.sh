#!/usr/bin/env bash
# Canonical pre-merge check: tier-1 gate + formatting, fully offline.
#
#   scripts/check.sh
#
# The workspace has no external dependencies, so every step runs with
# --offline against an empty registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== tier-1: cargo build --release --offline =="
cargo build --release --offline --workspace --all-targets

echo "== tier-1: cargo test -q --offline (IGUARD_WORKERS=1) =="
IGUARD_WORKERS=1 cargo test -q --offline --workspace

echo "== cargo test -q --offline (IGUARD_WORKERS=8) =="
IGUARD_WORKERS=8 cargo test -q --offline --workspace

echo "== shard invariance suite (explicit) =="
cargo test -q --offline -p iguard-switch --test shard_invariance

echo "== bench reporter smoke run (includes shard sweep) =="
smoke_out="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
trap 'rm -f "$smoke_out"' EXIT
cargo run -q --release --offline -p iguard-bench --bin bench_report -- \
    --smoke --out "$smoke_out"
test -s "$smoke_out" || { echo "bench_report wrote an empty report"; exit 1; }
grep -q '"schema": "iguard-bench-pr3"' "$smoke_out" \
    || { echo "bench_report schema marker missing"; exit 1; }
grep -q '"shard_sweep"' "$smoke_out" \
    || { echo "bench_report shard_sweep section missing"; exit 1; }
grep -q '"deterministic_across_shards": true' "$smoke_out" \
    || { echo "bench_report determinism marker missing"; exit 1; }

echo "All checks passed."
