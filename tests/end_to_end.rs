//! Cross-crate integration tests: the full paper pipeline from synthetic
//! packets to switch verdicts.

use iguard::core::early::EarlyModel;
use iguard::flow::features::packet_level_features;
use iguard::prelude::*;
use iguard::switch::pipeline::PipelineConfig as SwitchPipelineConfig;
use iguard::switch::replay::{ControlPlaneModel, ReplayConfig};
use iguard_iforest::IsolationForestConfig as PlForestConfig;
use iguard_runtime::rng::Rng;

fn extract_cfg() -> ExtractConfig {
    ExtractConfig { log_compress: true, ..Default::default() }
}

/// Trains the full deployment once for reuse across assertions.
struct Deployment {
    forest: IGuardForest,
    rules: RuleSet,
    early: EarlyModel,
}

fn train_deployment(seed: u64) -> (Deployment, LabeledFlows) {
    let mut rng = Rng::seed_from_u64(seed);
    let cfg = extract_cfg();
    let train_trace = benign_trace(600, 20.0, &mut rng);
    let train = extract_flows(&train_trace, &cfg);
    let mag = Magnifier::fit(
        &train.features,
        &MagnifierConfig { epochs: 50, ..Default::default() },
        &mut rng,
    );
    let mut teacher = DetectorTeacher(mag);
    let ig = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 64, ..Default::default() };
    let mut forest = IGuardForest::fit(&train.features, &mut teacher, &ig, &mut rng);
    forest.distill(&train.features, &mut teacher, ig.k_augment, &mut rng);
    // Calibrate the vote threshold against a labelled validation mix.
    let val_b = extract_flows(&benign_trace(150, 10.0, &mut rng), &cfg);
    let val_a = extract_flows(&Attack::UdpDdos.trace(50, 10.0, &mut rng), &cfg);
    let mut feats = val_b.features.clone();
    feats.extend_rows(&val_a.features);
    let mut labels = vec![false; val_b.len()];
    labels.extend(vec![true; val_a.len()]);
    let scores = forest.scores(&feats);
    let mut best = (0.25, -1.0);
    for thr in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let pred: Vec<bool> = scores.iter().map(|&s| s > thr).collect();
        let f1 = macro_f1(&labels, &pred);
        if f1 > best.1 {
            best = (thr, f1);
        }
    }
    forest.set_vote_threshold(best.0);
    let rules = RuleSet::from_iguard(&forest, 600_000).expect("rule budget");

    // Early-packet model on first-packet PL features.
    let mut seen = std::collections::HashSet::new();
    let mut pl = iguard_runtime::Dataset::default();
    for p in &train_trace.packets {
        if seen.insert(p.five.canonical()) {
            pl.push_row(&packet_level_features(p));
        }
    }
    let early = EarlyModel::train(
        &pl,
        &PlForestConfig { n_trees: 10, subsample: 64, contamination: 0.05 },
        600_000,
        &mut rng,
    )
    .expect("PL rules");
    (Deployment { forest, rules, early }, train)
}

#[test]
fn rules_reproduce_forest_on_fresh_traffic() {
    let (d, _) = train_deployment(101);
    let mut rng = Rng::seed_from_u64(9);
    let cfg = extract_cfg();
    let mut probes = extract_flows(&benign_trace(150, 8.0, &mut rng), &cfg);
    probes.extend(extract_flows(&Attack::TcpDdos.trace(60, 8.0, &mut rng), &cfg));
    let c = consistency(
        &d.rules.predictions(&probes.features),
        &d.forest.predictions(&probes.features),
    );
    assert!(c >= 0.99, "rule/forest consistency {c} below the paper's band");
}

#[test]
fn deployment_detects_flood_on_the_switch() {
    let (d, _) = train_deployment(102);
    let mut rng = Rng::seed_from_u64(10);
    let benign = benign_trace(200, 12.0, &mut rng);
    let flood = Attack::UdpDdos.trace(80, 12.0, &mut rng);
    let trace = Trace::merge(vec![benign, flood]);
    let mut pipeline = Pipeline::new(
        SwitchPipelineConfig { log_compress: true, ..Default::default() },
        d.rules.clone(),
        d.early.rules.clone(),
    );
    let mut controller = Controller::new(ControllerConfig::default());
    let report = replay(
        &trace,
        &mut pipeline,
        &mut controller,
        &ReplayConfig { control_plane: ControlPlaneModel::iguard(), ..Default::default() },
    );
    let cm = report.confusion();
    assert!(cm.recall() > 0.5, "per-packet recall {:.3}", cm.recall());
    assert!(cm.fpr() < 0.5, "per-packet FPR {:.3}", cm.fpr());
    assert!(pipeline.blacklist_len() > 0, "controller installed no blacklist rules");
    assert!(report.digests > 0);
    assert!(report.throughput_gbps > 30.0);
    assert!(report.avg_latency_ns >= 532.8);
}

#[test]
fn controller_blacklist_shortens_detection_path() {
    let (d, _) = train_deployment(103);
    let mut rng = Rng::seed_from_u64(11);
    // Two identical flood waves: the second should hit blacklist entries
    // installed during the first.
    let wave1 = Attack::UdpDdos.trace(40, 6.0, &mut rng);
    let mut wave2 = wave1.clone();
    wave2.shift_time(10_000_000_000);
    let trace = Trace::merge(vec![wave1, wave2]);
    let mut pipeline = Pipeline::new(
        SwitchPipelineConfig { log_compress: true, ..Default::default() },
        d.rules.clone(),
        d.early.rules.clone(),
    );
    let mut controller = Controller::new(ControllerConfig::default());
    let _ = replay(&trace, &mut pipeline, &mut controller, &ReplayConfig::default());
    assert!(pipeline.paths().blacklist > 0, "no packet was dropped by an installed blacklist rule");
}

#[test]
fn adversarial_low_rate_changes_flow_durations() {
    use iguard::synth::adversarial::low_rate;
    let mut rng = Rng::seed_from_u64(12);
    let flood = Attack::TcpDdos.trace(30, 5.0, &mut rng);
    let slow = low_rate(&flood, 100.0);
    assert_eq!(slow.len(), flood.len());
    // Flow *durations* stretch ~100x; the trace envelope grows by the
    // longest stretched flow on top of the 5 s start window.
    assert!(
        slow.duration_secs() > 3.0 * flood.duration_secs(),
        "slow {} vs orig {}",
        slow.duration_secs(),
        flood.duration_secs()
    );
}

/// One cheap, fully deterministic deployment for the golden test: an oracle
/// teacher (no NN training), a small guided forest, a PL early model, and a
/// benign+flood replay through the emulated switch.
fn golden_setup() -> (RuleSet, RuleSet, Trace) {
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    let cfg = ExtractConfig::default();
    let train_trace = benign_trace(200, 8.0, &mut rng);
    let train = extract_flows(&train_trace, &cfg);
    let teacher = OracleTeacher(|x: &[f32]| x[10] < 0.0008 || x[2] > 1200.0);
    let ig = IGuardConfig { n_trees: 5, subsample: 64, k_augment: 32, ..Default::default() };
    let mut forest = IGuardForest::fit(&train.features, &teacher, &ig, &mut rng);
    forest.distill(&train.features, &teacher, ig.k_augment, &mut rng);
    let rules = RuleSet::from_iguard(&forest, 400_000).expect("rule budget");

    let mut seen = std::collections::HashSet::new();
    let mut pl = iguard_runtime::Dataset::default();
    for p in &train_trace.packets {
        if seen.insert(p.five.canonical()) {
            pl.push_row(&packet_level_features(p));
        }
    }
    let early = EarlyModel::train(
        &pl,
        &PlForestConfig { n_trees: 10, subsample: 64, contamination: 0.05 },
        400_000,
        &mut rng,
    )
    .expect("PL rules");

    let benign = benign_trace(100, 6.0, &mut rng);
    let flood = Attack::UdpDdos.trace(40, 6.0, &mut rng);
    (rules, early.rules, Trace::merge(vec![benign, flood]))
}

fn golden_pipeline_cfg() -> SwitchPipelineConfig {
    SwitchPipelineConfig {
        flow_table: FlowTableConfig { pkt_threshold: 4, ..Default::default() },
        ..Default::default()
    }
}

fn golden_run() -> (RuleSet, iguard::switch::replay::ReplayReport) {
    let (rules, pl_rules, trace) = golden_setup();
    let mut pipeline = Pipeline::new(golden_pipeline_cfg(), rules.clone(), pl_rules);
    let mut controller = Controller::new(ControllerConfig::default());
    let report = replay(&trace, &mut pipeline, &mut controller, &ReplayConfig::default());
    (rules, report)
}

/// Golden end-to-end: from a fixed seed, the exact rule count and the exact
/// per-packet confusion matrix — and the compiled whitelist is
/// byte-identical at 1, 2, and 8 workers. Any drift in the RNG streams,
/// the decomposition order, or the replay loop shows up here first.
#[test]
fn golden_deployment_is_exact_and_worker_invariant() {
    use iguard_runtime::par::with_workers;

    const GOLDEN_RULES: usize = 11;
    const GOLDEN_REGIONS: usize = 51;
    const GOLDEN_PACKETS: u64 = 6759;
    const GOLDEN_CONFUSION: (u64, u64, u64, u64) = (3999, 1019, 1569, 172); // (tp, fp, tn, fn)

    let (rules, report) = golden_run();
    assert_eq!(rules.len(), GOLDEN_RULES, "whitelist rule count drifted");
    assert_eq!(rules.total_regions, GOLDEN_REGIONS, "decomposition region count drifted");
    assert_eq!(report.packets, GOLDEN_PACKETS, "replayed packet count drifted");
    assert_eq!(
        (report.tp, report.fp, report.tn, report.fn_),
        GOLDEN_CONFUSION,
        "per-packet confusion matrix drifted"
    );

    let tsv = rules.to_tsv();
    for workers in [1usize, 2, 8] {
        let (w_rules, w_report) = with_workers(workers, golden_run);
        assert_eq!(w_rules.to_tsv(), tsv, "whitelist differs at {workers} workers");
        assert_eq!(
            (w_report.tp, w_report.fp, w_report.tn, w_report.fn_),
            GOLDEN_CONFUSION,
            "confusion matrix differs at {workers} workers"
        );
    }
}

/// The golden matrix holds through the columnar batch path, and the
/// scalar per-packet oracle reproduces it bit for bit. At coarser
/// feedback granularity (bigger replay batches delay blacklist installs)
/// the matrix may legitimately shift — but the columnar and scalar
/// backends must still agree exactly at every batch size.
#[test]
fn golden_matrix_holds_through_batch_path() {
    use iguard::switch::pipeline::ScalarPipeline;
    use iguard::switch::DataPlane;

    const GOLDEN_CONFUSION: (u64, u64, u64, u64) = (3999, 1019, 1569, 172);

    let (fl, pl, trace) = golden_setup();
    let run = |dp: &mut dyn DataPlane, batch: usize| {
        let mut controller = Controller::new(ControllerConfig::default());
        let rcfg = ReplayConfig { batch_size: batch, ..Default::default() };
        let r = replay(&trace, dp, &mut controller, &rcfg);
        (r.tp, r.fp, r.tn, r.fn_)
    };

    let mut soa = Pipeline::new(golden_pipeline_cfg(), fl.clone(), pl.clone());
    assert_eq!(run(&mut soa, 1), GOLDEN_CONFUSION, "columnar batch path drifted");
    let mut scalar = ScalarPipeline::new(golden_pipeline_cfg(), fl.clone(), pl.clone());
    assert_eq!(run(&mut scalar, 1), GOLDEN_CONFUSION, "scalar oracle drifted");

    for batch in [64usize, 1024, 4096] {
        let mut soa = Pipeline::new(golden_pipeline_cfg(), fl.clone(), pl.clone());
        let mut scalar = ScalarPipeline::new(golden_pipeline_cfg(), fl.clone(), pl.clone());
        assert_eq!(
            run(&mut soa, batch),
            run(&mut scalar, batch),
            "columnar/scalar diverged at batch {batch}"
        );
    }
}

#[test]
fn tcam_compilation_agrees_with_rules_on_probes() {
    use iguard::switch::tcam::{compile_ruleset, quantize_key_into, FieldSpec};
    let (d, train) = train_deployment(104);
    let n_probes = 200.min(train.len());

    // --- Coarse 16-bit fields: compilation is grid-exact regardless of
    // resolution. The trained whitelist carves cubes thinner than one
    // 16-bit quantum (concentrated benign traffic), so some cubes cover no
    // grid point and are skipped rather than installed as over-matching
    // point ranges; every source rule is accounted for either way, and the
    // installed table agrees with the float rules *exactly* at every key's
    // canonical grid image `dequantize(key)`.
    let coarse: Vec<FieldSpec> = d
        .rules
        .bounds
        .iter()
        .map(|&(_, hi)| FieldSpec::new(16, (65_535.0 / hi.max(1e-6)).min(65_535.0)))
        .collect();
    let tcam = compile_ruleset(&d.rules, &coarse);
    assert_eq!(tcam.len() as u64 + tcam.skipped_empty, d.rules.len() as u64);
    assert!(!tcam.is_empty(), "a trained whitelist must install some entries");
    assert!(
        tcam.skipped_empty > 0,
        "this deployment is known to have sub-quantum cubes at 16 bits"
    );
    let index = iguard::switch::rule_index::RangeIndex::build(&tcam);
    let mut scratch = Vec::new();
    let mut key = Vec::new();
    for f in train.features.iter_rows().take(n_probes) {
        quantize_key_into(f, &coarse, &mut key);
        let tcam_hit = tcam.lookup_idx(&key);
        // The compiled index is bit-exact against the TCAM scan on every key.
        assert_eq!(index.lookup(&key, &mut scratch), tcam_hit, "index/scan diverged at {key:?}");
        let deq: Vec<f32> = key.iter().enumerate().map(|(i, &k)| coarse[i].dequantize(k)).collect();
        assert_eq!(
            tcam_hit.is_some(),
            d.rules.matches(&deq),
            "TCAM verdict diverged from float rules at grid point {deq:?}"
        );
    }

    // --- 24-bit fields resolve every cube in this whitelist, so nothing is
    // skipped and the quantised verdict tracks the float verdict on the raw
    // (off-grid) probes too; only rows within half a quantum of a cube
    // boundary may flip, hence agreement rather than bit-exactness.
    let fine: Vec<FieldSpec> = d
        .rules
        .bounds
        .iter()
        .map(|&(_, hi)| {
            let maxk = (1u32 << 24) as f32 - 1.0;
            FieldSpec::new(24, (maxk / hi.max(1e-6)).min(maxk))
        })
        .collect();
    let tcam = compile_ruleset(&d.rules, &fine);
    assert_eq!(tcam.len(), d.rules.len(), "24-bit fields must resolve every cube");
    assert_eq!(tcam.skipped_empty, 0);
    let index = iguard::switch::rule_index::RangeIndex::build(&tcam);
    let mut agree = 0usize;
    for f in train.features.iter_rows().take(n_probes) {
        quantize_key_into(f, &fine, &mut key);
        let tcam_hit = tcam.lookup_idx(&key);
        assert_eq!(index.lookup(&key, &mut scratch), tcam_hit, "index/scan diverged at {key:?}");
        if tcam_hit.is_some() == d.rules.matches(f) {
            agree += 1;
        }
    }
    assert!(agree as f64 / n_probes as f64 > 0.95, "TCAM/rule agreement {agree}/{n_probes}");
}
