//! Path-length overlap study (paper §3.1, Figs. 2 and 7): the expected
//! path length of a conventional iForest cannot separate malicious from
//! benign samples.

use iguard_runtime::rng::Rng;

use iguard_iforest::{IsolationForest, IsolationForestConfig};
use iguard_synth::attacks::Attack;

use crate::data::{self, ScenarioConfig};

/// Histogrammed path-length distributions for one attack.
#[derive(Clone, Debug)]
pub struct PathLenResult {
    pub attack: Attack,
    /// Histogram bin edges (shared by both classes).
    pub edges: Vec<f64>,
    /// Normalised benign histogram.
    pub benign: Vec<f64>,
    /// Normalised malicious histogram.
    pub malicious: Vec<f64>,
    /// Overlap coefficient ∈ [0, 1]: Σ min(benign_i, malicious_i). The
    /// paper's "significant overlap" corresponds to large values here.
    pub overlap: f64,
    /// Fraction of malicious samples whose expected path length falls
    /// inside the central 90 % band of benign path lengths — the direct
    /// form of §3.1's claim that expected path length cannot separate the
    /// classes (1.0 = fully inside the benign range).
    pub containment: f64,
}

/// Computes Fig.-2-style distributions for one attack.
///
/// Uses *raw* (non-log-compressed) features: §3.1 studies the conventional
/// iForest exactly as prior data-plane deployments ran it, without the
/// feature conditioning the rest of this reproduction adds.
pub fn run_attack(attack: Attack, seed: u64, bins: usize) -> PathLenResult {
    assert!(bins >= 2);
    let mut cfg = ScenarioConfig::cpu(seed);
    cfg.extract.log_compress = false;
    let s = data::build(attack, &cfg);
    let cfg = IsolationForestConfig { n_trees: 100, subsample: 256, contamination: 0.1 };
    let mut rng = Rng::seed_from_u64(seed ^ 0xF12);
    let forest = IsolationForest::fit(&s.train.features, &cfg, &mut rng);

    let mut benign_pl = Vec::new();
    let mut mal_pl = Vec::new();
    for (x, &mal) in s.test.features.iter_rows().zip(&s.test.labels) {
        let e = forest.expected_path_length(x);
        if mal {
            mal_pl.push(e);
        } else {
            benign_pl.push(e);
        }
    }
    let lo = benign_pl.iter().chain(&mal_pl).cloned().fold(f64::INFINITY, f64::min);
    let hi = benign_pl.iter().chain(&mal_pl).cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let edges: Vec<f64> = (0..=bins).map(|i| lo + span * i as f64 / bins as f64).collect();
    let hist = |vals: &[f64]| -> Vec<f64> {
        let mut h = vec![0.0f64; bins];
        for &v in vals {
            let idx = (((v - lo) / span) * bins as f64).floor() as usize;
            h[idx.min(bins - 1)] += 1.0;
        }
        let total: f64 = h.iter().sum::<f64>().max(1.0);
        h.into_iter().map(|c| c / total).collect()
    };
    let benign = hist(&benign_pl);
    let malicious = hist(&mal_pl);
    let overlap = benign.iter().zip(&malicious).map(|(&b, &m)| b.min(m)).sum();
    // Central 90% band of benign path lengths.
    let mut sorted_b = benign_pl.clone();
    sorted_b.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |f: f64| sorted_b[((sorted_b.len() - 1) as f64 * f) as usize];
    let (b_lo, b_hi) = (q(0.05), q(0.95));
    let contained = mal_pl.iter().filter(|&&v| v >= b_lo && v <= b_hi).count();
    let containment = contained as f64 / mal_pl.len().max(1) as f64;
    PathLenResult { attack, edges, benign, malicious, overlap, containment }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig.-2 premise: benign and malicious path-length distributions
    /// overlap substantially for in-range attacks.
    #[test]
    fn keylogging_overlaps_heavily() {
        let r = run_attack(Attack::Keylogging, 1, 20);
        assert!(
            r.overlap > 0.35,
            "overlap {:.3} too small — the motivation figure would not reproduce",
            r.overlap
        );
        // Histograms are normalised.
        let sb: f64 = r.benign.iter().sum();
        let sm: f64 = r.malicious.iter().sum();
        assert!((sb - 1.0).abs() < 1e-9 && (sm - 1.0).abs() < 1e-9);
        assert_eq!(r.edges.len(), 21);
    }
}
