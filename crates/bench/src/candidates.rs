//! Candidate-teacher study (paper Appendix A, Fig. 10): macro F1 of six
//! unsupervised models, fine-tuned on validation, per attack.

use iguard_runtime::rng::Rng;

use iguard_iforest::IsolationForestConfig;
use iguard_metrics::macro_f1;
use iguard_models::detector::{AnomalyDetector, IForestDetector};
use iguard_models::knn::{KnnConfig, KnnDetector};
use iguard_models::magnifier::{Magnifier, MagnifierConfig};
use iguard_models::pca::{PcaConfig, PcaDetector};
use iguard_models::vae::{VaeConfig, VaeDetector};
use iguard_models::xmeans::{XMeansConfig, XMeansDetector};
use iguard_synth::attacks::Attack;

use crate::cpu::Effort;
use crate::data::{self, Scenario, ScenarioConfig};
use crate::tune::best_threshold;

/// The candidate order of Fig. 10.
pub const CANDIDATES: [&str; 6] = ["kNN", "PCA", "iForest", "X-means", "VAE", "Magnifier"];

/// Macro F1 per candidate, index-aligned with [`CANDIDATES`].
#[derive(Clone, Debug)]
pub struct CandidateResult {
    pub attack: Attack,
    pub macro_f1: [f64; 6],
}

fn tune_and_test(det: &mut dyn AnomalyDetector, s: &Scenario) -> f64 {
    let val_scores = det.scores(&s.val.features);
    let (thr, _) = best_threshold(&val_scores, &s.val.labels);
    det.set_threshold(thr);
    let pred: Vec<bool> = det.scores(&s.test.features).iter().map(|&v| v > thr).collect();
    macro_f1(&s.test.labels, &pred)
}

/// Runs the Fig.-10 comparison for one attack.
pub fn run_attack(attack: Attack, seed: u64, effort: Effort) -> CandidateResult {
    let s = data::build(attack, &ScenarioConfig::cpu(seed));
    let mut rng = Rng::seed_from_u64(seed ^ 0xF16);
    let epochs = match effort {
        Effort::Quick => 40,
        Effort::Full => 120,
    };

    let mut knn = KnnDetector::fit(&s.train.features, &KnnConfig::default());
    let mut pca = PcaDetector::fit(&s.train.features, &PcaConfig::default());
    let mut iforest = IForestDetector::fit(
        &s.train.features,
        &IsolationForestConfig { n_trees: 100, subsample: 256, contamination: 0.1 },
        seed,
    );
    let mut xmeans = XMeansDetector::fit(&s.train.features, &XMeansConfig::default(), &mut rng);
    let mut vae =
        VaeDetector::fit(&s.train.features, &VaeConfig { epochs, ..Default::default() }, &mut rng);
    let mut magnifier = Magnifier::fit(
        &s.train.features,
        &MagnifierConfig { epochs, ..Default::default() },
        &mut rng,
    );

    let macro_f1 = [
        tune_and_test(&mut knn, &s),
        tune_and_test(&mut pca, &s),
        tune_and_test(&mut iforest, &s),
        tune_and_test(&mut xmeans, &s),
        tune_and_test(&mut vae, &s),
        tune_and_test(&mut magnifier, &s),
    ];
    CandidateResult { attack, macro_f1 }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig.-10 takeaway: the deep models (VAE / Magnifier) should be
    /// competitive with or better than the conventional iForest on an
    /// attack whose signature is joint rather than marginal.
    #[test]
    fn scan_attack_favours_reconstruction_models() {
        let r = run_attack(Attack::Aidra, 11, Effort::Quick);
        let iforest = r.macro_f1[2];
        let magnifier = r.macro_f1[5];
        assert!(
            magnifier >= iforest - 0.05,
            "Magnifier {magnifier:.3} should not lose clearly to iForest {iforest:.3}"
        );
        assert!(r.macro_f1.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
