//! CPU experiments (paper §4.1, Figs. 5 and 8): iForest vs Magnifier vs
//! iGuard on Magnifier-grade flow features, one attack at a time.

use iguard_runtime::rng::Rng;

use iguard_core::forest::{IGuardConfig, IGuardForest};
use iguard_core::teacher::DetectorTeacher;
use iguard_iforest::{IsolationForest, IsolationForestConfig};
use iguard_metrics::DetectionSummary;
use iguard_models::detector::AnomalyDetector;
use iguard_models::magnifier::{Magnifier, MagnifierConfig};
use iguard_synth::attacks::Attack;

use crate::data::{self, Scenario, ScenarioConfig};
use crate::tune::best_threshold;

/// One attack's CPU comparison.
#[derive(Clone, Copy, Debug)]
pub struct CpuResult {
    pub attack: Attack,
    pub iforest: DetectionSummary,
    pub magnifier: DetectionSummary,
    pub iguard: DetectionSummary,
}

/// Experiment effort level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// Small grids / epochs; minutes for all 15 attacks.
    Quick,
    /// The fuller grid of the paper.
    Full,
}

/// Trains and evaluates the conventional iForest baseline with a
/// `(t, Ψ)` grid and validation-tuned threshold.
pub fn eval_iforest(s: &Scenario, effort: Effort, seed: u64) -> DetectionSummary {
    let grid: Vec<(usize, usize)> = match effort {
        Effort::Quick => vec![(50, 128), (100, 256)],
        Effort::Full => vec![(25, 64), (50, 128), (100, 256), (100, 512)],
    };
    let mut best: Option<(f64, DetectionSummary)> = None;
    for (i, &(t, psi)) in grid.iter().enumerate() {
        let cfg = IsolationForestConfig { n_trees: t, subsample: psi, contamination: 0.1 };
        let mut rng = Rng::seed_from_u64(seed ^ (i as u64) << 8);
        let forest = IsolationForest::fit(&s.train.features, &cfg, &mut rng);
        let val_scores = forest.scores(&s.val.features);
        let (thr, val_f1) = best_threshold(&val_scores, &s.val.labels);
        if best.as_ref().is_some_and(|(b, _)| *b >= val_f1) {
            continue;
        }
        let test_scores = forest.scores(&s.test.features);
        let pred: Vec<bool> = test_scores.iter().map(|&v| v > thr).collect();
        let summary = DetectionSummary::compute(&s.test.labels, &pred, &test_scores);
        best = Some((val_f1, summary));
    }
    best.expect("non-empty grid").1
}

/// Trains Magnifier on benign flows and tunes its RMSE threshold `T` on
/// validation. Returns the fitted model and its test summary.
pub fn eval_magnifier(s: &Scenario, effort: Effort, seed: u64) -> (Magnifier, DetectionSummary) {
    let cfg = MagnifierConfig {
        epochs: match effort {
            Effort::Quick => 60,
            Effort::Full => 150,
        },
        ..Default::default()
    };
    let mut rng = Rng::seed_from_u64(seed ^ 0xAE);
    let mut mag = Magnifier::fit(&s.train.features, &cfg, &mut rng);
    let val_scores = mag.scores(&s.val.features);
    let (thr, _) = best_threshold(&val_scores, &s.val.labels);
    mag.set_threshold(thr);
    let test_scores = mag.scores(&s.test.features);
    let pred: Vec<bool> = test_scores.iter().map(|&v| v > thr).collect();
    let summary = DetectionSummary::compute(&s.test.labels, &pred, &test_scores);
    (mag, summary)
}

/// Trains iGuard guided by a fitted teacher and evaluates the distilled
/// forest on the test set.
pub fn eval_iguard(
    s: &Scenario,
    teacher_model: Magnifier,
    effort: Effort,
    seed: u64,
) -> DetectionSummary {
    let cfg = match effort {
        Effort::Quick => {
            IGuardConfig { n_trees: 9, subsample: 128, k_augment: 32, ..Default::default() }
        }
        Effort::Full => {
            IGuardConfig { n_trees: 15, subsample: 256, k_augment: 64, ..Default::default() }
        }
    };
    let mut teacher = DetectorTeacher(teacher_model);
    let mut rng = Rng::seed_from_u64(seed ^ 0x16);
    let mut forest = IGuardForest::fit(&s.train.features, &mut teacher, &cfg, &mut rng);
    forest.distill(&s.train.features, &mut teacher, cfg.k_augment, &mut rng);
    // Calibrate the vote threshold on validation (the paper's grid search
    // over T plays this role).
    let val_scores = forest.scores(&s.val.features);
    let (vote_thr, _) = best_threshold(&val_scores, &s.val.labels);
    forest.set_vote_threshold(vote_thr);
    let pred = forest.predictions(&s.test.features);
    let scores = forest.scores(&s.test.features);
    DetectionSummary::compute(&s.test.labels, &pred, &scores)
}

/// Runs the full Fig.-5/8 comparison for one attack.
pub fn run_attack(attack: Attack, seed: u64, effort: Effort) -> CpuResult {
    let scenario = data::build(attack, &ScenarioConfig::cpu(seed));
    let iforest = eval_iforest(&scenario, effort, seed);
    let (mag, magnifier) = eval_magnifier(&scenario, effort, seed);
    let iguard = eval_iguard(&scenario, mag, effort, seed);
    CpuResult { attack, iforest, magnifier, iguard }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end smoke test reproducing the Fig. 5 *shape* on one attack:
    /// iGuard ≈ Magnifier, both above the conventional iForest.
    #[test]
    fn udp_ddos_shape_matches_paper() {
        let r = run_attack(Attack::UdpDdos, 42, Effort::Quick);
        assert!(
            r.iguard.macro_f1 > r.iforest.macro_f1,
            "iGuard {:.3} should beat iForest {:.3}",
            r.iguard.macro_f1,
            r.iforest.macro_f1
        );
        assert!(r.magnifier.macro_f1 > 0.7, "teacher too weak: {:.3}", r.magnifier.macro_f1);
        assert!(r.iguard.macro_f1 > 0.7, "student too weak: {:.3}", r.iguard.macro_f1);
    }
}
