//! Validation-set threshold tuning shared by all experiments.

use iguard_metrics::macro_f1;

/// Sweeps thresholds over the quantiles of `val_scores` and returns the
/// `(threshold, macro_f1)` maximising macro F1 against `val_truth`
/// (predicting malicious when `score > threshold`).
pub fn best_threshold(val_scores: &[f64], val_truth: &[bool]) -> (f64, f64) {
    assert_eq!(val_scores.len(), val_truth.len());
    assert!(!val_scores.is_empty(), "need validation scores");
    let mut sorted: Vec<f64> = val_scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut best = (sorted[0] - 1.0, -1.0f64);
    let n_cand = 64.min(sorted.len());
    for i in 0..=n_cand {
        let idx = (i * (sorted.len() - 1)) / n_cand.max(1);
        let thr = sorted[idx];
        let pred: Vec<bool> = val_scores.iter().map(|&s| s > thr).collect();
        let f1 = macro_f1(val_truth, &pred);
        if f1 > best.1 {
            best = (thr, f1);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_separating_threshold() {
        let scores = vec![0.1, 0.2, 0.3, 0.8, 0.9, 1.0];
        let truth = vec![false, false, false, true, true, true];
        let (thr, f1) = best_threshold(&scores, &truth);
        assert!((0.3..0.8).contains(&thr), "threshold {thr}");
        assert_eq!(f1, 1.0);
    }

    #[test]
    fn degenerate_scores_still_return() {
        let scores = vec![0.5; 10];
        let truth: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let (_, f1) = best_threshold(&scores, &truth);
        assert!(f1 >= 0.0);
    }
}
