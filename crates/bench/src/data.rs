//! Dataset assembly shared by every experiment.
//!
//! Mirrors the paper's protocol (§4): benign traffic is split into train /
//! validation / test; 20 % attack traffic is added to the validation and
//! test sets (one attack at a time); the best configuration is picked on
//! validation and reported on test.

use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;

use iguard_flow::features::{packet_level_features, FeatureSet};
use iguard_synth::attacks::Attack;
use iguard_synth::benign::benign_trace;
use iguard_synth::trace::{extract_flows, ExtractConfig, LabeledFlows, Trace};

/// Scenario sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    pub feature_set: FeatureSet,
    /// Benign flows in the training trace.
    pub train_flows: usize,
    /// Benign flows in each of the validation / test traces.
    pub eval_flows: usize,
    /// Attack flows generated per evaluation trace (capped to 20 % of
    /// samples afterwards).
    pub attack_flows: usize,
    /// Trace window (seconds).
    pub window_secs: f64,
    /// Flow-sample truncation (`n`, `δ` of §3.3.1).
    pub extract: ExtractConfig,
    pub seed: u64,
}

impl ScenarioConfig {
    /// CPU experiments: Magnifier-grade features, generous flows.
    pub fn cpu(seed: u64) -> Self {
        Self {
            feature_set: FeatureSet::Magnifier,
            train_flows: 700,
            eval_flows: 280,
            attack_flows: 160,
            window_secs: 20.0,
            extract: ExtractConfig {
                pkt_threshold: 16,
                timeout_ns: 2_000_000_000,
                feature_set: FeatureSet::Magnifier,
                log_compress: true,
            },
            seed,
        }
    }

    /// Testbed experiments: the 13 switch features only.
    pub fn testbed(seed: u64) -> Self {
        Self {
            feature_set: FeatureSet::SwitchFl,
            train_flows: 700,
            eval_flows: 280,
            attack_flows: 160,
            window_secs: 20.0,
            extract: ExtractConfig {
                pkt_threshold: 8,
                timeout_ns: 2_000_000_000,
                feature_set: FeatureSet::SwitchFl,
                log_compress: true,
            },
            seed,
        }
    }
}

/// One attack's full experimental setting.
pub struct Scenario {
    pub attack: Attack,
    /// Benign-only training samples.
    pub train: LabeledFlows,
    /// Validation samples (benign + 20 % attack).
    pub val: LabeledFlows,
    /// Test samples (benign + 20 % attack).
    pub test: LabeledFlows,
    /// The raw benign+attack test trace for switch replay.
    pub test_trace: Trace,
    /// Attack-only flow samples (poisoning source).
    pub attack_flows: LabeledFlows,
    /// PL features of benign flows' first packets (early-model training).
    pub benign_first_pl: Dataset,
}

/// Black-box adversarial manipulations of the evaluation traffic
/// (paper Tables 2–3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttackTransform {
    /// Unmodified attack traffic.
    None,
    /// Rate dilution: stretch attack inter-packet delays by this factor
    /// (the paper's "1/100 rate" is `LowRate(100.0)`).
    LowRate(f64),
    /// Benign blending at 1:`ratio` attack:padding packets.
    Evasion(u32),
}

/// Builds the scenario for one attack.
pub fn build(attack: Attack, cfg: &ScenarioConfig) -> Scenario {
    build_adv(attack, cfg, AttackTransform::None, 0.0)
}

/// Builds an adversarial scenario: `transform` manipulates the attack
/// traffic in validation/test, and `poison_frac` of the *training set* is
/// silently replaced with attack samples presented as benign
/// (paper Table 2's poisoning).
pub fn build_adv(
    attack: Attack,
    cfg: &ScenarioConfig,
    transform: AttackTransform,
    poison_frac: f64,
) -> Scenario {
    // Independent deterministic streams per role.
    let mut rng_train = Rng::seed_from_u64(cfg.seed ^ 0x1111);
    let mut rng_val = Rng::seed_from_u64(cfg.seed ^ 0x2222);
    let mut rng_test = Rng::seed_from_u64(cfg.seed ^ 0x3333);
    let mut rng_atk_v = Rng::seed_from_u64(cfg.seed ^ 0x4444);
    let mut rng_atk_t = Rng::seed_from_u64(cfg.seed ^ 0x5555);

    let train_trace = benign_trace(cfg.train_flows, cfg.window_secs, &mut rng_train);
    let val_benign = benign_trace(cfg.eval_flows, cfg.window_secs, &mut rng_val);
    let test_benign = benign_trace(cfg.eval_flows, cfg.window_secs, &mut rng_test);
    let mut val_attack = attack.trace(cfg.attack_flows, cfg.window_secs, &mut rng_atk_v);
    let mut test_attack = attack.trace(cfg.attack_flows, cfg.window_secs, &mut rng_atk_t);
    match transform {
        AttackTransform::None => {}
        AttackTransform::LowRate(f) => {
            val_attack = iguard_synth::adversarial::low_rate(&val_attack, f);
            test_attack = iguard_synth::adversarial::low_rate(&test_attack, f);
        }
        AttackTransform::Evasion(ratio) => {
            val_attack =
                iguard_synth::adversarial::evasion_blend(&val_attack, ratio, &mut rng_atk_v);
            test_attack =
                iguard_synth::adversarial::evasion_blend(&test_attack, ratio, &mut rng_atk_t);
        }
    }

    let mut train = extract_flows(&train_trace, &cfg.extract);
    if poison_frac > 0.0 {
        let mut rng_poison = Rng::seed_from_u64(cfg.seed ^ 0x6666);
        let poison_src = extract_flows(
            &attack.trace(cfg.attack_flows, cfg.window_secs, &mut rng_poison),
            &cfg.extract,
        );
        let poisoned = iguard_synth::adversarial::poison_training_set(
            &train.features,
            &poison_src.features,
            poison_frac,
            &mut rng_poison,
        );
        // Poison samples are *presented* as benign to every trainer.
        train = LabeledFlows { labels: vec![false; poisoned.rows()], features: poisoned };
    }
    let mut val = extract_flows(&Trace::merge(vec![val_benign, val_attack.clone()]), &cfg.extract);
    let test_trace = Trace::merge(vec![test_benign, test_attack]);
    let mut test = extract_flows(&test_trace, &cfg.extract);
    // The paper adds 20 % attack traffic to the evaluation sets.
    val.cap_malicious_fraction(0.2);
    test.cap_malicious_fraction(0.2);
    let attack_flows = extract_flows(&val_attack, &cfg.extract);

    let benign_first_pl = first_packet_pl(&train_trace);

    Scenario { attack, train, val, test, test_trace, attack_flows, benign_first_pl }
}

/// PL features of the first packet of every flow in a trace.
pub fn first_packet_pl(trace: &Trace) -> Dataset {
    use std::collections::HashSet;
    let mut seen = HashSet::new();
    let mut out = Dataset::default();
    for p in &trace.packets {
        if seen.insert(p.five.canonical()) {
            out.push_row(&packet_level_features(p));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_respects_protocol() {
        let cfg = ScenarioConfig {
            train_flows: 60,
            eval_flows: 40,
            attack_flows: 30,
            ..ScenarioConfig::testbed(1)
        };
        let s = build(Attack::Mirai, &cfg);
        // Benign-only training.
        assert!(s.train.labels.iter().all(|&l| !l));
        assert!(!s.train.is_empty());
        // ~20 % malicious in val/test.
        for (name, set) in [("val", &s.val), ("test", &s.test)] {
            let frac = set.labels.iter().filter(|&&l| l).count() as f64 / set.len() as f64;
            assert!((0.1..=0.25).contains(&frac), "{name} malicious fraction {frac}");
        }
        assert!(!s.benign_first_pl.is_empty());
        assert_eq!(s.benign_first_pl.cols(), 4);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let cfg = ScenarioConfig {
            train_flows: 30,
            eval_flows: 20,
            attack_flows: 15,
            ..ScenarioConfig::cpu(9)
        };
        let a = build(Attack::UdpDdos, &cfg);
        let b = build(Attack::UdpDdos, &cfg);
        assert_eq!(a.train.features, b.train.features);
        assert_eq!(a.test.labels, b.test.labels);
    }

    #[test]
    fn first_packet_pl_one_per_flow() {
        let mut rng = Rng::seed_from_u64(2);
        let t = benign_trace(25, 2.0, &mut rng);
        let pl = first_packet_pl(&t);
        let distinct: std::collections::HashSet<_> =
            t.packets.iter().map(|p| p.five.canonical()).collect();
        assert_eq!(pl.rows(), distinct.len());
    }
}
