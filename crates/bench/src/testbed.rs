//! Testbed experiments (paper §4.2): iGuard vs iForest deployed as
//! whitelist rules on the emulated switch — detection (Figs. 6 and 9),
//! resources (Table 1), adversarial robustness (Tables 2–3), rule
//! consistency (§3.2.3) and throughput/latency (App. B.1).

use iguard_runtime::rng::Rng;

use iguard_core::early::EarlyModel;
use iguard_core::forest::{feature_bounds, IGuardConfig, IGuardForest};
use iguard_core::rules::{RuleGenError, RuleSet};
use iguard_core::teacher::DetectorTeacher;
use iguard_iforest::{IsolationForest, IsolationForestConfig};
use iguard_metrics::{consistency, DetectionSummary};
use iguard_models::detector::AnomalyDetector;
use iguard_models::magnifier::{Magnifier, MagnifierConfig};
use iguard_switch::controller::{Controller, ControllerConfig};
use iguard_switch::pipeline::{Pipeline, PipelineConfig};
use iguard_switch::replay::{replay, ControlPlaneModel, ReplayConfig, ReplayReport};
use iguard_switch::resources::{ResourceModel, ResourceUsage};
use iguard_switch::tcam::{compile_ruleset, FieldSpec, RangeTable};
use iguard_synth::attacks::Attack;

use crate::cpu::Effort;
use crate::data::{self, AttackTransform, Scenario, ScenarioConfig};
use crate::tune::best_threshold;

/// Region budget for rule compilation.
const MAX_REGIONS: usize = 600_000;

/// One attack's testbed comparison.
#[derive(Clone, Debug)]
pub struct TestbedResult {
    pub attack: Attack,
    pub iforest: DetectionSummary,
    pub iguard: DetectionSummary,
    pub iforest_usage: ResourceUsage,
    pub iguard_usage: ResourceUsage,
    /// Rule/forest agreement on the test set (paper reports 0.992–0.996).
    pub consistency: f64,
    /// Whitelist rule counts (post-merge) for both models.
    pub iforest_rules: usize,
    pub iguard_rules: usize,
    /// Replay of the test trace through the iGuard pipeline.
    pub iguard_replay: ReplayReport,
}

/// 16-bit fixed-point encodings sized to the observed feature bounds.
pub fn field_specs_for(bounds: &[(f32, f32)]) -> Vec<FieldSpec> {
    bounds
        .iter()
        .map(|&(_, hi)| {
            let hi = hi.max(1e-6);
            FieldSpec::new(16, (65_535.0 / hi).min(65_535.0))
        })
        .collect()
}

/// Compiles a conventional iForest into rules, backing off to smaller
/// forests if the decomposition exceeds the region budget (a deployment
/// would do the same: the rule table must fit the switch).
pub fn iforest_rules_with_backoff(
    train: &iguard_runtime::Dataset,
    bounds: &[(f32, f32)],
    seed: u64,
) -> (IsolationForest, RuleSet) {
    // Switch-deployable baseline sizes (HorusEye-scale).
    let ladder = [(6usize, 48usize), (5, 32), (4, 32), (3, 16)];
    for (i, &(t, psi)) in ladder.iter().enumerate() {
        let cfg = IsolationForestConfig { n_trees: t, subsample: psi, contamination: 0.1 };
        let mut rng = Rng::seed_from_u64(seed ^ ((i as u64) << 12));
        let forest = IsolationForest::fit(train, &cfg, &mut rng);
        match RuleSet::from_iforest(&forest, bounds, MAX_REGIONS) {
            Ok(rules) => return (forest, rules),
            Err(RuleGenError::TooManyRegions { .. }) => continue,
            Err(e @ RuleGenError::EmptyTrainingSet) => {
                panic!("baseline compile failed: {e}")
            }
        }
    }
    panic!("even the smallest baseline forest exceeded the region budget");
}

/// Everything trained for one scenario deployment.
pub struct Deployment {
    pub iguard_forest: IGuardForest,
    pub iguard_rules: RuleSet,
    pub iforest: IsolationForest,
    pub iforest_rules: RuleSet,
    pub iforest_threshold: f64,
    pub early: EarlyModel,
    pub fl_specs: Vec<FieldSpec>,
}

/// Trains both deployments (teacher → iGuard → rules; baseline → rules;
/// early-packet model) for a scenario.
pub fn train_deployment(s: &Scenario, effort: Effort, seed: u64) -> Deployment {
    // Teacher: the custom asymmetric autoencoder of §4.2 (13 features —
    // the 2-D statistics Magnifier uses on the CPU are not extractable).
    let mag_cfg = MagnifierConfig {
        epochs: match effort {
            Effort::Quick => 60,
            Effort::Full => 150,
        },
        ..Default::default()
    };
    let mut rng = Rng::seed_from_u64(seed ^ 0x7E57);
    let mut teacher_model = Magnifier::fit(&s.train.features, &mag_cfg, &mut rng);
    let val_scores = teacher_model.scores(&s.val.features);
    let (thr, _) = best_threshold(&val_scores, &s.val.labels);
    teacher_model.set_threshold(thr);

    // iGuard student. Larger forests compile to fragmented rule tables in
    // 13-D; back off down the ladder until the table fits the region
    // budget (a deployment would do the same — the rules must fit the
    // switch).
    let ladder: &[(usize, usize)] = match effort {
        Effort::Quick => &[(9, 128), (7, 64), (5, 64)],
        Effort::Full => &[(15, 256), (11, 128), (9, 128), (7, 64)],
    };
    let teacher = DetectorTeacher(teacher_model);
    let mut chosen: Option<(IGuardForest, RuleSet)> = None;
    for &(t, psi) in ladder {
        let ig_cfg =
            IGuardConfig { n_trees: t, subsample: psi, k_augment: 64, ..Default::default() };
        let mut forest = IGuardForest::fit(&s.train.features, &teacher, &ig_cfg, &mut rng);
        forest.distill(&s.train.features, &teacher, ig_cfg.k_augment, &mut rng);
        // Calibrate the vote threshold on validation (the paper's grid
        // search over T plays this role).
        let val_scores = forest.scores(&s.val.features);
        let (vote_thr, _) = best_threshold(&val_scores, &s.val.labels);
        forest.set_vote_threshold(vote_thr);
        match RuleSet::from_iguard(&forest, MAX_REGIONS) {
            Ok(rules) => {
                chosen = Some((forest, rules));
                break;
            }
            Err(RuleGenError::TooManyRegions { .. }) => continue,
            Err(e @ RuleGenError::EmptyTrainingSet) => {
                panic!("iGuard compile failed: {e}")
            }
        }
    }
    let (forest, iguard_rules) =
        chosen.expect("even the smallest iGuard forest exceeded the region budget");

    // Baseline.
    let bounds = feature_bounds(&s.train.features);
    let (mut iforest, iforest_rules) = iforest_rules_with_backoff(&s.train.features, &bounds, seed);
    let val_scores = iforest.scores(&s.val.features);
    let (if_thr, _) = best_threshold(&val_scores, &s.val.labels);
    iforest.set_threshold(if_thr);

    // Early-packet PL model.
    let pl_cfg = IsolationForestConfig { n_trees: 10, subsample: 64, contamination: 0.05 };
    let early = EarlyModel::train(&s.benign_first_pl, &pl_cfg, MAX_REGIONS, &mut rng)
        .expect("PL rules within budget");

    let fl_specs = field_specs_for(&iguard_rules.bounds);
    Deployment {
        iguard_forest: forest,
        iguard_rules,
        iforest,
        iforest_rules,
        iforest_threshold: if_thr,
        early,
        fl_specs,
    }
}

/// Flow-level detection summaries for both deployed rule tables.
pub fn summaries(s: &Scenario, d: &Deployment) -> (DetectionSummary, DetectionSummary) {
    // The switch enforces the *rules*; scores for the AUCs come from the
    // underlying models (vote fraction / anomaly score).
    let ig_pred = d.iguard_rules.predictions(&s.test.features);
    let ig_scores = d.iguard_forest.scores(&s.test.features);
    let iguard = DetectionSummary::compute(&s.test.labels, &ig_pred, &ig_scores);

    let if_scores = d.iforest.scores(&s.test.features);
    let if_pred: Vec<bool> = if_scores.iter().map(|&v| v > d.iforest_threshold).collect();
    let iforest = DetectionSummary::compute(&s.test.labels, &if_pred, &if_scores);
    (iforest, iguard)
}

/// Resource usage of a deployment (Table 1).
pub fn resources(d: &Deployment, flow_slots: usize) -> (ResourceUsage, ResourceUsage) {
    let flow_table =
        iguard_flow::table::FlowTableConfig { slots_per_table: flow_slots, ..Default::default() };
    let pl_specs = vec![
        FieldSpec::new(16, 1.0), // dst port
        FieldSpec::new(8, 1.0),  // proto
        FieldSpec::new(16, 1.0), // pkt len
        FieldSpec::new(8, 1.0),  // ttl
    ];
    let ig_fl = compile_ruleset(&d.iguard_rules, &d.fl_specs);
    let ig_pl = compile_ruleset(&d.early.rules, &pl_specs);
    let iguard = ResourceModel::for_deployment(&ig_fl, &ig_pl, flow_table, 4096).usage();

    let if_specs = field_specs_for(&d.iforest_rules.bounds);
    let if_fl = compile_ruleset(&d.iforest_rules, &if_specs);
    let empty_pl = RangeTable::new(vec![16, 8, 16, 8]);
    let iforest = ResourceModel::for_deployment(&if_fl, &empty_pl, flow_table, 4096).usage();
    (iforest, iguard)
}

/// Replays the test trace through the iGuard pipeline.
pub fn replay_iguard(s: &Scenario, d: &Deployment, cp: ControlPlaneModel) -> ReplayReport {
    let mut pipeline = Pipeline::new(
        PipelineConfig { log_compress: true, ..Default::default() },
        d.iguard_rules.clone(),
        d.early.rules.clone(),
    );
    let mut controller = Controller::new(ControllerConfig::default());
    let cfg = ReplayConfig { control_plane: cp, ..Default::default() };
    replay(&s.test_trace, &mut pipeline, &mut controller, &cfg)
}

/// Runs the full testbed comparison (Fig. 6/9 + Table 1 row) for one
/// attack.
pub fn run_attack(attack: Attack, seed: u64, effort: Effort) -> TestbedResult {
    let scenario = data::build(attack, &ScenarioConfig::testbed(seed));
    let d = train_deployment(&scenario, effort, seed);
    let (iforest, iguard) = summaries(&scenario, &d);
    let (iforest_usage, iguard_usage) = resources(&d, 16_384);
    let rule_pred = d.iguard_rules.predictions(&scenario.test.features);
    let forest_pred = d.iguard_forest.predictions(&scenario.test.features);
    let c = consistency(&rule_pred, &forest_pred);
    let iguard_replay = replay_iguard(&scenario, &d, ControlPlaneModel::iguard());
    TestbedResult {
        attack,
        iforest,
        iguard,
        iforest_usage,
        iguard_usage,
        consistency: c,
        iforest_rules: d.iforest_rules.len(),
        iguard_rules: d.iguard_rules.len(),
        iguard_replay,
    }
}

/// Adversarial testbed evaluation (Tables 2–3): same pipeline, transformed
/// traffic and/or poisoned training.
pub fn run_adversarial(
    attack: Attack,
    transform: AttackTransform,
    poison_frac: f64,
    seed: u64,
    effort: Effort,
) -> (DetectionSummary, DetectionSummary) {
    let scenario = data::build_adv(attack, &ScenarioConfig::testbed(seed), transform, poison_frac);
    let d = train_deployment(&scenario, effort, seed);
    summaries(&scenario, &d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_ddos_testbed_shape() {
        let r = run_attack(Attack::UdpDdos, 3, Effort::Quick);
        assert!(
            r.iguard.macro_f1 > r.iforest.macro_f1,
            "iGuard {:.3} vs iForest {:.3}",
            r.iguard.macro_f1,
            r.iforest.macro_f1
        );
        // §3.2.3 consistency band (we allow a slightly wider floor).
        assert!(r.consistency >= 0.97, "consistency {:.4}", r.consistency);
        // Table 1: iGuard's extra stopping criterion shrinks the rule table.
        assert!(
            r.iguard_usage.tcam <= r.iforest_usage.tcam * 1.5,
            "iGuard TCAM {:.4} should not dwarf baseline {:.4}",
            r.iguard_usage.tcam,
            r.iforest_usage.tcam
        );
        assert!(r.iguard_replay.packets > 0);
    }

    #[test]
    fn field_specs_fit_bounds() {
        let specs = field_specs_for(&[(0.0, 100.0), (0.0, 1e6)]);
        assert_eq!(specs[0].quantize(100.0), 65_535);
        assert!(specs[1].quantize(1e6) <= 65_535);
    }
}
