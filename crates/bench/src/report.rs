//! Plain-text table rendering for the `figures` binary.

/// Renders an ASCII table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let sep: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells.iter().zip(&widths).map(|(c, w)| format!(" {c:<w$} ")).collect::<Vec<_>>().join("|")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats a metric with three decimals.
pub fn m3(v: f64) -> String {
    format!("{v:.3}")
}

/// A sparkline-ish histogram row for terminal output.
pub fn histogram_row(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["attack", "f1"],
            &[vec!["Mirai".into(), "0.91".into()], vec!["UDP DDoS".into(), "0.876".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("attack"));
        assert!(lines[2].starts_with(" Mirai"));
    }

    #[test]
    fn pct_and_m3_format() {
        assert_eq!(pct(0.1334), "13.34%");
        assert_eq!(m3(0.87654), "0.877");
    }

    #[test]
    fn histogram_row_scales() {
        let h = histogram_row(&[0.0, 0.5, 1.0]);
        assert_eq!(h.chars().count(), 3);
        assert!(h.ends_with('█'));
    }
}
