//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! figures <artefact> [--full] [--seed N]
//!   artefacts: fig2 fig7 fig5 fig8 fig6 fig9 fig10
//!              table1 table2 table3 consistency b1 b2 all
//! ```
//!
//! Numbers are produced by the same library code the tests exercise; the
//! tables print the same rows/series the paper reports. Shapes (who wins,
//! by roughly what factor) are the reproduction target — absolute values
//! depend on the synthetic traffic substitution documented in DESIGN.md.

use iguard_bench::cpu::{self, Effort};
use iguard_bench::data::AttackTransform;
use iguard_bench::report::{histogram_row, m3, pct, table};
use iguard_bench::{candidates, pathlen, per_attack_parallel, testbed};
use iguard_switch::replay::ControlPlaneModel;
use iguard_synth::attacks::{Attack, ALL_ATTACKS};

/// Fig. 2 uses these five attacks; Fig. 7 the other ten.
const FIG2_ATTACKS: [Attack; 5] =
    [Attack::Aidra, Attack::Mirai, Attack::Bashlite, Attack::UdpDdos, Attack::OsScan];

fn fig7_attacks() -> Vec<Attack> {
    ALL_ATTACKS.iter().copied().filter(|a| !FIG2_ATTACKS.contains(a)).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let artefact = args.first().map(String::as_str).unwrap_or("all");
    let effort = if args.iter().any(|a| a == "--full") { Effort::Full } else { Effort::Quick };
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);

    match artefact {
        "fig2" => path_overlap("Figure 2", &FIG2_ATTACKS, seed),
        "fig7" => path_overlap("Figure 7", &fig7_attacks(), seed),
        "fig5" => cpu_comparison("Figure 5", &FIG2_ATTACKS, seed, effort),
        "fig8" => cpu_comparison("Figure 8", &fig7_attacks(), seed, effort),
        "fig6" => testbed_comparison("Figure 6", &FIG2_ATTACKS, seed, effort),
        "fig9" => testbed_comparison("Figure 9", &fig7_attacks(), seed, effort),
        "fig10" => fig10(seed, effort),
        "table1" => table1(seed, effort),
        "table2" => table2(seed, effort),
        "table3" => table3(seed, effort),
        "consistency" => consistency_check(seed, effort),
        "b1" => throughput_latency(seed, effort),
        "b2" => digest_overhead(),
        "ablations" => ablations(seed),
        "all" => {
            path_overlap("Figure 2", &FIG2_ATTACKS, seed);
            path_overlap("Figure 7", &fig7_attacks(), seed);
            cpu_comparison("Figure 5", &FIG2_ATTACKS, seed, effort);
            cpu_comparison("Figure 8", &fig7_attacks(), seed, effort);
            testbed_comparison("Figure 6", &FIG2_ATTACKS, seed, effort);
            testbed_comparison("Figure 9", &fig7_attacks(), seed, effort);
            fig10(seed, effort);
            table1(seed, effort);
            table2(seed, effort);
            table3(seed, effort);
            consistency_check(seed, effort);
            throughput_latency(seed, effort);
            digest_overhead();
            ablations(seed);
        }
        other => {
            eprintln!("unknown artefact `{other}`");
            eprintln!(
                "usage: figures <fig2|fig5|fig6|fig7|fig8|fig9|fig10|table1|table2|table3|consistency|b1|b2|all> [--full] [--seed N]"
            );
            std::process::exit(2);
        }
    }
}

/// Figs. 2 / 7: expected-path-length histograms + overlap coefficient.
fn path_overlap(title: &str, attacks: &[Attack], seed: u64) {
    println!("== {title}: iForest expected-path-length overlap (§3.1) ==");
    let results = per_attack_parallel(attacks, |a| pathlen::run_attack(a, seed, 24));
    let mut rows = Vec::new();
    for r in &results {
        rows.push(vec![
            r.attack.name().to_string(),
            histogram_row(&r.benign),
            histogram_row(&r.malicious),
            m3(r.overlap),
            m3(r.containment),
        ]);
    }
    println!(
        "{}",
        table(
            &["attack", "benign E[h] hist", "malicious E[h] hist", "overlap", "containment"],
            &rows
        )
    );
    let mean: f64 = results.iter().map(|r| r.overlap).sum::<f64>() / results.len() as f64;
    let meanc: f64 = results.iter().map(|r| r.containment).sum::<f64>() / results.len() as f64;
    println!("mean overlap {mean:.3}; mean containment {meanc:.3}");
    println!("(paper: \"significant overlap\" — malicious E[h] inside the benign range)\n");
}

/// Figs. 5 / 8: CPU detection comparison.
fn cpu_comparison(title: &str, attacks: &[Attack], seed: u64, effort: Effort) {
    println!("== {title}: CPU detection — iForest vs Magnifier vs iGuard (§4.1) ==");
    let results = per_attack_parallel(attacks, |a| cpu::run_attack(a, seed, effort));
    let mut rows = Vec::new();
    let mut avg = [[0.0f64; 3]; 3];
    for r in &results {
        rows.push(vec![
            r.attack.name().to_string(),
            m3(r.iforest.macro_f1),
            m3(r.iforest.pr_auc),
            m3(r.iforest.roc_auc),
            m3(r.magnifier.macro_f1),
            m3(r.magnifier.pr_auc),
            m3(r.magnifier.roc_auc),
            m3(r.iguard.macro_f1),
            m3(r.iguard.pr_auc),
            m3(r.iguard.roc_auc),
        ]);
        for (i, s) in [r.iforest, r.magnifier, r.iguard].iter().enumerate() {
            avg[i][0] += s.macro_f1;
            avg[i][1] += s.pr_auc;
            avg[i][2] += s.roc_auc;
        }
    }
    let n = results.len() as f64;
    rows.push(vec![
        "AVERAGE".into(),
        m3(avg[0][0] / n),
        m3(avg[0][1] / n),
        m3(avg[0][2] / n),
        m3(avg[1][0] / n),
        m3(avg[1][1] / n),
        m3(avg[1][2] / n),
        m3(avg[2][0] / n),
        m3(avg[2][1] / n),
        m3(avg[2][2] / n),
    ]);
    println!(
        "{}",
        table(
            &[
                "attack", "iF F1", "iF PR", "iF ROC", "Mag F1", "Mag PR", "Mag ROC", "iG F1",
                "iG PR", "iG ROC"
            ],
            &rows
        )
    );
    println!("paper shape: iGuard ≈ Magnifier ≥ iForest (improvements 1.8–62.9% F1)\n");
}

/// Figs. 6 / 9: testbed comparison on the emulated switch.
fn testbed_comparison(title: &str, attacks: &[Attack], seed: u64, effort: Effort) {
    println!("== {title}: testbed (emulated switch) — iForest vs iGuard (§4.2.1) ==");
    let results = per_attack_parallel(attacks, |a| testbed::run_attack(a, seed, effort));
    let mut rows = Vec::new();
    let mut avg = [[0.0f64; 3]; 2];
    for r in &results {
        rows.push(vec![
            r.attack.name().to_string(),
            m3(r.iforest.macro_f1),
            m3(r.iforest.roc_auc),
            m3(r.iforest.pr_auc),
            m3(r.iguard.macro_f1),
            m3(r.iguard.roc_auc),
            m3(r.iguard.pr_auc),
            format!("{}", r.iguard_rules),
            format!("{}", r.iforest_rules),
        ]);
        for (i, s) in [r.iforest, r.iguard].iter().enumerate() {
            avg[i][0] += s.macro_f1;
            avg[i][1] += s.roc_auc;
            avg[i][2] += s.pr_auc;
        }
    }
    let n = results.len() as f64;
    rows.push(vec![
        "AVERAGE".into(),
        m3(avg[0][0] / n),
        m3(avg[0][1] / n),
        m3(avg[0][2] / n),
        m3(avg[1][0] / n),
        m3(avg[1][1] / n),
        m3(avg[1][2] / n),
        String::new(),
        String::new(),
    ]);
    println!(
        "{}",
        table(
            &[
                "attack", "iF F1", "iF ROC", "iF PR", "iG F1", "iG ROC", "iG PR", "iG rules",
                "iF rules"
            ],
            &rows
        )
    );
    println!("paper shape: iGuard improves F1 by 5–48.3% with a smaller rule table\n");
}

/// Fig. 10: candidate-teacher study.
fn fig10(seed: u64, effort: Effort) {
    println!("== Figure 10: candidate teachers, macro F1 on 15 attacks (App. A) ==");
    let results = per_attack_parallel(&ALL_ATTACKS, |a| candidates::run_attack(a, seed, effort));
    let mut rows = Vec::new();
    let mut avg = [0.0f64; 6];
    for r in &results {
        let mut row = vec![r.attack.name().to_string()];
        for (i, v) in r.macro_f1.iter().enumerate() {
            row.push(m3(*v));
            avg[i] += v;
        }
        rows.push(row);
    }
    let n = results.len() as f64;
    let mut last = vec!["AVERAGE".to_string()];
    for v in avg {
        last.push(m3(v / n));
    }
    rows.push(last);
    let mut headers = vec!["attack"];
    headers.extend(candidates::CANDIDATES);
    println!("{}", table(&headers, &rows));
    println!("paper shape: Magnifier wins on average → chosen as iGuard's teacher\n");
}

/// Table 1: average switch resource consumption across the 15 attacks.
fn table1(seed: u64, effort: Effort) {
    println!("== Table 1: switch resources, averaged over 15 attacks (§4.2.2) ==");
    let results = per_attack_parallel(&ALL_ATTACKS, |a| testbed::run_attack(a, seed, effort));
    let mut acc = [[0.0f64; 4]; 2];
    for r in &results {
        for (i, u) in [r.iforest_usage, r.iguard_usage].iter().enumerate() {
            acc[i][0] += u.tcam;
            acc[i][1] += u.sram;
            acc[i][2] += u.salu;
            acc[i][3] += u.vliw;
        }
    }
    let n = results.len() as f64;
    let rows = vec![
        vec![
            "iForest [15]".to_string(),
            pct(acc[0][0] / n),
            pct(acc[0][1] / n),
            pct(acc[0][2] / n),
            pct(acc[0][3] / n),
            "12".into(),
        ],
        vec![
            "iGuard".to_string(),
            pct(acc[1][0] / n),
            pct(acc[1][1] / n),
            pct(acc[1][2] / n),
            pct(acc[1][3] / n),
            "12".into(),
        ],
    ];
    println!("{}", table(&["model", "TCAM", "SRAM", "sALUs", "VLIWs", "Stages"], &rows));
    println!("paper: iForest 16.47/11.55/19.59/7.75 vs iGuard 13.34/11.51/19.62/7.79 — iGuard's");
    println!("extra stopping criterion shrinks the whitelist, cutting TCAM in particular\n");
}

fn adv_rows(
    label: &str,
    attack: Attack,
    transform: AttackTransform,
    poison: f64,
    seed: u64,
    effort: Effort,
) -> Vec<Vec<String>> {
    let (iforest, iguard) = testbed::run_adversarial(attack, transform, poison, seed, effort);
    vec![
        vec![
            label.to_string(),
            "iForest [15]".into(),
            format!("{}/{}/{}", pct(iforest.macro_f1), pct(iforest.roc_auc), pct(iforest.pr_auc)),
        ],
        vec![
            String::new(),
            "iGuard".into(),
            format!("{}/{}/{}", pct(iguard.macro_f1), pct(iguard.roc_auc), pct(iguard.pr_auc)),
        ],
    ]
}

/// Table 2: low-rate and poisoning adversaries.
fn table2(seed: u64, effort: Effort) {
    println!("== Table 2: black-box low-rate & poisoning adversaries (App.) ==");
    let mut rows = Vec::new();
    rows.extend(adv_rows(
        "Low rate (UDPDDoS 1/100)",
        Attack::UdpDdos,
        AttackTransform::LowRate(100.0),
        0.0,
        seed,
        effort,
    ));
    rows.extend(adv_rows(
        "Low rate (TCPDDoS 1/100)",
        Attack::TcpDdos,
        AttackTransform::LowRate(100.0),
        0.0,
        seed,
        effort,
    ));
    rows.extend(adv_rows(
        "Poison (Mirai 2%)",
        Attack::Mirai,
        AttackTransform::None,
        0.02,
        seed,
        effort,
    ));
    rows.extend(adv_rows(
        "Poison (Mirai 10%)",
        Attack::Mirai,
        AttackTransform::None,
        0.10,
        seed,
        effort,
    ));
    println!("{}", table(&["scenario", "model", "macroF1/ROCAUC/PRAUC"], &rows));
    println!("paper shape: iGuard degrades far less than iForest (improvements 22–57%)\n");
}

/// Table 3: evasion-by-blending adversaries.
fn table3(seed: u64, effort: Effort) {
    println!("== Table 3: black-box evasion (benign blending) adversaries (App.) ==");
    let mut rows = Vec::new();
    rows.extend(adv_rows(
        "Evasion (UDPDDoS 1:2)",
        Attack::UdpDdos,
        AttackTransform::Evasion(2),
        0.0,
        seed,
        effort,
    ));
    rows.extend(adv_rows(
        "Evasion (TCPDDoS 1:2)",
        Attack::TcpDdos,
        AttackTransform::Evasion(2),
        0.0,
        seed,
        effort,
    ));
    rows.extend(adv_rows(
        "Evasion (UDPDDoS 1:4)",
        Attack::UdpDdos,
        AttackTransform::Evasion(4),
        0.0,
        seed,
        effort,
    ));
    rows.extend(adv_rows(
        "Evasion (TCPDDoS 1:4)",
        Attack::TcpDdos,
        AttackTransform::Evasion(4),
        0.0,
        seed,
        effort,
    ));
    println!("{}", table(&["scenario", "model", "macroF1/ROCAUC/PRAUC"], &rows));
    println!("paper shape: iGuard retains detection under blending (improvements 30–80%)\n");
}

/// §3.2.3: whitelist-rule consistency with the distilled forest.
fn consistency_check(seed: u64, effort: Effort) {
    println!("== §3.2.3: rule/forest consistency C across 15 attacks ==");
    let results = per_attack_parallel(&ALL_ATTACKS, |a| testbed::run_attack(a, seed, effort));
    let mut rows = Vec::new();
    let (mut lo, mut hi, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
    for r in &results {
        rows.push(vec![r.attack.name().to_string(), format!("{:.4}", r.consistency)]);
        lo = lo.min(r.consistency);
        hi = hi.max(r.consistency);
        sum += r.consistency;
    }
    println!("{}", table(&["attack", "consistency C"], &rows));
    println!(
        "range [{:.4}, {:.4}], mean {:.4}  (paper: C = 0.992–0.996)\n",
        lo,
        hi,
        sum / results.len() as f64
    );
}

/// App. B.1: throughput and per-packet latency.
fn throughput_latency(seed: u64, effort: Effort) {
    println!("== App. B.1: throughput & latency on the emulated 40 Gbps link ==");
    let results = per_attack_parallel(&ALL_ATTACKS, |a| {
        let scenario =
            iguard_bench::data::build(a, &iguard_bench::data::ScenarioConfig::testbed(seed));
        let d = testbed::train_deployment(&scenario, effort, seed);
        let ig = testbed::replay_iguard(&scenario, &d, ControlPlaneModel::iguard());
        let he =
            testbed::replay_iguard(&scenario, &d, ControlPlaneModel::control_plane_detection());
        (a, ig, he)
    });
    let mut rows = Vec::new();
    let (mut tput, mut lat, mut he_tput) = (0.0, 0.0, 0.0);
    for (a, ig, he) in &results {
        rows.push(vec![
            a.name().to_string(),
            format!("{:.2}", ig.throughput_gbps),
            format!("{:.2}", he.throughput_gbps),
            format!("{:.1}", ig.avg_latency_ns),
        ]);
        tput += ig.throughput_gbps;
        he_tput += he.throughput_gbps;
        lat += ig.avg_latency_ns;
    }
    let n = results.len() as f64;
    println!("{}", table(&["attack", "iGuard Gbps", "CP-detect Gbps", "iGuard latency ns"], &rows));
    println!(
        "average: iGuard {:.2} Gbps vs control-plane detection {:.2} Gbps ({:+.1}%), latency {:.1} ns",
        tput / n,
        he_tput / n,
        (tput / he_tput - 1.0) * 100.0,
        lat / n
    );
    println!("paper: 39.6 Gbps (+66.47% over HorusEye), 532.8 ns\n");
}

/// App. B.2: control-plane digest overhead.
/// DESIGN.md §5 ablations on a fixed scenario (UDP DDoS).
fn ablations(seed: u64) {
    use iguard_bench::ablation::{self, AblationPoint};
    let render = |title: &str, points: &[AblationPoint]| {
        println!("-- ablation: {title} (UDP DDoS) --");
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    m3(p.summary.macro_f1),
                    m3(p.summary.roc_auc),
                    m3(p.summary.pr_auc),
                    p.rules.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
                    if p.total_leaves > 0 { p.total_leaves.to_string() } else { "-".into() },
                ]
            })
            .collect();
        println!("{}", table(&["variant", "F1", "ROC", "PR", "rules", "leaves"], &rows));
    };
    println!("== Ablations (DESIGN.md §5) ==");
    render("guided vs unguided growth", &ablation::guidance(Attack::UdpDdos, seed));
    render("tau_split sweep", &ablation::tau_split(Attack::UdpDdos, seed));
    render("augmentation k sweep", &ablation::k_augment(Attack::UdpDdos, seed));
}

fn digest_overhead() {
    use iguard_switch::controller::{Controller, ControllerConfig};
    use iguard_switch::pipeline::{Digest, SeqDigest, DIGEST_BYTES_HORUSEYE, DIGEST_BYTES_IGUARD};
    println!("== App. B.2: control-plane digest overhead (50k digests / 30 s) ==");
    let run = |bytes: f64| -> f64 {
        let mut c = Controller::new(ControllerConfig { digest_bytes: bytes, ..Default::default() });
        for i in 0..50_000u32 {
            let five = iguard_flow::five_tuple::FiveTuple::new(i, 1, 1, 80, 6);
            let sd = SeqDigest { seq: i as u64, digest: Digest::new(five, false) };
            let _ = c.process_seq_digests(&[sd]);
        }
        c.overhead_kbps(30.0)
    };
    let ig = run(DIGEST_BYTES_IGUARD);
    let he = run(DIGEST_BYTES_HORUSEYE);
    let rows = vec![
        vec!["iGuard (13 B + 1 bit)".to_string(), format!("{ig:.1} KBps")],
        vec!["CP-detection (+~52 B features)".to_string(), format!("{he:.1} KBps")],
        vec!["ratio".to_string(), format!("{:.1}x", he / ig)],
    ];
    println!("{}", table(&["design", "overhead"], &rows));
    println!("paper: 21 KBps vs 110 KBps (5.2x)\n");
}
