//! The PR-6 bench reporter: runs the deployment pipeline end-to-end under
//! telemetry and writes a machine-readable `BENCH_PR6.json` — per-stage
//! wall-clock timings, rule counts, TCAM occupancy, flow-table pressure,
//! switch path counts, a shard sweep of the [`ShardedPipeline`] backend
//! (1/2/4/8 physical shards vs the serial `Pipeline`), a chaos sweep of
//! the fault-injected control loop (detection quality vs channel drop
//! rate, retry counts, recovery latency after a scripted outage), a
//! rule-index sweep (compiled first-match index vs linear scan, float and
//! TCAM paths, at 64/256/1024 rules), a replay-trace verdict-parity
//! check, an SoA replay comparison (columnar `Pipeline` vs per-packet
//! `ScalarPipeline` at one worker), and the full verified telemetry
//! snapshot.
//!
//! Three hard gates guard the hot-path claims: the indexed lookup must
//! return the *identical* verdict as the linear scan on every sampled key
//! (the run aborts on the first divergence), the indexed path must be
//! at least 2× faster than the linear scan at ≥256 rules, and the
//! columnar replay path must match the scalar oracle byte-for-byte while
//! being at least 2× faster in packets/sec at a single worker.
//!
//! Three sibling documents ride along: `BENCH_PR7.json` (the streaming
//! sketch sweep), `BENCH_PR8.json` (the online drift-adaptation loop —
//! drift detection, warm retrain, minimal rule diff, hitless transactional
//! swap, each behind its own hard gate), and `BENCH_PR9.json` (the
//! overload-resilience sweep: the four adversarial state-exhaustion canon
//! scenarios replayed through a deliberately starved flow table, with a
//! per-scenario scorecard — detection rate, benign-FP cost, per-flow
//! time-to-mitigation CDF, degraded-mode residency, digests shed — gated
//! on byte-identical fingerprints across a 1/2/8-shard × 1/2/8-worker
//! grid, observable degraded-mode entry/exit, bounded benign-FP inflation
//! while degraded, post-storm reconvergence to the fresh-pipeline
//! confusion matrix, and the unchanged PR-2 golden matrix on the
//! non-overloaded exact path), and `BENCH_PR10.json` (the phase-aware
//! classification sweep: per-phase whitelists consulted at intermediate
//! packet-count boundaries, scored as a detection-latency CDF — packets
//! seen before verdict, per deciding phase — against the single-shot
//! baseline on the same storm workloads, gated on byte-identical
//! shard × worker fingerprints with phases enabled, a phases-disabled
//! run matching the single-shot fingerprint exactly, strictly improved
//! pulse-wave median exposure, and nonzero state-exhaustion mitigation).
//!
//! Usage:
//!
//! ```text
//! bench_report [--smoke] [--seed N] [--out PATH] [--out-pr7 PATH] [--out-pr8 PATH]
//!              [--out-pr9 PATH] [--out-pr10 PATH]
//! ```
//!
//! `--smoke` runs one iteration of each stage (CI sanity); the default is
//! three, reported as min/mean/max. The run aborts if the final telemetry
//! snapshot fails its invariant checks — or if the shard sweep's replay
//! reports diverge across shard counts — so a broken counter or a
//! nondeterministic backend can never produce a plausible-looking
//! baseline file.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use iguard_core::drift::DriftConfig;
use iguard_core::early::EarlyModel;
use iguard_core::forest::{IGuardConfig, IGuardForest};
use iguard_core::phase::{train_phases, PhaseTrainConfig};
use iguard_core::rules::{Hypercube, RuleSet};
use iguard_core::teacher::OracleTeacher;
use iguard_flow::features::packet_level_features;
use iguard_flow::five_tuple::{FiveTuple, PROTO_TCP};
use iguard_flow::packet::{Packet, TcpFlags};
use iguard_flow::table::{FlowTableConfig, PhaseSchedule};
use iguard_iforest::IsolationForestConfig;
use iguard_runtime::rng::Rng;
use iguard_runtime::{ChannelKind, FaultPlan};
use iguard_switch::controller::{Controller, ControllerConfig};
use iguard_switch::data_plane::DataPlane;
use iguard_switch::data_plane::OverloadStats;
use iguard_switch::pipeline::{
    OverloadConfig, PacketVerdict, Pipeline, PipelineConfig, ProcessOutcome,
};
use iguard_switch::replay::replay_stream;
use iguard_switch::replay::{
    replay, replay_chaos, replay_chaos_traced, ChaosConfig, MitigationLog, MitigationRecord,
    ReplayConfig, ReplayReport,
};
use iguard_switch::resources::ResourceModel;
use iguard_switch::rule_index::RangeIndex;
use iguard_switch::ruleset::{canonical_entries, RulesetCounters, RulesetTxn};
use iguard_switch::sharded::{ShardedPipeline, ShardedPipelineConfig};
use iguard_switch::tcam::{compile_ruleset, quantize_key_into, FieldSpec, RangeEntry, RangeTable};
use iguard_switch::{SketchEviction, SketchedPipeline, SketchedPipelineConfig};
use iguard_synth::attacks::Attack;
use iguard_synth::benign::benign_trace;
use iguard_synth::scenarios::{Scenario, ALL_SCENARIOS};
use iguard_synth::streaming::{StreamingConfig, StreamingTrace};
use iguard_synth::trace::{extract_flows, ExtractConfig, Trace};
use iguard_telemetry::json;

/// Allocation-counting wrapper over the system allocator: the PR-7
/// streaming sweep asserts that the steady-state replay loop performs no
/// per-batch heap allocation (buffer-reuse audit). Counting is a single
/// relaxed atomic add, cheap enough to leave on for every stage.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

struct Args {
    smoke: bool,
    seed: u64,
    out: String,
    out_pr7: String,
    out_pr8: String,
    out_pr9: String,
    out_pr10: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seed: 7,
        out: "BENCH_PR6.json".into(),
        out_pr7: "BENCH_PR7.json".into(),
        out_pr8: "BENCH_PR8.json".into(),
        out_pr9: "BENCH_PR9.json".into(),
        out_pr10: "BENCH_PR10.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                args.seed = v.parse().expect("--seed must be an integer");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--out-pr7" => args.out_pr7 = it.next().expect("--out-pr7 needs a path"),
            "--out-pr8" => args.out_pr8 = it.next().expect("--out-pr8 needs a path"),
            "--out-pr9" => args.out_pr9 = it.next().expect("--out-pr9 needs a path"),
            "--out-pr10" => args.out_pr10 = it.next().expect("--out-pr10 needs a path"),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: bench_report [--smoke] [--seed N] [--out PATH] [--out-pr7 PATH] [--out-pr8 PATH] [--out-pr9 PATH] [--out-pr10 PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Min/mean/max wall-clock of a named stage across iterations.
struct StageStat {
    name: &'static str,
    iters: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl StageStat {
    fn new(name: &'static str) -> Self {
        Self { name, iters: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0 }
    }

    fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t = Instant::now();
        let r = f();
        let ns = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.iters += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        r
    }

    fn to_json(&self, indent: usize) -> String {
        let mut o = json::Object::new();
        o.u64("iters", self.iters)
            .f64("mean_ns", self.total_ns as f64 / self.iters.max(1) as f64)
            .u64("min_ns", self.min_ns)
            .u64("max_ns", self.max_ns);
        o.render(indent)
    }
}

/// 16-bit quantization specs scaled to a rule set's feature bounds — the
/// same compilation every deployment stage in this reporter uses.
fn specs_for(rules: &RuleSet) -> Vec<FieldSpec> {
    rules
        .bounds
        .iter()
        .map(|&(_, hi)| FieldSpec::new(16, (65_535.0 / hi.max(1e-6)).min(65_535.0)))
        .collect()
}

/// Everything one scenario iteration produces that the report consumes.
struct RunArtifacts {
    fl_rules: RuleSet,
    pl_rules: RuleSet,
    fl_tcam: RangeTable,
    pl_tcam: RangeTable,
    report: ReplayReport,
    pipeline: Pipeline,
}

fn run_scenario(seed: u64, stages: &mut [StageStat]) -> RunArtifacts {
    let [fit, distill, rulegen_fl, rulegen_pl, tcam_compile, replay_stage] = stages else {
        panic!("stage list out of sync");
    };
    let mut rng = Rng::seed_from_u64(seed);
    let cfg = ExtractConfig::default();
    let train_trace = benign_trace(300, 10.0, &mut rng);
    let train = extract_flows(&train_trace, &cfg);

    // A fixed oracle on IPD regularity (feature 10: std of inter-packet
    // delay) and oversized packets (feature 2: mean size) stands in for the
    // autoencoder teacher: flood tooling is machine-regular, benign jitter
    // is not. Deterministic and cheap, so the reporter benches the iGuard
    // machinery rather than NN training.
    let teacher = OracleTeacher(|x: &[f32]| x[10] < 0.0008 || x[2] > 1200.0);
    let ig = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 64, ..Default::default() };
    let mut forest = fit.time(|| IGuardForest::fit(&train.features, &teacher, &ig, &mut rng));
    distill.time(|| forest.distill(&train.features, &teacher, ig.k_augment, &mut rng));
    let fl_rules =
        rulegen_fl.time(|| RuleSet::from_iguard(&forest, 600_000).expect("FL rule budget"));

    // Early-packet model on first-packet PL features.
    let mut seen = std::collections::HashSet::new();
    let mut pl = iguard_runtime::Dataset::default();
    for p in &train_trace.packets {
        if seen.insert(p.five.canonical()) {
            pl.push_row(&packet_level_features(p));
        }
    }
    let early = rulegen_pl.time(|| {
        EarlyModel::train(
            &pl,
            &IsolationForestConfig { n_trees: 10, subsample: 64, contamination: 0.05 },
            600_000,
            &mut rng,
        )
        .expect("PL rules")
    });
    let pl_rules = early.rules;

    let fl_specs = specs_for(&fl_rules);
    let pl_specs = specs_for(&pl_rules);
    let (fl_tcam, pl_tcam) = tcam_compile
        .time(|| (compile_ruleset(&fl_rules, &fl_specs), compile_ruleset(&pl_rules, &pl_specs)));

    // Replay a benign + flood mix through the emulated switch.
    let benign = benign_trace(150, 8.0, &mut rng);
    let flood = Attack::UdpDdos.trace(60, 8.0, &mut rng);
    let trace = Trace::merge(vec![benign, flood]);
    let mut pipeline = Pipeline::new(
        PipelineConfig {
            flow_table: FlowTableConfig { pkt_threshold: 4, ..Default::default() },
            ..Default::default()
        },
        fl_rules.clone(),
        pl_rules.clone(),
    );
    let mut controller = Controller::new(ControllerConfig::default());
    let report = replay_stage
        .time(|| replay(&trace, &mut pipeline, &mut controller, &ReplayConfig::default()));

    RunArtifacts { fl_rules, pl_rules, fl_tcam, pl_tcam, report, pipeline }
}

/// Replay batch size used throughout the shard sweep (also the controller
/// feedback granularity — identical for the baseline and every shard
/// count, so the comparison is apples-to-apples).
const SWEEP_BATCH: usize = 8192;

/// One shard-sweep data point.
struct SweepPoint {
    shards: usize,
    min_ns: u64,
    mean_ns: f64,
    mpps: f64,
    imbalance: f64,
    report: ReplayReport,
    blacklist: Vec<iguard_flow::five_tuple::FiveTuple>,
}

/// Replays the same trace through the serial `Pipeline` and through
/// `ShardedPipeline` at 1/2/4/8 physical shards (workers pinned to the
/// shard count), timing each and checking that every sharded run produces
/// the same confusion matrix, digest count and blacklist. Returns
/// `(baseline_min_ns, baseline_report, points)`.
fn run_shard_sweep(
    seed: u64,
    iters: usize,
    fl_rules: &RuleSet,
    pl_rules: &RuleSet,
) -> (u64, ReplayReport, Vec<SweepPoint>) {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5EED_5EED);
    let benign = benign_trace(800, 20.0, &mut rng);
    let flood = Attack::UdpDdos.trace(250, 20.0, &mut rng);
    let trace = Trace::merge(vec![benign, flood]);
    let pipe_cfg =
        PipelineConfig::default().with_flow_table(FlowTableConfig::default().with_pkt_threshold(4));
    // Batched replay so the sharded backend amortises per-batch costs
    // (binning, scatter, worker dispatch); the serial baseline uses the
    // identical batch size for a fair comparison.
    let replay_cfg = ReplayConfig::default().with_batch_size(SWEEP_BATCH);

    let time_replay = |dp: &mut dyn DataPlane| -> (u64, ReplayReport) {
        let mut controller = Controller::new(ControllerConfig::default());
        let t = Instant::now();
        let report = replay(&trace, dp, &mut controller, &replay_cfg);
        (t.elapsed().as_nanos().min(u64::MAX as u128) as u64, report)
    };

    let mut base_min = u64::MAX;
    let mut base_report = ReplayReport::default();
    for _ in 0..iters {
        let mut p = Pipeline::new(pipe_cfg, fl_rules.clone(), pl_rules.clone());
        let (ns, report) = time_replay(&mut p);
        base_min = base_min.min(ns);
        base_report = report;
    }

    let mut points = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let mut min_ns = u64::MAX;
        let mut total_ns = 0u64;
        let mut last: Option<(ReplayReport, f64, Vec<_>)> = None;
        for _ in 0..iters {
            let cfg = ShardedPipelineConfig::from(pipe_cfg).with_shards(shards);
            let mut sp = ShardedPipeline::new(cfg, fl_rules.clone(), pl_rules.clone());
            let (ns, report) = iguard_runtime::par::with_workers(shards, || time_replay(&mut sp));
            min_ns = min_ns.min(ns);
            total_ns += ns;
            last = Some((report, sp.imbalance_ratio(), sp.blacklist_contents()));
        }
        let (report, imbalance, blacklist) = last.expect("at least one iteration");
        points.push(SweepPoint {
            shards,
            min_ns,
            mean_ns: total_ns as f64 / iters as f64,
            mpps: report.packets as f64 / (min_ns as f64 / 1e9) / 1e6,
            imbalance,
            report,
            blacklist,
        });
    }

    // Determinism gate: every shard count must agree exactly on the
    // replay-visible outputs.
    let first = &points[0];
    for p in &points[1..] {
        let same = p.report.tp == first.report.tp
            && p.report.fp == first.report.fp
            && p.report.tn == first.report.tn
            && p.report.fn_ == first.report.fn_
            && p.report.digests == first.report.digests
            && p.report.dropped == first.report.dropped
            && p.blacklist == first.blacklist;
        if !same {
            eprintln!(
                "bench_report: shard sweep diverged at {} shards (vs {} shards)",
                p.shards, first.shards
            );
            std::process::exit(1);
        }
    }
    (base_min, base_report, points)
}

/// Replay batch size for the chaos sweep — small enough that the trace
/// spans many control-loop ticks, so outage windows, backoff schedules
/// and resync sweeps all get exercised.
const CHAOS_BATCH: usize = 1024;

/// Resync cadence (ticks) used by every chaos scenario.
const CHAOS_RESYNC: u64 = 8;

/// Channel drop rates swept by the lossy-channel curve. 0.0 is the
/// fault-free anchor every other point is compared against.
const CHAOS_DROP_RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.25, 0.5];

/// One chaos-sweep data point: a scenario label, its fault intensity and
/// the full replay report plus final blacklist.
struct ChaosPoint {
    label: String,
    drop_rate: f64,
    report: ReplayReport,
    blacklist: Vec<iguard_flow::five_tuple::FiveTuple>,
}

fn run_chaos_case(
    trace: &iguard_synth::trace::Trace,
    fl_rules: &RuleSet,
    pl_rules: &RuleSet,
    chaos: &ChaosConfig,
) -> (ReplayReport, Vec<iguard_flow::five_tuple::FiveTuple>) {
    let pipe_cfg =
        PipelineConfig::default().with_flow_table(FlowTableConfig::default().with_pkt_threshold(4));
    let mut pipeline = Pipeline::new(pipe_cfg, fl_rules.clone(), pl_rules.clone());
    let mut controller = Controller::new(ControllerConfig::default());
    let replay_cfg = ReplayConfig::default().with_batch_size(CHAOS_BATCH);
    let report = replay_chaos(trace, &mut pipeline, &mut controller, &replay_cfg, chaos);
    (report, pipeline.blacklist_contents())
}

/// Sweeps the fault-injected control loop: a lossy-channel curve (drop /
/// duplicate / reorder / delay / send-fail rates scaled together via
/// [`FaultPlan::lossy`]) plus a scripted digest-channel outage scenario.
/// Every scenario runs with periodic resync so the loop can converge; the
/// 0.0-rate point doubles as the fault-free baseline for blacklist-delta
/// accounting. Aborts if re-running the harshest lossy point does not
/// reproduce byte-identical results — fault injection must stay
/// deterministic or the curve is meaningless.
fn run_chaos_sweep(seed: u64, fl_rules: &RuleSet, pl_rules: &RuleSet) -> Vec<ChaosPoint> {
    let mut rng = Rng::seed_from_u64(seed ^ 0xC4A0_5C4A);
    let benign = benign_trace(200, 10.0, &mut rng);
    let flood = Attack::UdpDdos.trace(80, 10.0, &mut rng);
    let trace = Trace::merge(vec![benign, flood]);

    let mut points = Vec::new();
    for rate in CHAOS_DROP_RATES {
        let plan =
            if rate == 0.0 { FaultPlan::none() } else { FaultPlan::lossy(seed ^ 0xFA17, rate) };
        let chaos = ChaosConfig::default().with_plan(plan).with_resync_interval(CHAOS_RESYNC);
        let (report, blacklist) = run_chaos_case(&trace, fl_rules, pl_rules, &chaos);
        points.push(ChaosPoint {
            label: format!("lossy_{rate}"),
            drop_rate: rate,
            report,
            blacklist,
        });
    }

    // Determinism gate: the harshest lossy point must replay exactly.
    {
        let last = points.last().expect("at least one lossy point");
        let rate = *CHAOS_DROP_RATES.last().expect("rates non-empty");
        let chaos = ChaosConfig::default()
            .with_plan(FaultPlan::lossy(seed ^ 0xFA17, rate))
            .with_resync_interval(CHAOS_RESYNC);
        let (rerun, blacklist) = run_chaos_case(&trace, fl_rules, pl_rules, &chaos);
        let same = rerun.tp == last.report.tp
            && rerun.fp == last.report.fp
            && rerun.tn == last.report.tn
            && rerun.fn_ == last.report.fn_
            && rerun.chan_dropped == last.report.chan_dropped
            && rerun.retries == last.report.retries
            && rerun.flush_ticks == last.report.flush_ticks
            && blacklist == last.blacklist;
        if !same {
            eprintln!("bench_report: chaos sweep is nondeterministic at drop rate {rate}");
            std::process::exit(1);
        }
    }

    // Outage scenario: the digest channel is down for the first 8 ticks,
    // then heals; resync sweeps recover the lost installs and the report's
    // recovery_packets measures how long that took.
    let outage_plan =
        FaultPlan::none().with_seed(seed ^ 0xFA17).with_outage(ChannelKind::Digest, 0, 8);
    let chaos = ChaosConfig::default().with_plan(outage_plan).with_resync_interval(4);
    let (report, blacklist) = run_chaos_case(&trace, fl_rules, pl_rules, &chaos);
    points.push(ChaosPoint {
        label: "digest_outage_0_8".into(),
        drop_rate: 0.0,
        report,
        blacklist,
    });

    points
}

/// Rule counts swept by the index benchmark. The ≥2× speedup gate applies
/// from 256 rules up; 64 is reported for the crossover curve only.
const INDEX_RULE_COUNTS: [usize; 3] = [64, 256, 1024];
const INDEX_PROBES: usize = 2048;
const INDEX_DIMS: usize = 13;

/// One rule-index sweep point: linear vs indexed lookup timings for the
/// float path and the quantized (TCAM) path at a given rule count.
struct IndexPoint {
    n_rules: usize,
    entries: usize,
    skipped_empty: u64,
    total_cuts: usize,
    float_linear_ns: u64,
    float_indexed_ns: u64,
    tcam_linear_ns: u64,
    tcam_indexed_ns: u64,
    hit_rate: f64,
}

/// A synthetic 13-dim first-match rule set: every cube is several quanta
/// wide at the 16-bit spec below, so the whole set installs (no skips)
/// and the float and TCAM paths see the same workload shape.
fn synthetic_index_rules(n_rules: usize, rng: &mut Rng) -> RuleSet {
    const DOMAIN: f32 = 100.0;
    let mut whitelist = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        let mut lo = Vec::with_capacity(INDEX_DIMS);
        let mut hi = Vec::with_capacity(INDEX_DIMS);
        for _ in 0..INDEX_DIMS {
            let w = rng.gen_range(5.0_f32..40.0);
            let a = rng.gen_range(0.0_f32..DOMAIN - 1.0);
            lo.push(a);
            hi.push((a + w).min(DOMAIN));
        }
        whitelist.push(Hypercube { lo, hi });
    }
    RuleSet { bounds: vec![(0.0, DOMAIN); INDEX_DIMS], whitelist, total_regions: n_rules }
}

/// Times `f` over `iters` runs and returns the minimum wall-clock ns.
/// `f` returns a checksum that is accumulated so the work cannot be
/// optimised away.
fn min_time_ns(iters: usize, mut f: impl FnMut() -> u64) -> (u64, u64) {
    let mut best = u64::MAX;
    let mut sum = 0u64;
    for _ in 0..iters {
        let t = Instant::now();
        sum = sum.wrapping_add(f());
        best = best.min(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    (best, sum)
}

/// The PR-5 tentpole benchmark: compiled first-match index vs linear scan
/// on the float whitelist and on the compiled TCAM, at 64/256/1024 rules
/// over ~2048 probe keys (half drawn inside random cubes so both hit and
/// miss paths are exercised; keys are quantized once and reused, so the
/// TCAM timings measure lookup cost only).
///
/// Aborts the run if any indexed verdict differs from its linear twin, or
/// if the indexed path is not ≥2× faster at ≥256 rules.
fn run_rule_index_sweep(seed: u64, iters: usize) -> Vec<IndexPoint> {
    let mut points = Vec::new();
    for n_rules in INDEX_RULE_COUNTS {
        let mut rng = Rng::seed_from_u64(seed ^ 0x1DE0 ^ n_rules as u64);
        let rules = synthetic_index_rules(n_rules, &mut rng);
        // Probe rows: half sampled inside a random cube (hits), half
        // uniform over a slightly inflated domain (mostly misses).
        let mut rows: Vec<Vec<f32>> = Vec::with_capacity(INDEX_PROBES);
        for i in 0..INDEX_PROBES {
            let mut row = Vec::with_capacity(INDEX_DIMS);
            if i % 2 == 0 {
                let c = &rules.whitelist[rng.gen_range(0..n_rules)];
                for d in 0..INDEX_DIMS {
                    row.push(rng.gen_range(c.lo[d]..c.hi[d].min(100.0)));
                }
            } else {
                for _ in 0..INDEX_DIMS {
                    row.push(rng.gen_range(0.0_f32..110.0));
                }
            }
            rows.push(row);
        }

        // --- Float path: linear first-match scan vs compiled RuleIndex.
        let float_index = rules.build_index();
        let linear_verdicts: Vec<Option<usize>> = rows.iter().map(|r| rules.lookup(r)).collect();
        let mut scratch = Vec::new();
        for (row, want) in rows.iter().zip(&linear_verdicts) {
            let got = float_index.lookup(row, &mut scratch);
            if got != *want {
                eprintln!(
                    "bench_report: float index verdict {got:?} != linear {want:?} at {n_rules} rules"
                );
                std::process::exit(1);
            }
        }
        let (float_linear_ns, sum_a) = min_time_ns(iters, || {
            let mut acc = 0u64;
            for row in &rows {
                acc = acc.wrapping_add(rules.lookup(row).map_or(u64::MAX, |i| i as u64));
            }
            acc
        });
        let (float_indexed_ns, sum_b) = min_time_ns(iters, || {
            let mut acc = 0u64;
            for row in &rows {
                acc = acc.wrapping_add(
                    float_index.lookup(row, &mut scratch).map_or(u64::MAX, |i| i as u64),
                );
            }
            acc
        });
        assert_eq!(sum_a, sum_b, "timed runs must agree with the verified verdicts");

        // --- TCAM path: quantize every probe once, then time the linear
        // RangeTable scan vs the compiled RangeIndex on identical keys.
        let specs = vec![FieldSpec::new(16, 655.0); INDEX_DIMS];
        let table = compile_ruleset(&rules, &specs);
        let range_index = RangeIndex::build(&table);
        let mut kbuf: Vec<u32> = Vec::new();
        let keys: Vec<Vec<u32>> = rows
            .iter()
            .map(|r| {
                quantize_key_into(r, &specs, &mut kbuf);
                kbuf.clone()
            })
            .collect();
        let mut qscratch = Vec::new();
        for key in &keys {
            let want = table.lookup_idx(key);
            let got = range_index.lookup(key, &mut qscratch);
            if got != want {
                eprintln!(
                    "bench_report: TCAM index verdict {got:?} != linear {want:?} at {n_rules} rules"
                );
                std::process::exit(1);
            }
        }
        let (tcam_linear_ns, sum_c) = min_time_ns(iters, || {
            let mut acc = 0u64;
            for key in &keys {
                acc = acc.wrapping_add(table.lookup_idx(key).map_or(u64::MAX, |i| i as u64));
            }
            acc
        });
        let (tcam_indexed_ns, sum_d) = min_time_ns(iters, || {
            let mut acc = 0u64;
            for key in &keys {
                acc = acc.wrapping_add(
                    range_index.lookup(key, &mut qscratch).map_or(u64::MAX, |i| i as u64),
                );
            }
            acc
        });
        assert_eq!(sum_c, sum_d, "timed TCAM runs must agree with the verified verdicts");

        let hits = linear_verdicts.iter().filter(|v| v.is_some()).count();
        points.push(IndexPoint {
            n_rules,
            entries: table.len(),
            skipped_empty: table.skipped_empty,
            total_cuts: range_index.total_cuts(),
            float_linear_ns,
            float_indexed_ns,
            tcam_linear_ns,
            tcam_indexed_ns,
            hit_rate: hits as f64 / rows.len() as f64,
        });
    }

    for p in &points {
        let fs = p.float_linear_ns as f64 / p.float_indexed_ns.max(1) as f64;
        let ts = p.tcam_linear_ns as f64 / p.tcam_indexed_ns.max(1) as f64;
        eprintln!(
            "bench_report: rule_index {} rules: float {:.2}x, tcam {:.2}x",
            p.n_rules, fs, ts
        );
        if p.n_rules >= 256 && (fs < 2.0 || ts < 2.0) {
            eprintln!(
                "bench_report: index speedup below the 2x gate at {} rules (float {fs:.2}x, tcam {ts:.2}x)",
                p.n_rules
            );
            std::process::exit(1);
        }
    }
    points
}

/// Replay-trace parity: every FL feature row of a fresh benign+flood
/// trace classified three ways — serial linear scan, serial `Pipeline`
/// batch (indexed), and 8-shard `ShardedPipeline` batch (indexed, 8
/// workers) — must produce byte-identical verdict vectors. Returns the
/// row count and the serial backend's whitelist lookup counters.
fn run_replay_parity(
    seed: u64,
    fl_rules: &RuleSet,
    pl_rules: &RuleSet,
) -> (usize, iguard_switch::pipeline::WhitelistCounters) {
    let mut rng = Rng::seed_from_u64(seed ^ 0x9A41);
    let benign = benign_trace(120, 6.0, &mut rng);
    let flood = Attack::UdpDdos.trace(50, 6.0, &mut rng);
    let trace = Trace::merge(vec![benign, flood]);
    let flows = extract_flows(&trace, &ExtractConfig::default());
    let rows = &flows.features;

    let linear: Vec<bool> = rows.iter_rows().map(|r| fl_rules.lookup(r).is_none()).collect();

    let mut pipeline = Pipeline::new(PipelineConfig::default(), fl_rules.clone(), pl_rules.clone());
    let mut serial = Vec::new();
    pipeline.classify_batch(rows, &mut serial);

    let cfg = ShardedPipelineConfig::from(PipelineConfig::default()).with_shards(8);
    let mut sp = ShardedPipeline::new(cfg, fl_rules.clone(), pl_rules.clone());
    let mut sharded = Vec::new();
    iguard_runtime::par::with_workers(8, || sp.classify_batch(rows, &mut sharded));

    if serial != linear || sharded != linear {
        eprintln!("bench_report: replay-trace verdicts diverge between linear and indexed paths");
        std::process::exit(1);
    }
    (rows.rows(), pipeline.whitelist_counters())
}

/// Replay batch size of the columnar contender: one full 1024-row chunk
/// per `process_batch` call — the columnar sweet spot (larger batches
/// push the per-chunk working set past L2 and cost more than they
/// amortise). The scalar baseline runs at `ReplayConfig::default()`
/// (batch size 1), the operating point the replay harness shipped with
/// before the structure-of-arrays refactor. On this trace the replay
/// outputs are batch-size invariant — no flow ever reaches the blue
/// cutoff, so there is no control feedback whose timing could shift —
/// which is what makes the cross-batch-size verdict gate meaningful.
const SOA_BATCH: usize = 1024;

struct SoaReplay {
    packets: u64,
    scalar_min_ns: u64,
    soa_min_ns: u64,
    scalar_mpps: f64,
    soa_mpps: f64,
    speedup: f64,
}

/// Times the columnar `Pipeline` against the per-packet `ScalarPipeline`
/// on the replay path at one worker, min-over-iters, gating on
/// byte-identical outputs and on a ≥2× packets/sec advantage. The trace
/// is brown-heavy (an unreachable packet threshold keeps every flow below
/// the blue cutoff) so nearly every packet takes the deferred
/// packet-level lookup — the path where the scalar backend pays a feature
/// allocation and a full index probe per packet while the columnar
/// backend batches both.
fn run_soa_replay(seed: u64, iters: usize, fl_rules: &RuleSet, pl_rules: &RuleSet) -> SoaReplay {
    use iguard_switch::pipeline::ScalarPipeline;
    let mut rng = Rng::seed_from_u64(seed ^ 0x50A0_50A0);
    let benign = benign_trace(400, 12.0, &mut rng);
    let flood = Attack::UdpDdos.trace(120, 12.0, &mut rng);
    let trace = Trace::merge(vec![benign, flood]);
    // Unreachable packet threshold AND idle timeout: no flow ever goes
    // blue, so no digests flow back through the controller. With zero
    // control feedback the replay outputs are batch-size invariant, which
    // is what lets each contender run at its own operating point below
    // while the verdict gate still demands byte-identical outputs.
    let pipe_cfg = PipelineConfig::default().with_flow_table(
        FlowTableConfig::default().with_pkt_threshold(u64::MAX).with_timeout_ns(u64::MAX),
    );
    // Pre-refactor operating point: per-packet replay, no batching.
    let scalar_cfg = ReplayConfig::default();
    let soa_cfg = ReplayConfig::default().with_batch_size(SOA_BATCH);

    iguard_runtime::par::with_workers(1, || {
        let run_one = |dp: &mut dyn DataPlane, cfg: &ReplayConfig| {
            let mut controller = Controller::new(ControllerConfig::default());
            let t = Instant::now();
            let report = replay(&trace, dp, &mut controller, cfg);
            let ns = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            (ns, report, dp.counters(), dp.whitelist_counters(), dp.blacklist_len())
        };

        let mut scalar_min = u64::MAX;
        let mut soa_min = u64::MAX;
        let mut packets = 0u64;
        // One retry round: a background-noise burst spanning several
        // iterations can sink either side's min; a genuine regression
        // fails both attempts. Mins accumulate across attempts.
        for attempt in 0..2 {
            for _ in 0..iters {
                let mut sp = ScalarPipeline::new(pipe_cfg, fl_rules.clone(), pl_rules.clone());
                let (s_ns, s_report, s_paths, s_wl, s_bl) = run_one(&mut sp, &scalar_cfg);
                let mut bp = Pipeline::new(pipe_cfg, fl_rules.clone(), pl_rules.clone());
                let (b_ns, b_report, b_paths, b_wl, b_bl) = run_one(&mut bp, &soa_cfg);
                let same = (s_report.tp, s_report.fp, s_report.tn, s_report.fn_)
                    == (b_report.tp, b_report.fp, b_report.tn, b_report.fn_)
                    && s_report.dropped == b_report.dropped
                    && s_report.digests == b_report.digests
                    && s_paths == b_paths
                    && s_wl == b_wl
                    && s_bl == b_bl;
                if !same {
                    eprintln!("bench_report: SoA replay outputs diverge from the scalar oracle");
                    std::process::exit(1);
                }
                scalar_min = scalar_min.min(s_ns);
                soa_min = soa_min.min(b_ns);
                packets = b_report.packets;
            }
            if scalar_min as f64 / soa_min.max(1) as f64 >= 2.0 {
                break;
            }
            if attempt == 0 {
                eprintln!("bench_report: SoA gate below 2.0x, measuring one more round");
            }
        }

        let to_mpps = |ns: u64| packets as f64 / (ns as f64 / 1e9) / 1e6;
        let speedup = scalar_min as f64 / soa_min.max(1) as f64;
        if speedup < 2.0 {
            eprintln!(
                "bench_report: SoA replay speedup {speedup:.2}x < 2.0x gate \
                 (scalar {scalar_min} ns, columnar {soa_min} ns over {packets} packets)"
            );
            std::process::exit(1);
        }
        SoaReplay {
            packets,
            scalar_min_ns: scalar_min,
            soa_min_ns: soa_min,
            scalar_mpps: to_mpps(scalar_min),
            soa_mpps: to_mpps(soa_min),
            speedup,
        }
    })
}

/// Replay batch size of the streaming sweep: large enough to amortise
/// control-loop ticks over the million-flow run.
const STREAM_BATCH: usize = 8192;

/// Exact-table slot budgets the sketched points run under. The streaming
/// workload keeps ~1.3k flows concurrently resident regardless of total
/// flow count, so 512 slots models a moderately starved table and 128 a
/// severely starved one — both force continuous eviction churn.
const STREAM_BUDGET_SLOTS: [usize; 2] = [512, 128];

/// Pipeline configuration shared by every streaming contender.
fn stream_pipe_cfg() -> PipelineConfig {
    PipelineConfig::default().with_flow_table(FlowTableConfig::default().with_pkt_threshold(4))
}

/// One streaming-sweep contender: its replay report, final blacklist,
/// wall-clock, and (for sketched backends) the sketch statistics.
struct StreamRun {
    label: String,
    wall_ns: u64,
    report: ReplayReport,
    blacklist: Vec<iguard_flow::five_tuple::FiveTuple>,
    stats: Option<iguard_switch::SketchStats>,
}

fn run_stream_once(scfg: &StreamingConfig, dp: &mut dyn DataPlane, label: &str) -> StreamRun {
    let mut source = StreamingTrace::new(scfg.clone());
    let mut controller = Controller::new(ControllerConfig::default());
    let replay_cfg = ReplayConfig::default().with_batch_size(STREAM_BATCH);
    let t = Instant::now();
    let report = replay_stream(&mut source, dp, &mut controller, &replay_cfg);
    let wall_ns = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    StreamRun {
        label: label.into(),
        wall_ns,
        report,
        blacklist: dp.blacklist_contents(),
        stats: dp.sketch_stats(),
    }
}

/// Marginal-allocation probe for the buffer-reuse audit. Runs the full
/// streaming replay at `flows` and at `2 × flows` and compares allocator
/// call deltas: everything allocated once (source lanes, sketches,
/// replay buffers, telemetry handles) cancels out of the margin, so the
/// difference measures steady-state allocations only. The gate demands
/// strictly fewer marginal allocations than marginal batches — i.e. the
/// per-batch hot path performs no heap allocation, with room for the
/// amortised (logarithmic) growth of the digest and blacklist
/// containers.
struct AllocProbe {
    base_flows: u64,
    marginal_batches: u64,
    marginal_allocs: u64,
}

fn run_alloc_probe(seed: u64, fl_rules: &RuleSet, pl_rules: &RuleSet, flows: usize) -> AllocProbe {
    let run = |n_flows: usize| -> (u64, u64) {
        let scfg = StreamingConfig::default().with_seed(seed).with_total_flows(n_flows as u64);
        let mut source = StreamingTrace::new(scfg);
        let scfg7 = SketchedPipelineConfig::default()
            .with_pipeline(stream_pipe_cfg())
            .with_budget_bytes(Some(
                (n_flows / 16).max(64) * iguard_flow::table::FlowShard::slot_bytes(),
            ))
            .with_promote_threshold(2)
            .with_eviction(SketchEviction::TwoQ);
        let mut dp = SketchedPipeline::new(scfg7, fl_rules.clone(), pl_rules.clone());
        let mut controller = Controller::new(ControllerConfig::default());
        let replay_cfg = ReplayConfig::default().with_batch_size(512);
        let before = alloc_calls();
        let report = replay_stream(&mut source, &mut dp, &mut controller, &replay_cfg);
        let allocs = alloc_calls() - before;
        (allocs, report.packets.div_ceil(512))
    };
    let (allocs_n, batches_n) = run(flows);
    let (allocs_2n, batches_2n) = run(flows * 2);
    AllocProbe {
        base_flows: flows as u64,
        marginal_batches: batches_2n.saturating_sub(batches_n),
        marginal_allocs: allocs_2n.saturating_sub(allocs_n),
    }
}

/// The PR-7 tentpole sweep: a streaming (never materialised) trace of
/// `IGUARD_PR7_FLOWS` flows — one million by default, a few thousand in
/// smoke — replayed through the exact `Pipeline`, the `SketchedPipeline`
/// in exact mode (infinite budget, fingerprint-gated against the exact
/// run), and sketched points at `flows/8` and `flows/64` slot budgets.
/// Hard gates:
///
/// * exact-mode sketched run must match the exact pipeline's confusion
///   matrix, digest count, packet count, and blacklist;
/// * every budgeted point must respect its byte budget after the run and
///   must not invent detections its exact twin never made (FP counts on
///   the budgeted path stay ≤ the exact path's — eviction can only lose
///   state, and lost state biases toward the whitelist's PL fallback);
/// * the marginal-allocation probe must show < 1 allocation per batch.
fn run_streaming_sweep(
    seed: u64,
    smoke: bool,
    fl_rules: &RuleSet,
    pl_rules: &RuleSet,
) -> (StreamingConfig, Vec<StreamRun>, AllocProbe) {
    let flows: usize = std::env::var("IGUARD_PR7_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 20_000 } else { 1_000_000 });
    let scfg = StreamingConfig::default().with_seed(seed ^ 0x57E4).with_total_flows(flows as u64);

    let mut runs = Vec::new();

    eprintln!("bench_report: streaming sweep at {flows} flows (exact pipeline)");
    let mut exact = Pipeline::new(stream_pipe_cfg(), fl_rules.clone(), pl_rules.clone());
    runs.push(run_stream_once(&scfg, &mut exact, "exact_pipeline"));

    eprintln!("bench_report: streaming sweep (sketched, exact mode)");
    let sk_exact_cfg = SketchedPipelineConfig::default().with_pipeline(stream_pipe_cfg());
    let mut sk_exact = SketchedPipeline::new(sk_exact_cfg, fl_rules.clone(), pl_rules.clone());
    runs.push(run_stream_once(&scfg, &mut sk_exact, "sketched_exact"));

    // Fingerprint gate: exact-mode sketched == exact pipeline.
    {
        let (e, s) = (&runs[0], &runs[1]);
        let same = (e.report.tp, e.report.fp, e.report.tn, e.report.fn_)
            == (s.report.tp, s.report.fp, s.report.tn, s.report.fn_)
            && e.report.packets == s.report.packets
            && e.report.digests == s.report.digests
            && e.blacklist == s.blacklist;
        if !same {
            eprintln!("bench_report: sketched exact mode diverged from the exact pipeline");
            std::process::exit(1);
        }
    }

    for slots in STREAM_BUDGET_SLOTS {
        eprintln!("bench_report: streaming sweep (sketched, {slots}-slot budget)");
        let cfg = SketchedPipelineConfig::default()
            .with_pipeline(stream_pipe_cfg())
            .with_budget_bytes(Some(slots * iguard_flow::table::FlowShard::slot_bytes()))
            .with_promote_threshold(2)
            .with_eviction(SketchEviction::TwoQ);
        let mut dp = SketchedPipeline::new(cfg, fl_rules.clone(), pl_rules.clone());
        let run = run_stream_once(&scfg, &mut dp, &format!("sketched_budget_{slots}"));
        let stats = run.stats.expect("sketched backend reports stats");
        if stats.tracked > stats.max_tracked
            || stats.budget_bytes.is_some_and(|b| stats.resident_bytes > b)
        {
            eprintln!(
                "bench_report: budget breached at {slots} slots: tracked {} / {} \
                 resident {} / {:?}",
                stats.tracked, stats.max_tracked, stats.resident_bytes, stats.budget_bytes
            );
            std::process::exit(1);
        }
        let exact_report = &runs[0].report;
        if run.report.packets != exact_report.packets
            || run.report.tp + run.report.fn_ != exact_report.tp + exact_report.fn_
        {
            eprintln!("bench_report: budgeted stream drifted from the exact stream");
            std::process::exit(1);
        }
        // FP/FN bound: every verdict flip vs the exact run traces back to
        // shed state — a packet the sketch absorbed, or a flow restarted
        // by eviction (≤ pkt_threshold re-windowed packets each). The
        // deltas must stay within that shed-work budget; a backend that
        // drifted beyond it would be corrupting state, not shedding it.
        let shed_budget = stats.absorbed + stats.evicted * 4;
        let fp_delta = run.report.fp.abs_diff(exact_report.fp);
        let fn_delta = run.report.fn_.abs_diff(exact_report.fn_);
        if fp_delta > shed_budget || fn_delta > shed_budget {
            eprintln!(
                "bench_report: budget of {slots} slots drifts beyond its shed work \
                 (fp Δ{fp_delta}, fn Δ{fn_delta}, budget {shed_budget})"
            );
            std::process::exit(1);
        }
        if exact_report.tp > 0 && run.report.tp == 0 {
            eprintln!("bench_report: budget of {slots} slots lost all detections");
            std::process::exit(1);
        }
        runs.push(run);
    }

    eprintln!("bench_report: streaming allocation probe (buffer-reuse audit)");
    let probe_flows = if smoke { 2_000 } else { 4_000 };
    let probe = run_alloc_probe(seed, fl_rules, pl_rules, probe_flows);
    eprintln!(
        "bench_report: alloc probe: {} marginal allocs over {} marginal batches",
        probe.marginal_allocs, probe.marginal_batches
    );
    if probe.marginal_allocs >= probe.marginal_batches {
        eprintln!(
            "bench_report: streaming path allocates per batch ({} allocs / {} batches)",
            probe.marginal_allocs, probe.marginal_batches
        );
        std::process::exit(1);
    }

    (scfg, runs, probe)
}

// ---------------------------------------------------------------------------
// PR-8: the online drift-adaptation loop — drift detection over the digest
// stream, warm retrain, minimal rule diff, transactional hitless swap.

/// Batch size for the swap-window and scripted-convergence replays — small
/// enough that the scripted staging ticks fall mid-trace.
const SWAP_BATCH: usize = 64;

/// Interleaved trace of `flows` flows × `pkts_per_flow` packets with
/// per-flow-constant wire length (flows with `f % 3 == 0` send 1400 B, the
/// rest 120 B), so each flow classifies identically on every
/// (re-)derivation — the deterministic workload the ruleset-swap test
/// suite replays, reproduced here for the gated sweep.
fn stable_swap_trace(flows: u16, pkts_per_flow: u64) -> Trace {
    let mut t = Trace::new();
    for i in 0..(flows as u64 * pkts_per_flow) {
        let f = (i % flows as u64) as u16;
        let malicious = f % 3 == 0;
        let len = if malicious { 1400 } else { 120 };
        let pkt = Packet {
            ts_ns: i * 1_000_000,
            five: FiveTuple::new(0x0A00_0001, 0xC0A8_0101, 30_000 + f, 80, PROTO_TCP),
            wire_len: len,
            ttl: 64,
            flags: TcpFlags::default(),
        };
        t.push(pkt, malicious);
    }
    t
}

fn accept_all(dim: usize) -> RuleSet {
    RuleSet {
        bounds: vec![(0.0, 1.0); dim],
        whitelist: vec![Hypercube {
            lo: vec![f32::NEG_INFINITY; dim],
            hi: vec![f32::INFINITY; dim],
        }],
        total_regions: 1,
    }
}

/// FL whitelist benign iff mean packet size (feature 2) < `cut`.
fn fl_mean_size_below(cut: f32) -> RuleSet {
    let lo = vec![f32::NEG_INFINITY; 13];
    let mut hi = vec![f32::INFINITY; 13];
    hi[2] = cut;
    RuleSet {
        bounds: vec![(0.0, 2000.0); 13],
        whitelist: vec![Hypercube { lo, hi }],
        total_regions: 2,
    }
}

fn swap_pipe_cfg() -> PipelineConfig {
    PipelineConfig::default().with_flow_table(
        FlowTableConfig::default().with_slots_per_table(4096).with_pkt_threshold(4),
    )
}

/// One scripted swap-under-chaos replay, captured for exact equality.
#[derive(Debug, PartialEq)]
struct SwapChaosRun {
    confusion: (u64, u64, u64, u64),
    blacklist: Vec<FiveTuple>,
    version: u64,
    counters: RulesetCounters,
    table: Vec<RangeEntry>,
    swaps: u64,
    retries: u64,
}

fn run_swap_chaos_case(
    trace: &Trace,
    fl: &RuleSet,
    shards: usize,
    workers: usize,
    chaos: &ChaosConfig,
) -> SwapChaosRun {
    iguard_runtime::par::with_workers(workers, || {
        let cfg = ShardedPipelineConfig::from(swap_pipe_cfg()).with_shards(shards);
        let mut dp = ShardedPipeline::new(cfg, fl.clone(), accept_all(4));
        let mut controller = Controller::new(ControllerConfig::default());
        let r = replay_chaos(
            trace,
            &mut dp,
            &mut controller,
            &ReplayConfig::default().with_batch_size(SWAP_BATCH),
            chaos,
        );
        SwapChaosRun {
            confusion: (r.tp, r.fp, r.tn, r.fn_),
            blacklist: dp.blacklist_contents(),
            version: dp.ruleset_version(),
            counters: dp.ruleset_counters(),
            table: dp.ruleset_table().entries().to_vec(),
            swaps: r.ruleset_swaps,
            retries: r.ruleset_retries,
        }
    })
}

/// The scripted two-transaction schedule: v1 bootstraps a 6-entry table at
/// tick 1, v2 swaps to a table sharing half of it at tick 6. Both carry
/// the same float whitelist, so delivery timing cannot alter any flow
/// label and exact fingerprint equality is the right convergence oracle.
fn scripted_swap_chaos(fl: &RuleSet, plan: FaultPlan) -> ChaosConfig {
    let mut t1 = RangeTable::new(vec![8, 8]);
    for p in 0..6u32 {
        t1.push(RangeEntry { fields: vec![(p * 10, p * 10 + 9), (0, 255)], priority: p });
    }
    let mut t2 = RangeTable::new(vec![8, 8]);
    for p in 0..3u32 {
        t2.push(RangeEntry { fields: vec![(p * 10, p * 10 + 9), (0, 255)], priority: p });
    }
    for p in 6..9u32 {
        t2.push(RangeEntry { fields: vec![(p * 7, p * 7 + 3), (1, 200)], priority: p });
    }
    ChaosConfig::default()
        .with_plan(plan)
        .with_resync_interval(4)
        .with_ruleset_swap(1, RulesetTxn::full_install(1, &t1, fl.clone()))
        .with_ruleset_swap(6, RulesetTxn::diff(2, &t1, &t2, fl.clone()))
}

/// Rendered JSON sections of the PR-8 report, assembled where the hard
/// gates run so the booleans and the numbers they guard stay together.
struct SwapSweepDoc {
    drift_loop: String,
    rule_diff: String,
    swap_window: String,
    fault_convergence: String,
    determinism: String,
    versioning: String,
}

/// The PR-8 tentpole sweep: drives the adaptation loop end to end — train
/// and install generation 1, watch a calm then a shifted traffic regime
/// through the drift detector, warm-retrain on the shifted window, compile
/// generation 2, compute the minimal diff and deliver it through a dark
/// action channel — then gates the swap path itself: zero packets may see
/// a blend of two rulesets mid-swap, scripted swaps under lossy/outage
/// plans must converge on the fault-free fingerprint, and the whole run
/// must be byte-identical at 1/2/8 shards × workers. Every gate aborts the
/// run before a report is written.
fn run_ruleset_swap_sweep(seed: u64, pl_rules: &RuleSet) -> SwapSweepDoc {
    let mut rng = Rng::seed_from_u64(seed ^ 0x0DD5_11F7);
    let extract_cfg = ExtractConfig::default();
    let teacher = OracleTeacher(|x: &[f32]| x[10] < 0.0008 || x[2] > 1200.0);
    let ig = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 64, ..Default::default() };

    // --- Generation 1: train, compile, install as transaction v1.
    let train_trace = benign_trace(250, 10.0, &mut rng);
    let train = extract_flows(&train_trace, &extract_cfg);
    let mut forest = IGuardForest::fit(&train.features, &teacher, &ig, &mut rng);
    forest.distill(&train.features, &teacher, ig.k_augment, &mut rng);
    let old_rules = RuleSet::from_iguard(&forest, 600_000).expect("FL rule budget");
    let old_table = compile_ruleset(&old_rules, &specs_for(&old_rules));

    let drift_cfg = DriftConfig::default()
        .with_window(64)
        .with_min_samples(32)
        .with_threshold(0.2)
        .with_cooldown(64);
    let mut controller =
        Controller::new(ControllerConfig { drift: Some(drift_cfg), ..Default::default() });
    let mut pipeline = Pipeline::new(swap_pipe_cfg(), old_rules.clone(), pl_rules.clone());
    pipeline
        .apply_ruleset(&RulesetTxn::full_install(1, &old_table, old_rules.clone()))
        .expect("bootstrap v1");

    // --- Calm segment: the detector arms and freezes its reference.
    let replay_cfg = ReplayConfig::default().with_batch_size(1024);
    let calm = benign_trace(220, 10.0, &mut rng);
    let r_calm = replay(&calm, &mut pipeline, &mut controller, &replay_cfg);
    if controller.take_drift_trigger() {
        eprintln!("bench_report: drift fired on calm traffic");
        std::process::exit(1);
    }
    let calm_fraction = controller.drift_detector().map_or(0.0, |d| d.window_fraction());
    let reference = controller.drift_detector().and_then(|d| d.reference());

    // --- Regime shift: a flood joins; the malicious digest fraction jumps.
    let shifted = Trace::merge(vec![
        benign_trace(60, 10.0, &mut rng),
        Attack::UdpDdos.trace(90, 10.0, &mut rng),
    ]);
    let r_shift = replay(&shifted, &mut pipeline, &mut controller, &replay_cfg);
    if !controller.take_drift_trigger() {
        eprintln!("bench_report: regime shift did not fire the drift trigger");
        std::process::exit(1);
    }
    let det = controller.drift_detector().expect("drift configured");
    let (drift_observed, drift_fires, shifted_fraction) =
        (det.observed(), det.fires(), det.window_fraction());

    // --- Warm retrain on the shifted window; compile generation 2; diff.
    let retrain = extract_flows(&shifted, &extract_cfg);
    let mut new_forest = forest.refit_warm(&retrain.features, &teacher, &ig, &mut rng);
    new_forest.distill(&retrain.features, &teacher, ig.k_augment, &mut rng);
    let new_rules = RuleSet::from_iguard(&new_forest, 600_000).expect("refit FL budget");
    let new_table = compile_ruleset(&new_rules, &specs_for(&new_rules));
    let v2 = RulesetTxn::diff(2, &old_table, &new_table, new_rules.clone());
    let retrain_churn = v2.churn();
    let retrain_full = old_table.len() + new_table.len();
    if retrain_churn > retrain_full {
        eprintln!("bench_report: diff churn {retrain_churn} exceeds full reinstall {retrain_full}");
        std::process::exit(1);
    }

    // --- Deliver v2 through the fallible control loop: the action channel
    // is dark for the first 4 ticks, so the transaction must survive on
    // backoff and land after the heal.
    controller.stage_ruleset(v2);
    let before = pipeline.ruleset_counters();
    let outage_plan =
        FaultPlan::none().with_seed(seed ^ 0xAC70).with_outage(ChannelKind::Action, 0, 4);
    let chaos = ChaosConfig::default().with_plan(outage_plan).with_resync_interval(4);
    let settle = Trace::merge(vec![
        benign_trace(80, 8.0, &mut rng),
        Attack::UdpDdos.trace(40, 8.0, &mut rng),
    ]);
    let r_settle = replay_chaos(&settle, &mut pipeline, &mut controller, &replay_cfg, &chaos);
    let delivered_version = pipeline.ruleset_version();
    if delivered_version != 2 || r_settle.ruleset_swaps != 1 {
        eprintln!(
            "bench_report: drift transaction did not converge (version {delivered_version}, swaps {})",
            r_settle.ruleset_swaps
        );
        std::process::exit(1);
    }
    if r_settle.ruleset_retries == 0 {
        eprintln!("bench_report: action outage produced no ruleset retries");
        std::process::exit(1);
    }
    let after = pipeline.ruleset_counters();
    let tcam_writes = (after.installed + after.removed) - (before.installed + before.removed);
    if tcam_writes > retrain_churn as u64 {
        eprintln!("bench_report: TCAM writes {tcam_writes} exceed the diff size {retrain_churn}");
        std::process::exit(1);
    }

    // --- Perturbed-retrain point: a quarter of the live table dropped, a
    // fifth re-added at shifted priority — the incremental-retrain shape
    // where the minimal diff must strictly beat tearing the table down and
    // reinstalling it wholesale.
    let old_entries = canonical_entries(&old_table);
    if old_entries.len() < 8 {
        eprintln!("bench_report: compiled table too small ({}) to perturb", old_entries.len());
        std::process::exit(1);
    }
    let mut perturbed = RangeTable::new(old_table.field_bits.clone());
    for (i, e) in old_entries.iter().enumerate() {
        if i % 4 != 3 {
            perturbed.push(e.clone());
        }
    }
    for e in old_entries.iter().step_by(5) {
        let mut shifted_entry = e.clone();
        shifted_entry.priority = shifted_entry.priority.saturating_add(1);
        perturbed.push(shifted_entry);
    }
    let vp = RulesetTxn::diff(2, &old_table, &perturbed, old_rules.clone());
    let perturbed_full = old_table.len() + perturbed.len();
    if vp.churn() == 0 || vp.churn() >= perturbed_full {
        eprintln!(
            "bench_report: perturbed diff churn {} not below full reinstall {perturbed_full}",
            vp.churn()
        );
        std::process::exit(1);
    }

    // --- Swap-window gate: every packet in a mid-stream swap replay must
    // see the old generation's verdict or the new one's — never a blend.
    let wtrace = stable_swap_trace(40, 12);
    let old_fl = fl_mean_size_below(800.0);
    let new_fl = accept_all(13);
    let mut wtable = RangeTable::new(vec![4, 4]);
    wtable.push(RangeEntry { fields: vec![(0, 15), (0, 15)], priority: 0 });
    let wtxn = RulesetTxn::full_install(1, &wtable, new_fl.clone());
    let swap_at = wtrace.packets.len().div_ceil(SWAP_BATCH) / 2;
    let wrun = |fl: RuleSet, swap: Option<usize>| -> Vec<PacketVerdict> {
        let mut dp = Pipeline::new(swap_pipe_cfg(), fl, accept_all(4));
        let mut outcomes: Vec<ProcessOutcome> = Vec::new();
        let mut verdicts = Vec::with_capacity(wtrace.packets.len());
        for (b, chunk) in wtrace.packets.chunks(SWAP_BATCH).enumerate() {
            if swap == Some(b) {
                dp.apply_ruleset(&wtxn).expect("mid-stream swap");
            }
            dp.process_batch(chunk, &mut outcomes);
            if outcomes.len() != chunk.len() {
                eprintln!("bench_report: swap window dropped a packet");
                std::process::exit(1);
            }
            verdicts.extend(outcomes.iter().map(|o| o.verdict));
        }
        verdicts
    };
    let old_run = wrun(old_fl.clone(), None);
    let new_run = wrun(new_fl, None);
    let swap_run = wrun(old_fl, Some(swap_at));
    let boundary = swap_at * SWAP_BATCH;
    if swap_run[..boundary] != old_run[..boundary] {
        eprintln!("bench_report: pre-swap prefix diverged from the old generation");
        std::process::exit(1);
    }
    let mut disagreements = 0u64;
    let mut mixed = 0u64;
    for i in 0..swap_run.len() {
        disagreements += u64::from(old_run[i] != new_run[i]);
        mixed += u64::from(swap_run[i] != old_run[i] && swap_run[i] != new_run[i]);
    }
    if mixed != 0 || disagreements == 0 {
        eprintln!(
            "bench_report: swap window misclassified {mixed} packets \
             ({disagreements} generation disagreements)"
        );
        std::process::exit(1);
    }

    // --- Scripted convergence: the same two-transaction schedule under a
    // fault-free, a lossy and a dark action channel.
    let ctrace = stable_swap_trace(60, 12);
    let cfl = fl_mean_size_below(800.0);
    let clean =
        run_swap_chaos_case(&ctrace, &cfl, 1, 1, &scripted_swap_chaos(&cfl, FaultPlan::none()));
    if clean.version != 2 || clean.swaps != 2 || clean.retries != 0 {
        eprintln!("bench_report: fault-free scripted swap did not land both transactions");
        std::process::exit(1);
    }

    // Determinism gate: byte-identical at 1/2/8 shards × workers, under
    // the fault-free and the lossy plan.
    let mut det_points: Vec<(&str, usize, usize)> = Vec::new();
    for (plan_label, plan) in
        [("none", FaultPlan::none()), ("lossy_0.2", FaultPlan::lossy(seed ^ 0x5CA1, 0.2))]
    {
        let chaos = scripted_swap_chaos(&cfl, plan);
        let base = run_swap_chaos_case(&ctrace, &cfl, 1, 1, &chaos);
        for (shards, workers) in [(2usize, 2usize), (8, 8)] {
            let got = run_swap_chaos_case(&ctrace, &cfl, shards, workers, &chaos);
            if got != base {
                eprintln!(
                    "bench_report: swap run diverged at {shards} shards / {workers} workers \
                     (plan {plan_label})"
                );
                std::process::exit(1);
            }
            det_points.push((plan_label, shards, workers));
        }
    }

    let lossy = run_swap_chaos_case(
        &ctrace,
        &cfl,
        2,
        2,
        &scripted_swap_chaos(&cfl, FaultPlan::lossy(seed ^ 0x1055, 0.25)),
    );
    let outage = run_swap_chaos_case(
        &ctrace,
        &cfl,
        2,
        2,
        &scripted_swap_chaos(
            &cfl,
            FaultPlan::none().with_seed(seed ^ 3).with_outage(ChannelKind::Action, 0, 8),
        ),
    );
    if outage.retries == 0 || outage.counters.stale != 0 {
        eprintln!(
            "bench_report: outage swap must retry with zero stale deliveries (retries {}, stale {})",
            outage.retries, outage.counters.stale
        );
        std::process::exit(1);
    }
    for (label, faulty) in [("lossy_0.25", &lossy), ("action_outage_0_8", &outage)] {
        if faulty.version != 2 || faulty.swaps != 2 {
            eprintln!("bench_report: {label} swap did not converge");
            std::process::exit(1);
        }
        if faulty.blacklist != clean.blacklist || faulty.table != clean.table {
            eprintln!("bench_report: {label} swap diverged from the fault-free fingerprint");
            std::process::exit(1);
        }
        // The PR-4 lossy-action invariant, which the swap must not weaken:
        // TPs may trade for FNs while installs retry, FPs never inflate
        // and the malicious packet population is conserved.
        let conserved =
            faulty.confusion.0 + faulty.confusion.3 == clean.confusion.0 + clean.confusion.3;
        if faulty.confusion.1 != clean.confusion.1 || !conserved {
            eprintln!("bench_report: {label} swap inflated FPs or lost malicious packets");
            std::process::exit(1);
        }
    }

    // --- Idempotent-replay and stale-rejection accounting (also puts the
    // replayed/stale telemetry counters on the board for the snapshot).
    let afl = accept_all(13);
    let mut acct = Pipeline::new(swap_pipe_cfg(), afl.clone(), accept_all(4));
    let mut atable = RangeTable::new(vec![4]);
    atable.push(RangeEntry { fields: vec![(0, 15)], priority: 0 });
    let a1 = RulesetTxn::full_install(1, &atable, afl.clone());
    acct.apply_ruleset(&a1).expect("v1");
    acct.apply_ruleset(&a1).expect("replaying v1 must be a no-op");
    let stale_rejected = acct.apply_ruleset(&RulesetTxn::full_install(9, &atable, afl)).is_err();
    let ac = acct.ruleset_counters();
    if !stale_rejected || (ac.swaps, ac.replayed, ac.stale) != (1, 1, 1) {
        eprintln!("bench_report: replay/stale accounting broken: {ac:?}");
        std::process::exit(1);
    }

    // --- Assemble the report sections.
    let mut delivery_json = json::Object::new();
    delivery_json
        .u64("settle_digests", r_settle.digests)
        .u64("retries", r_settle.ruleset_retries)
        .u64("swaps", r_settle.ruleset_swaps)
        .u64("delivered_version", delivered_version)
        .u64("tcam_writes", tcam_writes);
    let mut drift_json = json::Object::new();
    drift_json
        .u64("window", drift_cfg.window as u64)
        .u64("min_samples", drift_cfg.min_samples as u64)
        .f64("threshold", drift_cfg.threshold)
        .u64("cooldown", drift_cfg.cooldown)
        .u64("calm_digests", r_calm.digests)
        .u64("shifted_digests", r_shift.digests)
        .u64("observed", drift_observed)
        .u64("fires", drift_fires)
        .f64("reference_fraction", reference.unwrap_or(0.0))
        .f64("calm_fraction", calm_fraction)
        .f64("shifted_fraction", shifted_fraction)
        // Hard-gated above: calm traffic quiet, the regime shift fired.
        .bool("fired_on_calm", false)
        .bool("fired_on_shift", true)
        .raw("delivery", delivery_json.render(2));

    let mut retrain_json = json::Object::new();
    retrain_json
        .u64("old_entries", old_table.len() as u64)
        .u64("new_entries", new_table.len() as u64)
        .u64("shared_entries", ((retrain_full - retrain_churn) / 2) as u64)
        .u64("diff_churn", retrain_churn as u64)
        .u64("full_reinstall", retrain_full as u64)
        .u64("tcam_writes", tcam_writes);
    let mut perturbed_json = json::Object::new();
    perturbed_json
        .u64("old_entries", old_table.len() as u64)
        .u64("new_entries", perturbed.len() as u64)
        .u64("shared_entries", ((perturbed_full - vp.churn()) / 2) as u64)
        .u64("diff_churn", vp.churn() as u64)
        .u64("full_reinstall", perturbed_full as u64);
    let mut diff_json = json::Object::new();
    diff_json
        // Hard-gated above: writes ≤ diff churn ≤ full reinstall on the
        // warm retrain, and strictly below it on the perturbed retrain.
        .bool("writes_at_most_diff", true)
        .bool("perturbed_diff_below_full_reinstall", true)
        .raw("warm_retrain", retrain_json.render(2))
        .raw("perturbed_retrain", perturbed_json.render(2));

    let mut window_json = json::Object::new();
    window_json
        .u64("packets", swap_run.len() as u64)
        .u64("batch_size", SWAP_BATCH as u64)
        .u64("swap_batch", swap_at as u64)
        .u64("generation_disagreements", disagreements)
        // Hard-gated above: zero packets saw a verdict belonging to
        // neither generation, and the pre-swap prefix was byte-identical
        // to the pure-old run.
        .u64("misclassified_during_swap", mixed)
        .bool("prefix_identical_to_old", true)
        .bool("hitless", true);

    let scenario_json = |label: &str, r: &SwapChaosRun| -> String {
        let mut o = json::Object::new();
        o.str("scenario", label)
            .u64("version", r.version)
            .u64("swaps", r.swaps)
            .u64("retries", r.retries)
            .u64("installed", r.counters.installed)
            .u64("removed", r.counters.removed)
            .u64("stale", r.counters.stale)
            .u64("tp", r.confusion.0)
            .u64("fp", r.confusion.1)
            .u64("tn", r.confusion.2)
            .u64("fn", r.confusion.3)
            .u64("blacklist_len", r.blacklist.len() as u64)
            .u64("table_entries", r.table.len() as u64);
        o.render(2)
    };
    let scenarios = vec![
        scenario_json("fault_free", &clean),
        scenario_json("lossy_0.25", &lossy),
        scenario_json("action_outage_0_8", &outage),
    ];
    let mut conv_json = json::Object::new();
    conv_json
        // Hard-gated above for every faulted scenario.
        .bool("blacklist_matches_fault_free", true)
        .bool("table_matches_fault_free", true)
        .bool("no_fp_inflation", true)
        .bool("malicious_population_conserved", true)
        .raw("scenarios", json::array(&scenarios, 1));

    let mut det_points_json = Vec::new();
    for (plan_label, shards, workers) in det_points {
        let mut o = json::Object::new();
        o.str("plan", plan_label)
            .u64("shards", shards as u64)
            .u64("workers", workers as u64)
            .bool("identical_to_1x1", true);
        det_points_json.push(o.render(2));
    }
    let mut det_json = json::Object::new();
    det_json.bool("byte_identical", true).raw("points", json::array(&det_points_json, 1));

    let mut versioning_json = json::Object::new();
    versioning_json
        .u64("replayed_absorbed", ac.replayed)
        .u64("stale_rejected", ac.stale)
        .bool("replay_is_noop", true)
        .bool("version_gap_rejected_typed", true);

    SwapSweepDoc {
        drift_loop: drift_json.render(1),
        rule_diff: diff_json.render(1),
        swap_window: window_json.render(1),
        fault_convergence: conv_json.render(1),
        determinism: det_json.render(1),
        versioning: versioning_json.render(1),
    }
}

// ---------------------------------------------------------------------
// PR-9: the overload-resilience sweep — the adversarial scenario canon
// replayed through a deliberately starved flow table, scored per
// scenario and gated on grid determinism, observable degraded-mode
// hysteresis, bounded benign-FP inflation, post-storm reconvergence and
// the untouched golden exact path.
// ---------------------------------------------------------------------

/// Replay batch size of the overload sweep. Small enough that a storm's
/// calm tail spans many control ticks (the hysteresis exit needs
/// consecutive calm batches per shard, and time-to-mitigation is
/// measured in ticks), large enough to keep the 3×3 grid cheap.
const OVERLOAD_BATCH: usize = 1024;

/// Flow-table size of the overload sweep. The sharded backend divides
/// this across the 16 logical shards (512 / 16 = 32 slots per hash
/// table, × 2 tables = 64 flows per shard, 1024 fleet-wide) —
/// deliberately small enough that the canon storms overrun it, and large
/// enough per shard that a modest benign tail fits entirely resident
/// (the hysteresis exit needs genuinely calm windows, which a
/// capacity-4 shard can never produce under any tail).
const OVERLOAD_SLOTS: usize = 512;

/// Shard × worker grid every scenario's fingerprint is pinned across.
const OVERLOAD_GRID: [usize; 3] = [1, 2, 8];

fn overload_pipe_cfg() -> PipelineConfig {
    PipelineConfig::default().with_flow_table(
        FlowTableConfig::default().with_pkt_threshold(4).with_slots_per_table(OVERLOAD_SLOTS),
    )
}

/// Everything one overload replay produces that the scorecard and the
/// grid-determinism gate consume. `PartialEq` is the fingerprint: two
/// runs are "byte-identical" iff every field matches, including the full
/// mitigation log and the merged overload accounting.
#[derive(Clone, PartialEq)]
struct OverloadRun {
    confusion: (u64, u64, u64, u64),
    packets: u64,
    dropped: u64,
    digests: u64,
    blacklist: Vec<FiveTuple>,
    records: Vec<MitigationRecord>,
    unmitigated: u64,
    ttm_packets: Vec<u64>,
    ttm_ticks: Vec<u64>,
    overload: OverloadStats,
}

/// One scenario replay at a given shard/worker point. Returns the run
/// fingerprint plus the backend itself (the recovery gate keeps the
/// storm-worn pipeline of the 1×1 point alive for a follow-on replay).
fn run_overload_case(
    trace: &Trace,
    fl_rules: &RuleSet,
    pl_rules: &RuleSet,
    shards: usize,
    workers: usize,
) -> (OverloadRun, ShardedPipeline) {
    iguard_runtime::par::with_workers(workers, || {
        let cfg = ShardedPipelineConfig::from(overload_pipe_cfg()).with_shards(shards);
        let mut sp = ShardedPipeline::new(cfg, fl_rules.clone(), pl_rules.clone());
        let mut controller = Controller::new(ControllerConfig::default());
        let mut log = MitigationLog::default();
        let rcfg = ReplayConfig::default().with_batch_size(OVERLOAD_BATCH);
        let report = replay_chaos_traced(
            trace,
            &mut sp,
            &mut controller,
            &rcfg,
            &ChaosConfig::default(),
            Some(&mut log),
        );
        let run = OverloadRun {
            confusion: (report.tp, report.fp, report.tn, report.fn_),
            packets: report.packets,
            dropped: report.dropped,
            digests: report.digests,
            blacklist: sp.blacklist_contents(),
            unmitigated: log.unmitigated() as u64,
            ttm_packets: log.ttm_packets_sorted(),
            ttm_ticks: log.ttm_ticks_sorted(),
            records: log.records,
            overload: sp.overload_stats(),
        };
        (run, sp)
    })
}

/// The same scenario replay with the overload response disabled (an
/// unreachable degrade threshold, so nothing is ever shed at the source)
/// — the anchor of the bounded-FP-inflation gate.
fn run_overload_baseline(trace: &Trace, fl_rules: &RuleSet, pl_rules: &RuleSet) -> OverloadRun {
    iguard_runtime::par::with_workers(1, || {
        let pipe = overload_pipe_cfg()
            .with_overload(OverloadConfig::default().with_degrade_enter_milli(1001));
        let cfg = ShardedPipelineConfig::from(pipe).with_shards(1);
        let mut sp = ShardedPipeline::new(cfg, fl_rules.clone(), pl_rules.clone());
        let mut controller = Controller::new(ControllerConfig::default());
        let mut log = MitigationLog::default();
        let rcfg = ReplayConfig::default().with_batch_size(OVERLOAD_BATCH);
        let report = replay_chaos_traced(
            trace,
            &mut sp,
            &mut controller,
            &rcfg,
            &ChaosConfig::default(),
            Some(&mut log),
        );
        OverloadRun {
            confusion: (report.tp, report.fp, report.tn, report.fn_),
            packets: report.packets,
            dropped: report.dropped,
            digests: report.digests,
            blacklist: sp.blacklist_contents(),
            unmitigated: log.unmitigated() as u64,
            ttm_packets: log.ttm_packets_sorted(),
            ttm_ticks: log.ttm_ticks_sorted(),
            records: log.records,
            overload: sp.overload_stats(),
        }
    })
}

/// Shifts every packet of a trace `offset_ns` into the future, labels
/// preserved — used to schedule recovery segments and calm tails after a
/// storm has ended and its residents have timed out.
fn shift_trace(t: &Trace, offset_ns: u64) -> Trace {
    let mut out = Trace::new();
    for (p, &label) in t.packets.iter().zip(&t.labels) {
        let mut p = *p;
        p.ts_ns += offset_ns;
        out.push(p, label);
    }
    out
}

/// Builds one canon scenario's replay workload: benign background across
/// the storm window, the storm itself, and an *echo tail* — one small
/// benign flow set (~150 devices ≈ 750 flows, well under the 1024-slot
/// capacity and ~47 flows per logical shard against a per-shard capacity
/// of 64), replayed several times shifted past the idle timeout. The
/// first pass installs the keys (displacing stale storm residents);
/// every later pass is pure resident hits, which generate zero window
/// churn by construction, so each degraded shard's pressure window is
/// guaranteed to roll over calm and the hysteresis exit's calm-batch run
/// completes regardless of where the storm left the window phase.
/// Returns the merged trace and the storm's last timestamp.
fn overload_scenario_trace(sc: Scenario, seed: u64) -> (Trace, u64) {
    // Per-scenario intensity against the 1024-flow table: the churn
    // floods offer several times the table's capacity in live flows
    // (saturation-collision regime, the state-exhaustion signature); the
    // slow scenarios stay deliberately *under* capacity — stealth
    // traffic must not trip the pressure signal, only detection.
    let intensity = match sc {
        Scenario::StateExhaustion => 16_000,
        Scenario::PulseWave => 8_000,
        Scenario::Slowloris => 300,
        Scenario::C2Beacon => 200,
    };
    let window = 8.0;
    let salt = ALL_SCENARIOS.iter().position(|s| s.name() == sc.name()).unwrap_or(0) as u64;
    let mut rng = Rng::seed_from_u64(seed ^ 0x0E11_0AD0 ^ (salt << 8));
    let storm = sc.trace(intensity, window, &mut rng);
    let storm_end = storm.packets.last().map_or(0, |p| p.ts_ns);
    let background = benign_trace(60, window, &mut rng);
    // The tail starts 2.5 s after the storm ends — past the 2 s idle
    // timeout, so lingering storm residents are reclaimable on first
    // touch — and echoes the same flow set 8 more times at the same
    // spacing.
    const TAIL_ECHOES: u64 = 8;
    let tail_base = benign_trace(150, 12.0, &mut rng);
    let tail_span = tail_base.packets.last().map_or(0, |p| p.ts_ns) + 2_500_000_000;
    let mut segs = vec![background, storm];
    for e in 0..=TAIL_ECHOES {
        segs.push(shift_trace(&tail_base, storm_end + 2_500_000_000 + e * tail_span));
    }
    (Trace::merge(segs), storm_end)
}

/// CDF summary of a sorted sample set: count, mean, deciles, and tail
/// percentiles. Empty sets render as zeroed summaries with `count` 0.
fn cdf_json(sorted: &[u64], indent: usize) -> String {
    let pctl = |p: f64| -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    };
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<u64>() as f64 / sorted.len() as f64
    };
    let deciles: Vec<String> = (1..=10).map(|d| pctl(d as f64 / 10.0).to_string()).collect();
    let mut o = json::Object::new();
    o.u64("count", sorted.len() as u64)
        .f64("mean", mean)
        .u64("p50", pctl(0.5))
        .u64("p90", pctl(0.9))
        .u64("p99", pctl(0.99))
        .u64("max", sorted.last().copied().unwrap_or(0))
        .raw("deciles", json::array(&deciles, indent + 1));
    o.render(indent)
}

fn overload_stats_json(o: &OverloadStats, indent: usize) -> String {
    let mut j = json::Object::new();
    j.u64("pressure_milli", o.pressure.pressure_milli as u64)
        .u64("churn_milli_hwm", o.pressure.churn_milli_hwm as u64)
        .u64("occupancy_hwm", o.pressure.occupancy_hwm as u64)
        .u64("collision_window_hwm", o.pressure.collision_window_hwm)
        .u64("eviction_window_hwm", o.pressure.eviction_window_hwm)
        .u64("evictions", o.pressure.evictions)
        .u64("degraded_shards_at_end", o.degraded_shards as u64)
        .u64("degraded_entries", o.degraded_entries)
        .u64("degraded_exits", o.degraded_exits)
        .u64("degraded_batches", o.degraded_batches)
        .u64("shed_benign", o.shed_benign)
        .u64("shed_malicious", o.shed_malicious)
        .u64("admission_tightened", o.admission_tightened)
        .u64("digest_buffered_hwm", o.digest_buffered_hwm as u64);
    j.render(indent)
}

/// The PR-2 golden exact-path deployment (seed 0xC0FFEE, default-size
/// flow table, no storm), re-run under this binary so the overload layer
/// provably leaves the non-overloaded exact path untouched. Aborts if
/// the confusion matrix moved off the PR-2 constant.
fn run_golden_exact_gate() -> (u64, (u64, u64, u64, u64)) {
    const GOLDEN_CONFUSION: (u64, u64, u64, u64) = (3999, 1019, 1569, 172);
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    let cfg = ExtractConfig::default();
    let train_trace = benign_trace(200, 8.0, &mut rng);
    let train = extract_flows(&train_trace, &cfg);
    let teacher = OracleTeacher(|x: &[f32]| x[10] < 0.0008 || x[2] > 1200.0);
    let ig = IGuardConfig { n_trees: 5, subsample: 64, k_augment: 32, ..Default::default() };
    let mut forest = IGuardForest::fit(&train.features, &teacher, &ig, &mut rng);
    forest.distill(&train.features, &teacher, ig.k_augment, &mut rng);
    let rules = RuleSet::from_iguard(&forest, 400_000).expect("golden FL budget");

    let mut seen = std::collections::HashSet::new();
    let mut pl = iguard_runtime::Dataset::default();
    for p in &train_trace.packets {
        if seen.insert(p.five.canonical()) {
            pl.push_row(&packet_level_features(p));
        }
    }
    let early = EarlyModel::train(
        &pl,
        &IsolationForestConfig { n_trees: 10, subsample: 64, contamination: 0.05 },
        400_000,
        &mut rng,
    )
    .expect("golden PL rules");

    let benign = benign_trace(100, 6.0, &mut rng);
    let flood = Attack::UdpDdos.trace(40, 6.0, &mut rng);
    let trace = Trace::merge(vec![benign, flood]);
    let mut pipeline = Pipeline::new(
        PipelineConfig {
            flow_table: FlowTableConfig { pkt_threshold: 4, ..Default::default() },
            ..Default::default()
        },
        rules,
        early.rules,
    );
    let mut controller = Controller::new(ControllerConfig::default());
    let r = replay(&trace, &mut pipeline, &mut controller, &ReplayConfig::default());
    if (r.tp, r.fp, r.tn, r.fn_) != GOLDEN_CONFUSION {
        eprintln!(
            "bench_report: PR-2 golden confusion matrix drifted on the exact path: \
             ({}, {}, {}, {}) != {GOLDEN_CONFUSION:?}",
            r.tp, r.fp, r.tn, r.fn_
        );
        std::process::exit(1);
    }
    (r.packets, GOLDEN_CONFUSION)
}

/// Rendered sections of `BENCH_PR9.json`.
struct OverloadSweepDoc {
    scenarios: String,
    recovery: String,
    admission: String,
    golden: String,
}

/// The PR-9 tentpole sweep. For each canon scenario: replay the storm
/// workload across the full shard × worker grid and pin every point's
/// fingerprint (confusion, digests, blacklist, mitigation log, overload
/// accounting) to the 1×1 run; demand observable degraded-mode entry
/// *and* exit (with full recovery by end of trace) on the churn storms;
/// bound the benign-FP inflation of the shedding response against a
/// shedding-disabled twin. Then: the storm-worn pulse-wave pipeline must
/// reconverge to a fresh pipeline's confusion matrix on a follow-on
/// segment, the sketch-admission seam must demonstrably tighten under
/// pressure (and only under pressure), and the PR-2 golden matrix must
/// be untouched on the exact path.
fn run_overload_sweep(seed: u64, fl_rules: &RuleSet, pl_rules: &RuleSet) -> OverloadSweepDoc {
    let mut scenario_sections = Vec::new();
    let mut worn_pulse: Option<(ShardedPipeline, u64)> = None;

    for sc in ALL_SCENARIOS {
        eprintln!("bench_report: overload scenario {}", sc.name());
        let (trace, storm_end) = overload_scenario_trace(sc, seed);
        let malicious_packets = trace.labels.iter().filter(|&&l| l).count() as u64;

        // Grid determinism gate: 1/2/8 shards × 1/2/8 workers, every
        // fingerprint byte-identical to the 1×1 point.
        let (base, base_sp) = run_overload_case(&trace, fl_rules, pl_rules, 1, 1);
        let mut grid_points = 1u64;
        for shards in OVERLOAD_GRID {
            for workers in OVERLOAD_GRID {
                if (shards, workers) == (1, 1) {
                    continue;
                }
                let (got, _) = run_overload_case(&trace, fl_rules, pl_rules, shards, workers);
                if got != base {
                    eprintln!(
                        "bench_report: {} fingerprint diverged at {shards} shards / {workers} workers",
                        sc.name()
                    );
                    std::process::exit(1);
                }
                grid_points += 1;
            }
        }

        // Hysteresis observability gate, on the scenarios engineered to
        // saturate the table: the run must enter degraded mode, shed
        // benign digests while degraded, exit on the calm tail, and end
        // with every shard recovered.
        let storm_scenario = matches!(sc, Scenario::StateExhaustion | Scenario::PulseWave);
        if storm_scenario {
            let o = &base.overload;
            if o.degraded_entries == 0 || o.degraded_exits == 0 || o.degraded_batches == 0 {
                eprintln!(
                    "bench_report: {} never cycled degraded mode (entries {}, exits {}, batches {})",
                    sc.name(),
                    o.degraded_entries,
                    o.degraded_exits,
                    o.degraded_batches
                );
                std::process::exit(1);
            }
            if o.shed_benign == 0 {
                eprintln!("bench_report: {} shed no benign digests while degraded", sc.name());
                std::process::exit(1);
            }
            if o.degraded_shards != 0 {
                eprintln!(
                    "bench_report: {} ended with {} shards still degraded",
                    sc.name(),
                    o.degraded_shards
                );
                std::process::exit(1);
            }
        }

        // Bounded-FP gate: shedding benign digests defers ClearFlow
        // housekeeping but never flips a verdict, so the degraded run's
        // benign-FP count must stay within a small slack of the
        // shedding-disabled twin (slot-lifetime shifts move collision
        // timing, hence the slack rather than exact equality).
        let baseline = run_overload_baseline(&trace, fl_rules, pl_rules);
        let fp_cap = baseline.confusion.1 + baseline.confusion.1 / 20 + 8;
        if base.confusion.1 > fp_cap {
            eprintln!(
                "bench_report: {} inflated benign FPs while degraded ({} > cap {fp_cap}, baseline {})",
                sc.name(),
                base.confusion.1,
                baseline.confusion.1
            );
            std::process::exit(1);
        }
        if base.packets != baseline.packets {
            eprintln!("bench_report: {} packet population not conserved", sc.name());
            std::process::exit(1);
        }

        let (tp, fp, tn, fn_) = base.confusion;
        let detection_rate = tp as f64 / (tp + fn_).max(1) as f64;
        let benign_fp_rate = fp as f64 / (fp + tn).max(1) as f64;
        let degraded_residency = base.overload.degraded_batches as f64
            / base.packets.div_ceil(OVERLOAD_BATCH as u64).max(1) as f64;

        let mut fp_base_json = json::Object::new();
        fp_base_json
            .u64("fp", baseline.confusion.1)
            .u64("tp", baseline.confusion.0)
            .u64("digests", baseline.digests)
            .u64("fp_cap", fp_cap);

        let mut sj = json::Object::new();
        sj.str("scenario", sc.name())
            .str("description", sc.description())
            .u64("packets", base.packets)
            .u64("malicious_packets", malicious_packets)
            .u64("storm_end_ns", storm_end)
            .u64("tp", tp)
            .u64("fp", fp)
            .u64("tn", tn)
            .u64("fn", fn_)
            .f64("detection_rate", detection_rate)
            .f64("benign_fp_rate", benign_fp_rate)
            .u64("digests", base.digests)
            .u64("blacklist_len", base.blacklist.len() as u64)
            .u64("mitigated_flows", base.records.len() as u64)
            .u64("unmitigated_flows", base.unmitigated)
            .f64("degraded_residency", degraded_residency)
            .u64("grid_points", grid_points)
            .bool("grid_byte_identical", true)
            .bool("fp_inflation_bounded", true)
            .bool("degraded_cycle_observed", storm_scenario)
            .raw("ttm_packets", cdf_json(&base.ttm_packets, 3))
            .raw("ttm_ticks", cdf_json(&base.ttm_ticks, 3))
            .raw("overload", overload_stats_json(&base.overload, 3))
            .raw("shedding_disabled_baseline", fp_base_json.render(3));
        scenario_sections.push(sj.render(2));

        if let Scenario::PulseWave = sc {
            let tail_end = trace.packets.last().map_or(storm_end, |p| p.ts_ns);
            worn_pulse = Some((base_sp, tail_end));
        }
    }

    // --- Recovery gate: the storm-worn pulse-wave pipeline, on a
    // follow-on segment past the idle timeout (disjoint IP pools, fresh
    // controller), must produce the exact confusion matrix of a fresh
    // pipeline — no stale storm state may leak into reborn flows.
    eprintln!("bench_report: overload recovery gate (storm-worn vs fresh pipeline)");
    let (mut worn, worn_end) = worn_pulse.expect("pulse-wave scenario ran");
    let recovery = {
        let mut rng = Rng::seed_from_u64(seed ^ 0x4EC0_FE4);
        let segment = Trace::merge(vec![
            benign_trace(100, 6.0, &mut rng),
            Attack::UdpDdos.trace(40, 6.0, &mut rng),
        ]);
        shift_trace(&segment, worn_end + 2_500_000_000)
    };
    let rcfg = ReplayConfig::default().with_batch_size(OVERLOAD_BATCH);
    let run_recovery = |dp: &mut dyn DataPlane| -> ReplayReport {
        let mut controller = Controller::new(ControllerConfig::default());
        iguard_runtime::par::with_workers(1, || replay(&recovery, dp, &mut controller, &rcfg))
    };
    let worn_report = run_recovery(&mut worn);
    let fresh_cfg = ShardedPipelineConfig::from(overload_pipe_cfg()).with_shards(1);
    let mut fresh = ShardedPipeline::new(fresh_cfg, fl_rules.clone(), pl_rules.clone());
    let fresh_report = run_recovery(&mut fresh);
    let worn_c = (worn_report.tp, worn_report.fp, worn_report.tn, worn_report.fn_);
    let fresh_c = (fresh_report.tp, fresh_report.fp, fresh_report.tn, fresh_report.fn_);
    if worn_c != fresh_c {
        eprintln!(
            "bench_report: storm-worn pipeline did not reconverge (worn {worn_c:?}, fresh {fresh_c:?})"
        );
        std::process::exit(1);
    }
    let mut recovery_json = json::Object::new();
    recovery_json
        .str("scenario", "pulse_wave")
        .u64("segment_packets", worn_report.packets)
        .u64("tp", worn_c.0)
        .u64("fp", worn_c.1)
        .u64("tn", worn_c.2)
        .u64("fn", worn_c.3)
        .u64("worn_digests", worn_report.digests)
        .u64("fresh_digests", fresh_report.digests)
        .bool("confusion_matches_fresh", true);

    // --- Admission gate: under storm pressure the sketch-admission seam
    // must demand more repeat evidence (tightened rejections observable),
    // and on calm traffic it must never tighten. The storm here is a
    // slowloris-shape hold: long-lived flows that stay untracked once
    // the table fills with live residents collide on nearly *every*
    // packet, driving window churn deep past the degrade threshold —
    // whereas a 1-3-packet churn flood absorbs every flow's first packet
    // in the sketch (no churn contribution) and structurally caps churn
    // near 500 per-mille, below the enter threshold. The sketched
    // backend is a single unsharded table, so it gets its own small
    // slot count (64 slots × 2 tables = 128 flows) against a 1200-flow
    // hold; the calm control is benign traffic sized *within* that
    // capacity.
    eprintln!("bench_report: overload admission gate (sketch seam under pressure)");
    let storm_trace = Scenario::Slowloris.trace(1_200, 8.0, &mut Rng::seed_from_u64(seed ^ 0x51C0));
    let calm_trace = benign_trace(30, 8.0, &mut Rng::seed_from_u64(seed ^ 0xCA1));
    let probe = |trace: &Trace| -> u64 {
        let pipe = PipelineConfig::default().with_flow_table(
            FlowTableConfig::default().with_pkt_threshold(4).with_slots_per_table(64),
        );
        let cfg = SketchedPipelineConfig::default().with_pipeline(pipe).with_promote_threshold(2);
        let mut dp = SketchedPipeline::new(cfg, fl_rules.clone(), pl_rules.clone());
        let mut controller = Controller::new(ControllerConfig::default());
        let rcfg = ReplayConfig::default().with_batch_size(OVERLOAD_BATCH);
        let _ =
            iguard_runtime::par::with_workers(1, || replay(trace, &mut dp, &mut controller, &rcfg));
        dp.overload_stats().admission_tightened
    };
    let storm_tightened = probe(&storm_trace);
    let calm_tightened = probe(&calm_trace);
    if storm_tightened == 0 || calm_tightened != 0 {
        eprintln!(
            "bench_report: pressure-adaptive admission gate failed \
             (storm tightened {storm_tightened}, calm tightened {calm_tightened})"
        );
        std::process::exit(1);
    }
    let mut admission_json = json::Object::new();
    admission_json
        .u64("promote_threshold", 2)
        .u64("storm_tightened", storm_tightened)
        .u64("calm_tightened", calm_tightened)
        .bool("tightens_only_under_pressure", true);

    // --- Golden gate: the exact path, untouched.
    eprintln!("bench_report: overload golden gate (PR-2 exact path)");
    let (golden_packets, golden) = run_golden_exact_gate();
    let mut golden_json = json::Object::new();
    golden_json
        .u64("packets", golden_packets)
        .u64("tp", golden.0)
        .u64("fp", golden.1)
        .u64("tn", golden.2)
        .u64("fn", golden.3)
        .bool("unchanged", true);

    OverloadSweepDoc {
        scenarios: json::array(&scenario_sections, 1),
        recovery: recovery_json.render(1),
        admission: admission_json.render(1),
        golden: golden_json.render(1),
    }
}

/// Intermediate phase boundaries for the PR-10 sweep, against the
/// overload canon's packet threshold of 4. Boundary 2 is mandatory for
/// the state-exhaustion scenario: its probe flows send 1–3 packets, so
/// any later boundary (or the single-shot threshold) never sees them.
const PHASE_BOUNDARIES: [u64; 2] = [2, 3];

/// The overload canon flow table plus the phase schedule.
fn phase_pipe_cfg() -> PipelineConfig {
    PipelineConfig::default().with_flow_table(
        FlowTableConfig::default()
            .with_pkt_threshold(4)
            .with_slots_per_table(OVERLOAD_SLOTS)
            .with_phases(PhaseSchedule::new(&PHASE_BOUNDARIES)),
    )
}

/// One phase-enabled scenario replay at a given shard/worker point. The
/// phase schedule is in the flow-table config; `phase_rules` (one
/// whitelist per boundary, possibly empty = phases disabled in all but
/// the boundary bookkeeping) install through the hitless epoch flip
/// before the first packet.
fn run_phase_case(
    trace: &Trace,
    fl_rules: &RuleSet,
    pl_rules: &RuleSet,
    phase_rules: &[RuleSet],
    shards: usize,
    workers: usize,
) -> OverloadRun {
    iguard_runtime::par::with_workers(workers, || {
        let cfg = ShardedPipelineConfig::from(phase_pipe_cfg()).with_shards(shards);
        let mut sp = ShardedPipeline::new(cfg, fl_rules.clone(), pl_rules.clone());
        if !phase_rules.is_empty() {
            sp.set_phase_rulesets(phase_rules);
        }
        let mut controller = Controller::new(ControllerConfig::default());
        let mut log = MitigationLog::default();
        let rcfg = ReplayConfig::default().with_batch_size(OVERLOAD_BATCH);
        let report = replay_chaos_traced(
            trace,
            &mut sp,
            &mut controller,
            &rcfg,
            &ChaosConfig::default(),
            Some(&mut log),
        );
        OverloadRun {
            confusion: (report.tp, report.fp, report.tn, report.fn_),
            packets: report.packets,
            dropped: report.dropped,
            digests: report.digests,
            blacklist: sp.blacklist_contents(),
            unmitigated: log.unmitigated() as u64,
            ttm_packets: log.ttm_packets_sorted(),
            ttm_ticks: log.ttm_ticks_sorted(),
            records: log.records,
            overload: sp.overload_stats(),
        }
    })
}

/// Trains the per-boundary phase whitelists: one guided forest per
/// boundary on flow features truncated to that boundary's packet prefix
/// (later phases warm-started from the previous phase's forest), under a
/// prefix-shape oracle teacher — fast, small packets are the storm
/// signature at two packets; every benign profile in the canon either
/// paces slower or sends larger packets.
fn train_phase_rulesets(seed: u64) -> (Vec<RuleSet>, usize, Vec<u64>) {
    let mut rng = Rng::seed_from_u64(seed ^ 0x0F1A_5E10);
    // The training mix must straddle the teacher's boundary: a guided
    // forest only learns splits its training envelope can express, so
    // benign background alone (all on one side) would compile an
    // all-benign whitelist that never convicts.
    let mixed = Trace::merge(vec![
        benign_trace(150, 8.0, &mut rng),
        Scenario::StateExhaustion.trace(600, 8.0, &mut rng),
        Scenario::PulseWave.trace(300, 8.0, &mut rng),
        Scenario::Slowloris.trace(80, 8.0, &mut rng),
        Scenario::C2Beacon.trace(60, 8.0, &mut rng),
    ]);
    let teacher = OracleTeacher(|x: &[f32]| x[7] < 0.008 && x[6] <= 130.0);
    let datasets: Vec<iguard_runtime::Dataset> = PHASE_BOUNDARIES
        .iter()
        .map(|&b| {
            let cfg = ExtractConfig { pkt_threshold: b, ..Default::default() };
            extract_flows(&mixed, &cfg).features
        })
        .collect();
    let cfg = PhaseTrainConfig {
        forest: IGuardConfig { n_trees: 7, subsample: 64, k_augment: 64, ..Default::default() },
        // Super-majority certainty: early convictions are cheap to get
        // wrong (a wrongly blacklisted benign flow stays dropped), so
        // demand 6-of-7 trees rather than a plain majority.
        certainty: 0.7,
        max_regions: 600_000,
        warm_start: true,
    };
    let models = train_phases(&datasets, &teacher, &cfg, &mut rng).expect("phase training data");
    let lens = models.rulesets.iter().map(|r| r.len() as u64).collect();
    (models.rulesets, models.warm_started, lens)
}

/// Median of a sorted sample set (0 when empty), matching `cdf_json`'s
/// p50.
fn sorted_p50(v: &[u64]) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v[((v.len() - 1) as f64 * 0.5).round() as usize]
}

/// Rendered sections of `BENCH_PR10.json`.
struct PhaseSweepDoc {
    training: String,
    scenarios: String,
    golden: String,
}

/// The PR-10 tentpole sweep. Per canon scenario, three runs on the PR-9
/// storm workload: the single-shot baseline (no phase schedule), a
/// phases-configured-but-no-rulesets run (must fingerprint-match the
/// baseline exactly — disabling phases recovers single-shot semantics),
/// and the phase-enabled run, grid-gated byte-identical across
/// 1/2/8 shards × 1/2/8 workers. The phase-enabled run's
/// detection-latency CDF (packets of exposure before the blacklist
/// install, split by deciding phase) is scored against the baseline:
/// pulse-wave median exposure must strictly improve, and
/// state-exhaustion — unmitigatable single-shot, its probes die before
/// the threshold — must show nonzero mitigation.
fn run_phase_sweep(seed: u64, fl_rules: &RuleSet, pl_rules: &RuleSet) -> PhaseSweepDoc {
    eprintln!("bench_report: phase training ({:?} boundaries)", PHASE_BOUNDARIES);
    let (phase_rules, warm_started, rule_lens) = train_phase_rulesets(seed);

    let mut scenario_sections = Vec::new();
    for sc in ALL_SCENARIOS {
        eprintln!("bench_report: phase scenario {}", sc.name());
        let (trace, _) = overload_scenario_trace(sc, seed);

        // Single-shot baseline: the PR-9 configuration, no phase schedule.
        let (single, _) = run_overload_case(&trace, fl_rules, pl_rules, 1, 1);

        // Phases-disabled gate: a schedule with no installed rulesets
        // must escalate every boundary and reproduce the single-shot
        // fingerprint byte-for-byte.
        let disabled = run_phase_case(&trace, fl_rules, pl_rules, &[], 1, 1);
        if disabled != single {
            eprintln!(
                "bench_report: {} phases-disabled run diverged from the single-shot baseline",
                sc.name()
            );
            std::process::exit(1);
        }

        // Phase-enabled grid: every point byte-identical to 1×1.
        let base = run_phase_case(&trace, fl_rules, pl_rules, &phase_rules, 1, 1);
        let mut grid_points = 1u64;
        for shards in OVERLOAD_GRID {
            for workers in OVERLOAD_GRID {
                if (shards, workers) == (1, 1) {
                    continue;
                }
                let got = run_phase_case(&trace, fl_rules, pl_rules, &phase_rules, shards, workers);
                if got != base {
                    eprintln!(
                        "bench_report: {} phase fingerprint diverged at {shards} shards / {workers} workers",
                        sc.name()
                    );
                    std::process::exit(1);
                }
                grid_points += 1;
            }
        }

        // Detection-latency gates against the single-shot baseline.
        let base_p50 = sorted_p50(&base.ttm_packets);
        let single_p50 = sorted_p50(&single.ttm_packets);
        match sc {
            Scenario::PulseWave => {
                if base.records.is_empty() || base_p50 >= single_p50 {
                    eprintln!(
                        "bench_report: pulse-wave median exposure did not improve \
                         (phased p50 {base_p50} vs single-shot p50 {single_p50})"
                    );
                    std::process::exit(1);
                }
            }
            Scenario::StateExhaustion => {
                if base.records.is_empty() {
                    eprintln!(
                        "bench_report: state-exhaustion mitigated no flows with phases enabled \
                         (single-shot mitigated {}, unmitigated {})",
                        single.records.len(),
                        single.unmitigated
                    );
                    std::process::exit(1);
                }
            }
            _ => {}
        }

        // Per-deciding-phase exposure CDFs, FINAL_PHASE (single-shot
        // verdicts within the phased run) last.
        let mut by_phase: std::collections::BTreeMap<u8, Vec<u64>> =
            std::collections::BTreeMap::new();
        for r in &base.records {
            by_phase.entry(r.deciding_phase).or_default().push(r.packets_before_install);
        }
        let mut phase_cdfs = Vec::new();
        for (ph, mut v) in by_phase {
            v.sort_unstable();
            let mut o = json::Object::new();
            if ph == iguard_switch::pipeline::FINAL_PHASE {
                o.str("phase", "final");
            } else {
                o.u64("phase", ph as u64).u64("boundary_packets", PHASE_BOUNDARIES[ph as usize]);
            }
            o.raw("ttm_packets", cdf_json(&v, 4));
            phase_cdfs.push(o.render(3));
        }

        let (tp, fp, tn, fn_) = base.confusion;
        let mut single_json = json::Object::new();
        single_json
            .u64("tp", single.confusion.0)
            .u64("fp", single.confusion.1)
            .u64("tn", single.confusion.2)
            .u64("fn", single.confusion.3)
            .u64("mitigated_flows", single.records.len() as u64)
            .u64("unmitigated_flows", single.unmitigated)
            .raw("ttm_packets", cdf_json(&single.ttm_packets, 3));

        let mut sj = json::Object::new();
        sj.str("scenario", sc.name())
            .u64("packets", base.packets)
            .u64("tp", tp)
            .u64("fp", fp)
            .u64("tn", tn)
            .u64("fn", fn_)
            .u64("digests", base.digests)
            .u64("blacklist_len", base.blacklist.len() as u64)
            .u64("mitigated_flows", base.records.len() as u64)
            .u64("unmitigated_flows", base.unmitigated)
            .u64("grid_points", grid_points)
            .bool("grid_byte_identical", true)
            .bool("disabled_matches_single_shot", true)
            .raw("ttm_packets", cdf_json(&base.ttm_packets, 3))
            .raw("ttm_packets_by_phase", json::array(&phase_cdfs, 3))
            .raw("single_shot_baseline", single_json.render(3));
        scenario_sections.push(sj.render(2));
    }

    // Golden gate, phases disabled: the PR-2 exact-path deployment has no
    // phase schedule, so its confusion matrix must sit on the constant.
    eprintln!("bench_report: phase golden gate (PR-2 exact path, phases disabled)");
    let (golden_packets, golden) = run_golden_exact_gate();
    let mut golden_json = json::Object::new();
    golden_json
        .u64("packets", golden_packets)
        .u64("tp", golden.0)
        .u64("fp", golden.1)
        .u64("tn", golden.2)
        .u64("fn", golden.3)
        .bool("unchanged", true);

    let boundary_strs: Vec<String> = PHASE_BOUNDARIES.iter().map(|b| b.to_string()).collect();
    let rule_len_strs: Vec<String> = rule_lens.iter().map(|l| l.to_string()).collect();
    let mut training_json = json::Object::new();
    training_json
        .raw("boundaries", json::array(&boundary_strs, 1))
        .u64("pkt_threshold", 4)
        .u64("phases", phase_rules.len() as u64)
        .u64("warm_started", warm_started as u64)
        .raw("rules_per_phase", json::array(&rule_len_strs, 1));

    PhaseSweepDoc {
        training: training_json.render(1),
        scenarios: json::array(&scenario_sections, 1),
        golden: golden_json.render(1),
    }
}

fn main() {
    let args = parse_args();
    let iterations = if args.smoke { 1 } else { 3 };

    // Telemetry must be live regardless of the ambient env: the snapshot is
    // part of the report.
    iguard_telemetry::set_enabled(true);
    iguard_telemetry::registry::reset();

    let mut stages = [
        StageStat::new("fit"),
        StageStat::new("distill"),
        StageStat::new("rulegen_fl"),
        StageStat::new("rulegen_pl"),
        StageStat::new("tcam_compile"),
        StageStat::new("replay"),
    ];

    let mut last = None;
    for i in 0..iterations {
        eprintln!("bench_report: iteration {}/{iterations}", i + 1);
        last = Some(run_scenario(args.seed, &mut stages));
    }
    let run = last.expect("at least one iteration");

    eprintln!("bench_report: shard sweep (1/2/4/8 shards vs serial pipeline)");
    let sweep_iters = if args.smoke { 1 } else { 5 };
    let (base_min_ns, base_report, sweep) =
        run_shard_sweep(args.seed, sweep_iters, &run.fl_rules, &run.pl_rules);

    eprintln!("bench_report: chaos sweep (drop-rate curve + digest outage)");
    let chaos_points = run_chaos_sweep(args.seed, &run.fl_rules, &run.pl_rules);

    eprintln!("bench_report: rule-index sweep (linear vs indexed, 64/256/1024 rules)");
    let index_iters = if args.smoke { 3 } else { 9 };
    let index_points = run_rule_index_sweep(args.seed, index_iters);

    eprintln!("bench_report: replay-trace verdict parity (linear vs indexed vs sharded)");
    let (parity_rows, parity_wl) = run_replay_parity(args.seed, &run.fl_rules, &run.pl_rules);

    eprintln!("bench_report: SoA replay (columnar vs scalar pipeline, 1 worker)");
    // Interleaved scalar/columnar iterations with min-of-iters on both
    // sides: enough samples that one background-noise burst cannot sink
    // the gated ratio (each pair costs only a few ms).
    let soa_iters = if args.smoke { 7 } else { 9 };
    let soa = run_soa_replay(args.seed, soa_iters, &run.fl_rules, &run.pl_rules);

    eprintln!("bench_report: streaming sketch sweep (PR-7)");
    let (stream_cfg, stream_runs, alloc_probe) =
        run_streaming_sweep(args.seed, args.smoke, &run.fl_rules, &run.pl_rules);

    eprintln!("bench_report: ruleset swap sweep (PR-8 drift adaptation loop)");
    let swap_doc = run_ruleset_swap_sweep(args.seed, &run.pl_rules);

    eprintln!("bench_report: overload-resilience sweep (PR-9 adversarial scenario canon)");
    let overload_doc = run_overload_sweep(args.seed, &run.fl_rules, &run.pl_rules);

    eprintln!("bench_report: phase-aware classification sweep (PR-10 early verdicts)");
    let phase_doc = run_phase_sweep(args.seed, &run.fl_rules, &run.pl_rules);

    let snapshot = iguard_telemetry::registry::snapshot().expect("telemetry enabled");
    if let Err(e) = snapshot.verify() {
        eprintln!("bench_report: telemetry invariant violation: {e}");
        std::process::exit(1);
    }

    let usage = ResourceModel::for_deployment(
        &run.fl_tcam,
        &run.pl_tcam,
        *run.pipeline.flow_table().config(),
        ControllerConfig::default().blacklist_capacity,
    )
    .usage();

    let mut stages_json = json::Object::new();
    for s in &stages {
        stages_json.raw(s.name, s.to_json(2));
    }

    let mut rules_json = json::Object::new();
    rules_json
        .u64("fl_rules", run.fl_rules.len() as u64)
        .u64("fl_regions", run.fl_rules.total_regions as u64)
        .u64("pl_rules", run.pl_rules.len() as u64)
        .u64("pl_regions", run.pl_rules.total_regions as u64);

    let mut tcam_json = json::Object::new();
    tcam_json
        .u64("fl_entries", run.fl_tcam.len() as u64)
        .u64("fl_encoded_key_bits", run.fl_tcam.encoded_key_bits() as u64)
        .u64("pl_entries", run.pl_tcam.len() as u64)
        .u64("pl_encoded_key_bits", run.pl_tcam.encoded_key_bits() as u64)
        .f64("tcam_util", usage.tcam)
        .f64("sram_util", usage.sram)
        .f64("salu_util", usage.salu)
        .f64("vliw_util", usage.vliw)
        .f64("rho", usage.rho());

    let ft = run.pipeline.flow_table();
    let mut flow_json = json::Object::new();
    flow_json
        .u64("occupancy", ft.occupancy() as u64)
        .u64("capacity", ft.capacity() as u64)
        .f64("fill", ft.occupancy() as f64 / ft.capacity() as f64)
        .u64("collision_packets", ft.collision_packets);

    let paths = run.pipeline.paths();
    let mut paths_json = json::Object::new();
    paths_json
        .u64("blacklist", paths.blacklist)
        .u64("brown", paths.brown)
        .u64("blue", paths.blue)
        .u64("orange", paths.orange)
        .u64("purple", paths.purple)
        .u64("green_loopback", paths.green_loopback);

    let r = run.report;
    let mut replay_json = json::Object::new();
    replay_json
        .u64("packets", r.packets)
        .u64("dropped", r.dropped)
        .u64("tp", r.tp)
        .u64("fp", r.fp)
        .u64("tn", r.tn)
        .u64("fn", r.fn_)
        .u64("digests", r.digests)
        .f64("throughput_gbps", r.throughput_gbps)
        .f64("avg_latency_ns", r.avg_latency_ns)
        .u64("wl_lookups", r.wl_lookups)
        .u64("wl_hits", r.wl_hits)
        .u64("blacklist_len", run.pipeline.blacklist_len() as u64)
        .raw("paths", paths_json.render(2));

    let mut sweep_json = json::Object::new();
    {
        let mut baseline_json = json::Object::new();
        baseline_json
            .u64("min_ns", base_min_ns)
            .f64("mpps", base_report.packets as f64 / (base_min_ns as f64 / 1e9) / 1e6)
            .u64("tp", base_report.tp)
            .u64("fp", base_report.fp)
            .u64("tn", base_report.tn)
            .u64("fn", base_report.fn_)
            .u64("digests", base_report.digests);
        let single = sweep.iter().find(|p| p.shards == 1).expect("1-shard point");
        let mut points_json = Vec::new();
        for p in &sweep {
            let mut o = json::Object::new();
            o.u64("shards", p.shards as u64)
                .u64("min_ns", p.min_ns)
                .f64("mean_ns", p.mean_ns)
                .f64("mpps", p.mpps)
                .f64("imbalance_ratio", p.imbalance)
                .f64("speedup_vs_single_shard", single.min_ns as f64 / p.min_ns as f64)
                .u64("tp", p.report.tp)
                .u64("fp", p.report.fp)
                .u64("tn", p.report.tn)
                .u64("fn", p.report.fn_)
                .u64("digests", p.report.digests)
                .u64("blacklist_len", p.blacklist.len() as u64);
            points_json.push(o.render(3));
        }
        sweep_json
            .u64("iters", sweep_iters as u64)
            .u64("batch_size", SWEEP_BATCH as u64)
            // Speedup >1 is only physically possible when the host has
            // cores to spare; on a 1-CPU host the sweep still validates
            // determinism and abstraction overhead.
            .u64("host_cpus", std::thread::available_parallelism().map_or(1, |n| n.get()) as u64)
            .u64("trace_packets", base_report.packets)
            .f64("single_shard_overhead", single.min_ns as f64 / base_min_ns as f64)
            .bool("deterministic_across_shards", true)
            .raw("baseline_pipeline", baseline_json.render(2))
            .raw("shards", json::array(&points_json, 2));
    }

    let mut chaos_json = json::Object::new();
    {
        // The fault-free (rate 0.0) point anchors the blacklist delta:
        // how many flows a faulty run installed differently from the
        // clean run after convergence.
        let baseline: std::collections::HashSet<_> =
            chaos_points[0].blacklist.iter().copied().collect();
        let mut points_json = Vec::new();
        for p in &chaos_points {
            let here: std::collections::HashSet<_> = p.blacklist.iter().copied().collect();
            let delta = here.symmetric_difference(&baseline).count();
            let r = p.report;
            let mut o = json::Object::new();
            o.str("scenario", &p.label)
                .f64("drop_rate", p.drop_rate)
                .u64("tp", r.tp)
                .u64("fp", r.fp)
                .u64("tn", r.tn)
                .u64("fn", r.fn_)
                .u64("digests", r.digests)
                .u64("blacklist_len", p.blacklist.len() as u64)
                .u64("blacklist_delta_vs_baseline", delta as u64)
                .u64("chan_dropped", r.chan_dropped)
                .u64("chan_duplicated", r.chan_duplicated)
                .u64("chan_reordered", r.chan_reordered)
                .u64("chan_delayed", r.chan_delayed)
                .u64("dup_digests", r.dup_digests)
                .u64("action_failures", r.action_failures)
                .u64("retries", r.retries)
                .u64("retries_exhausted", r.retries_exhausted)
                .u64("shed", r.shed)
                .bool("degraded", r.degraded)
                .u64("recovery_packets", r.recovery_packets)
                .u64("flush_ticks", r.flush_ticks)
                .u64("resync_digests", r.resync_digests);
            points_json.push(o.render(3));
        }
        chaos_json
            .u64("batch_size", CHAOS_BATCH as u64)
            .u64("resync_interval_ticks", CHAOS_RESYNC)
            .u64("trace_packets", chaos_points[0].report.packets)
            .bool("deterministic_replay", true)
            .raw("scenarios", json::array(&points_json, 2));
    }

    let mut index_json = json::Object::new();
    {
        let mut points_json = Vec::new();
        for p in &index_points {
            let mut o = json::Object::new();
            o.u64("n_rules", p.n_rules as u64)
                .u64("tcam_entries", p.entries as u64)
                .u64("tcam_skipped_empty", p.skipped_empty)
                .u64("index_total_cuts", p.total_cuts as u64)
                .f64("hit_rate", p.hit_rate)
                .u64("float_linear_ns", p.float_linear_ns)
                .u64("float_indexed_ns", p.float_indexed_ns)
                .f64("float_speedup", p.float_linear_ns as f64 / p.float_indexed_ns.max(1) as f64)
                .u64("tcam_linear_ns", p.tcam_linear_ns)
                .u64("tcam_indexed_ns", p.tcam_indexed_ns)
                .f64("tcam_speedup", p.tcam_linear_ns as f64 / p.tcam_indexed_ns.max(1) as f64);
            points_json.push(o.render(2));
        }
        index_json
            .u64("probes", INDEX_PROBES as u64)
            .u64("dims", INDEX_DIMS as u64)
            .u64("iters", index_iters as u64)
            // Hard-gated above: the run aborts before writing the report
            // if any indexed verdict diverges from its linear twin.
            .bool("verdicts_identical", true)
            .f64("speedup_gate", 2.0)
            .u64("speedup_gate_min_rules", 256)
            .raw("points", json::array(&points_json, 1));
    }

    let mut parity_json = json::Object::new();
    parity_json
        .u64("rows", parity_rows as u64)
        // Hard-gated in run_replay_parity: serial linear scan, serial
        // indexed batch and 8-shard indexed batch agreed byte-for-byte.
        .bool("verdicts_identical", true)
        .u64("wl_lookups", parity_wl.lookups)
        .u64("wl_hits", parity_wl.hits);

    let mut soa_json = json::Object::new();
    soa_json
        .u64("trace_packets", soa.packets)
        .u64("batch_size", SOA_BATCH as u64)
        .u64("iters", soa_iters as u64)
        .u64("workers", 1)
        .u64("scalar_min_ns", soa.scalar_min_ns)
        .u64("soa_min_ns", soa.soa_min_ns)
        .f64("scalar_mpps", soa.scalar_mpps)
        .f64("soa_mpps", soa.soa_mpps)
        .f64("speedup", soa.speedup)
        .f64("speedup_gate", 2.0)
        // Hard-gated in run_soa_replay: the columnar path's verdicts,
        // digests, path counters, and whitelist counters matched the
        // scalar oracle on every timed run, and the ≥2× throughput gate
        // held — or the run aborted before writing this file.
        .bool("verdicts_identical", true);

    let mut root = json::Object::new();
    root.str("schema", "iguard-bench-pr6")
        .u64("version", 1)
        .u64("seed", args.seed)
        .bool("smoke", args.smoke)
        .u64("iterations", iterations as u64)
        .u64("workers", iguard_runtime::par::current_workers() as u64)
        .raw("stages", stages_json.render(1))
        .raw("rules", rules_json.render(1))
        .raw("tcam", tcam_json.render(1))
        .raw("flow_table", flow_json.render(1))
        .raw("replay", replay_json.render(1))
        .raw("shard_sweep", sweep_json.render(1))
        .raw("chaos_sweep", chaos_json.render(1))
        .raw("rule_index", index_json.render(1))
        .raw("replay_parity", parity_json.render(1))
        .raw("soa_replay", soa_json.render(1))
        .raw("telemetry", snapshot.to_json_at(1));
    let doc = root.render(0) + "\n";

    std::fs::write(&args.out, &doc).expect("write report");
    eprintln!("bench_report: wrote {}", args.out);

    // --- BENCH_PR7.json: the streaming sketch sweep as its own document.
    let exact = &stream_runs[0];
    let mut runs_json = Vec::new();
    for r in &stream_runs {
        let secs = r.wall_ns as f64 / 1e9;
        let mut o = json::Object::new();
        o.str("label", &r.label)
            .u64("wall_ns", r.wall_ns)
            .u64("packets", r.report.packets)
            .f64("pps", r.report.packets as f64 / secs.max(1e-9))
            .u64("tp", r.report.tp)
            .u64("fp", r.report.fp)
            .u64("tn", r.report.tn)
            .u64("fn", r.report.fn_)
            .u64("digests", r.report.digests)
            .u64("blacklist_len", r.blacklist.len() as u64)
            .raw("fp_delta_vs_exact", (r.report.fp as i64 - exact.report.fp as i64).to_string())
            .raw("fn_delta_vs_exact", (r.report.fn_ as i64 - exact.report.fn_ as i64).to_string());
        if let Some(s) = r.stats {
            let resident = s.resident_bytes + s.sketch_bytes;
            let mut sj = json::Object::new();
            sj.u64("tracked", s.tracked as u64)
                .u64("max_tracked", s.max_tracked.min(u64::MAX as usize) as u64)
                .u64("resident_bytes", s.resident_bytes as u64)
                .u64("sketch_bytes", s.sketch_bytes as u64)
                .f64("bytes_per_tracked_flow", resident as f64 / (s.tracked.max(1)) as f64)
                .u64("promoted", s.promoted)
                .u64("absorbed", s.absorbed)
                .u64("evicted", s.evicted);
            if let Some(b) = s.budget_bytes {
                sj.u64("budget_bytes", b as u64);
            }
            o.raw("sketch", sj.render(2));
        }
        runs_json.push(o.render(2));
    }

    let mut alloc_json = json::Object::new();
    alloc_json
        .u64("base_flows", alloc_probe.base_flows)
        .u64("marginal_batches", alloc_probe.marginal_batches)
        .u64("marginal_allocs", alloc_probe.marginal_allocs)
        .f64(
            "allocs_per_batch",
            alloc_probe.marginal_allocs as f64 / alloc_probe.marginal_batches.max(1) as f64,
        )
        // Hard-gated in run_streaming_sweep: the run aborts before writing
        // this file if the streaming path allocates once per batch.
        .bool("steady_state_allocation_free", true);

    let mut root7 = json::Object::new();
    root7
        .str("schema", "iguard-bench-pr7")
        .u64("version", 1)
        .u64("seed", args.seed)
        .bool("smoke", args.smoke)
        .u64("flows", stream_cfg.total_flows)
        .u64("users", stream_cfg.users as u64)
        .u64("batch_size", STREAM_BATCH as u64)
        // Hard-gated in run_streaming_sweep: exact-mode sketched replay
        // matched the exact pipeline's confusion matrix, digests, packet
        // count and blacklist, and every budgeted point held its budget.
        .bool("exact_mode_parity", true)
        .bool("budgets_respected", true)
        .raw("runs", json::array(&runs_json, 1))
        .raw("alloc_probe", alloc_json.render(1));
    let doc7 = root7.render(0) + "\n";
    std::fs::write(&args.out_pr7, &doc7).expect("write PR7 report");
    eprintln!("bench_report: wrote {}", args.out_pr7);

    // --- BENCH_PR8.json: the drift-adaptation / ruleset-swap loop.
    let mut root8 = json::Object::new();
    root8
        .str("schema", "iguard-bench-pr8")
        .u64("version", 1)
        .u64("seed", args.seed)
        .bool("smoke", args.smoke)
        // Every gate in run_ruleset_swap_sweep is hard: the run aborts
        // before writing this file if the drift trigger misfires, a diff
        // out-churns a full reinstall, any packet sees a blended ruleset
        // mid-swap, a faulted swap fails to converge on the fault-free
        // fingerprint, or any shard/worker combination diverges.
        .bool("gates_enforced", true)
        .raw("drift_loop", swap_doc.drift_loop)
        .raw("rule_diff", swap_doc.rule_diff)
        .raw("swap_window", swap_doc.swap_window)
        .raw("fault_convergence", swap_doc.fault_convergence)
        .raw("determinism", swap_doc.determinism)
        .raw("versioning", swap_doc.versioning);
    let doc8 = root8.render(0) + "\n";
    std::fs::write(&args.out_pr8, &doc8).expect("write PR8 report");
    eprintln!("bench_report: wrote {}", args.out_pr8);

    // --- BENCH_PR9.json: the overload-resilience scorecard.
    let mut ft9_json = json::Object::new();
    ft9_json
        .u64("slots_per_table", OVERLOAD_SLOTS as u64)
        .u64("pkt_threshold", 4)
        .u64("batch_size", OVERLOAD_BATCH as u64);
    let ocfg = OverloadConfig::default();
    let mut ocfg_json = json::Object::new();
    ocfg_json
        .u64("digest_buffer_cap", ocfg.digest_buffer_cap as u64)
        .u64("degrade_enter_milli", ocfg.degrade_enter_milli as u64)
        .u64("degrade_exit_milli", ocfg.degrade_exit_milli as u64)
        .u64("degrade_calm_batches", ocfg.degrade_calm_batches as u64);
    let mut root9 = json::Object::new();
    root9
        .str("schema", "iguard-bench-pr9")
        .u64("version", 1)
        .u64("seed", args.seed)
        .bool("smoke", args.smoke)
        // Every gate in run_overload_sweep is hard: the run aborts before
        // writing this file if any shard/worker grid point's fingerprint
        // diverges, a churn storm fails to cycle degraded mode (enter,
        // shed, exit, full recovery), benign FPs inflate past the
        // shedding-disabled twin's cap, the storm-worn pipeline fails to
        // reconverge with a fresh one, the sketch-admission seam fails to
        // tighten under pressure (or tightens while calm), or the PR-2
        // golden matrix moves on the exact path.
        .bool("gates_enforced", true)
        .raw("flow_table", ft9_json.render(1))
        .raw("overload_config", ocfg_json.render(1))
        .raw("scenarios", overload_doc.scenarios)
        .raw("recovery", overload_doc.recovery)
        .raw("admission", overload_doc.admission)
        .raw("golden_exact_path", overload_doc.golden);
    let doc9 = root9.render(0) + "\n";
    std::fs::write(&args.out_pr9, &doc9).expect("write PR9 report");
    eprintln!("bench_report: wrote {}", args.out_pr9);

    // --- BENCH_PR10.json: the phase-aware detection-latency scorecard.
    let mut root10 = json::Object::new();
    root10
        .str("schema", "iguard-bench-pr10")
        .u64("version", 1)
        .u64("seed", args.seed)
        .bool("smoke", args.smoke)
        // Every gate in run_phase_sweep is hard: the run aborts before
        // writing this file if a phases-disabled run diverges from the
        // single-shot baseline, any shard/worker grid point's fingerprint
        // diverges with phases enabled, pulse-wave median exposure fails
        // to strictly improve on single-shot, state-exhaustion mitigates
        // nothing, or the PR-2 golden matrix moves with phases disabled.
        .bool("gates_enforced", true)
        .raw("phase_training", phase_doc.training)
        .raw("scenarios", phase_doc.scenarios)
        .raw("golden_exact_path", phase_doc.golden);
    let doc10 = root10.render(0) + "\n";
    std::fs::write(&args.out_pr10, &doc10).expect("write PR10 report");
    eprintln!("bench_report: wrote {}", args.out_pr10);
}
