//! # iguard-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation. The
//! modules map to paper artefacts:
//!
//! | module | paper artefact |
//! |---|---|
//! | [`pathlen`] | Figs. 2 & 7 — path-length overlap motivation |
//! | [`cpu`] | Figs. 5 & 8 — CPU detection comparison |
//! | [`testbed`] | Figs. 6 & 9, Table 1, Tables 2–3, §3.2.3, App. B.1 |
//! | [`candidates`] | Fig. 10 — teacher-candidate study |
//! | [`data`] | §4's dataset protocol (train / val+20 % / test+20 %) |
//!
//! The `figures` binary drives these with one subcommand per artefact;
//! the timing benches under `benches/` cover the micro-costs (training,
//! inference, rule compilation, per-packet pipeline work).

#![forbid(unsafe_code)]

pub mod ablation;
pub mod candidates;
pub mod cpu;
pub mod data;
pub mod pathlen;
pub mod report;
pub mod testbed;
pub mod tune;

pub use cpu::Effort;

/// Runs `f` for every attack across the runtime worker pool (scoped
/// threads, `IGUARD_WORKERS` sizing) and returns results in attack order.
pub fn per_attack_parallel<T: Send>(
    attacks: &[iguard_synth::attacks::Attack],
    f: impl Fn(iguard_synth::attacks::Attack) -> T + Sync,
) -> Vec<T> {
    iguard_runtime::par::par_map(attacks, |&attack| f(attack))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_synth::attacks::Attack;

    #[test]
    fn parallel_preserves_order() {
        let attacks = [Attack::Mirai, Attack::Aidra, Attack::Bashlite];
        let names = per_attack_parallel(&attacks, |a| a.name().to_string());
        assert_eq!(names, vec!["Mirai", "Aidra", "Bashlite"]);
    }
}
