//! Ablations of iGuard's design choices (DESIGN.md §5).
//!
//! Each ablation isolates one ingredient of §3.2 on a fixed scenario:
//!
//! * **guidance** — replace the information-gain split search with the
//!   conventional random (feature, split) choice, keeping distillation:
//!   does guided growth (§3.2.1) matter, or is leaf labelling enough?
//! * **τ_split** — sweep the skew stopping threshold: the paper credits it
//!   for the smaller rule table (Table 1's TCAM column).
//! * **k** — sweep the augmentation count used in training/distillation.

use iguard_runtime::rng::Rng;

use iguard_core::forest::{IGuardConfig, IGuardForest};
use iguard_core::rules::RuleSet;
use iguard_core::teacher::DetectorTeacher;
use iguard_iforest::{IsolationForest, IsolationForestConfig};
use iguard_metrics::DetectionSummary;
use iguard_models::detector::AnomalyDetector;
use iguard_models::magnifier::{Magnifier, MagnifierConfig};
use iguard_synth::attacks::Attack;

use crate::data::{self, Scenario, ScenarioConfig};
use crate::tune::best_threshold;

/// One ablation row.
#[derive(Clone, Debug)]
pub struct AblationPoint {
    pub label: String,
    pub summary: DetectionSummary,
    /// Whitelist rules after compilation (`None` if over budget).
    pub rules: Option<usize>,
    pub total_leaves: usize,
}

const BUDGET: usize = 600_000;

fn teacher_for(s: &Scenario, seed: u64) -> Magnifier {
    let mut rng = Rng::seed_from_u64(seed ^ 0x7E57);
    let mut m = Magnifier::fit(
        &s.train.features,
        &MagnifierConfig { epochs: 60, ..Default::default() },
        &mut rng,
    );
    let scores = m.scores(&s.val.features);
    let (thr, _) = best_threshold(&scores, &s.val.labels);
    m.set_threshold(thr);
    m
}

fn eval_forest(s: &Scenario, forest: &mut IGuardForest) -> (DetectionSummary, Option<usize>) {
    let val_scores = forest.scores(&s.val.features);
    let (vote_thr, _) = best_threshold(&val_scores, &s.val.labels);
    forest.set_vote_threshold(vote_thr);
    let pred = forest.predictions(&s.test.features);
    let scores = forest.scores(&s.test.features);
    let summary = DetectionSummary::compute(&s.test.labels, &pred, &scores);
    let rules = RuleSet::from_iguard(forest, BUDGET).map(|r| r.len()).ok();
    (summary, rules)
}

/// Guided vs unguided growth (distillation in both): grows a conventional
/// iForest, then transplants its partitions into the distillation +
/// vote machinery by re-using the guided pipeline with `n_candidates = 1`
/// and `k_augment = 0`, which degrades the split search to the first
/// quantile midpoint — an uninformed splitter.
pub fn guidance(attack: Attack, seed: u64) -> Vec<AblationPoint> {
    let s = data::build(attack, &ScenarioConfig::testbed(seed));
    let mut out = Vec::new();
    for (label, k, candidates) in
        [("guided (k=64, 8 candidates)", 64usize, 8usize), ("unguided (k=0, 1 candidate)", 0, 1)]
    {
        let teacher = DetectorTeacher(teacher_for(&s, seed));
        let cfg = IGuardConfig {
            n_trees: 7,
            subsample: 64,
            k_augment: k,
            n_candidates: candidates,
            ..Default::default()
        };
        let mut rng = Rng::seed_from_u64(seed ^ 0xAB1);
        let mut forest = IGuardForest::fit(&s.train.features, &teacher, &cfg, &mut rng);
        forest.distill(&s.train.features, &teacher, 64, &mut rng);
        let leaves = forest.total_leaves();
        let (summary, rules) = eval_forest(&s, &mut forest);
        out.push(AblationPoint { label: label.into(), summary, rules, total_leaves: leaves });
    }
    // Reference: the raw teacher and the conventional iForest.
    let teacher = teacher_for(&s, seed);
    let t_scores = teacher.scores(&s.test.features);
    let t_pred: Vec<bool> = t_scores.iter().map(|&v| v > teacher.threshold()).collect();
    out.push(AblationPoint {
        label: "teacher (Magnifier)".into(),
        summary: DetectionSummary::compute(&s.test.labels, &t_pred, &t_scores),
        rules: None,
        total_leaves: 0,
    });
    let mut rng = Rng::seed_from_u64(seed ^ 0xAB2);
    let iforest = IsolationForest::fit(
        &s.train.features,
        &IsolationForestConfig { n_trees: 50, subsample: 128, contamination: 0.1 },
        &mut rng,
    );
    let scores = iforest.scores(&s.val.features);
    let (thr, _) = best_threshold(&scores, &s.val.labels);
    let test_scores = iforest.scores(&s.test.features);
    let pred: Vec<bool> = test_scores.iter().map(|&v| v > thr).collect();
    out.push(AblationPoint {
        label: "conventional iForest".into(),
        summary: DetectionSummary::compute(&s.test.labels, &pred, &test_scores),
        rules: None,
        total_leaves: 0,
    });
    out
}

/// τ_split sweep: the extra stopping criterion of §3.2.1, credited in
/// §4.2.2 for the smaller rule table.
pub fn tau_split(attack: Attack, seed: u64) -> Vec<AblationPoint> {
    let s = data::build(attack, &ScenarioConfig::testbed(seed));
    let mut out = Vec::new();
    for tau in [0.0f64, 1e-3, 1e-2, 1e-1] {
        let teacher = DetectorTeacher(teacher_for(&s, seed));
        let cfg = IGuardConfig {
            n_trees: 7,
            subsample: 64,
            k_augment: 64,
            tau_split: tau,
            ..Default::default()
        };
        let mut rng = Rng::seed_from_u64(seed ^ 0xAB3);
        let mut forest = IGuardForest::fit(&s.train.features, &teacher, &cfg, &mut rng);
        forest.distill(&s.train.features, &teacher, 64, &mut rng);
        let leaves = forest.total_leaves();
        let (summary, rules) = eval_forest(&s, &mut forest);
        out.push(AblationPoint {
            label: format!("tau_split = {tau:.0e}"),
            summary,
            rules,
            total_leaves: leaves,
        });
    }
    out
}

/// k sweep: augmentation budget during training and distillation.
pub fn k_augment(attack: Attack, seed: u64) -> Vec<AblationPoint> {
    let s = data::build(attack, &ScenarioConfig::testbed(seed));
    let mut out = Vec::new();
    for k in [0usize, 16, 64, 256] {
        let teacher = DetectorTeacher(teacher_for(&s, seed));
        let cfg = IGuardConfig { n_trees: 7, subsample: 64, k_augment: k, ..Default::default() };
        let mut rng = Rng::seed_from_u64(seed ^ 0xAB4);
        let mut forest = IGuardForest::fit(&s.train.features, &teacher, &cfg, &mut rng);
        forest.distill(&s.train.features, &teacher, k, &mut rng);
        let leaves = forest.total_leaves();
        let (summary, rules) = eval_forest(&s, &mut forest);
        out.push(AblationPoint { label: format!("k = {k}"), summary, rules, total_leaves: leaves });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_split_controls_model_size() {
        let points = tau_split(Attack::UdpDdos, 3);
        assert_eq!(points.len(), 4);
        // A permissive τ (0.1) must not grow more leaves than a strict τ (0):
        // stopping earlier ⇒ fewer leaves.
        let first = points.first().unwrap().total_leaves;
        let last = points.last().unwrap().total_leaves;
        assert!(
            last <= first,
            "τ=0.1 grew {last} leaves vs {first} at τ=0 — stopping criterion inert"
        );
    }

    #[test]
    fn guidance_ablation_produces_all_rows() {
        let points = guidance(Attack::UdpDdos, 3);
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| (0.0..=1.0).contains(&p.summary.macro_f1)));
    }
}
