//! Micro-benchmarks for every per-figure cost centre, on the in-repo
//! timing harness (`iguard_runtime::timing`, `harness = false`):
//!
//! * `training/*` — guided (iGuard) vs conventional (iForest) fitting and
//!   distillation (Figs. 5–9 training side, §3.2 complexity remark:
//!   guided training is random-forest-like, not iForest-like), plus the
//!   serial-vs-parallel scaling of the runtime worker pool.
//! * `inference/*` — forest vote vs compiled-rule match vs TCAM lookup
//!   (the data-plane story of §3.2.3).
//! * `rulegen/*` — whitelist compilation (§3.2.3).
//! * `pipeline/*` — per-packet cost of the Fig.-4 emulated pipeline and
//!   the wire parser (App. B.1's latency side).
//! * `features/*` — flow-state update + feature extraction (§3.3.1).

use iguard_runtime::par::with_workers;
use iguard_runtime::rng::Rng;
use iguard_runtime::timing::{bench, group};
use iguard_runtime::Dataset;

use iguard_core::forest::{IGuardConfig, IGuardForest};
use iguard_core::rules::RuleSet;
use iguard_core::teacher::OracleTeacher;
use iguard_flow::features::switch_fl_features;
use iguard_flow::packet::Packet;
use iguard_flow::stats::FlowStats;
use iguard_iforest::{IsolationForest, IsolationForestConfig};
use iguard_switch::controller::{Controller, ControllerConfig};
use iguard_switch::data_plane::DataPlane;
use iguard_switch::pipeline::{Pipeline, PipelineConfig};
use iguard_switch::tcam::{compile_ruleset, quantize_key_into, FieldSpec};
use iguard_synth::benign::benign_trace;

fn uniform_data(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = Rng::seed_from_u64(seed);
    let mut d = Dataset::new(dim);
    let mut row = vec![0.0f32; dim];
    for _ in 0..n {
        for v in &mut row {
            *v = rng.gen_range(0.0..1.0);
        }
        d.push_row(&row);
    }
    d
}

fn training() {
    group("training");
    let data = uniform_data(512, 13, 1);
    let teacher = OracleTeacher(|x: &[f32]| x[0] > 0.7);
    {
        let cfg = IsolationForestConfig { n_trees: 50, subsample: 128, contamination: 0.1 };
        bench("iforest_fit_t50_psi128", || {
            let mut rng = Rng::seed_from_u64(2);
            IsolationForest::fit(&data, &cfg, &mut rng)
        });
    }
    let cfg = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 32, ..Default::default() };
    bench("iguard_fit_t7_psi64", || {
        let mut rng = Rng::seed_from_u64(3);
        IGuardForest::fit(&data, &teacher, &cfg, &mut rng)
    });
    {
        let mut rng = Rng::seed_from_u64(4);
        let forest = IGuardForest::fit(&data, &teacher, &cfg, &mut rng);
        bench("iguard_distill", || {
            let mut f = forest.clone();
            let mut rng = Rng::seed_from_u64(5);
            f.distill(&data, &teacher, 32, &mut rng);
            f
        });
    }

    // Serial vs parallel scaling of guided training on the worker pool.
    // The larger forest gives each worker real work per tree.
    let wide_cfg =
        IGuardConfig { n_trees: 32, subsample: 128, k_augment: 64, ..Default::default() };
    let fit_with = |workers: usize| {
        with_workers(workers, || {
            let mut rng = Rng::seed_from_u64(6);
            IGuardForest::fit(&data, &teacher, &wide_cfg, &mut rng)
        })
    };
    let serial = bench("iguard_fit_t32 (1 worker)", || fit_with(1));
    let par4 = bench("iguard_fit_t32 (4 workers)", || fit_with(4));
    println!("   -> speedup at 4 workers: {:.2}x", serial.mean_ns / par4.mean_ns);
}

fn inference() {
    group("inference");
    let data = uniform_data(512, 13, 6);
    let teacher = OracleTeacher(|x: &[f32]| x[0] > 0.7);
    let mut rng = Rng::seed_from_u64(7);
    let cfg = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 32, ..Default::default() };
    let mut forest = IGuardForest::fit(&data, &teacher, &cfg, &mut rng);
    forest.distill(&data, &teacher, 32, &mut rng);
    let rules = RuleSet::from_iguard(&forest, 400_000).unwrap();
    let specs: Vec<FieldSpec> = (0..13).map(|_| FieldSpec::new(16, 65_535.0)).collect();
    let tcam = compile_ruleset(&rules, &specs);
    let x = vec![0.4f32; 13];
    let mut key = Vec::new();
    quantize_key_into(&x, &specs, &mut key);

    bench("forest_vote", || forest.predict(std::hint::black_box(&x)));
    bench("ruleset_match", || rules.predict(std::hint::black_box(&x)));
    bench("tcam_lookup", || tcam.lookup(std::hint::black_box(&key)));
    let mut kbuf = Vec::new();
    bench("quantize_key_into", || {
        quantize_key_into(std::hint::black_box(&x), &specs, &mut kbuf);
        kbuf.len()
    });
}

fn rulegen() {
    group("rulegen");
    let data = uniform_data(512, 13, 8);
    let teacher = OracleTeacher(|x: &[f32]| x[0] > 0.7);
    let mut rng = Rng::seed_from_u64(9);
    let cfg = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 32, ..Default::default() };
    let mut forest = IGuardForest::fit(&data, &teacher, &cfg, &mut rng);
    forest.distill(&data, &teacher, 32, &mut rng);
    bench("iguard_rules", || RuleSet::from_iguard(&forest, 400_000).unwrap());
    let iforest = IsolationForest::fit(
        &data,
        &IsolationForestConfig { n_trees: 5, subsample: 32, contamination: 0.1 },
        &mut rng,
    );
    let bounds = iguard_core::forest::feature_bounds(&data);
    bench("iforest_rules", || RuleSet::from_iforest(&iforest, &bounds, 400_000).unwrap());
}

fn pipeline() {
    group("pipeline");
    use iguard_core::rules::Hypercube;
    let accept_all = |dim: usize| RuleSet {
        bounds: vec![(0.0, 1.0); dim],
        whitelist: vec![Hypercube {
            lo: vec![f32::NEG_INFINITY; dim],
            hi: vec![f32::INFINITY; dim],
        }],
        total_regions: 1,
    };
    let mut rng = Rng::seed_from_u64(10);
    let trace = benign_trace(200, 5.0, &mut rng);
    {
        let mut p = Pipeline::new(PipelineConfig::default(), accept_all(13), accept_all(4));
        let mut c2 = Controller::new(ControllerConfig::default());
        let mut idx = 0usize;
        let mut digests = Vec::new();
        bench("per_packet_process", || {
            let pkt = &trace.packets[idx % trace.len()];
            idx += 1;
            let out = p.process(pkt);
            digests.clear();
            p.drain_seq_digests_into(&mut digests);
            for a in c2.process_seq_digests(&digests) {
                p.apply(a);
            }
            out
        });
    }
    let pkt = trace.packets[0];
    let bytes = pkt.to_bytes();
    bench("wire_parse_roundtrip", || Packet::from_bytes(0, std::hint::black_box(&bytes)).unwrap());
}

fn features() {
    group("features");
    let mut rng = Rng::seed_from_u64(11);
    let trace = benign_trace(50, 5.0, &mut rng);
    {
        let mut stats = FlowStats::from_first_packet(&trace.packets[0]);
        let mut idx = 1usize;
        bench("flow_stats_update", || {
            stats.update(&trace.packets[idx % trace.len()]);
            idx += 1;
        });
    }
    let mut stats = FlowStats::from_first_packet(&trace.packets[0]);
    for p in trace.packets.iter().take(16).skip(1) {
        stats.update(p);
    }
    bench("switch_fl_extract", || switch_fl_features(std::hint::black_box(&stats)));
}

fn main() {
    training();
    inference();
    rulegen();
    pipeline();
    features();
}
