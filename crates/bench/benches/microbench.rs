//! Criterion micro-benchmarks for every per-figure cost centre:
//!
//! * `training/*` — guided (iGuard) vs conventional (iForest) fitting and
//!   the teacher's epoch cost (Figs. 5–9 training side, §3.2 complexity
//!   remark: guided training is random-forest-like, not iForest-like).
//! * `inference/*` — forest vote vs compiled-rule match vs TCAM lookup
//!   (the data-plane story of §3.2.3).
//! * `rulegen/*` — whitelist compilation (§3.2.3).
//! * `pipeline/*` — per-packet cost of the Fig.-4 emulated pipeline and
//!   the wire parser (App. B.1's latency side).
//! * `features/*` — flow-state update + feature extraction (§3.3.1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use iguard_core::forest::{IGuardConfig, IGuardForest};
use iguard_core::rules::RuleSet;
use iguard_core::teacher::OracleTeacher;
use iguard_flow::features::switch_fl_features;
use iguard_flow::packet::Packet;
use iguard_flow::stats::FlowStats;
use iguard_iforest::{IsolationForest, IsolationForestConfig};
use iguard_switch::controller::{Controller, ControllerConfig};
use iguard_switch::pipeline::{Pipeline, PipelineConfig};
use iguard_switch::tcam::{compile_ruleset, quantize_key, FieldSpec};
use iguard_synth::benign::benign_trace;

fn uniform_data(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect()).collect()
}

fn training(c: &mut Criterion) {
    let data = uniform_data(512, 13, 1);
    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    g.bench_function("iforest_fit_t50_psi128", |b| {
        let cfg = IsolationForestConfig { n_trees: 50, subsample: 128, contamination: 0.1 };
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            IsolationForest::fit(&data, &cfg, &mut rng)
        })
    });
    g.bench_function("iguard_fit_t7_psi64", |b| {
        let cfg = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 32, ..Default::default() };
        b.iter(|| {
            let mut teacher = OracleTeacher(|x: &[f32]| x[0] > 0.7);
            let mut rng = StdRng::seed_from_u64(3);
            IGuardForest::fit(&data, &mut teacher, &cfg, &mut rng)
        })
    });
    g.bench_function("iguard_distill", |b| {
        let cfg = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 32, ..Default::default() };
        let mut teacher = OracleTeacher(|x: &[f32]| x[0] > 0.7);
        let mut rng = StdRng::seed_from_u64(4);
        let forest = IGuardForest::fit(&data, &mut teacher, &cfg, &mut rng);
        b.iter_batched(
            || forest.clone(),
            |mut f| {
                let mut teacher = OracleTeacher(|x: &[f32]| x[0] > 0.7);
                let mut rng = StdRng::seed_from_u64(5);
                f.distill(&data, &mut teacher, 32, &mut rng);
                f
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn inference(c: &mut Criterion) {
    let data = uniform_data(512, 13, 6);
    let mut teacher = OracleTeacher(|x: &[f32]| x[0] > 0.7);
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 32, ..Default::default() };
    let mut forest = IGuardForest::fit(&data, &mut teacher, &cfg, &mut rng);
    forest.distill(&data, &mut teacher, 32, &mut rng);
    let rules = RuleSet::from_iguard(&forest, 400_000).unwrap();
    let specs: Vec<FieldSpec> = (0..13).map(|_| FieldSpec::new(16, 65_535.0)).collect();
    let tcam = compile_ruleset(&rules, &specs);
    let x = vec![0.4f32; 13];
    let key = quantize_key(&x, &specs);

    let mut g = c.benchmark_group("inference");
    g.bench_function("forest_vote", |b| b.iter(|| forest.predict(std::hint::black_box(&x))));
    g.bench_function("ruleset_match", |b| b.iter(|| rules.predict(std::hint::black_box(&x))));
    g.bench_function("tcam_lookup", |b| b.iter(|| tcam.lookup(std::hint::black_box(&key))));
    g.finish();
}

fn rulegen(c: &mut Criterion) {
    let data = uniform_data(512, 13, 8);
    let mut teacher = OracleTeacher(|x: &[f32]| x[0] > 0.7);
    let mut rng = StdRng::seed_from_u64(9);
    let cfg = IGuardConfig { n_trees: 7, subsample: 64, k_augment: 32, ..Default::default() };
    let mut forest = IGuardForest::fit(&data, &mut teacher, &cfg, &mut rng);
    forest.distill(&data, &mut teacher, 32, &mut rng);
    let mut g = c.benchmark_group("rulegen");
    g.sample_size(10);
    g.bench_function("iguard_rules", |b| {
        b.iter(|| RuleSet::from_iguard(&forest, 400_000).unwrap())
    });
    let iforest = IsolationForest::fit(
        &data,
        &IsolationForestConfig { n_trees: 5, subsample: 32, contamination: 0.1 },
        &mut rng,
    );
    let bounds = iguard_core::forest::feature_bounds(&data);
    g.bench_function("iforest_rules", |b| {
        b.iter(|| RuleSet::from_iforest(&iforest, &bounds, 400_000).unwrap())
    });
    g.finish();
}

fn pipeline(c: &mut Criterion) {
    use iguard_core::rules::Hypercube;
    let accept_all = |dim: usize| RuleSet {
        bounds: vec![(0.0, 1.0); dim],
        whitelist: vec![Hypercube {
            lo: vec![f32::NEG_INFINITY; dim],
            hi: vec![f32::INFINITY; dim],
        }],
        total_regions: 1,
    };
    let mut rng = StdRng::seed_from_u64(10);
    let trace = benign_trace(200, 5.0, &mut rng);
    let mut g = c.benchmark_group("pipeline");
    g.bench_function("per_packet_process", |b| {
        let mut p = Pipeline::new(PipelineConfig::default(), accept_all(13), accept_all(4));
        let mut c2 = Controller::new(ControllerConfig::default());
        let mut idx = 0usize;
        b.iter(|| {
            let pkt = &trace.packets[idx % trace.len()];
            idx += 1;
            let out = p.process(pkt);
            for a in c2.process_digests(p.drain_digests()) {
                p.apply(a);
            }
            out
        })
    });
    g.bench_function("wire_parse_roundtrip", |b| {
        let pkt = trace.packets[0];
        let bytes = pkt.to_bytes();
        b.iter(|| Packet::from_bytes(0, std::hint::black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn features(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let trace = benign_trace(50, 5.0, &mut rng);
    let mut g = c.benchmark_group("features");
    g.bench_function("flow_stats_update", |b| {
        let mut stats = FlowStats::from_first_packet(&trace.packets[0]);
        let mut idx = 1usize;
        b.iter(|| {
            stats.update(&trace.packets[idx % trace.len()]);
            idx += 1;
        })
    });
    g.bench_function("switch_fl_extract", |b| {
        let mut stats = FlowStats::from_first_packet(&trace.packets[0]);
        for p in trace.packets.iter().take(16).skip(1) {
            stats.update(p);
        }
        b.iter(|| switch_fl_features(std::hint::black_box(&stats)))
    });
    g.finish();
}

criterion_group!(benches, training, inference, rulegen, pipeline, features);
criterion_main!(benches);
