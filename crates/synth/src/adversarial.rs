//! Black-box adversarial transforms (paper Tables 2 and 3).
//!
//! Three attacker strategies against a deployed detector:
//!
//! * **Low-rate** — the attacker throttles to 1/100 of the native rate,
//!   stretching inter-packet delays so rate features look benign.
//! * **Poisoning** — the attacker contaminates the *benign training set*
//!   with a small fraction (2 %, 10 %) of attack samples, hoping the
//!   detector learns them as normal.
//! * **Evasion by blending** — each attack flow is interleaved with
//!   benign-mimicking padding packets at a 1:2 or 1:4 attack:padding ratio,
//!   dragging every flow-level statistic toward the benign manifold.

use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;

use iguard_flow::packet::{Packet, TcpFlags};

use crate::profile::gauss;
use crate::trace::{LabeledFlows, Trace};

/// Stretches a trace's inter-packet delays by `factor` (the paper's
/// "1/100 rate" uses `factor = 100`), preserving per-flow packet order.
///
/// Timestamps are re-spaced per flow: the k-th IPD of each flow is
/// multiplied by `factor`, so flow duration grows by ~`factor` while packet
/// counts and sizes are untouched.
pub fn low_rate(trace: &Trace, factor: f64) -> Trace {
    assert!(factor >= 1.0, "rate dilution factor must be >= 1");
    use std::collections::HashMap;
    let mut last_orig: HashMap<_, u64> = HashMap::new();
    let mut last_new: HashMap<_, u64> = HashMap::new();
    let mut out = Trace::new();
    for (p, &l) in trace.packets.iter().zip(&trace.labels) {
        let key = p.five.canonical();
        let new_ts = match (last_orig.get(&key), last_new.get(&key)) {
            (Some(&lo), Some(&ln)) => {
                let ipd = p.ts_ns.saturating_sub(lo) as f64 * factor;
                ln + ipd as u64
            }
            _ => p.ts_ns,
        };
        last_orig.insert(key, p.ts_ns);
        last_new.insert(key, new_ts);
        let mut q = *p;
        q.ts_ns = new_ts;
        out.push(q, l);
    }
    // Re-sort: per-flow stretching can reorder packets across flows.
    let mut zipped: Vec<(Packet, bool)> = out.packets.into_iter().zip(out.labels).collect();
    zipped.sort_by_key(|(p, _)| p.ts_ns);
    let mut sorted = Trace::new();
    for (p, l) in zipped {
        sorted.push(p, l);
    }
    sorted
}

/// Poisons a benign training feature set with `fraction` of attack samples
/// (paper Table 2: Mirai 2 % and 10 %). The poison samples keep their
/// malicious ground truth internally but are *presented as benign* to the
/// trainer — the caller trains on `features` as if all were normal.
pub fn poison_training_set(
    benign_features: &Dataset,
    attack_features: &Dataset,
    fraction: f64,
    rng: &mut Rng,
) -> Dataset {
    assert!((0.0..1.0).contains(&fraction), "poison fraction in [0,1)");
    assert!(!benign_features.is_empty(), "need benign samples");
    let n_poison = ((benign_features.rows() as f64 * fraction) / (1.0 - fraction)).round() as usize;
    let mut out = benign_features.clone();
    if attack_features.is_empty() {
        return out;
    }
    for _ in 0..n_poison {
        let idx = rng.gen_range(0..attack_features.rows());
        out.push_row(attack_features.row(idx));
    }
    out
}

/// Blends each attack flow with benign-mimicking padding packets at
/// `attack : padding = 1 : ratio` (paper Table 3 uses 1:2 and 1:4). Padding
/// packets copy the flow's 5-tuple but draw size and spacing from a
/// benign-looking envelope, pulling the flow statistics toward the benign
/// manifold. Padding packets inherit the *malicious* ground truth: they
/// belong to the attack flow.
pub fn evasion_blend(trace: &Trace, ratio: u32, rng: &mut Rng) -> Trace {
    assert!(ratio >= 1, "blend ratio must be >= 1");
    let mut out = Trace::new();
    for (p, &l) in trace.packets.iter().zip(&trace.labels) {
        out.push(*p, l);
        if !l {
            continue; // only attack packets get padding
        }
        for k in 0..ratio {
            let mut pad = *p;
            // Benign-envelope padding: telemetry/sync-like sizes and jitter.
            pad.wire_len = gauss(rng, 420.0, 260.0).clamp(60.0, 1400.0) as u16;
            pad.ts_ns =
                p.ts_ns + (k as u64 + 1) * gauss(rng, 12.0, 6.0).max(0.5) as u64 * 1_000_000;
            pad.flags = TcpFlags { ack: pad.flags.syn || pad.flags.ack, ..TcpFlags::default() };
            out.push(pad, true);
        }
    }
    let mut zipped: Vec<(Packet, bool)> = out.packets.into_iter().zip(out.labels).collect();
    zipped.sort_by_key(|(p, _)| p.ts_ns);
    let mut sorted = Trace::new();
    for (p, l) in zipped {
        sorted.push(p, l);
    }
    sorted
}

/// Convenience: applies poisoning at the *flow feature* level to a
/// labelled dataset, returning the training matrix a poisoned pipeline
/// would fit on.
pub fn poisoned_training_features(
    benign: &LabeledFlows,
    attack: &LabeledFlows,
    fraction: f64,
    rng: &mut Rng,
) -> Dataset {
    let benign_feats = benign.benign_features();
    let mal_idx: Vec<usize> = (0..attack.len()).filter(|&i| attack.labels[i]).collect();
    let attack_feats = attack.features.select_rows(&mal_idx);
    poison_training_set(&benign_feats, &attack_feats, fraction, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::Attack;
    use crate::trace::{extract_flows, ExtractConfig};
    use iguard_runtime::rng::Rng;

    #[test]
    fn low_rate_stretches_duration() {
        let mut rng = Rng::seed_from_u64(1);
        let t = Attack::UdpDdos.trace(10, 1.0, &mut rng);
        let slow = low_rate(&t, 100.0);
        assert_eq!(slow.len(), t.len());
        let cfg = ExtractConfig { pkt_threshold: 1_000_000, ..Default::default() };
        let orig = extract_flows(&t, &cfg);
        let slowed = extract_flows(
            &slow,
            &ExtractConfig {
                pkt_threshold: 1_000_000,
                timeout_ns: u64::MAX / 2,
                ..Default::default()
            },
        );
        let dur = |fs: &crate::trace::LabeledFlows| {
            fs.features.iter_rows().map(|f| f[12] as f64).sum::<f64>() / fs.features.rows() as f64
        };
        assert!(
            dur(&slowed) > dur(&orig) * 50.0,
            "mean duration {} not ~100x of {}",
            dur(&slowed),
            dur(&orig)
        );
    }

    #[test]
    fn low_rate_identity_when_factor_one() {
        let mut rng = Rng::seed_from_u64(2);
        let t = Attack::Mirai.trace(5, 1.0, &mut rng);
        let same = low_rate(&t, 1.0);
        assert_eq!(same.packets, t.packets);
    }

    #[test]
    fn poison_fraction_is_respected() {
        let benign = Dataset::from_rows(&vec![vec![0.0f32]; 900]);
        let attack = Dataset::from_rows(&vec![vec![1.0f32]; 500]);
        let mut rng = Rng::seed_from_u64(3);
        let poisoned = poison_training_set(&benign, &attack, 0.10, &mut rng);
        let injected = poisoned.rows() - 900;
        // 10 % of final set: 900 / 0.9 = 1000 -> 100 poison.
        assert_eq!(injected, 100);
        assert!(poisoned.iter_rows().skip(900).all(|f| f[0] == 1.0));
    }

    #[test]
    fn poison_zero_is_identity() {
        let benign = Dataset::from_rows(&vec![vec![0.0f32]; 10]);
        let attack = Dataset::from_rows(&vec![vec![1.0f32]; 10]);
        let mut rng = Rng::seed_from_u64(4);
        assert_eq!(poison_training_set(&benign, &attack, 0.0, &mut rng).rows(), 10);
    }

    #[test]
    fn evasion_multiplies_attack_packets() {
        let mut rng = Rng::seed_from_u64(5);
        let t = Attack::TcpDdos.trace(5, 1.0, &mut rng);
        let blended = evasion_blend(&t, 2, &mut rng);
        assert_eq!(blended.len(), t.len() * 3); // 1 original + 2 padding
        assert!(blended.labels.iter().all(|&l| l));
        assert!(blended.packets.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn evasion_moves_mean_size_toward_benign() {
        let mut rng = Rng::seed_from_u64(6);
        let t = Attack::TcpDdos.trace(30, 2.0, &mut rng); // 62-byte SYNs
        let blended = evasion_blend(&t, 4, &mut rng);
        let cfg = ExtractConfig::default();
        let orig = extract_flows(&t, &cfg);
        let ble = extract_flows(&blended, &cfg);
        let mean_size = |fs: &crate::trace::LabeledFlows| {
            fs.features.iter_rows().map(|f| f[2] as f64).sum::<f64>() / fs.features.rows() as f64
        };
        assert!(mean_size(&ble) > mean_size(&orig) + 100.0);
    }

    #[test]
    fn evasion_leaves_benign_packets_alone() {
        let mut rng = Rng::seed_from_u64(7);
        let t = crate::benign::benign_trace(20, 1.0, &mut rng);
        let blended = evasion_blend(&t, 4, &mut rng);
        assert_eq!(blended.len(), t.len());
    }
}
