//! # iguard-synth — synthetic traffic standing in for the paper's datasets
//!
//! The paper evaluates on captured PCAPs: benign IoT traffic (HorusEye's
//! normal set, Sivanathan et al.'s IoT traces) and 15 attacks drawn from
//! IoT-malware and Bot-IoT datasets. Those captures are not redistributable,
//! so this crate provides **parametric generators** that synthesise packet
//! traces with the same flow-level structure:
//!
//! * [`benign`] — a mixture of IoT device behaviours (periodic telemetry,
//!   bursty cloud sync, DNS chatter, keep-alives) whose flow-feature
//!   distributions overlap heavily with low-rate attacks — reproducing the
//!   path-length overlap that motivates iGuard (paper Fig. 2/7).
//! * [`attacks`] — the 15 attack generators (Mirai, Aidra, Bashlite,
//!   UDP/TCP/HTTP DDoS, OS/service/port scans, data theft, keylogging, and
//!   the five "router" variants observed through an aggregating gateway).
//! * [`adversarial`] — the black-box adversarial transforms of Tables 2–3:
//!   low-rate dilution (1/100 rate), training-set poisoning (2 %/10 %), and
//!   benign-blending evasion (1:2, 1:4).
//! * [`trace`] — trace assembly: interleaving flows by timestamp, splitting
//!   train/validation/test the way HorusEye does (§4), and turning traces
//!   into labelled feature matrices via `iguard-flow`.
//!
//! Every generator takes an explicit RNG so experiments are reproducible.

#![forbid(unsafe_code)]

pub mod adversarial;
pub mod attacks;
pub mod benign;
pub mod pcap;
pub mod profile;
pub mod scenarios;
pub mod streaming;
pub mod trace;

pub use attacks::{Attack, ALL_ATTACKS};
pub use scenarios::{Scenario, ALL_SCENARIOS};
pub use streaming::{StreamingConfig, StreamingTrace, Zipf};
pub use trace::{LabeledFlows, Trace};
