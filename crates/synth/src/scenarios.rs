//! The adversarial overload scenario canon.
//!
//! Four scenarios engineered against the data plane's *stateful* stages,
//! complementing the 15 paper attacks in [`crate::attacks`] (which stress
//! the classifier, not the storage):
//!
//! * **state-exhaustion churn** — a flood of short SYN-probe flows from a
//!   wide source pool, each claiming a flow-table slot for 1–3 packets.
//!   Once the table fills, every further flow displaces or collides: the
//!   churn-rate pressure signature.
//! * **pulse-wave DDoS** — a persistent bot set bursting in pulses whose
//!   inter-pulse gap ([`PULSE_GAP_NS`]) *exceeds* the flow-table idle
//!   timeout, so every returning flow straddles the timeout boundary and
//!   re-enters through the timeout-restart path, plus fresh ephemeral
//!   churn flows per pulse to spike pressure during the burst.
//! * **slowloris** — connections held open with slow trickles of small
//!   packets and no FIN, squatting table slots far longer than honest
//!   conversations.
//! * **low-rate C2 beaconing** — metronomic beacons spaced wider than the
//!   idle timeout: every beacon times out and re-freezes single-packet
//!   state, hiding below the packet threshold indefinitely.
//!
//! All traces are seeded (every sample flows through the caller's RNG),
//! fully materialised, and sorted by timestamp — batch-size invariant by
//! construction. IP pools are disjoint from both the paper-attack pools
//! (`crate::attacks`) and the benign generator, so a canon storm never
//! shares a 5-tuple with the surrounding traffic — which is what lets the
//! recovery gates compare storm-worn and fresh pipelines on the same
//! follow-on traffic.

use iguard_flow::five_tuple::{FiveTuple, PROTO_TCP};
use iguard_flow::packet::{Packet, TcpFlags};
use iguard_runtime::rng::Rng;

use crate::profile::{
    gen_trace, FlagsModel, FlowProfile, IpdModel, PortModel, ScenarioConfig, SizeModel,
};
use crate::trace::Trace;

/// Source pool of the canon: 203.0.113.0 (TEST-NET-3) upward — disjoint
/// from the attack bot pool (172.16/12), the router (192.168.1.1), the
/// attack victims (198.51.100/24), and the benign device pool.
pub const SCENARIO_SRC_BASE: u32 = 0xCB00_7100;
/// Victim pool of the canon: 192.0.2.0 (TEST-NET-1) upward.
pub const SCENARIO_DST_BASE: u32 = 0xC000_0200;

/// Burst width of one pulse-wave pulse.
pub const PULSE_BURST_NS: u64 = 400_000_000; // 0.4 s
/// Idle gap between pulses. Strictly greater than the default flow-table
/// idle timeout (2 s), so a persistent flow returning in the next pulse
/// always re-enters through the timeout-restart path.
pub const PULSE_GAP_NS: u64 = 3_000_000_000; // 3 s

/// One overload scenario of the canon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    StateExhaustion,
    PulseWave,
    Slowloris,
    C2Beacon,
}

/// Every scenario, in canonical (report) order.
pub const ALL_SCENARIOS: [Scenario; 4] =
    [Scenario::StateExhaustion, Scenario::PulseWave, Scenario::Slowloris, Scenario::C2Beacon];

impl Scenario {
    /// Stable scenario identifier (report keys, test names).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::StateExhaustion => "state_exhaustion",
            Scenario::PulseWave => "pulse_wave",
            Scenario::Slowloris => "slowloris",
            Scenario::C2Beacon => "c2_beacon",
        }
    }

    /// One-line description for reports.
    pub fn description(&self) -> &'static str {
        match self {
            Scenario::StateExhaustion => "flow-churn state-exhaustion flood (short SYN probes)",
            Scenario::PulseWave => "pulse-wave DDoS straddling the flow-table idle timeout",
            Scenario::Slowloris => "slowloris: long-held connections, slow small packets, no FIN",
            Scenario::C2Beacon => "low-rate C2 beaconing below threshold, spaced past the timeout",
        }
    }

    /// Generates this scenario's malicious trace: `intensity` flows (the
    /// pulse wave splits them between its persistent bot set and its
    /// per-pulse churn) over roughly `window_secs`. Seeded and fully
    /// materialised — identical packets for identical `(intensity,
    /// window_secs, rng seed)` regardless of how the caller batches them.
    pub fn trace(&self, intensity: usize, window_secs: f64, rng: &mut Rng) -> Trace {
        match self {
            Scenario::StateExhaustion => {
                let profile = FlowProfile {
                    name: "state-exhaustion-churn",
                    proto: PROTO_TCP,
                    dst_port: PortModel::Range(1, 1024),
                    size: SizeModel { mean: 60.0, std: 4.0, min: 54, max: 80 },
                    ipd: IpdModel { mean_ms: 1.0, std_ms: 0.5 },
                    pkts: (1, 3),
                    ttl: 64,
                    ttl_jitter: 8,
                    flags: FlagsModel::syn_probe(),
                };
                let sc = ScenarioConfig {
                    flows: intensity,
                    window_secs,
                    src_base: SCENARIO_SRC_BASE,
                    src_count: (intensity as u32).clamp(256, 1 << 16),
                    dst_base: SCENARIO_DST_BASE,
                    dst_count: 8,
                };
                gen_trace(&[(profile, 1.0)], &sc, true, rng)
            }
            Scenario::PulseWave => pulse_wave(intensity, window_secs, rng),
            Scenario::Slowloris => {
                let profile = FlowProfile {
                    name: "slowloris",
                    proto: PROTO_TCP,
                    dst_port: PortModel::Fixed(80),
                    size: SizeModel { mean: 90.0, std: 20.0, min: 60, max: 200 },
                    ipd: IpdModel { mean_ms: 900.0, std_ms: 350.0 },
                    pkts: (16, 48),
                    ttl: 64,
                    ttl_jitter: 4,
                    // Held open: SYN, then bare ACK trickle, never a FIN.
                    flags: FlagsModel {
                        syn_first: true,
                        syn_all: false,
                        ack_rest: true,
                        fin_last: false,
                    },
                };
                let sc = ScenarioConfig {
                    flows: intensity,
                    window_secs,
                    src_base: SCENARIO_SRC_BASE,
                    src_count: (intensity as u32).clamp(64, 1 << 12),
                    dst_base: SCENARIO_DST_BASE,
                    dst_count: 2,
                };
                gen_trace(&[(profile, 1.0)], &sc, true, rng)
            }
            Scenario::C2Beacon => {
                let profile = FlowProfile {
                    name: "c2-beacon",
                    proto: PROTO_TCP,
                    dst_port: PortModel::Fixed(443),
                    // Metronomic: tiny size/IPD variance, cadence > 2 s
                    // timeout even after the per-flow hyper-prior jitter
                    // (0.7 × 3 s = 2.1 s floor).
                    size: SizeModel { mean: 120.0, std: 6.0, min: 90, max: 160 },
                    ipd: IpdModel { mean_ms: 3_000.0, std_ms: 120.0 },
                    pkts: (8, 16),
                    ttl: 64,
                    ttl_jitter: 2,
                    flags: FlagsModel {
                        syn_first: true,
                        syn_all: false,
                        ack_rest: true,
                        fin_last: false,
                    },
                };
                let sc = ScenarioConfig {
                    flows: intensity,
                    window_secs,
                    src_base: SCENARIO_SRC_BASE,
                    src_count: (intensity as u32).clamp(64, 1 << 12),
                    dst_base: SCENARIO_DST_BASE,
                    dst_count: 4,
                };
                gen_trace(&[(profile, 1.0)], &sc, true, rng)
            }
        }
    }
}

/// Number of pulses a pulse-wave trace of `window_secs` fits.
pub fn pulse_count(window_secs: f64) -> usize {
    let period = (PULSE_BURST_NS + PULSE_GAP_NS) as f64 / 1e9;
    ((window_secs / period) as usize).max(2)
}

/// The pulse-wave generator. Half of `intensity` is a *persistent* bot
/// set whose 5-tuples recur in every pulse — each return lands
/// [`PULSE_GAP_NS`] after the previous burst ended, past the idle
/// timeout, exercising the timeout-restart path on a still-resident slot.
/// The other half is spent on *ephemeral* churn flows, fresh 5-tuples per
/// pulse, so the burst also fights for new slots while it lasts.
fn pulse_wave(intensity: usize, window_secs: f64, rng: &mut Rng) -> Trace {
    let pulses = pulse_count(window_secs);
    let persistent_n = (intensity / 2).max(1);
    let churn_per_pulse = (intensity - persistent_n).div_ceil(pulses).max(1);

    // Fix the persistent bot 5-tuples up front: same flows, every pulse.
    let persistent: Vec<FiveTuple> = (0..persistent_n)
        .map(|_| {
            let src =
                SCENARIO_SRC_BASE + rng.gen_range(0..(persistent_n as u32).clamp(64, 1 << 14));
            let dst = SCENARIO_DST_BASE + rng.gen_range(0..4u32);
            let sport: u16 = rng.gen_range(32768..61000);
            FiveTuple::new(src, dst, sport, 80, PROTO_TCP)
        })
        .collect();

    let mut t = Trace::new();
    let period = PULSE_BURST_NS + PULSE_GAP_NS;
    for pulse in 0..pulses {
        let t0 = pulse as u64 * period;
        for five in &persistent {
            // A short in-burst volley: start jittered into the burst,
            // packets a few ms apart, always finished before the gap.
            let mut ts = t0 + rng.gen_range(0..PULSE_BURST_NS / 2);
            let n = rng.gen_range(4..=8u32);
            for i in 0..n {
                if i > 0 {
                    ts += rng.gen_range(1_000_000..6_000_000); // 1–6 ms
                }
                let mut flags = TcpFlags::default();
                if i == 0 {
                    flags.syn = true;
                } else {
                    flags.ack = true;
                }
                t.push(
                    Packet {
                        ts_ns: ts,
                        five: *five,
                        wire_len: rng.gen_range(60..=120u32) as u16,
                        ttl: 64,
                        flags,
                    },
                    true,
                );
            }
        }
        // Ephemeral churn: fresh 5-tuples this pulse only.
        for _ in 0..churn_per_pulse {
            let src = SCENARIO_SRC_BASE + 0x100 + rng.gen_range(0..1u32 << 14);
            let dst = SCENARIO_DST_BASE + rng.gen_range(0..4u32);
            let sport: u16 = rng.gen_range(32768..61000);
            let five = FiveTuple::new(src, dst, sport, 80, PROTO_TCP);
            let ts = t0 + rng.gen_range(0..PULSE_BURST_NS);
            let mut flags = TcpFlags::default();
            flags.syn = true;
            t.push(Packet { ts_ns: ts, five, wire_len: 60, ttl: 64, flags }, true);
        }
    }
    t.packets.sort_by_key(|p| p.ts_ns);
    // `sort_by_key` cannot carry the labels along; they are all `true`
    // here, so rebuilding them is exact.
    t.labels = vec![true; t.packets.len()];
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn traces_are_seed_deterministic() {
        for sc in ALL_SCENARIOS {
            let a = sc.trace(200, 12.0, &mut Rng::seed_from_u64(42));
            let b = sc.trace(200, 12.0, &mut Rng::seed_from_u64(42));
            assert_eq!(a.packets, b.packets, "{} not deterministic", sc.name());
            assert_eq!(a.labels, b.labels);
            let c = sc.trace(200, 12.0, &mut Rng::seed_from_u64(43));
            assert_ne!(a.packets, c.packets, "{} ignores its seed", sc.name());
        }
    }

    #[test]
    fn traces_are_sorted_and_all_malicious() {
        for sc in ALL_SCENARIOS {
            let t = sc.trace(150, 12.0, &mut Rng::seed_from_u64(7));
            assert!(!t.is_empty(), "{} empty", sc.name());
            assert!(t.packets.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns), "{}", sc.name());
            assert!(t.labels.iter().all(|&l| l), "{}", sc.name());
        }
    }

    #[test]
    fn scenario_pools_are_disjoint_from_attack_and_victim_pools() {
        for sc in ALL_SCENARIOS {
            let t = sc.trace(100, 12.0, &mut Rng::seed_from_u64(9));
            for p in &t.packets {
                for ip in [p.five.src_ip, p.five.dst_ip] {
                    assert!(
                        !(crate::attacks::BOT_IP_BASE..crate::attacks::BOT_IP_BASE + 0x10_0000)
                            .contains(&ip),
                        "{} reused the attack bot pool",
                        sc.name()
                    );
                    assert!(
                        !(crate::attacks::VICTIM_IP_BASE..crate::attacks::VICTIM_IP_BASE + 256)
                            .contains(&ip),
                        "{} reused the attack victim pool",
                        sc.name()
                    );
                }
            }
        }
    }

    #[test]
    fn pulse_wave_persistent_flows_straddle_the_idle_timeout() {
        let t = Scenario::PulseWave.trace(120, 12.0, &mut Rng::seed_from_u64(11));
        let mut per_flow: HashMap<_, Vec<u64>> = HashMap::new();
        for p in &t.packets {
            per_flow.entry(p.five.canonical()).or_default().push(p.ts_ns);
        }
        // Persistent flows appear in several pulses: their largest
        // inter-packet gap must exceed the 2 s default idle timeout (the
        // inter-pulse gap is 3 s), and there must be many of them.
        let straddlers = per_flow
            .values()
            .filter(|ts| ts.windows(2).any(|w| w[1] - w[0] > 2_000_000_000))
            .count();
        assert!(straddlers >= 40, "only {straddlers} flows straddle the timeout");
        // Every straddling gap is a full pulse gap, not a near miss.
        for ts in per_flow.values() {
            for w in ts.windows(2) {
                let gap = w[1] - w[0];
                assert!(
                    gap <= PULSE_BURST_NS || gap >= PULSE_GAP_NS,
                    "gap {gap} ns lands inside the timeout boundary band"
                );
            }
        }
    }

    #[test]
    fn slowloris_flows_are_long_lived_and_never_fin() {
        let t = Scenario::Slowloris.trace(60, 20.0, &mut Rng::seed_from_u64(13));
        assert!(t.packets.iter().all(|p| !p.flags.fin));
        let mut per_flow: HashMap<_, (u64, u64)> = HashMap::new();
        for p in &t.packets {
            let e = per_flow.entry(p.five.canonical()).or_insert((p.ts_ns, p.ts_ns));
            e.1 = p.ts_ns;
        }
        let mean_dur = per_flow.values().map(|(a, b)| (b - a) as f64 / 1e9).sum::<f64>()
            / per_flow.len() as f64;
        assert!(mean_dur > 5.0, "slowloris flows too short: mean {mean_dur:.2} s");
    }

    #[test]
    fn c2_beacons_are_spaced_past_the_idle_timeout() {
        let t = Scenario::C2Beacon.trace(40, 60.0, &mut Rng::seed_from_u64(17));
        let mut per_flow: HashMap<_, Vec<u64>> = HashMap::new();
        for p in &t.packets {
            per_flow.entry(p.five.canonical()).or_default().push(p.ts_ns);
        }
        let (mut gaps, mut over) = (0u64, 0u64);
        for ts in per_flow.values() {
            for w in ts.windows(2) {
                gaps += 1;
                if w[1] - w[0] > 2_000_000_000 {
                    over += 1;
                }
            }
        }
        assert!(gaps > 0);
        assert!(
            over as f64 / gaps as f64 > 0.95,
            "beacon cadence leaks under the timeout: {over}/{gaps}"
        );
    }

    #[test]
    fn names_are_unique_and_stable() {
        let names: Vec<_> = ALL_SCENARIOS.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["state_exhaustion", "pulse_wave", "slowloris", "c2_beacon"]);
    }
}
