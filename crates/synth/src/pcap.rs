//! Classic libpcap file I/O for synthetic traces.
//!
//! Lets generated traffic round-trip through the standard capture format:
//! a [`Trace`] written here opens in tcpdump/Wireshark, and captures of
//! compatible traffic (Ethernet II + IPv4 + TCP/UDP) can be loaded back
//! into the pipeline. This exercises the full `iguard-flow` wire encoder —
//! every written packet carries valid IPv4/TCP/UDP checksums.
//!
//! Format: the classic (non-ng) pcap container — a 24-byte global header
//! (magic `0xA1B2C3D4`, microsecond timestamps) followed by 16-byte
//! per-record headers. Ground-truth labels are *not* representable in
//! pcap; [`read_trace`] returns all-benign labels and callers re-label.

use std::io::{self, Read, Write};

use iguard_flow::packet::Packet;

use crate::trace::Trace;

/// Classic pcap magic, microsecond resolution, little-endian.
const MAGIC_US_LE: u32 = 0xA1B2_C3D4;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;

/// Errors from pcap parsing.
#[derive(Debug)]
pub enum PcapError {
    Io(io::Error),
    /// Not a classic little-endian microsecond pcap.
    BadMagic(u32),
    /// Link type other than Ethernet.
    UnsupportedLinkType(u32),
    /// A record header promised more bytes than the file holds.
    Truncated,
}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "i/o error: {e}"),
            PcapError::BadMagic(m) => write!(f, "bad pcap magic {m:#010x}"),
            PcapError::UnsupportedLinkType(l) => write!(f, "unsupported link type {l}"),
            PcapError::Truncated => write!(f, "truncated pcap record"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Writes a trace as a classic pcap stream. Every packet is serialised via
/// [`Packet::to_bytes`] (valid headers and checksums).
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    // Global header.
    w.write_all(&MAGIC_US_LE.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&65_535u32.to_le_bytes())?; // snaplen
    w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
    for p in &trace.packets {
        let bytes = p.to_bytes();
        let ts_sec = (p.ts_ns / 1_000_000_000) as u32;
        let ts_usec = ((p.ts_ns % 1_000_000_000) / 1_000) as u32;
        w.write_all(&ts_sec.to_le_bytes())?;
        w.write_all(&ts_usec.to_le_bytes())?;
        w.write_all(&(bytes.len() as u32).to_le_bytes())?; // incl_len
        w.write_all(&(bytes.len() as u32).to_le_bytes())?; // orig_len
        w.write_all(&bytes)?;
    }
    Ok(())
}

/// Reads a classic pcap stream back into a trace. Records that do not
/// parse as Ethernet II + IPv4 (+TCP/UDP/other) are skipped, mirroring a
/// data-plane parser dropping non-IP traffic. All labels are `false`.
pub fn read_trace<R: Read>(mut r: R) -> Result<Trace, PcapError> {
    let mut gh = [0u8; 24];
    r.read_exact(&mut gh)?;
    let magic = u32::from_le_bytes([gh[0], gh[1], gh[2], gh[3]]);
    if magic != MAGIC_US_LE {
        return Err(PcapError::BadMagic(magic));
    }
    let linktype = u32::from_le_bytes([gh[20], gh[21], gh[22], gh[23]]);
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::UnsupportedLinkType(linktype));
    }
    let mut trace = Trace::new();
    loop {
        let mut rh = [0u8; 16];
        match r.read_exact(&mut rh) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let ts_sec = u32::from_le_bytes([rh[0], rh[1], rh[2], rh[3]]) as u64;
        let ts_usec = u32::from_le_bytes([rh[4], rh[5], rh[6], rh[7]]) as u64;
        let incl = u32::from_le_bytes([rh[8], rh[9], rh[10], rh[11]]) as usize;
        let mut data = vec![0u8; incl];
        r.read_exact(&mut data).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                PcapError::Truncated
            } else {
                PcapError::Io(e)
            }
        })?;
        let ts_ns = ts_sec * 1_000_000_000 + ts_usec * 1_000;
        if let Ok(p) = Packet::from_bytes(ts_ns, &data) {
            trace.push(p, false);
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::Attack;
    use crate::benign::benign_trace;
    use iguard_runtime::rng::Rng;

    #[test]
    fn roundtrip_preserves_packets() {
        let mut rng = Rng::seed_from_u64(1);
        let trace = benign_trace(30, 2.0, &mut rng);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.packets.iter().zip(&back.packets) {
            // Microsecond timestamp resolution truncates nanoseconds.
            assert_eq!(a.ts_ns / 1_000, b.ts_ns / 1_000);
            assert_eq!(a.five, b.five);
            assert_eq!(a.wire_len, b.wire_len);
            assert_eq!(a.ttl, b.ttl);
            assert_eq!(a.flags, b.flags);
        }
    }

    #[test]
    fn attack_traces_roundtrip_too() {
        let mut rng = Rng::seed_from_u64(2);
        let trace = Attack::TcpDdos.trace(10, 1.0, &mut rng);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.len(), trace.len());
        assert!(back.packets.iter().all(|p| p.flags.syn));
    }

    #[test]
    fn global_header_is_classic_pcap() {
        let trace = Trace::new();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        assert_eq!(buf.len(), 24);
        assert_eq!(&buf[0..4], &0xA1B2_C3D4u32.to_le_bytes());
        assert_eq!(&buf[20..24], &1u32.to_le_bytes()); // Ethernet
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = vec![0u8; 24];
        assert!(matches!(read_trace(&buf[..]), Err(PcapError::BadMagic(0))));
    }

    #[test]
    fn truncated_record_reported() {
        let mut rng = Rng::seed_from_u64(3);
        let trace = benign_trace(5, 1.0, &mut rng);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(read_trace(&buf[..]), Err(PcapError::Truncated)));
    }

    #[test]
    fn icmp_packets_survive_where_parseable() {
        // ICMP packets carry a raw 8-byte L4 stub; they should round-trip
        // with ports zeroed.
        let mut rng = Rng::seed_from_u64(4);
        let trace = Attack::OsScan.trace(5, 1.0, &mut rng);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.len(), trace.len());
        assert!(back.packets.iter().all(|p| p.five.proto == 1));
    }
}
