//! Trace assembly and flow-level dataset extraction.
//!
//! A [`Trace`] is a timestamp-ordered packet sequence with per-packet
//! ground-truth labels (`true` = malicious). [`extract_flows`] converts a
//! trace into labelled flow feature vectors the way the deployment would:
//! features are accumulated per (bidirectional) flow and a sample is frozen
//! at the packet-count threshold `n` or after an idle gap `δ` — the
//! truncation the switch imposes (paper §3.3.1), applied consistently to
//! training and evaluation.

use std::collections::HashMap;

use iguard_runtime::Dataset;

use iguard_flow::features::{flow_features, FeatureSet};
use iguard_flow::five_tuple::FiveTuple;
use iguard_flow::packet::Packet;
use iguard_flow::stats::FlowStats;

/// A labelled packet trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Packets in timestamp order.
    pub packets: Vec<Packet>,
    /// Ground truth per packet: `true` = belongs to a malicious flow.
    pub labels: Vec<bool>,
}

impl Trace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.packets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Appends a packet with its ground-truth label.
    pub fn push(&mut self, p: Packet, malicious: bool) {
        self.packets.push(p);
        self.labels.push(malicious);
    }

    /// Merges traces into one, sorted by timestamp (stable for ties).
    pub fn merge(traces: Vec<Trace>) -> Trace {
        let mut zipped: Vec<(Packet, bool)> =
            traces.into_iter().flat_map(|t| t.packets.into_iter().zip(t.labels)).collect();
        zipped.sort_by_key(|(p, _)| p.ts_ns);
        let mut out = Trace::new();
        for (p, l) in zipped {
            out.push(p, l);
        }
        out
    }

    /// Duration of the trace in seconds.
    pub fn duration_secs(&self) -> f64 {
        match (self.packets.first(), self.packets.last()) {
            (Some(a), Some(b)) => (b.ts_ns - a.ts_ns) as f64 / 1e9,
            _ => 0.0,
        }
    }

    /// Total wire bytes.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.wire_len as u64).sum()
    }

    /// Shifts all timestamps by `offset_ns` (used to interleave scenarios).
    pub fn shift_time(&mut self, offset_ns: u64) {
        for p in &mut self.packets {
            p.ts_ns += offset_ns;
        }
    }

    /// Fraction of packets labelled malicious.
    pub fn malicious_fraction(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l).count() as f64 / self.labels.len() as f64
    }
}

/// Flow-level dataset: one feature row + label per flow segment.
#[derive(Clone, Debug, Default)]
pub struct LabeledFlows {
    pub features: Dataset,
    pub labels: Vec<bool>,
}

impl LabeledFlows {
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Appends another dataset.
    pub fn extend(&mut self, other: LabeledFlows) {
        self.features.extend_rows(&other.features);
        self.labels.extend(other.labels);
    }

    /// Only the benign feature rows (for fitting scalers / teachers).
    pub fn benign_features(&self) -> Dataset {
        let idx: Vec<usize> = (0..self.len()).filter(|&i| !self.labels[i]).collect();
        self.features.select_rows(&idx)
    }

    /// Keeps a random-free, deterministic subset: every k-th sample of the
    /// malicious class until the malicious fraction is at most `frac`.
    /// Mirrors the paper's "20 % attack traffic added" mixing when a
    /// generator produced more attack flows than needed.
    pub fn cap_malicious_fraction(&mut self, frac: f64) {
        let benign = self.labels.iter().filter(|&&l| !l).count();
        let target_mal = ((benign as f64) * frac / (1.0 - frac)).floor() as usize;
        let mut kept_mal = 0usize;
        let mut keep = Vec::with_capacity(self.len());
        let mut labels = Vec::with_capacity(self.labels.len());
        for (i, &l) in self.labels.iter().enumerate() {
            if l {
                if kept_mal >= target_mal {
                    continue;
                }
                kept_mal += 1;
            }
            keep.push(i);
            labels.push(l);
        }
        self.features = self.features.select_rows(&keep);
        self.labels = labels;
    }
}

/// Flow extraction parameters — the `n` / `δ` truncation of §3.3.1.
#[derive(Clone, Copy, Debug)]
pub struct ExtractConfig {
    /// Packet-count threshold `n`: freeze the sample at the n-th packet.
    pub pkt_threshold: u64,
    /// Idle timeout `δ` (ns): freeze when a flow pauses longer than this.
    pub timeout_ns: u64,
    pub feature_set: FeatureSet,
    /// Apply the monotone log-compression of
    /// [`iguard_flow::features::log_compress`] to every emitted feature
    /// vector (what the model-facing pipelines use).
    pub log_compress: bool,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        Self {
            pkt_threshold: 8,
            timeout_ns: 2_000_000_000,
            feature_set: FeatureSet::SwitchFl,
            log_compress: false,
        }
    }
}

/// Extracts labelled flow samples from a trace (exact tracking — this is
/// the control-plane training path of Fig. 1, which has no hash
/// collisions). Residual flows still open at trace end are flushed.
pub fn extract_flows(trace: &Trace, cfg: &ExtractConfig) -> LabeledFlows {
    struct Open {
        stats: FlowStats,
        malicious: bool,
    }
    let mut open: HashMap<FiveTuple, Open> = HashMap::new();
    let mut out = LabeledFlows::default();
    let freeze = |o: &Open, out: &mut LabeledFlows| {
        let mut f = flow_features(cfg.feature_set, &o.stats);
        if cfg.log_compress {
            iguard_flow::features::log_compress_vec(&mut f);
        }
        out.features.push_row(&f);
        out.labels.push(o.malicious);
    };
    for (p, &mal) in trace.packets.iter().zip(&trace.labels) {
        let key = p.five.canonical();
        match open.get_mut(&key) {
            Some(o) => {
                if o.stats.timed_out(p.ts_ns, cfg.timeout_ns) {
                    freeze(o, &mut out);
                    *o = Open { stats: FlowStats::from_first_packet(p), malicious: mal };
                } else {
                    o.stats.update(p);
                    o.malicious |= mal;
                    if o.stats.pkt_count >= cfg.pkt_threshold {
                        freeze(o, &mut out);
                        open.remove(&key);
                    }
                }
            }
            None => {
                let o = Open { stats: FlowStats::from_first_packet(p), malicious: mal };
                if cfg.pkt_threshold <= 1 {
                    freeze(&o, &mut out);
                } else {
                    open.insert(key, o);
                }
            }
        }
    }
    // Flush residual flows in deterministic order.
    let mut rest: Vec<(FiveTuple, Open)> = open.into_iter().collect();
    rest.sort_by_key(|(k, _)| *k);
    for (_, o) in rest {
        freeze(&o, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_flow::five_tuple::PROTO_UDP;
    use iguard_flow::packet::TcpFlags;

    fn pkt(flow: u16, ts_ms: u64, len: u16) -> Packet {
        Packet {
            ts_ns: ts_ms * 1_000_000,
            five: FiveTuple::new(0x0A000001, 0xC0A80101, 20_000 + flow, 53, PROTO_UDP),
            wire_len: len,
            ttl: 64,
            flags: TcpFlags::default(),
        }
    }

    #[test]
    fn merge_sorts_by_timestamp() {
        let mut a = Trace::new();
        a.push(pkt(1, 10, 100), false);
        a.push(pkt(1, 30, 100), false);
        let mut b = Trace::new();
        b.push(pkt(2, 20, 100), true);
        let m = Trace::merge(vec![a, b]);
        let ts: Vec<u64> = m.packets.iter().map(|p| p.ts_ns).collect();
        assert_eq!(ts, vec![10_000_000, 20_000_000, 30_000_000]);
        assert_eq!(m.labels, vec![false, true, false]);
    }

    #[test]
    fn extraction_freezes_at_threshold() {
        let mut t = Trace::new();
        for i in 0..5 {
            t.push(pkt(1, i * 10, 100), false);
        }
        let cfg = ExtractConfig { pkt_threshold: 3, ..Default::default() };
        let flows = extract_flows(&t, &cfg);
        // 5 packets: one frozen sample at pkt 3, residual (pkts 4-5) flushed.
        assert_eq!(flows.len(), 2);
        assert_eq!(flows.features[(0, 0)], 3.0); // pkt_count of first sample
        assert_eq!(flows.features[(1, 0)], 2.0);
    }

    #[test]
    fn extraction_splits_on_timeout() {
        let mut t = Trace::new();
        t.push(pkt(1, 0, 100), false);
        t.push(pkt(1, 10_000, 100), false); // 10 s gap > 2 s timeout
        let cfg = ExtractConfig { pkt_threshold: 100, ..Default::default() };
        let flows = extract_flows(&t, &cfg);
        assert_eq!(flows.len(), 2);
        assert!(flows.features.iter_rows().all(|f| f[0] == 1.0));
    }

    #[test]
    fn label_is_sticky_per_segment() {
        let mut t = Trace::new();
        t.push(pkt(1, 0, 100), false);
        t.push(pkt(1, 10, 100), true); // one malicious packet taints segment
        t.push(pkt(1, 20, 100), false);
        let cfg = ExtractConfig { pkt_threshold: 3, ..Default::default() };
        let flows = extract_flows(&t, &cfg);
        assert_eq!(flows.len(), 1);
        assert!(flows.labels[0]);
    }

    #[test]
    fn cap_malicious_fraction_caps() {
        let mut d = LabeledFlows::default();
        for i in 0..100 {
            d.features.push_row(&[i as f32]);
            d.labels.push(i < 80); // 80 malicious, 20 benign
        }
        d.cap_malicious_fraction(0.2);
        let mal = d.labels.iter().filter(|&&l| l).count();
        assert_eq!(mal, 5); // 20 benign -> 5 malicious = 20 %
        assert_eq!(d.len(), 25);
    }

    #[test]
    fn bidirectional_packets_fold_into_one_flow() {
        let fwd = pkt(1, 0, 100);
        let mut rev = pkt(1, 5, 200);
        rev.five = fwd.five.reversed();
        let mut t = Trace::new();
        t.push(fwd, false);
        t.push(rev, false);
        let cfg = ExtractConfig { pkt_threshold: 2, ..Default::default() };
        let flows = extract_flows(&t, &cfg);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows.features[(0, 0)], 2.0);
    }

    #[test]
    fn trace_stats() {
        let mut t = Trace::new();
        t.push(pkt(1, 0, 100), false);
        t.push(pkt(2, 1000, 200), true);
        assert_eq!(t.total_bytes(), 300);
        assert!((t.duration_secs() - 1.0).abs() < 1e-9);
        assert!((t.malicious_fraction() - 0.5).abs() < 1e-12);
    }
}
