//! The benign IoT traffic mixture.
//!
//! Stands in for the HorusEye normal set and the Sivanathan et al. IoT
//! traces: a smart-environment's worth of device behaviours. The mixture is
//! deliberately *wide* in every marginal (packet sizes from keep-alive
//! minimums to camera MTU-size frames; inter-packet delays from
//! milliseconds to seconds) so that attack traffic falls **inside** the
//! marginal ranges — the regime in which isolation depth cannot separate
//! classes (paper Fig. 2/7) and joint structure must be learned instead.

use iguard_runtime::rng::Rng;

use iguard_flow::five_tuple::{PROTO_TCP, PROTO_UDP};

use crate::profile::{
    gen_trace, FlagsModel, FlowProfile, IpdModel, PortModel, ScenarioConfig, SizeModel,
};
use crate::trace::Trace;

/// 10.0.0.0/16 device pool.
pub const DEVICE_IP_BASE: u32 = 0x0A00_0000;
/// 52.0.0.0/16 cloud endpoints.
pub const CLOUD_IP_BASE: u32 = 0x3400_0000;

/// Periodic sensor telemetry (MQTT-style): small packets, second-scale
/// cadence with visible jitter.
pub fn telemetry() -> FlowProfile {
    FlowProfile {
        name: "telemetry",
        proto: PROTO_TCP,
        dst_port: PortModel::Fixed(8883),
        size: SizeModel { mean: 120.0, std: 35.0, min: 60, max: 320 },
        ipd: IpdModel { mean_ms: 500.0, std_ms: 260.0 },
        pkts: (4, 16),
        ttl: 64,
        ttl_jitter: 0,
        flags: FlagsModel::conversation(),
    }
}

/// Bursty cloud sync / firmware pulls: large packets, short bursts.
pub fn cloud_sync() -> FlowProfile {
    FlowProfile {
        name: "cloud_sync",
        proto: PROTO_TCP,
        dst_port: PortModel::Fixed(443),
        size: SizeModel { mean: 900.0, std: 320.0, min: 200, max: 1500 },
        ipd: IpdModel { mean_ms: 20.0, std_ms: 14.0 },
        pkts: (8, 64),
        ttl: 64,
        ttl_jitter: 0,
        flags: FlagsModel::conversation(),
    }
}

/// Sporadic DNS chatter.
pub fn dns() -> FlowProfile {
    FlowProfile {
        name: "dns",
        proto: PROTO_UDP,
        dst_port: PortModel::Fixed(53),
        size: SizeModel { mean: 92.0, std: 24.0, min: 60, max: 240 },
        ipd: IpdModel { mean_ms: 280.0, std_ms: 180.0 },
        pkts: (2, 6),
        ttl: 64,
        ttl_jitter: 0,
        flags: FlagsModel::none(),
    }
}

/// Long-lived keep-alives: tiny packets, ~1 s cadence with jitter.
pub fn keepalive() -> FlowProfile {
    FlowProfile {
        name: "keepalive",
        proto: PROTO_TCP,
        dst_port: PortModel::Fixed(443),
        size: SizeModel { mean: 72.0, std: 14.0, min: 54, max: 140 },
        ipd: IpdModel { mean_ms: 950.0, std_ms: 420.0 },
        pkts: (4, 12),
        ttl: 64,
        ttl_jitter: 0,
        flags: FlagsModel::conversation(),
    }
}

/// Security-camera stream: sustained MTU-scale UDP.
pub fn camera_stream() -> FlowProfile {
    FlowProfile {
        name: "camera_stream",
        proto: PROTO_UDP,
        dst_port: PortModel::Fixed(5004),
        size: SizeModel { mean: 1100.0, std: 170.0, min: 400, max: 1400 },
        ipd: IpdModel { mean_ms: 5.0, std_ms: 2.6 },
        pkts: (32, 192),
        ttl: 64,
        ttl_jitter: 0,
        flags: FlagsModel::none(),
    }
}

/// Voice-assistant bursts: medium packets, tens of ms cadence.
pub fn voice_assistant() -> FlowProfile {
    FlowProfile {
        name: "voice_assistant",
        proto: PROTO_UDP,
        dst_port: PortModel::Fixed(443),
        size: SizeModel { mean: 310.0, std: 130.0, min: 80, max: 900 },
        ipd: IpdModel { mean_ms: 30.0, std_ms: 18.0 },
        pkts: (16, 64),
        ttl: 64,
        ttl_jitter: 0,
        flags: FlagsModel::none(),
    }
}

/// The full weighted device mixture.
pub fn device_mixture() -> Vec<(FlowProfile, f64)> {
    vec![
        (telemetry(), 0.26),
        (cloud_sync(), 0.16),
        (dns(), 0.22),
        (keepalive(), 0.16),
        (camera_stream(), 0.08),
        (voice_assistant(), 0.12),
    ]
}

/// Generates a benign trace of `flows` flows over `window_secs`.
pub fn benign_trace(flows: usize, window_secs: f64, rng: &mut Rng) -> Trace {
    let scenario = ScenarioConfig {
        flows,
        window_secs,
        src_base: DEVICE_IP_BASE,
        src_count: 256,
        dst_base: CLOUD_IP_BASE,
        dst_count: 64,
    };
    gen_trace(&device_mixture(), &scenario, false, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{extract_flows, ExtractConfig};
    use iguard_runtime::rng::Rng;

    #[test]
    fn benign_trace_is_all_benign_and_ordered() {
        let mut rng = Rng::seed_from_u64(1);
        let t = benign_trace(200, 5.0, &mut rng);
        assert!(t.labels.iter().all(|&l| !l));
        assert!(t.packets.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert!(t.len() > 800, "expected >800 packets, got {}", t.len());
    }

    #[test]
    fn mixture_spans_wide_feature_ranges() {
        let mut rng = Rng::seed_from_u64(2);
        let t = benign_trace(400, 10.0, &mut rng);
        let flows = extract_flows(&t, &ExtractConfig::default());
        let sizes: Vec<f32> = flows.features.column(2).collect(); // mean size
        let lo = sizes.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = sizes.iter().cloned().fold(0.0f32, f32::max);
        assert!(lo < 120.0, "small-packet devices missing (min mean {lo})");
        assert!(hi > 700.0, "large-packet devices missing (max mean {hi})");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = benign_trace(50, 1.0, &mut Rng::seed_from_u64(3));
        let b = benign_trace(50, 1.0, &mut Rng::seed_from_u64(3));
        assert_eq!(a.packets, b.packets);
    }

    #[test]
    fn different_seeds_differ() {
        let a = benign_trace(50, 1.0, &mut Rng::seed_from_u64(4));
        let b = benign_trace(50, 1.0, &mut Rng::seed_from_u64(5));
        assert_ne!(a.packets, b.packets);
    }
}
