//! Parametric flow profiles — the shared machinery behind the benign and
//! attack generators.
//!
//! A [`FlowProfile`] describes one behaviour (an IoT device habit or an
//! attack tool) as distributions over packet size, inter-packet delay, flow
//! length, ports, TTL and TCP flags. Generators sample concrete flows from
//! profiles; all randomness flows through the caller's RNG.

use iguard_runtime::rng::Rng;

use iguard_flow::five_tuple::{FiveTuple, PROTO_TCP};
use iguard_flow::packet::{Packet, TcpFlags};

use crate::trace::Trace;

/// Truncated-normal packet size model (bytes on the wire).
#[derive(Clone, Copy, Debug)]
pub struct SizeModel {
    pub mean: f64,
    pub std: f64,
    pub min: u16,
    pub max: u16,
}

impl SizeModel {
    pub fn sample(&self, rng: &mut Rng) -> u16 {
        let v = gauss(rng, self.mean, self.std);
        (v.round() as i64).clamp(self.min as i64, self.max as i64) as u16
    }
}

/// Truncated-normal inter-packet delay model (milliseconds).
#[derive(Clone, Copy, Debug)]
pub struct IpdModel {
    pub mean_ms: f64,
    pub std_ms: f64,
}

impl IpdModel {
    /// Samples an IPD in nanoseconds, floored at 10 µs.
    pub fn sample_ns(&self, rng: &mut Rng) -> u64 {
        let ms = gauss(rng, self.mean_ms, self.std_ms).max(0.01);
        (ms * 1e6) as u64
    }
}

/// Destination-port selection.
#[derive(Clone, Debug)]
pub enum PortModel {
    /// Always the same port.
    Fixed(u16),
    /// Uniform choice from a set (e.g. telnet 23/2323).
    Choice(Vec<u16>),
    /// Uniform in an inclusive range (port sweeps).
    Range(u16, u16),
}

impl PortModel {
    pub fn sample(&self, rng: &mut Rng) -> u16 {
        match self {
            PortModel::Fixed(p) => *p,
            PortModel::Choice(ps) => ps[rng.gen_range(0..ps.len())],
            PortModel::Range(lo, hi) => rng.gen_range(*lo..=*hi),
        }
    }
}

/// TCP flag sequencing over a flow's packets.
#[derive(Clone, Copy, Debug)]
pub struct FlagsModel {
    /// First packet carries SYN.
    pub syn_first: bool,
    /// Every packet carries SYN (SYN flood / scans).
    pub syn_all: bool,
    /// Non-first packets carry ACK.
    pub ack_rest: bool,
    /// Last packet carries FIN.
    pub fin_last: bool,
}

impl FlagsModel {
    /// A normal TCP conversation: SYN, then ACKs, FIN at the end.
    pub fn conversation() -> Self {
        Self { syn_first: true, syn_all: false, ack_rest: true, fin_last: true }
    }

    /// Pure SYN probes (scans, SYN floods).
    pub fn syn_probe() -> Self {
        Self { syn_first: true, syn_all: true, ack_rest: false, fin_last: false }
    }

    /// No flags (UDP/ICMP).
    pub fn none() -> Self {
        Self { syn_first: false, syn_all: false, ack_rest: false, fin_last: false }
    }

    pub(crate) fn flags_for(&self, idx: u32, last_idx: u32) -> TcpFlags {
        let mut f = TcpFlags::default();
        if self.syn_all || (self.syn_first && idx == 0) {
            f.syn = true;
        }
        if self.ack_rest && idx > 0 {
            f.ack = true;
        }
        if self.fin_last && idx == last_idx && last_idx > 0 {
            f.fin = true;
        }
        f
    }
}

/// A complete behavioural profile.
#[derive(Clone, Debug)]
pub struct FlowProfile {
    pub name: &'static str,
    pub proto: u8,
    pub dst_port: PortModel,
    pub size: SizeModel,
    pub ipd: IpdModel,
    /// Inclusive range of packets per flow.
    pub pkts: (u32, u32),
    pub ttl: u8,
    /// Uniform ±jitter applied to TTL per flow.
    pub ttl_jitter: u8,
    pub flags: FlagsModel,
}

impl FlowProfile {
    /// Generates one flow's packets starting at `start_ns`.
    ///
    /// Each flow draws its own size/IPD parameters from a hyper-prior
    /// around the profile (devices of the same kind differ in firmware,
    /// link quality and workload), which makes the benign manifold
    /// heavy-tailed — the regime in which density-based detectors like
    /// iForest produce benign false positives while reconstruction models
    /// still fit the structure (paper §3.1's premise).
    pub fn gen_flow(&self, rng: &mut Rng, src_ip: u32, dst_ip: u32, start_ns: u64) -> Vec<Packet> {
        let size = SizeModel {
            mean: self.size.mean * rng.gen_range(0.8..1.25),
            std: self.size.std * rng.gen_range(0.7..1.4),
            ..self.size
        };
        let ipd = IpdModel {
            mean_ms: self.ipd.mean_ms * rng.gen_range(0.7..1.45),
            std_ms: self.ipd.std_ms * rng.gen_range(0.7..1.4),
        };
        let n = rng.gen_range(self.pkts.0..=self.pkts.1).max(1);
        let src_port: u16 = rng.gen_range(32768..61000);
        let dst_port = self.dst_port.sample(rng);
        let ttl = if self.ttl_jitter == 0 {
            self.ttl
        } else {
            let j = rng.gen_range(0..=2 * self.ttl_jitter as i32) - self.ttl_jitter as i32;
            (self.ttl as i32 + j).clamp(1, 255) as u8
        };
        let five = FiveTuple::new(src_ip, dst_ip, src_port, dst_port, self.proto);
        let mut ts = start_ns;
        let mut out = Vec::with_capacity(n as usize);
        for i in 0..n {
            if i > 0 {
                ts += ipd.sample_ns(rng);
            }
            let flags = if self.proto == PROTO_TCP {
                self.flags.flags_for(i, n - 1)
            } else {
                TcpFlags::default()
            };
            out.push(Packet { ts_ns: ts, five, wire_len: size.sample(rng), ttl, flags });
        }
        out
    }
}

/// IP address pools and flow scheduling for a scenario.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Number of flows to generate.
    pub flows: usize,
    /// Flow start times are uniform over `[0, window_secs]`.
    pub window_secs: f64,
    /// Source IPs: `src_base .. src_base + src_count`.
    pub src_base: u32,
    pub src_count: u32,
    /// Destination IPs: `dst_base .. dst_base + dst_count`.
    pub dst_base: u32,
    pub dst_count: u32,
}

/// Generates a trace by sampling `flows` flows from a weighted profile
/// mixture; every packet is labelled `malicious`.
pub fn gen_trace(
    profiles: &[(FlowProfile, f64)],
    scenario: &ScenarioConfig,
    malicious: bool,
    rng: &mut Rng,
) -> Trace {
    assert!(!profiles.is_empty(), "need at least one profile");
    let total_w: f64 = profiles.iter().map(|(_, w)| w).sum();
    assert!(total_w > 0.0, "profile weights must sum > 0");
    let window_ns = (scenario.window_secs * 1e9) as u64;
    let mut flows: Vec<Vec<Packet>> = Vec::with_capacity(scenario.flows);
    for _ in 0..scenario.flows {
        // Weighted profile choice.
        let mut pick = rng.gen_range(0.0..total_w);
        let mut chosen = &profiles[0].0;
        for (p, w) in profiles {
            if pick < *w {
                chosen = p;
                break;
            }
            pick -= w;
        }
        let src = scenario.src_base + rng.gen_range(0..scenario.src_count.max(1));
        let dst = scenario.dst_base + rng.gen_range(0..scenario.dst_count.max(1));
        let start = if window_ns > 0 { rng.gen_range(0..window_ns) } else { 0 };
        flows.push(chosen.gen_flow(rng, src, dst, start));
    }
    let mut zipped: Vec<Packet> = flows.into_iter().flatten().collect();
    zipped.sort_by_key(|p| p.ts_ns);
    let mut t = Trace::new();
    for p in zipped {
        t.push(p, malicious);
    }
    t
}

/// Box–Muller Gaussian sample.
pub fn gauss(rng: &mut Rng, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_flow::five_tuple::PROTO_UDP;
    use iguard_runtime::rng::Rng;

    fn profile() -> FlowProfile {
        FlowProfile {
            name: "test",
            proto: PROTO_TCP,
            dst_port: PortModel::Fixed(80),
            size: SizeModel { mean: 100.0, std: 10.0, min: 60, max: 200 },
            ipd: IpdModel { mean_ms: 10.0, std_ms: 2.0 },
            pkts: (5, 5),
            ttl: 64,
            ttl_jitter: 0,
            flags: FlagsModel::conversation(),
        }
    }

    #[test]
    fn flow_has_requested_length_and_ordering() {
        let mut rng = Rng::seed_from_u64(1);
        let pkts = profile().gen_flow(&mut rng, 1, 2, 1000);
        assert_eq!(pkts.len(), 5);
        assert_eq!(pkts[0].ts_ns, 1000);
        assert!(pkts.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // All packets share the 5-tuple.
        assert!(pkts.iter().all(|p| p.five == pkts[0].five));
    }

    #[test]
    fn conversation_flags_sequence() {
        let mut rng = Rng::seed_from_u64(2);
        let pkts = profile().gen_flow(&mut rng, 1, 2, 0);
        assert!(pkts[0].flags.syn && !pkts[0].flags.ack);
        assert!(pkts[1].flags.ack && !pkts[1].flags.syn);
        assert!(pkts[4].flags.fin);
    }

    #[test]
    fn syn_probe_sets_syn_on_all() {
        let mut p = profile();
        p.flags = FlagsModel::syn_probe();
        let mut rng = Rng::seed_from_u64(3);
        let pkts = p.gen_flow(&mut rng, 1, 2, 0);
        assert!(pkts.iter().all(|pk| pk.flags.syn));
    }

    #[test]
    fn udp_flow_carries_no_flags() {
        let mut p = profile();
        p.proto = PROTO_UDP;
        let mut rng = Rng::seed_from_u64(4);
        let pkts = p.gen_flow(&mut rng, 1, 2, 0);
        assert!(pkts.iter().all(|pk| pk.flags == TcpFlags::default()));
    }

    #[test]
    fn sizes_respect_clamps() {
        let m = SizeModel { mean: 100.0, std: 500.0, min: 60, max: 150 };
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!((60..=150).contains(&s));
        }
    }

    #[test]
    fn gauss_statistics() {
        let mut rng = Rng::seed_from_u64(6);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gauss(&mut rng, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn gen_trace_schedules_within_window() {
        let mut rng = Rng::seed_from_u64(7);
        let sc = ScenarioConfig {
            flows: 50,
            window_secs: 1.0,
            src_base: 10,
            src_count: 5,
            dst_base: 100,
            dst_count: 3,
        };
        let t = gen_trace(&[(profile(), 1.0)], &sc, true, &mut rng);
        assert!(t.len() >= 250);
        assert!(t.labels.iter().all(|&l| l));
        assert!(t.packets.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // Start times within ~window + flow duration slack.
        assert!(t.packets[0].ts_ns < 1_000_000_000);
    }

    #[test]
    fn ttl_jitter_bounded() {
        let mut p = profile();
        p.ttl_jitter = 3;
        let mut rng = Rng::seed_from_u64(8);
        for _ in 0..100 {
            let pkts = p.gen_flow(&mut rng, 1, 2, 0);
            assert!((61..=67).contains(&pkts[0].ttl));
        }
    }
}
