//! The 15 attack generators of the paper's evaluation.
//!
//! Ten "direct" attacks (IoT-malware propagation, DDoS floods, scans,
//! exfiltration) plus five "router" variants — the same behaviours observed
//! through an aggregating home-router/NAT, which collapses source addresses
//! and adds queueing jitter, making the traffic look *more* like benign
//! aggregate traffic (these are the attacks conventional iForest does worst
//! on in the paper).
//!
//! Attack profiles are tuned so that every marginal feature lies inside the
//! benign mixture's range while the *joint* structure (e.g. the tight
//! size/IPD variance of flood tools, or the too-regular cadence of
//! keylogger beacons) is off the benign manifold — reproducing the overlap
//! regime of paper Fig. 2/7.

use iguard_runtime::rng::Rng;

use iguard_flow::five_tuple::{PROTO_ICMP, PROTO_TCP, PROTO_UDP};

use crate::profile::{
    gen_trace, FlagsModel, FlowProfile, IpdModel, PortModel, ScenarioConfig, SizeModel,
};
use crate::trace::Trace;

/// 172.16.0.0/16: compromised-device sources.
pub const BOT_IP_BASE: u32 = 0xAC10_0000;
/// 192.168.1.1: the home router every "router" variant NATs through.
pub const ROUTER_IP: u32 = 0xC0A8_0101;
/// 198.51.100.0/24: victim pool.
pub const VICTIM_IP_BASE: u32 = 0xC633_6400;

/// The 15 attacks of the paper's evaluation (Figs. 2, 5–9; Tables 2–3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Attack {
    Mirai,
    Aidra,
    Bashlite,
    UdpDdos,
    TcpDdos,
    HttpDdos,
    OsScan,
    ServiceScan,
    DataTheft,
    Keylogging,
    MiraiRouterFilter,
    OsScanRouter,
    PortScanRouter,
    TcpDdosRouter,
    UdpDdosRouter,
}

/// All 15 attacks in the paper's reporting order (Fig. 2 first, then the
/// appendix attacks).
pub const ALL_ATTACKS: [Attack; 15] = [
    Attack::Aidra,
    Attack::Mirai,
    Attack::Bashlite,
    Attack::UdpDdos,
    Attack::OsScan,
    Attack::HttpDdos,
    Attack::DataTheft,
    Attack::Keylogging,
    Attack::ServiceScan,
    Attack::TcpDdos,
    Attack::MiraiRouterFilter,
    Attack::OsScanRouter,
    Attack::PortScanRouter,
    Attack::TcpDdosRouter,
    Attack::UdpDdosRouter,
];

impl Attack {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Attack::Mirai => "Mirai",
            Attack::Aidra => "Aidra",
            Attack::Bashlite => "Bashlite",
            Attack::UdpDdos => "UDP DDoS",
            Attack::TcpDdos => "TCP DDoS",
            Attack::HttpDdos => "HTTP DDoS",
            Attack::OsScan => "OS scan",
            Attack::ServiceScan => "Service scan",
            Attack::DataTheft => "Data theft",
            Attack::Keylogging => "Keylogging",
            Attack::MiraiRouterFilter => "Mirai router filter",
            Attack::OsScanRouter => "OS scan router",
            Attack::PortScanRouter => "Port scan router",
            Attack::TcpDdosRouter => "TCP DDoS router",
            Attack::UdpDdosRouter => "UDP DDoS router",
        }
    }

    /// Whether this is a router (NAT-aggregated) variant.
    pub fn is_router_variant(&self) -> bool {
        matches!(
            self,
            Attack::MiraiRouterFilter
                | Attack::OsScanRouter
                | Attack::PortScanRouter
                | Attack::TcpDdosRouter
                | Attack::UdpDdosRouter
        )
    }

    /// The behavioural profile of this attack.
    pub fn profile(&self) -> FlowProfile {
        match self {
            // Mirai: telnet credential scanning — tiny SYN probes to
            // 23/2323, metronome-regular retry cadence.
            Attack::Mirai | Attack::MiraiRouterFilter => FlowProfile {
                name: "mirai",
                proto: PROTO_TCP,
                dst_port: PortModel::Choice(vec![23, 2323]),
                size: SizeModel { mean: 78.0, std: 12.0, min: 60, max: 130 },
                ipd: IpdModel { mean_ms: 95.0, std_ms: 40.0 },
                pkts: (3, 7),
                ttl: 64,
                ttl_jitter: 0,
                flags: FlagsModel::syn_probe(),
            },
            // Aidra: IRC-era botnet scanning, similar to Mirai but slower
            // and chattier.
            Attack::Aidra => FlowProfile {
                name: "aidra",
                proto: PROTO_TCP,
                dst_port: PortModel::Fixed(23),
                size: SizeModel { mean: 92.0, std: 18.0, min: 60, max: 160 },
                ipd: IpdModel { mean_ms: 150.0, std_ms: 60.0 },
                pkts: (4, 10),
                ttl: 64,
                ttl_jitter: 0,
                flags: FlagsModel::syn_probe(),
            },
            // Bashlite/Gafgyt: scan + small-payload UDP flood blend.
            Attack::Bashlite => FlowProfile {
                name: "bashlite",
                proto: PROTO_UDP,
                dst_port: PortModel::Choice(vec![23, 80, 8080]),
                size: SizeModel { mean: 128.0, std: 24.0, min: 80, max: 220 },
                ipd: IpdModel { mean_ms: 42.0, std_ms: 16.0 },
                pkts: (6, 18),
                ttl: 64,
                ttl_jitter: 0,
                flags: FlagsModel::none(),
            },
            // Volumetric UDP flood: mid-size packets at kHz rate with
            // machine-tight variance.
            Attack::UdpDdos | Attack::UdpDdosRouter => FlowProfile {
                name: "udp_ddos",
                proto: PROTO_UDP,
                dst_port: PortModel::Fixed(53),
                size: SizeModel { mean: 512.0, std: 80.0, min: 300, max: 760 },
                ipd: IpdModel { mean_ms: 2.5, std_ms: 1.0 },
                pkts: (48, 160),
                ttl: 64,
                ttl_jitter: 0,
                flags: FlagsModel::none(),
            },
            // SYN flood: minimum-size SYNs at kHz rate.
            Attack::TcpDdos | Attack::TcpDdosRouter => FlowProfile {
                name: "tcp_ddos",
                proto: PROTO_TCP,
                dst_port: PortModel::Fixed(80),
                size: SizeModel { mean: 64.0, std: 6.0, min: 54, max: 90 },
                ipd: IpdModel { mean_ms: 2.0, std_ms: 0.8 },
                pkts: (32, 128),
                ttl: 64,
                ttl_jitter: 0,
                flags: FlagsModel::syn_probe(),
            },
            // HTTP GET flood: request-size packets at a rate no browser
            // sustains.
            Attack::HttpDdos => FlowProfile {
                name: "http_ddos",
                proto: PROTO_TCP,
                dst_port: PortModel::Fixed(80),
                size: SizeModel { mean: 340.0, std: 90.0, min: 200, max: 620 },
                ipd: IpdModel { mean_ms: 16.0, std_ms: 7.0 },
                pkts: (16, 64),
                ttl: 64,
                ttl_jitter: 0,
                flags: FlagsModel::conversation(),
            },
            // OS fingerprint scan: lone probes with fingerprinting TTLs.
            Attack::OsScan | Attack::OsScanRouter => FlowProfile {
                name: "os_scan",
                proto: PROTO_ICMP,
                dst_port: PortModel::Fixed(0),
                size: SizeModel { mean: 78.0, std: 10.0, min: 60, max: 120 },
                ipd: IpdModel { mean_ms: 60.0, std_ms: 8.0 },
                pkts: (1, 3),
                ttl: 255,
                ttl_jitter: 1,
                flags: FlagsModel::none(),
            },
            // Service discovery: SYNs across the well-known port range.
            Attack::ServiceScan => FlowProfile {
                name: "service_scan",
                proto: PROTO_TCP,
                dst_port: PortModel::Range(1, 1024),
                size: SizeModel { mean: 62.0, std: 4.0, min: 54, max: 80 },
                ipd: IpdModel { mean_ms: 25.0, std_ms: 3.0 },
                pkts: (1, 2),
                ttl: 64,
                ttl_jitter: 0,
                flags: FlagsModel::syn_probe(),
            },
            // Port sweep through the router: like service scan but across
            // ephemeral ports too.
            Attack::PortScanRouter => FlowProfile {
                name: "port_scan",
                proto: PROTO_TCP,
                dst_port: PortModel::Range(1, 16384),
                size: SizeModel { mean: 60.0, std: 3.0, min: 54, max: 74 },
                ipd: IpdModel { mean_ms: 18.0, std_ms: 2.2 },
                pkts: (1, 2),
                ttl: 64,
                ttl_jitter: 0,
                flags: FlagsModel::syn_probe(),
            },
            // Bulk exfiltration: looks like cloud sync but sustained,
            // unidirectional, and variance-tight.
            Attack::DataTheft => FlowProfile {
                name: "data_theft",
                proto: PROTO_TCP,
                dst_port: PortModel::Fixed(443),
                size: SizeModel { mean: 1150.0, std: 150.0, min: 800, max: 1420 },
                ipd: IpdModel { mean_ms: 14.0, std_ms: 7.0 },
                pkts: (64, 200),
                ttl: 64,
                ttl_jitter: 0,
                flags: FlagsModel::conversation(),
            },
            // Keylogger beacons: keep-alive-sized packets on a cadence far
            // too regular for a human-facing device.
            Attack::Keylogging => FlowProfile {
                name: "keylogging",
                proto: PROTO_TCP,
                dst_port: PortModel::Fixed(443),
                size: SizeModel { mean: 84.0, std: 10.0, min: 64, max: 120 },
                ipd: IpdModel { mean_ms: 920.0, std_ms: 150.0 },
                pkts: (4, 12),
                ttl: 64,
                ttl_jitter: 0,
                flags: FlagsModel::conversation(),
            },
        }
    }

    /// Generates an attack trace of `flows` flows over `window_secs`.
    ///
    /// Router variants source all traffic from [`ROUTER_IP`] (the NAT
    /// collapses devices into one address), decrement TTL by the router
    /// hop, and widen IPD jitter (queueing) — blending them further into
    /// benign aggregate traffic.
    pub fn trace(&self, flows: usize, window_secs: f64, rng: &mut Rng) -> Trace {
        let mut profile = self.profile();
        let scenario = if self.is_router_variant() {
            profile.ttl = profile.ttl.saturating_sub(1).max(1);
            profile.ipd.std_ms *= 2.5; // router queueing jitter
            ScenarioConfig {
                flows,
                window_secs,
                src_base: ROUTER_IP,
                src_count: 1,
                dst_base: VICTIM_IP_BASE,
                dst_count: 64,
            }
        } else {
            ScenarioConfig {
                flows,
                window_secs,
                src_base: BOT_IP_BASE,
                src_count: 128,
                dst_base: VICTIM_IP_BASE,
                dst_count: 64,
            }
        };
        gen_trace(&[(profile, 1.0)], &scenario, true, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benign;
    use crate::trace::{extract_flows, ExtractConfig};
    use iguard_runtime::rng::Rng;

    #[test]
    fn all_attacks_generate_labelled_traffic() {
        let mut rng = Rng::seed_from_u64(1);
        for attack in ALL_ATTACKS {
            let t = attack.trace(20, 2.0, &mut rng);
            assert!(!t.is_empty(), "{:?} produced no packets", attack);
            assert!(t.labels.iter().all(|&l| l), "{:?} mislabelled", attack);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ALL_ATTACKS.iter().map(|a| a.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn router_variants_share_source_ip() {
        let mut rng = Rng::seed_from_u64(2);
        let t = Attack::UdpDdosRouter.trace(10, 1.0, &mut rng);
        assert!(t.packets.iter().all(|p| p.five.src_ip == ROUTER_IP));
    }

    #[test]
    fn direct_attacks_use_bot_pool() {
        let mut rng = Rng::seed_from_u64(3);
        let t = Attack::Mirai.trace(10, 1.0, &mut rng);
        assert!(t
            .packets
            .iter()
            .all(|p| (BOT_IP_BASE..BOT_IP_BASE + 128).contains(&p.five.src_ip)));
    }

    /// Attack marginals must fall inside benign marginal ranges — the
    /// Fig. 2 overlap premise. Checked on mean packet size.
    #[test]
    fn attack_mean_sizes_inside_benign_range() {
        let mut rng = Rng::seed_from_u64(4);
        let benign = benign::benign_trace(400, 10.0, &mut rng);
        let bf = extract_flows(&benign, &ExtractConfig::default());
        let b_sizes: Vec<f32> = bf.features.column(2).collect();
        let (b_lo, b_hi) = (
            b_sizes.iter().cloned().fold(f32::INFINITY, f32::min),
            b_sizes.iter().cloned().fold(0.0f32, f32::max),
        );
        for attack in ALL_ATTACKS {
            let t = attack.trace(40, 5.0, &mut rng);
            let af = extract_flows(&t, &ExtractConfig::default());
            let mean: f32 = af.features.column(2).sum::<f32>() / af.features.rows() as f32;
            assert!(
                mean >= b_lo && mean <= b_hi,
                "{}: mean size {mean} outside benign [{b_lo}, {b_hi}]",
                attack.name()
            );
        }
    }

    #[test]
    fn flood_attacks_have_tighter_ipd_variance_than_benign() {
        let mut rng = Rng::seed_from_u64(5);
        let cfg = ExtractConfig::default();
        let benign = extract_flows(&benign::benign_trace(300, 10.0, &mut rng), &cfg);
        let attack = extract_flows(&Attack::UdpDdos.trace(50, 5.0, &mut rng), &cfg);
        // Feature 10 = std IPD. Flood tooling is machine-regular.
        let mean_std = |fs: &iguard_runtime::Dataset| fs.column(10).sum::<f32>() / fs.rows() as f32;
        assert!(mean_std(&attack.features) < mean_std(&benign.features));
    }
}
