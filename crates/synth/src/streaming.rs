//! Streaming trace generation: million-flow traces without materialisation.
//!
//! [`crate::trace::Trace`] holds every packet in memory, which caps
//! experiments at the ~10k-packet replays of the earlier benches. A
//! [`StreamingTrace`] instead *is* the trace: a seeded generator that
//! yields packets (or fills caller-owned batch buffers) on demand, so a
//! simulated-hours, million-flow workload costs O(lanes) state — a few
//! kilobytes — no matter how long it runs.
//!
//! ## Structure
//!
//! * A **Zipf-skewed user population** ([`Zipf`], rejection-inversion
//!   sampling — O(1) per draw at any population size): a few heavy-hitter
//!   devices dominate while a long tail of users appears rarely, the flow
//!   popularity regime sketch-assisted tables are built for.
//! * **Lanes**: `cfg.lanes` independent flow generators, each with its own
//!   derived RNG stream, laying flows back-to-back in time with sampled
//!   inter-flow gaps. A K-way merge on (timestamp, lane) interleaves them
//!   into one globally time-ordered packet stream with deterministic
//!   tie-breaks.
//! * **Benign/attack interleave**: each new flow is an attack with
//!   probability `attack_fraction`, drawn from `cfg.attacks`; benign flows
//!   sample the [`crate::benign::device_mixture`] with the same hyper-prior
//!   parameter jitter as [`crate::profile::FlowProfile::gen_flow`].
//!
//! ## Batch-size invariance
//!
//! The stream is one fixed packet sequence; [`StreamingTrace::fill_next`]
//! merely cuts it at the caller's boundary. Reading the stream at batch
//! size 1, 7, or 1024 yields byte-identical packets in the same order —
//! the same chunking rule the batched pipeline relies on — and the
//! property tests pin it.
//!
//! ## Allocation discipline
//!
//! After construction, the streaming path performs **no allocation**: lane
//! state is fixed-size, packets are generated incrementally (no per-flow
//! `Vec`), and `fill_next` writes into caller-owned buffers. The bench
//! smoke asserts this with a counting allocator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use iguard_flow::five_tuple::{FiveTuple, PROTO_TCP};
use iguard_flow::packet::{Packet, TcpFlags};
use iguard_runtime::rng::Rng;

use crate::attacks::{Attack, BOT_IP_BASE, VICTIM_IP_BASE};
use crate::benign::{device_mixture, CLOUD_IP_BASE, DEVICE_IP_BASE};
use crate::profile::{FlagsModel, FlowProfile, IpdModel, SizeModel};
use crate::trace::Trace;

/// Placeholder packet for a lane slot that hasn't produced one yet.
fn zero_packet() -> Packet {
    Packet {
        ts_ns: 0,
        five: FiveTuple::new(0, 0, 0, 0, 0),
        wire_len: 0,
        ttl: 0,
        flags: TcpFlags::default(),
    }
}

/// Zipf(n, s) rank sampler: `P(k) ∝ k^−s` over ranks `1..=n`, via
/// Hörmann–Derflinger rejection-inversion. O(1) per sample with no
/// precomputed table, so the user population can be in the millions.
#[derive(Clone, Copy, Debug)]
pub struct Zipf {
    n: f64,
    s: f64,
    /// `H(1.5) − 1`: lower end of the inversion range.
    h_x1: f64,
    /// `H(n + 0.5)`: upper end of the inversion range.
    h_n: f64,
    /// Fast-accept threshold `2 − H⁻¹(H(2.5) − 2^−s)`.
    threshold: f64,
}

impl Zipf {
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "population must be non-empty");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and ≥ 0");
        let mut z = Self { n: n as f64, s, h_x1: 0.0, h_n: 0.0, threshold: 0.0 };
        z.h_x1 = z.h(1.5) - 1.0;
        z.h_n = z.h(z.n + 0.5);
        z.threshold = 2.0 - z.h_inv(z.h(2.5) - 2f64.powf(-s));
        z
    }

    /// `H(x) = ∫ x^−s dx`, anchored so `H` is continuous at `s = 1`.
    fn h(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - self.s) - 1.0) / (1.0 - self.s)
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draws a rank in `1..=n` (rank 1 is the most popular).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        loop {
            let u = self.h_x1 + rng.next_f64() * (self.h_n - self.h_x1);
            let x = self.h_inv(u);
            let k = x.round().clamp(1.0, self.n);
            if k - x <= self.threshold || u >= self.h(k + 0.5) - k.powf(-self.s) {
                return k as u64;
            }
        }
    }
}

/// Configuration of a [`StreamingTrace`].
#[derive(Clone, Debug)]
pub struct StreamingConfig {
    pub seed: u64,
    /// Benign device population size; source addresses are Zipf-ranked
    /// into `DEVICE_IP_BASE + rank`. Capped at 2²⁴ (the 10.0.0.0/8 pool).
    pub users: u64,
    /// Zipf skew `s` of the user popularity distribution.
    pub zipf_exponent: f64,
    /// Concurrent flow lanes — the number of flows in flight at any
    /// simulated instant (and the only O(·) state the stream keeps).
    pub lanes: usize,
    /// Total flows to emit before the stream ends.
    pub total_flows: u64,
    /// Probability that a lane's next flow is an attack flow.
    pub attack_fraction: f64,
    /// Attack behaviours to interleave (uniformly chosen per attack flow).
    pub attacks: Vec<Attack>,
    /// Mean per-lane gap between a flow's last packet and the next flow's
    /// first packet (exponentially distributed).
    pub mean_flow_gap_ms: f64,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            users: 65_536,
            zipf_exponent: 1.1,
            lanes: 64,
            total_flows: 10_000,
            attack_fraction: 0.2,
            attacks: vec![Attack::Mirai, Attack::UdpDdos, Attack::OsScan, Attack::Keylogging],
            mean_flow_gap_ms: 50.0,
        }
    }
}

impl StreamingConfig {
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_users(mut self, users: u64) -> Self {
        self.users = users;
        self
    }

    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    pub fn with_total_flows(mut self, flows: u64) -> Self {
        self.total_flows = flows;
        self
    }

    pub fn with_attack_fraction(mut self, frac: f64) -> Self {
        self.attack_fraction = frac;
        self
    }
}

/// One in-flight flow generator: fixed-size state, produces its flow's
/// packets one at a time with the exact per-packet model of
/// [`FlowProfile::gen_flow`] (hyper-prior jitter, IPD walk, TCP flag
/// sequencing), then rolls over to the lane's next flow.
struct Lane {
    rng: Rng,
    /// Timestamp of `pending` (the lane's next packet to emit).
    pending: Packet,
    malicious: bool,
    size: SizeModel,
    ipd: IpdModel,
    ttl: u8,
    flags: FlagsModel,
    is_tcp: bool,
    /// Index of `pending` within the current flow.
    idx: u32,
    last_idx: u32,
}

/// A seeded, non-materialised packet stream: see the module docs.
pub struct StreamingTrace {
    attack_fraction: f64,
    mean_flow_gap_ns: f64,
    profiles: Vec<(FlowProfile, f64)>,
    total_weight: f64,
    attack_profiles: Vec<FlowProfile>,
    zipf: Zipf,
    lanes: Vec<Lane>,
    /// Min-heap of `(pending timestamp, lane)` — the K-way merge front.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    flows_left: u64,
    flows_started: u64,
    packets_emitted: u64,
}

impl StreamingTrace {
    pub fn new(cfg: StreamingConfig) -> Self {
        assert!(cfg.lanes >= 1, "need at least one lane");
        assert!(!cfg.attacks.is_empty() || cfg.attack_fraction == 0.0);
        let users = cfg.users.clamp(1, 1 << 24);
        let base = Rng::seed_from_u64(cfg.seed);
        let mut s = Self {
            attack_fraction: cfg.attack_fraction,
            mean_flow_gap_ns: cfg.mean_flow_gap_ms * 1e6,
            profiles: device_mixture(),
            total_weight: 0.0,
            attack_profiles: cfg.attacks.iter().map(|a| a.profile()).collect(),
            zipf: Zipf::new(users, cfg.zipf_exponent),
            lanes: Vec::with_capacity(cfg.lanes),
            heap: BinaryHeap::with_capacity(cfg.lanes),
            flows_left: cfg.total_flows,
            flows_started: 0,
            packets_emitted: 0,
        };
        s.total_weight = s.profiles.iter().map(|(_, w)| w).sum();
        for li in 0..cfg.lanes {
            if s.flows_left == 0 {
                break;
            }
            let mut lane = Lane {
                rng: base.derive(li as u64),
                pending: zero_packet(),
                malicious: false,
                size: SizeModel { mean: 0.0, std: 0.0, min: 0, max: 0 },
                ipd: IpdModel { mean_ms: 0.0, std_ms: 0.0 },
                ttl: 64,
                flags: FlagsModel::none(),
                is_tcp: false,
                idx: 0,
                last_idx: 0,
            };
            // Stagger lane start times across one mean gap so the merge
            // front doesn't begin with `lanes` simultaneous flows.
            let start = Self::sample_gap(&mut lane.rng, s.mean_flow_gap_ns);
            s.start_flow(&mut lane, start);
            s.flows_left -= 1;
            s.flows_started += 1;
            s.heap.push(Reverse((lane.pending.ts_ns, li as u32)));
            s.lanes.push(lane);
        }
        s
    }

    /// Exponential inter-flow gap with the configured mean.
    fn sample_gap(rng: &mut Rng, mean_ns: f64) -> u64 {
        let u = rng.next_f64().clamp(f64::EPSILON, 1.0 - f64::EPSILON);
        (-(1.0 - u).ln() * mean_ns) as u64
    }

    /// Rolls `lane` onto a fresh flow whose first packet lands at
    /// `start_ns`, drawing profile, endpoints, and hyper-prior parameters
    /// from the lane's RNG — the incremental twin of
    /// [`FlowProfile::gen_flow`].
    fn start_flow(&self, lane: &mut Lane, start_ns: u64) {
        let rng = &mut lane.rng;
        let malicious = self.attack_fraction > 0.0 && rng.gen_bool(self.attack_fraction);
        let profile = if malicious {
            &self.attack_profiles[rng.gen_range(0..self.attack_profiles.len())]
        } else {
            // Weighted benign mixture choice (same walk as `gen_trace`).
            let mut pick = rng.gen_range(0.0..self.total_weight);
            let mut chosen = &self.profiles[0].0;
            for (p, w) in &self.profiles {
                if pick < *w {
                    chosen = p;
                    break;
                }
                pick -= w;
            }
            chosen
        };
        let (src_ip, dst_ip) = if malicious {
            (
                BOT_IP_BASE + (self.zipf.sample(rng) as u32 & 0x0FFF),
                VICTIM_IP_BASE + rng.gen_range(0u32..64),
            )
        } else {
            (
                DEVICE_IP_BASE + (self.zipf.sample(rng) - 1) as u32,
                CLOUD_IP_BASE + rng.gen_range(0u32..256),
            )
        };
        // Per-flow hyper-prior jitter, identical to `gen_flow`.
        lane.size = SizeModel {
            mean: profile.size.mean * rng.gen_range(0.8..1.25),
            std: profile.size.std * rng.gen_range(0.7..1.4),
            ..profile.size
        };
        lane.ipd = IpdModel {
            mean_ms: profile.ipd.mean_ms * rng.gen_range(0.7..1.45),
            std_ms: profile.ipd.std_ms * rng.gen_range(0.7..1.4),
        };
        let n = rng.gen_range(profile.pkts.0..=profile.pkts.1).max(1);
        let src_port: u16 = rng.gen_range(32768..61000);
        let dst_port = profile.dst_port.sample(rng);
        lane.ttl = if profile.ttl_jitter == 0 {
            profile.ttl
        } else {
            let j = rng.gen_range(0..=2 * profile.ttl_jitter as i32) - profile.ttl_jitter as i32;
            (profile.ttl as i32 + j).clamp(1, 255) as u8
        };
        lane.flags = profile.flags;
        lane.is_tcp = profile.proto == PROTO_TCP;
        lane.malicious = malicious;
        lane.idx = 0;
        lane.last_idx = n - 1;
        let five = FiveTuple::new(src_ip, dst_ip, src_port, dst_port, profile.proto);
        lane.pending = Self::make_packet(lane, five, start_ns);
    }

    fn make_packet(lane: &mut Lane, five: FiveTuple, ts_ns: u64) -> Packet {
        let flags = if lane.is_tcp {
            lane.flags.flags_for(lane.idx, lane.last_idx)
        } else {
            TcpFlags::default()
        };
        Packet { ts_ns, five, wire_len: lane.size.sample(&mut lane.rng), ttl: lane.ttl, flags }
    }

    /// Emits lane `li`'s pending packet and advances it to the next one
    /// (next packet of the flow, or the lane's next flow). Returns false
    /// when the lane is exhausted (global flow budget spent).
    fn advance_lane(&mut self, li: usize) -> bool {
        // Split borrows: take the lane out of self mutably via index.
        if self.lanes[li].idx < self.lanes[li].last_idx {
            let lane = &mut self.lanes[li];
            lane.idx += 1;
            let ts = lane.pending.ts_ns + lane.ipd.sample_ns(&mut lane.rng);
            let five = lane.pending.five;
            lane.pending = Self::make_packet(lane, five, ts);
            true
        } else if self.flows_left > 0 {
            self.flows_left -= 1;
            self.flows_started += 1;
            let gap = {
                let lane = &mut self.lanes[li];
                lane.pending.ts_ns + Self::sample_gap(&mut lane.rng, self.mean_flow_gap_ns)
            };
            let mut lane = std::mem::replace(
                &mut self.lanes[li],
                Lane {
                    rng: Rng::seed_from_u64(0),
                    pending: zero_packet(),
                    malicious: false,
                    size: SizeModel { mean: 0.0, std: 0.0, min: 0, max: 0 },
                    ipd: IpdModel { mean_ms: 0.0, std_ms: 0.0 },
                    ttl: 64,
                    flags: FlagsModel::none(),
                    is_tcp: false,
                    idx: 0,
                    last_idx: 0,
                },
            );
            self.start_flow(&mut lane, gap);
            self.lanes[li] = lane;
            true
        } else {
            false
        }
    }

    /// The next `(packet, ground-truth label)` of the merged stream, or
    /// `None` when the flow budget is exhausted and every lane has
    /// drained.
    pub fn next_packet(&mut self) -> Option<(Packet, bool)> {
        let Reverse((_, li)) = self.heap.pop()?;
        let li = li as usize;
        let pkt = self.lanes[li].pending;
        let label = self.lanes[li].malicious;
        if self.advance_lane(li) {
            self.heap.push(Reverse((self.lanes[li].pending.ts_ns, li as u32)));
        }
        self.packets_emitted += 1;
        Some((pkt, label))
    }

    /// Fills `pkts`/`labels` (cleared first) with up to `max` packets from
    /// the stream; returns the count, 0 at end-of-stream. The caller owns
    /// the buffers, so a replay loop that reuses them runs allocation-free
    /// after warm-up — and the concatenation of all batches is identical
    /// at any `max`.
    pub fn fill_next(
        &mut self,
        max: usize,
        pkts: &mut Vec<Packet>,
        labels: &mut Vec<bool>,
    ) -> usize {
        pkts.clear();
        labels.clear();
        while pkts.len() < max {
            match self.next_packet() {
                Some((p, l)) => {
                    pkts.push(p);
                    labels.push(l);
                }
                None => break,
            }
        }
        pkts.len()
    }

    /// Flows whose first packet has been generated so far.
    pub fn flows_started(&self) -> u64 {
        self.flows_started
    }

    /// Packets handed out so far.
    pub fn packets_emitted(&self) -> u64 {
        self.packets_emitted
    }

    /// Drains the whole stream into an in-memory [`Trace`] — for tests
    /// and small calibration runs that need random access; defeats the
    /// purpose at scale.
    pub fn materialize(mut self) -> Trace {
        let mut t = Trace::new();
        while let Some((p, l)) = self.next_packet() {
            t.push(p, l);
        }
        t
    }
}

impl Iterator for StreamingTrace {
    type Item = (Packet, bool);

    fn next(&mut self) -> Option<(Packet, bool)> {
        self.next_packet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_runtime::proptest_lite;

    fn collect_at(cfg: StreamingConfig, batch: usize) -> (Vec<Packet>, Vec<bool>) {
        let mut s = StreamingTrace::new(cfg);
        let (mut pkts, mut labels) = (Vec::new(), Vec::new());
        let (mut all_p, mut all_l) = (Vec::new(), Vec::new());
        while s.fill_next(batch, &mut pkts, &mut labels) > 0 {
            all_p.extend_from_slice(&pkts);
            all_l.extend_from_slice(&labels);
        }
        (all_p, all_l)
    }

    #[test]
    fn batch_size_invariant_and_deterministic() {
        let cfg = StreamingConfig { total_flows: 400, lanes: 16, ..Default::default() };
        let want = collect_at(cfg.clone(), 1);
        assert!(!want.0.is_empty());
        for batch in [3, 64, 1024, 1_000_000] {
            assert_eq!(collect_at(cfg.clone(), batch), want, "stream differs at batch {batch}");
        }
        // Different seed, different stream.
        assert_ne!(collect_at(cfg.with_seed(8), 64), want);
    }

    #[test]
    fn timestamps_are_nondecreasing_and_flow_budget_is_exact() {
        let cfg = StreamingConfig { total_flows: 300, lanes: 8, ..Default::default() };
        let mut s = StreamingTrace::new(cfg);
        let mut last = 0u64;
        let mut flows = std::collections::HashSet::new();
        while let Some((p, _)) = s.next_packet() {
            assert!(p.ts_ns >= last, "timestamps must be merged in order");
            last = p.ts_ns;
            flows.insert(p.five.canonical());
        }
        assert_eq!(s.flows_started(), 300);
        // 5-tuples can collide across flows (ephemeral port reuse) but the
        // distinct-key count must be in the same ballpark.
        assert!(flows.len() > 250, "got {} distinct keys", flows.len());
    }

    #[test]
    fn materialize_matches_streaming() {
        let cfg = StreamingConfig { total_flows: 120, lanes: 4, ..Default::default() };
        let t = StreamingTrace::new(cfg.clone()).materialize();
        let (pkts, labels) = collect_at(cfg, 17);
        assert_eq!(t.packets, pkts);
        assert_eq!(t.labels, labels);
    }

    #[test]
    fn attack_fraction_is_respected() {
        let cfg =
            StreamingConfig { total_flows: 2_000, attack_fraction: 0.3, ..Default::default() };
        let t = StreamingTrace::new(cfg).materialize();
        let frac = t.malicious_fraction();
        // Packet-level fraction differs from the 0.3 flow-level fraction
        // (attack flows have their own length distribution) but must be
        // clearly present and clearly minority.
        assert!(frac > 0.05 && frac < 0.8, "malicious packet fraction {frac}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(10_000, 1.2);
        let mut rng = Rng::seed_from_u64(11);
        let mut head = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            let k = z.sample(&mut rng);
            assert!((1..=10_000).contains(&k));
            if k <= 10 {
                head += 1;
            }
        }
        // With s=1.2, the top-10 ranks carry well over a third of the mass;
        // uniform would give 0.1 %.
        assert!(head as f64 / N as f64 > 0.3, "head mass {}", head as f64 / N as f64);
    }

    proptest_lite! {
        /// Any exponent/population: samples stay in range, and the rank-1
        /// frequency dominates the deep tail.
        fn zipf_sampler_sane(rng, cases = 12) {
            let n = rng.gen_range(2u64..1_000_000);
            let s = rng.gen_range(0.0f64..2.5);
            let z = Zipf::new(n, s);
            for _ in 0..200 {
                let k = z.sample(rng);
                assert!((1..=n).contains(&k), "rank {k} outside 1..={n}");
            }
        }

        /// The stream is identical however many lanes' worth of packets
        /// each read grabs, across random configs.
        fn stream_batch_invariance(rng, cases = 6) {
            let cfg = StreamingConfig {
                seed: rng.next_u64(),
                users: rng.gen_range(10u64..5_000),
                zipf_exponent: rng.gen_range(0.5f64..1.5),
                lanes: rng.gen_range(1usize..24),
                total_flows: rng.gen_range(1u64..300),
                attack_fraction: rng.gen_range(0.0f64..0.5),
                ..Default::default()
            };
            let a = collect_at(cfg.clone(), 1);
            let b = collect_at(cfg.clone(), rng.gen_range(2usize..500));
            assert_eq!(a, b);
        }
    }
}
