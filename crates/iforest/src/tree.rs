//! A single isolation tree (iTree) per Liu et al. 2008.

use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;

/// Euler–Mascheroni constant, used by the path-length normaliser.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// `c(n)`: the average path length of an unsuccessful BST search over `n`
/// samples — the normalisation term of the anomaly score and the credit
/// assigned to unsplit terminations: `c(n) = 2H(n−1) − 2(n−1)/n` with
/// `H(i) ≈ ln(i) + γ`.
pub fn average_path_length(n: usize) -> f64 {
    match n {
        0 | 1 => 0.0,
        2 => 1.0,
        _ => {
            let n = n as f64;
            2.0 * ((n - 1.0).ln() + EULER_GAMMA) - 2.0 * (n - 1.0) / n
        }
    }
}

/// A node of an iTree.
#[derive(Clone, Debug)]
pub enum Node {
    /// Internal split: `x[feature] < split` goes left, else right.
    Internal { feature: usize, split: f32, left: Box<Node>, right: Box<Node> },
    /// External node holding `size` training samples.
    Leaf { size: usize },
}

/// One isolation tree.
#[derive(Clone, Debug)]
pub struct IsolationTree {
    root: Node,
    max_depth: usize,
}

impl IsolationTree {
    /// Grows an iTree on `samples` (row indices into `data`), splitting on a
    /// uniformly random feature at a uniformly random point between the
    /// feature's min and max, until `|X| ≤ 1` or depth `⌈log₂ Ψ⌉`.
    pub fn fit(data: &Dataset, sample_indices: &[usize], rng: &mut Rng) -> Self {
        assert!(data.rows() > 0, "cannot fit on empty data");
        let dim = data.cols();
        assert!(dim > 0, "samples must have at least one feature");
        let psi = sample_indices.len().max(2);
        let max_depth = (psi as f64).log2().ceil() as usize;
        let root = Self::build(data, sample_indices.to_vec(), 0, max_depth, dim, rng);
        Self { root, max_depth }
    }

    fn build(
        data: &Dataset,
        indices: Vec<usize>,
        depth: usize,
        max_depth: usize,
        dim: usize,
        rng: &mut Rng,
    ) -> Node {
        if indices.len() <= 1 || depth >= max_depth {
            return Node::Leaf { size: indices.len() };
        }
        // Pick a feature with spread; a few retries before giving up avoids
        // degenerate loops when many features are constant in this node.
        for _ in 0..dim.max(4) {
            let feature = rng.gen_range(0..dim);
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &i in &indices {
                let v = data[(i, feature)];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi <= lo {
                continue;
            }
            let split = rng.gen_range(lo..hi);
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                indices.iter().partition(|&&i| data[(i, feature)] < split);
            if left_idx.is_empty() || right_idx.is_empty() {
                continue;
            }
            let left = Self::build(data, left_idx, depth + 1, max_depth, dim, rng);
            let right = Self::build(data, right_idx, depth + 1, max_depth, dim, rng);
            return Node::Internal { feature, split, left: Box::new(left), right: Box::new(right) };
        }
        // All features constant across the node: it is one point repeated.
        Node::Leaf { size: indices.len() }
    }

    /// Path length `h(x)`: edges traversed to reach the external node plus
    /// the `c(size)` adjustment for the samples it still holds.
    pub fn path_length(&self, x: &[f32]) -> f64 {
        let mut node = &self.root;
        let mut depth = 0usize;
        loop {
            match node {
                Node::Leaf { size } => {
                    return depth as f64 + average_path_length(*size);
                }
                Node::Internal { feature, split, left, right } => {
                    depth += 1;
                    node = if x[*feature] < *split { left } else { right };
                }
            }
        }
    }

    /// Depth cap used while growing.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Internal { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Root accessor for introspection (rule extraction, tests).
    pub fn root(&self) -> &Node {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_runtime::rng::Rng;

    fn grid_data(n: usize, rng: &mut Rng) -> Dataset {
        let mut d = Dataset::new(2);
        for _ in 0..n {
            d.push_row(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
        }
        d
    }

    #[test]
    fn c_n_known_values() {
        assert_eq!(average_path_length(0), 0.0);
        assert_eq!(average_path_length(1), 0.0);
        assert_eq!(average_path_length(2), 1.0);
        // c(256) ≈ 10.244 (standard reference value)
        assert!((average_path_length(256) - 10.244).abs() < 0.01);
    }

    #[test]
    fn c_n_is_monotone() {
        let mut prev = 0.0;
        for n in 2..1000 {
            let c = average_path_length(n);
            assert!(c >= prev, "c({n}) = {c} < c({}) = {prev}", n - 1);
            prev = c;
        }
    }

    #[test]
    fn isolated_outlier_has_short_path() {
        let mut rng = Rng::seed_from_u64(1);
        let mut data = grid_data(255, &mut rng);
        data.push_row(&[10.0, 10.0]); // far outlier
        let indices: Vec<usize> = (0..data.rows()).collect();
        // Average over several trees to smooth randomness.
        let (mut out_len, mut in_len) = (0.0, 0.0);
        for seed in 0..20 {
            let mut r = Rng::seed_from_u64(seed);
            let tree = IsolationTree::fit(&data, &indices, &mut r);
            out_len += tree.path_length(&[10.0, 10.0]);
            in_len += tree.path_length(&[0.5, 0.5]);
        }
        assert!(
            out_len < in_len * 0.8,
            "outlier path {out_len} should be much shorter than inlier {in_len}"
        );
    }

    #[test]
    fn depth_capped_at_log2_psi() {
        let mut rng = Rng::seed_from_u64(2);
        let data = grid_data(256, &mut rng);
        let indices: Vec<usize> = (0..256).collect();
        let tree = IsolationTree::fit(&data, &indices, &mut rng);
        assert_eq!(tree.max_depth(), 8);
        // Max possible path = depth cap + c(size at leaf); just test that a
        // deep inlier's raw traversal depth never exceeds the cap.
        fn max_node_depth(n: &Node, d: usize) -> usize {
            match n {
                Node::Leaf { .. } => d,
                Node::Internal { left, right, .. } => {
                    max_node_depth(left, d + 1).max(max_node_depth(right, d + 1))
                }
            }
        }
        assert!(max_node_depth(tree.root(), 0) <= 8);
    }

    #[test]
    fn duplicate_points_become_one_leaf() {
        let data = Dataset::from_rows(&vec![vec![1.0, 1.0]; 32]);
        let indices: Vec<usize> = (0..32).collect();
        let mut rng = Rng::seed_from_u64(3);
        let tree = IsolationTree::fit(&data, &indices, &mut rng);
        assert_eq!(tree.leaf_count(), 1);
        // Path = 0 edges + c(32).
        assert!((tree.path_length(&[1.0, 1.0]) - average_path_length(32)).abs() < 1e-9);
    }

    #[test]
    fn single_sample_tree() {
        let data = Dataset::from_rows(&[vec![0.5]]);
        let mut rng = Rng::seed_from_u64(4);
        let tree = IsolationTree::fit(&data, &[0], &mut rng);
        assert_eq!(tree.path_length(&[0.5]), 0.0);
    }
}
