//! The Isolation Forest ensemble and its anomaly score.

use iguard_runtime::par;
use iguard_runtime::rng::Rng;
use iguard_runtime::rng::SliceRandom;
use iguard_runtime::Dataset;

use crate::tree::{average_path_length, IsolationTree};

/// Hyper-parameters of a conventional Isolation Forest — the exact surface
/// the paper grid-searches for the baseline: `(t, Ψ, contamination)` (§3.1).
#[derive(Clone, Copy, Debug)]
pub struct IsolationForestConfig {
    /// `t`: number of iTrees.
    pub n_trees: usize,
    /// `Ψ`: sub-sample size per tree.
    pub subsample: usize,
    /// Estimated fraction of anomalies; sets the score threshold `τ` as the
    /// corresponding quantile of scores on the fitting/validation data.
    pub contamination: f64,
}

impl Default for IsolationForestConfig {
    fn default() -> Self {
        Self { n_trees: 100, subsample: 256, contamination: 0.1 }
    }
}

/// A trained Isolation Forest.
pub struct IsolationForest {
    trees: Vec<IsolationTree>,
    /// `c(Ψ)` normaliser.
    c_psi: f64,
    /// Score threshold `τ`; samples with `score > τ` are anomalies.
    threshold: f64,
}

impl IsolationForest {
    /// Fits `t` trees on random sub-samples of `data` and sets the threshold
    /// from the contamination quantile of the training scores.
    ///
    /// Trees grow in parallel across the runtime worker pool. Each tree
    /// draws its sub-sample and splits from an RNG stream derived *before*
    /// the fan-out, so the fitted forest is bit-identical at any worker
    /// count (and identical to a single-threaded run).
    ///
    /// # Panics
    /// Panics on empty data or non-positive hyper-parameters.
    pub fn fit(data: &Dataset, cfg: &IsolationForestConfig, rng: &mut Rng) -> Self {
        assert!(data.rows() > 0, "cannot fit on empty data");
        assert!(cfg.n_trees > 0, "need at least one tree");
        assert!(cfg.subsample > 1, "subsample must exceed 1");
        assert!((0.0..1.0).contains(&cfg.contamination), "contamination in [0,1)");
        let psi = cfg.subsample.min(data.rows());
        let all: Vec<usize> = (0..data.rows()).collect();
        let base = rng.split();
        let trees: Vec<IsolationTree> = par::par_map_range(cfg.n_trees, |i| {
            let mut tree_rng = base.derive(i as u64);
            let sample: Vec<usize> = all.choose_multiple(&mut tree_rng, psi).copied().collect();
            IsolationTree::fit(data, &sample, &mut tree_rng)
        });
        let mut forest = Self { trees, c_psi: average_path_length(psi), threshold: 0.5 };
        // Contamination quantile on training scores.
        let mut scores = forest.scores(data);
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((1.0 - cfg.contamination) * (scores.len() - 1) as f64).round() as usize;
        forest.threshold = scores[idx.min(scores.len() - 1)];
        forest
    }

    /// Expected path length `E[h(x)]` over all trees — the x-axis of
    /// Figures 2 and 7.
    pub fn expected_path_length(&self, x: &[f32]) -> f64 {
        let total: f64 = self.trees.iter().map(|t| t.path_length(x)).sum();
        total / self.trees.len() as f64
    }

    /// Anomaly score `s(x) = 2^(−E[h(x)]/c(Ψ))` ∈ (0, 1]; higher = more
    /// anomalous.
    pub fn score(&self, x: &[f32]) -> f64 {
        2f64.powf(-self.expected_path_length(x) / self.c_psi)
    }

    /// Hard label: `1{score(x) > τ}`.
    pub fn predict(&self, x: &[f32]) -> bool {
        self.score(x) > self.threshold
    }

    /// Batch scores, computed in parallel across the runtime worker pool.
    /// Output order matches row order regardless of worker count.
    pub fn scores(&self, data: &Dataset) -> Vec<f64> {
        par::par_map_range(data.rows(), |i| self.score(data.row(i)))
    }

    /// Batch labels (parallel, order-preserving).
    pub fn predictions(&self, data: &Dataset) -> Vec<bool> {
        par::par_map_range(data.rows(), |i| self.predict(data.row(i)))
    }

    /// The fitted threshold `τ`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Overrides the threshold (validation-set tuning).
    pub fn set_threshold(&mut self, tau: f64) {
        self.threshold = tau;
    }

    pub fn trees(&self) -> &[IsolationTree] {
        &self.trees
    }

    /// Normalisation constant `c(Ψ)`.
    pub fn c_psi(&self) -> f64 {
        self.c_psi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_runtime::rng::Rng;

    fn cluster(n: usize, center: f32, spread: f32, rng: &mut Rng) -> Dataset {
        let mut d = Dataset::new(2);
        for _ in 0..n {
            d.push_row(&[
                center + rng.gen_range(-spread..spread),
                center + rng.gen_range(-spread..spread),
            ]);
        }
        d
    }

    #[test]
    fn outliers_score_higher_than_inliers() {
        let mut rng = Rng::seed_from_u64(5);
        let data = cluster(512, 0.5, 0.1, &mut rng);
        let cfg = IsolationForestConfig { n_trees: 50, subsample: 128, contamination: 0.05 };
        let forest = IsolationForest::fit(&data, &cfg, &mut rng);
        let inlier = forest.score(&[0.5, 0.5]);
        let outlier = forest.score(&[5.0, 5.0]);
        assert!(outlier > inlier, "outlier {outlier} <= inlier {inlier}");
        assert!(outlier > 0.6, "far outlier should score > 0.6, got {outlier}");
    }

    #[test]
    fn scores_bounded_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(6);
        let data = cluster(128, 0.0, 1.0, &mut rng);
        let forest = IsolationForest::fit(
            &data,
            &IsolationForestConfig { n_trees: 20, subsample: 64, contamination: 0.1 },
            &mut rng,
        );
        for x in data.iter_rows() {
            let s = forest.score(x);
            assert!((0.0..=1.0).contains(&s), "score {s} out of range");
        }
    }

    #[test]
    fn contamination_sets_anomaly_fraction_on_train() {
        let mut rng = Rng::seed_from_u64(7);
        let data = cluster(1000, 0.0, 1.0, &mut rng);
        let cfg = IsolationForestConfig { n_trees: 30, subsample: 128, contamination: 0.1 };
        let forest = IsolationForest::fit(&data, &cfg, &mut rng);
        let flagged = data.iter_rows().filter(|x| forest.predict(x)).count();
        // Quantile thresholding should flag roughly 10% (ties aside).
        assert!((50..=160).contains(&flagged), "expected ~100 of 1000 flagged, got {flagged}");
    }

    #[test]
    fn expected_path_length_below_cap() {
        let mut rng = Rng::seed_from_u64(8);
        let data = cluster(256, 0.0, 1.0, &mut rng);
        let forest = IsolationForest::fit(
            &data,
            &IsolationForestConfig { n_trees: 10, subsample: 256, contamination: 0.1 },
            &mut rng,
        );
        // depth cap 8 plus c(n) credit keeps E[h] under ~8 + c(256).
        let cap = 8.0 + average_path_length(256);
        for x in data.iter_rows().take(50) {
            assert!(forest.expected_path_length(x) <= cap + 1e-9);
        }
    }

    #[test]
    fn subsample_larger_than_data_is_clamped() {
        let mut rng = Rng::seed_from_u64(9);
        let data = cluster(32, 0.0, 1.0, &mut rng);
        let cfg = IsolationForestConfig { n_trees: 5, subsample: 1024, contamination: 0.1 };
        let forest = IsolationForest::fit(&data, &cfg, &mut rng);
        assert_eq!(forest.trees().len(), 5);
        assert!((forest.c_psi() - average_path_length(32)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut rng1 = Rng::seed_from_u64(10);
        let data = cluster(128, 0.0, 0.5, &mut rng1);
        let cfg = IsolationForestConfig { n_trees: 10, subsample: 64, contamination: 0.1 };
        let f1 = IsolationForest::fit(&data, &cfg, &mut Rng::seed_from_u64(99));
        let f2 = IsolationForest::fit(&data, &cfg, &mut Rng::seed_from_u64(99));
        for x in data.iter_rows().take(20) {
            assert_eq!(f1.score(x), f2.score(x));
        }
    }

    /// The fitted forest and its batch scores must not depend on how many
    /// workers grew the trees: 1, 2, and 8 workers give bit-identical
    /// results because every tree derives its RNG stream before the fan-out.
    #[test]
    fn fit_and_scores_identical_at_any_worker_count() {
        use iguard_runtime::par::with_workers;
        let mut rng = Rng::seed_from_u64(11);
        let data = cluster(256, 0.2, 0.4, &mut rng);
        let cfg = IsolationForestConfig { n_trees: 16, subsample: 64, contamination: 0.1 };
        let run = |workers: usize| {
            with_workers(workers, || {
                let f = IsolationForest::fit(&data, &cfg, &mut Rng::seed_from_u64(3));
                (f.threshold(), f.scores(&data))
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }
}
