//! # iguard-iforest — conventional Isolation Forest baseline
//!
//! A faithful implementation of Isolation Forest (Liu, Ting & Zhou, ICDM
//! 2008), the baseline iGuard is compared against throughout the paper and
//! the model HorusEye deploys in switch data planes.
//!
//! * [`tree::IsolationTree`] — a single iTree grown on Ψ sub-samples with
//!   uniformly random (feature, split) choices, depth-capped at ⌈log₂ Ψ⌉.
//! * [`forest::IsolationForest`] — an ensemble of `t` iTrees with the
//!   standard anomaly score `s(x) = 2^(−E[h(x)]/c(Ψ))` and a
//!   contamination-quantile threshold, exactly the `(t, Ψ, contamination)`
//!   hyper-parameter surface the paper grid-searches (§3.1).
//!
//! The path-length bookkeeping (the `c(n)` adjustment for unsplit internal
//! terminations) follows the original paper so that expected path lengths —
//! the quantity Figures 2 and 7 histogram — are exact.

#![forbid(unsafe_code)]

pub mod forest;
pub mod tree;

pub use forest::{IsolationForest, IsolationForestConfig};
pub use tree::{average_path_length, IsolationTree};
