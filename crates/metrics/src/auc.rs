//! Threshold-free ranking metrics: ROC AUC and PR AUC.
//!
//! Scores follow the convention "higher = more malicious"; `truth[i] = true`
//! marks a malicious sample.

/// ROC AUC computed exactly via the Mann–Whitney U statistic with midrank
/// tie handling: `AUC = (Σ ranks of positives − n⁺(n⁺+1)/2) / (n⁺ n⁻)`.
///
/// Returns 0.5 when either class is absent (no ranking information).
pub fn roc_auc(truth: &[bool], scores: &[f64]) -> f64 {
    assert_eq!(truth.len(), scores.len(), "truth/scores length mismatch");
    let n_pos = truth.iter().filter(|&&t| t).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..truth.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("NaN score"));
    // Assign midranks to tied scores.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Ranks are 1-based; ties share the average rank.
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            if truth[idx] {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let n_pos = n_pos as f64;
    let n_neg = n_neg as f64;
    (rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg)
}

/// Area under the precision-recall curve using the step-wise (right
/// Riemann) interpolation that scikit-learn's `average_precision_score`
/// uses: `AP = Σ (R_k − R_{k−1}) · P_k` over descending score thresholds.
///
/// Returns the positive prevalence when there are no positives (degenerate)
/// or 0.0 for an empty input.
pub fn pr_auc(truth: &[bool], scores: &[f64]) -> f64 {
    assert_eq!(truth.len(), scores.len(), "truth/scores length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let n_pos = truth.iter().filter(|&&t| t).count();
    if n_pos == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..truth.len()).collect();
    // Descending score.
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));
    let mut ap = 0.0f64;
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut prev_recall = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        // Process a tie-group of equal scores as one threshold.
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        for &idx in &order[i..=j] {
            if truth[idx] {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        let recall = tp as f64 / n_pos as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        ap += (recall - prev_recall) * precision;
        prev_recall = recall;
        i = j + 1;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_auc_one() {
        let truth = vec![false, false, true, true];
        let scores = vec![0.1, 0.2, 0.8, 0.9];
        assert_eq!(roc_auc(&truth, &scores), 1.0);
        assert_eq!(pr_auc(&truth, &scores), 1.0);
    }

    #[test]
    fn inverted_separation_gives_auc_zero() {
        let truth = vec![true, true, false, false];
        let scores = vec![0.1, 0.2, 0.8, 0.9];
        assert_eq!(roc_auc(&truth, &scores), 0.0);
    }

    #[test]
    fn all_tied_scores_give_half_roc() {
        let truth = vec![true, false, true, false];
        let scores = vec![0.5; 4];
        assert!((roc_auc(&truth, &scores) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_returns_half() {
        assert_eq!(roc_auc(&[true, true], &[0.1, 0.9]), 0.5);
        assert_eq!(roc_auc(&[false, false], &[0.1, 0.9]), 0.5);
    }

    #[test]
    fn roc_auc_matches_hand_computation() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}
        // pairs: (0.8 > 0.6), (0.8 > 0.2), (0.4 < 0.6), (0.4 > 0.2) => 3/4
        let truth = vec![true, true, false, false];
        let scores = vec![0.8, 0.4, 0.6, 0.2];
        assert!((roc_auc(&truth, &scores) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pr_auc_matches_sklearn_example() {
        // sklearn's doc example: y = [0, 0, 1, 1], scores = [0.1, 0.4, 0.35, 0.8]
        // average_precision_score = 0.8333...
        let truth = vec![false, false, true, true];
        let scores = vec![0.1, 0.4, 0.35, 0.8];
        assert!((pr_auc(&truth, &scores) - 0.8333333333).abs() < 1e-6);
    }

    #[test]
    fn pr_auc_random_scores_near_prevalence() {
        // With constant scores, AP = prevalence.
        let truth: Vec<bool> = (0..100).map(|i| i % 5 == 0).collect();
        let scores = vec![1.0; 100];
        assert!((pr_auc(&truth, &scores) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn auc_invariant_to_monotone_transform() {
        let truth = vec![true, false, true, false, true];
        let scores = vec![0.9, 0.3, 0.7, 0.5, 0.6];
        let squashed: Vec<f64> = scores.iter().map(|s| s * s * s).collect();
        assert!((roc_auc(&truth, &scores) - roc_auc(&truth, &squashed)).abs() < 1e-12);
        assert!((pr_auc(&truth, &scores) - pr_auc(&truth, &squashed)).abs() < 1e-12);
    }
}
