//! # iguard-metrics — evaluation metrics for the iGuard reproduction
//!
//! Implements every metric the paper reports:
//!
//! * [`ConfusionMatrix`], precision/recall/F1 and **macro F1** (Figs. 5–9),
//! * **ROC AUC** via the rank statistic (exact, ties handled) and
//!   **PR AUC** via step-wise interpolation (Figs. 5, 6, 8, 9, Tables 2–3),
//! * **consistency** `C` between a model and its compiled rule set (§3.2.3),
//! * per-packet metric helpers for the testbed experiments (§4.2.1) and the
//!   reward `α/3·(F1 + PRAUC + ROCAUC) + (1−α)(1−ρ)` used for model
//!   selection under a switch memory budget.

#![forbid(unsafe_code)]

pub mod auc;
pub mod confusion;
pub mod reward;

pub use auc::{pr_auc, roc_auc};
pub use confusion::{macro_f1, ConfusionMatrix};
pub use reward::{reward, DetectionSummary};

/// Consistency `C` (paper §3.2.3): the fraction of samples on which two
/// binary classifiers agree. Used to validate that compiled whitelist rules
/// retain the behaviour of the distilled forest.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn consistency(a: &[bool], b: &[bool]) -> f64 {
    assert_eq!(a.len(), b.len(), "consistency needs equal-length predictions");
    assert!(!a.is_empty(), "consistency of empty predictions");
    let agree = a.iter().zip(b).filter(|(x, y)| x == y).count();
    agree as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_one_for_identical() {
        let p = vec![true, false, true];
        assert_eq!(consistency(&p, &p), 1.0);
    }

    #[test]
    fn consistency_counts_agreements() {
        let a = vec![true, true, false, false];
        let b = vec![true, false, false, true];
        assert_eq!(consistency(&a, &b), 0.5);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn consistency_rejects_mismatched_lengths() {
        let _ = consistency(&[true], &[true, false]);
    }
}
