//! Model-selection reward under a switch memory budget (paper §4.2.1).

use crate::auc::{pr_auc, roc_auc};
use crate::confusion::ConfusionMatrix;

/// The three detection metrics the paper reports per experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DetectionSummary {
    pub macro_f1: f64,
    pub roc_auc: f64,
    pub pr_auc: f64,
}

impl DetectionSummary {
    /// Computes all three metrics from ground truth, hard predictions, and
    /// continuous scores (higher = more malicious).
    pub fn compute(truth: &[bool], pred: &[bool], scores: &[f64]) -> Self {
        Self {
            macro_f1: ConfusionMatrix::from_predictions(truth, pred).macro_f1(),
            roc_auc: roc_auc(truth, scores),
            pr_auc: pr_auc(truth, scores),
        }
    }

    /// Unweighted mean of the three metrics (the accuracy term of the
    /// testbed reward and the CPU grid-search objective of §4.1).
    pub fn mean(&self) -> f64 {
        (self.macro_f1 + self.roc_auc + self.pr_auc) / 3.0
    }
}

/// The testbed model-selection reward (paper §4.2.1):
/// `α/3·(F1 + PRAUC + ROCAUC) + (1−α)·(1−ρ)` where `ρ ∈ [0, 1]` is the
/// fraction of switch resources consumed. The paper uses `α = 0.5`.
///
/// # Panics
/// Panics if `alpha` or `rho` leaves [0, 1].
pub fn reward(summary: &DetectionSummary, rho: f64, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
    assert!((0.0..=1.0).contains(&rho), "rho must be in [0,1]");
    alpha * summary.mean() + (1.0 - alpha) * (1.0 - rho)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_perfect_detector() {
        let truth = vec![true, true, false, false];
        let pred = truth.clone();
        let scores = vec![1.0, 0.9, 0.1, 0.0];
        let s = DetectionSummary::compute(&truth, &pred, &scores);
        assert_eq!(s.macro_f1, 1.0);
        assert_eq!(s.roc_auc, 1.0);
        assert_eq!(s.pr_auc, 1.0);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn reward_balances_accuracy_and_memory() {
        let s = DetectionSummary { macro_f1: 0.9, roc_auc: 0.9, pr_auc: 0.9 };
        // α = 0.5: reward = 0.45 + 0.5·(1 − ρ)
        assert!((reward(&s, 0.0, 0.5) - 0.95).abs() < 1e-12);
        assert!((reward(&s, 1.0, 0.5) - 0.45).abs() < 1e-12);
        // A cheaper model with lower accuracy can win.
        let worse = DetectionSummary { macro_f1: 0.8, roc_auc: 0.8, pr_auc: 0.8 };
        assert!(reward(&worse, 0.05, 0.5) > reward(&s, 0.4, 0.5));
    }

    #[test]
    fn alpha_one_ignores_memory() {
        let s = DetectionSummary { macro_f1: 0.6, roc_auc: 0.6, pr_auc: 0.6 };
        assert_eq!(reward(&s, 0.1, 1.0), reward(&s, 0.9, 1.0));
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn reward_rejects_bad_rho() {
        let s = DetectionSummary::default();
        let _ = reward(&s, 1.5, 0.5);
    }
}
