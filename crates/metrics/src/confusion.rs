//! Confusion matrices and F1-family metrics.
//!
//! Convention throughout the workspace: **`true` = malicious = positive
//! class**, `false` = benign.

/// Binary confusion matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Malicious predicted malicious.
    pub tp: u64,
    /// Benign predicted malicious.
    pub fp: u64,
    /// Benign predicted benign.
    pub tn: u64,
    /// Malicious predicted benign.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from parallel truth/prediction slices.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn from_predictions(truth: &[bool], pred: &[bool]) -> Self {
        assert_eq!(truth.len(), pred.len(), "truth/pred length mismatch");
        let mut cm = Self::default();
        for (&t, &p) in truth.iter().zip(pred) {
            cm.record(t, p);
        }
        cm
    }

    /// Records one observation.
    pub fn record(&mut self, truth: bool, pred: bool) {
        match (truth, pred) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
            (true, false) => self.fn_ += 1,
        }
    }

    /// Merges another confusion matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of correct predictions; 0 if empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / total as f64
    }

    /// Precision of the positive (malicious) class; 0 when undefined.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall / true-positive rate of the positive class; 0 when undefined.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// False-positive rate; 0 when undefined.
    pub fn fpr(&self) -> f64 {
        let denom = self.fp + self.tn;
        if denom == 0 {
            0.0
        } else {
            self.fp as f64 / denom as f64
        }
    }

    /// F1 of the positive class; 0 when precision + recall = 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// The confusion matrix of the *negative* class (labels swapped).
    pub fn negated(&self) -> ConfusionMatrix {
        ConfusionMatrix { tp: self.tn, fp: self.fn_, tn: self.tp, fn_: self.fp }
    }

    /// Macro F1: unweighted mean of the positive-class F1 and the
    /// negative-class F1 — the headline accuracy metric of the paper.
    pub fn macro_f1(&self) -> f64 {
        (self.f1() + self.negated().f1()) / 2.0
    }
}

/// Convenience wrapper computing macro F1 straight from predictions.
pub fn macro_f1(truth: &[bool], pred: &[bool]) -> f64 {
    ConfusionMatrix::from_predictions(truth, pred).macro_f1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one() {
        let truth = vec![true, false, true, false];
        let cm = ConfusionMatrix::from_predictions(&truth, &truth);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(cm.fpr(), 0.0);
    }

    #[test]
    fn counts_are_placed_correctly() {
        let truth = vec![true, true, false, false];
        let pred = vec![true, false, true, false];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred);
        assert_eq!((cm.tp, cm.fn_, cm.fp, cm.tn), (1, 1, 1, 1));
        assert_eq!(cm.accuracy(), 0.5);
    }

    #[test]
    fn hand_computed_macro_f1() {
        // tp=8, fn=2, fp=1, tn=9.
        let cm = ConfusionMatrix { tp: 8, fp: 1, tn: 9, fn_: 2 };
        let f1_pos = 2.0 * (8.0 / 9.0) * (8.0 / 10.0) / ((8.0 / 9.0) + (8.0 / 10.0));
        let f1_neg = 2.0 * (9.0 / 11.0) * (9.0 / 10.0) / ((9.0 / 11.0) + (9.0 / 10.0));
        assert!((cm.macro_f1() - (f1_pos + f1_neg) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_all_negative_is_defined() {
        let truth = vec![false, false];
        let pred = vec![false, false];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred);
        assert_eq!(cm.f1(), 0.0); // no positives: positive F1 undefined -> 0
        assert_eq!(cm.negated().f1(), 1.0);
        assert_eq!(cm.macro_f1(), 0.5);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix { tp: 1, fp: 2, tn: 3, fn_: 4 };
        a.merge(&ConfusionMatrix { tp: 10, fp: 20, tn: 30, fn_: 40 });
        assert_eq!(a, ConfusionMatrix { tp: 11, fp: 22, tn: 33, fn_: 44 });
    }

    #[test]
    fn negated_is_involution() {
        let cm = ConfusionMatrix { tp: 5, fp: 3, tn: 7, fn_: 2 };
        assert_eq!(cm.negated().negated(), cm);
    }
}
