//! Randomized-input tests for the metric implementations, on the in-repo
//! `proptest_lite` harness (seeded loop, no shrinking).

use iguard_metrics::{consistency, macro_f1, pr_auc, roc_auc, ConfusionMatrix};
use iguard_runtime::proptest_lite;
use iguard_runtime::rng::Rng;

fn labelled_scores(rng: &mut Rng) -> (Vec<bool>, Vec<f64>) {
    let n = rng.gen_range(2usize..200);
    (0..n).map(|_| (rng.gen_bool(0.5), rng.gen_range(0.0..1.0))).unzip()
}

fn bool_pairs(rng: &mut Rng, lo: usize, hi: usize) -> (Vec<bool>, Vec<bool>) {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| (rng.gen_bool(0.5), rng.gen_bool(0.5))).unzip()
}

proptest_lite! {
    /// ROC AUC is bounded and complementing the labels reflects it
    /// around 0.5 (when both classes are present).
    fn roc_auc_bounds_and_reflection(rng) {
        let (truth, scores) = labelled_scores(rng);
        let auc = roc_auc(&truth, &scores);
        assert!((0.0..=1.0).contains(&auc));
        let n_pos = truth.iter().filter(|&&t| t).count();
        if n_pos > 0 && n_pos < truth.len() {
            let flipped: Vec<bool> = truth.iter().map(|&t| !t).collect();
            assert!((roc_auc(&flipped, &scores) - (1.0 - auc)).abs() < 1e-9);
        }
    }

    /// AUCs are invariant to a strictly monotone score transform.
    fn aucs_monotone_invariant(rng) {
        let (truth, scores) = labelled_scores(rng);
        let squashed: Vec<f64> = scores.iter().map(|s| (3.0 * s).exp()).collect();
        assert!((roc_auc(&truth, &scores) - roc_auc(&truth, &squashed)).abs() < 1e-9);
        assert!((pr_auc(&truth, &scores) - pr_auc(&truth, &squashed)).abs() < 1e-9);
    }

    /// PR AUC is bounded by [0, 1].
    fn pr_auc_bounds(rng) {
        let (truth, scores) = labelled_scores(rng);
        let ap = pr_auc(&truth, &scores);
        assert!((0.0..=1.0 + 1e-12).contains(&ap));
    }

    /// Macro F1 is symmetric in simultaneous class relabelling.
    fn macro_f1_class_symmetric(rng) {
        let (truth, pred) = bool_pairs(rng, 1, 200);
        let flipped_t: Vec<bool> = truth.iter().map(|&t| !t).collect();
        let flipped_p: Vec<bool> = pred.iter().map(|&p| !p).collect();
        assert!((macro_f1(&truth, &pred) - macro_f1(&flipped_t, &flipped_p)).abs() < 1e-12);
    }

    /// Confusion counts always sum to the number of observations, and
    /// accuracy/precision/recall stay in [0, 1].
    fn confusion_invariants(rng) {
        let (truth, pred) = bool_pairs(rng, 1, 200);
        let cm = ConfusionMatrix::from_predictions(&truth, &pred);
        assert_eq!(cm.total() as usize, truth.len());
        for v in [cm.accuracy(), cm.precision(), cm.recall(), cm.f1(), cm.macro_f1(), cm.fpr()] {
            assert!((0.0..=1.0).contains(&v), "metric {} out of range", v);
        }
    }

    /// Consistency is symmetric and equals 1 iff identical.
    fn consistency_symmetry(rng) {
        let (a, b) = bool_pairs(rng, 1, 100);
        assert!((consistency(&a, &b) - consistency(&b, &a)).abs() < 1e-12);
        assert_eq!(consistency(&a, &a), 1.0);
    }
}
