//! Property-based tests for the metric implementations.

use iguard_metrics::{consistency, macro_f1, pr_auc, roc_auc, ConfusionMatrix};
use proptest::prelude::*;

fn labelled_scores() -> impl Strategy<Value = (Vec<bool>, Vec<f64>)> {
    proptest::collection::vec((any::<bool>(), 0.0f64..1.0), 2..200)
        .prop_map(|v| v.into_iter().unzip())
}

proptest! {
    /// ROC AUC is bounded and complementing the labels reflects it
    /// around 0.5 (when both classes are present).
    #[test]
    fn roc_auc_bounds_and_reflection((truth, scores) in labelled_scores()) {
        let auc = roc_auc(&truth, &scores);
        prop_assert!((0.0..=1.0).contains(&auc));
        let n_pos = truth.iter().filter(|&&t| t).count();
        if n_pos > 0 && n_pos < truth.len() {
            let flipped: Vec<bool> = truth.iter().map(|&t| !t).collect();
            prop_assert!((roc_auc(&flipped, &scores) - (1.0 - auc)).abs() < 1e-9);
        }
    }

    /// AUCs are invariant to a strictly monotone score transform.
    #[test]
    fn aucs_monotone_invariant((truth, scores) in labelled_scores()) {
        let squashed: Vec<f64> = scores.iter().map(|s| (3.0 * s).exp()).collect();
        prop_assert!((roc_auc(&truth, &scores) - roc_auc(&truth, &squashed)).abs() < 1e-9);
        prop_assert!((pr_auc(&truth, &scores) - pr_auc(&truth, &squashed)).abs() < 1e-9);
    }

    /// PR AUC is bounded by [0, 1].
    #[test]
    fn pr_auc_bounds((truth, scores) in labelled_scores()) {
        let ap = pr_auc(&truth, &scores);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
    }

    /// Macro F1 is symmetric in simultaneous class relabelling.
    #[test]
    fn macro_f1_class_symmetric(pairs in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..200)) {
        let (truth, pred): (Vec<bool>, Vec<bool>) = pairs.into_iter().unzip();
        let flipped_t: Vec<bool> = truth.iter().map(|&t| !t).collect();
        let flipped_p: Vec<bool> = pred.iter().map(|&p| !p).collect();
        prop_assert!((macro_f1(&truth, &pred) - macro_f1(&flipped_t, &flipped_p)).abs() < 1e-12);
    }

    /// Confusion counts always sum to the number of observations, and
    /// accuracy/precision/recall stay in [0, 1].
    #[test]
    fn confusion_invariants(pairs in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..200)) {
        let (truth, pred): (Vec<bool>, Vec<bool>) = pairs.into_iter().unzip();
        let cm = ConfusionMatrix::from_predictions(&truth, &pred);
        prop_assert_eq!(cm.total() as usize, truth.len());
        for v in [cm.accuracy(), cm.precision(), cm.recall(), cm.f1(), cm.macro_f1(), cm.fpr()] {
            prop_assert!((0.0..=1.0).contains(&v), "metric {} out of range", v);
        }
    }

    /// Consistency is symmetric and equals 1 iff identical.
    #[test]
    fn consistency_symmetry(pairs in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..100)) {
        let (a, b): (Vec<bool>, Vec<bool>) = pairs.into_iter().unzip();
        prop_assert!((consistency(&a, &b) - consistency(&b, &a)).abs() < 1e-12);
        prop_assert_eq!(consistency(&a, &a), 1.0);
    }
}
