//! Property-based tests for the iGuard core: rule/forest equivalence and
//! decomposition invariants on randomly grown forests.

use iguard_core::forest::{IGuardConfig, IGuardForest};
use iguard_core::guided::entropy;
use iguard_core::rules::{merge_adjacent, Hypercube, RuleSet};
use iguard_core::teacher::OracleTeacher;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

fn trained_forest(seed: u64, cut: f32) -> IGuardForest {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<Vec<f32>> = (0..256)
        .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
        .collect();
    let mut teacher = OracleTeacher(move |x: &[f32]| x[0] > cut);
    let cfg = IGuardConfig { n_trees: 5, subsample: 64, k_augment: 32, ..Default::default() };
    let mut forest = IGuardForest::fit(&data, &mut teacher, &cfg, &mut rng);
    forest.distill(&data, &mut teacher, 16, &mut rng);
    forest
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The compiled rule set agrees with the distilled forest everywhere —
    /// including far outside the training bounds.
    #[test]
    fn rules_equal_forest(seed in 0u64..50, cut in 0.2f32..0.8) {
        let forest = trained_forest(seed, cut);
        let rules = RuleSet::from_iguard(&forest, 400_000).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..200 {
            let x: Vec<f32> = (0..3).map(|_| rng.gen_range(-2.0..3.0)).collect();
            prop_assert_eq!(rules.predict(&x), forest.predict(&x), "at {:?}", x);
        }
    }

    /// Merged whitelist boxes never overlap: any point lies in ≤ 1 box.
    #[test]
    fn whitelist_boxes_disjoint(seed in 0u64..50, cut in 0.2f32..0.8) {
        let forest = trained_forest(seed, cut);
        let rules = RuleSet::from_iguard(&forest, 400_000).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        for _ in 0..200 {
            let x: Vec<f32> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
            let hits = rules.whitelist.iter().filter(|c| c.contains(&x)).count();
            prop_assert!(hits <= 1, "{hits} boxes contain {:?}", x);
        }
    }
}

proptest! {
    /// Merging never changes membership: a point is covered by the merged
    /// set iff it was covered by the original set.
    #[test]
    fn merge_preserves_coverage(
        boxes in proptest::collection::vec((0u8..8, 0u8..8), 1..12),
        probes in proptest::collection::vec((0.0f32..8.0, 0.0f32..8.0), 20),
    ) {
        // Unit grid cells, possibly duplicated.
        let cubes: Vec<Hypercube> = boxes
            .iter()
            .map(|&(i, j)| Hypercube {
                lo: vec![i as f32, j as f32],
                hi: vec![i as f32 + 1.0, j as f32 + 1.0],
            })
            .collect();
        let merged = merge_adjacent(cubes.clone());
        prop_assert!(merged.len() <= cubes.len());
        for (x, y) in probes {
            let p = [x, y];
            let before = cubes.iter().any(|c| c.contains(&p));
            let after = merged.iter().any(|c| c.contains(&p));
            prop_assert_eq!(before, after, "coverage changed at {:?}", p);
        }
    }

    /// Binary entropy is bounded by [0, 1], symmetric, and zero at purity.
    #[test]
    fn entropy_properties(mal in 0usize..100, extra in 0usize..100) {
        let total = mal + extra;
        let h = entropy(mal, total);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
        prop_assert!((h - entropy(extra, total)).abs() < 1e-12);
        prop_assert_eq!(entropy(0, total), 0.0);
        prop_assert_eq!(entropy(total, total), 0.0);
    }
}
