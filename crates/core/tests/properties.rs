//! Property-based tests for the iGuard core: rule/forest equivalence and
//! decomposition invariants on randomly grown forests.

use iguard_core::forest::{IGuardConfig, IGuardForest};
use iguard_core::guided::entropy;
use iguard_core::rules::{merge_adjacent, Hypercube, RuleSet};
use iguard_core::teacher::OracleTeacher;
use iguard_runtime::proptest_lite;
use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;

fn trained_forest(seed: u64, cut: f32) -> IGuardForest {
    let mut rng = Rng::seed_from_u64(seed);
    let mut data = Dataset::new(3);
    for _ in 0..256 {
        data.push_row(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
    }
    let teacher = OracleTeacher(move |x: &[f32]| x[0] > cut);
    let cfg = IGuardConfig { n_trees: 5, subsample: 64, k_augment: 32, ..Default::default() };
    let mut forest = IGuardForest::fit(&data, &teacher, &cfg, &mut rng);
    forest.distill(&data, &teacher, 16, &mut rng);
    forest
}

proptest_lite! {
    /// The compiled rule set agrees with the distilled forest everywhere —
    /// including far outside the training bounds.
    fn rules_equal_forest(rng, cases = 8) {
        let seed = rng.gen_range(0u64..50);
        let cut = rng.gen_range(0.2f32..0.8);
        let forest = trained_forest(seed, cut);
        let rules = RuleSet::from_iguard(&forest, 400_000).unwrap();
        let mut probe_rng = Rng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..200 {
            let x: Vec<f32> = (0..3).map(|_| probe_rng.gen_range(-2.0..3.0)).collect();
            assert_eq!(rules.predict(&x), forest.predict(&x), "at {x:?}");
        }
    }

    /// Merged whitelist boxes never overlap: any point lies in ≤ 1 box.
    fn whitelist_boxes_disjoint(rng, cases = 8) {
        let seed = rng.gen_range(0u64..50);
        let cut = rng.gen_range(0.2f32..0.8);
        let forest = trained_forest(seed, cut);
        let rules = RuleSet::from_iguard(&forest, 400_000).unwrap();
        let mut probe_rng = Rng::seed_from_u64(seed ^ 0x1234);
        for _ in 0..200 {
            let x: Vec<f32> = (0..3).map(|_| probe_rng.gen_range(0.0..1.0)).collect();
            let hits = rules.whitelist.iter().filter(|c| c.contains(&x)).count();
            assert!(hits <= 1, "{hits} boxes contain {x:?}");
        }
    }

    /// Merging never changes membership: a point is covered by the merged
    /// set iff it was covered by the original set.
    fn merge_preserves_coverage(rng) {
        // Unit grid cells, possibly duplicated.
        let n_boxes = rng.gen_range(1usize..12);
        let cubes: Vec<Hypercube> = (0..n_boxes)
            .map(|_| {
                let i = rng.gen_range(0u8..8);
                let j = rng.gen_range(0u8..8);
                Hypercube {
                    lo: vec![i as f32, j as f32],
                    hi: vec![i as f32 + 1.0, j as f32 + 1.0],
                }
            })
            .collect();
        let merged = merge_adjacent(cubes.clone());
        assert!(merged.len() <= cubes.len());
        for _ in 0..20 {
            let p = [rng.gen_range(0.0f32..8.0), rng.gen_range(0.0f32..8.0)];
            let before = cubes.iter().any(|c| c.contains(&p));
            let after = merged.iter().any(|c| c.contains(&p));
            assert_eq!(before, after, "coverage changed at {p:?}");
        }
    }

    /// Binary entropy is bounded by [0, 1], symmetric, and zero at purity.
    fn entropy_properties(rng, cases = 256) {
        let mal = rng.gen_range(0usize..100);
        let extra = rng.gen_range(0usize..100);
        let total = mal + extra;
        let h = entropy(mal, total);
        assert!((0.0..=1.0 + 1e-12).contains(&h));
        assert!((h - entropy(extra, total)).abs() < 1e-12);
        assert_eq!(entropy(0, total), 0.0);
        assert_eq!(entropy(total, total), 0.0);
    }
}
