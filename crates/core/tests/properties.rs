//! Property-based tests for the iGuard core: rule/forest equivalence and
//! decomposition invariants on randomly grown forests.

use iguard_core::forest::{IGuardConfig, IGuardForest};
use iguard_core::guided::entropy;
use iguard_core::rules::{merge_adjacent, Hypercube, RuleSet};
use iguard_core::teacher::OracleTeacher;
use iguard_runtime::proptest_lite;
use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;

/// Half-open boxes intersect iff they overlap on every axis.
fn overlaps(a: &Hypercube, b: &Hypercube) -> bool {
    a.lo.iter()
        .zip(&a.hi)
        .zip(b.lo.iter().zip(&b.hi))
        .all(|((alo, ahi), (blo, bhi))| alo < bhi && blo < ahi)
}

/// A random irregular grid: per-axis sorted cut points at arbitrary float
/// positions, from which a random subset of (pairwise-disjoint) cells is
/// selected — the same shape `RuleSet` decomposition hands to
/// `merge_adjacent`, minus any alignment to unit coordinates.
fn random_grid_cells(rng: &mut Rng, dim: usize, cells_per_axis: usize) -> Vec<Hypercube> {
    let axes: Vec<Vec<f32>> = (0..dim)
        .map(|_| {
            let mut cuts: Vec<f32> =
                (0..=cells_per_axis).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
            cuts.sort_by(|a, b| a.partial_cmp(b).unwrap());
            cuts.dedup();
            cuts
        })
        .collect();
    let mut cells = Vec::new();
    let mut idx = vec![0usize; dim];
    loop {
        if rng.gen_bool(0.5) {
            let lo: Vec<f32> = (0..dim).map(|d| axes[d][idx[d]]).collect();
            let hi: Vec<f32> = (0..dim).map(|d| axes[d][idx[d] + 1]).collect();
            cells.push(Hypercube { lo, hi });
        }
        // Odometer over the per-axis cell indices.
        let mut d = 0;
        loop {
            if d == dim {
                return cells;
            }
            idx[d] += 1;
            if idx[d] + 1 < axes[d].len() {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }
}

fn trained_forest(seed: u64, cut: f32) -> IGuardForest {
    let mut rng = Rng::seed_from_u64(seed);
    let mut data = Dataset::new(3);
    for _ in 0..256 {
        data.push_row(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
    }
    let teacher = OracleTeacher(move |x: &[f32]| x[0] > cut);
    let cfg = IGuardConfig { n_trees: 5, subsample: 64, k_augment: 32, ..Default::default() };
    let mut forest = IGuardForest::fit(&data, &teacher, &cfg, &mut rng);
    forest.distill(&data, &teacher, 16, &mut rng);
    forest
}

proptest_lite! {
    /// The compiled rule set agrees with the distilled forest everywhere —
    /// including far outside the training bounds.
    fn rules_equal_forest(rng, cases = 8) {
        let seed = rng.gen_range(0u64..50);
        let cut = rng.gen_range(0.2f32..0.8);
        let forest = trained_forest(seed, cut);
        let rules = RuleSet::from_iguard(&forest, 400_000).unwrap();
        let mut probe_rng = Rng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..200 {
            let x: Vec<f32> = (0..3).map(|_| probe_rng.gen_range(-2.0..3.0)).collect();
            assert_eq!(rules.predict(&x), forest.predict(&x), "at {x:?}");
        }
    }

    /// Merged whitelist boxes never overlap: any point lies in ≤ 1 box.
    fn whitelist_boxes_disjoint(rng, cases = 8) {
        let seed = rng.gen_range(0u64..50);
        let cut = rng.gen_range(0.2f32..0.8);
        let forest = trained_forest(seed, cut);
        let rules = RuleSet::from_iguard(&forest, 400_000).unwrap();
        let mut probe_rng = Rng::seed_from_u64(seed ^ 0x1234);
        for _ in 0..200 {
            let x: Vec<f32> = (0..3).map(|_| probe_rng.gen_range(0.0..1.0)).collect();
            let hits = rules.whitelist.iter().filter(|c| c.contains(&x)).count();
            assert!(hits <= 1, "{hits} boxes contain {x:?}");
        }
    }

    /// Merging never changes membership: a point is covered by the merged
    /// set iff it was covered by the original set.
    fn merge_preserves_coverage(rng) {
        // Unit grid cells, possibly duplicated.
        let n_boxes = rng.gen_range(1usize..12);
        let cubes: Vec<Hypercube> = (0..n_boxes)
            .map(|_| {
                let i = rng.gen_range(0u8..8);
                let j = rng.gen_range(0u8..8);
                Hypercube {
                    lo: vec![i as f32, j as f32],
                    hi: vec![i as f32 + 1.0, j as f32 + 1.0],
                }
            })
            .collect();
        let merged = merge_adjacent(cubes.clone());
        assert!(merged.len() <= cubes.len());
        for _ in 0..20 {
            let p = [rng.gen_range(0.0f32..8.0), rng.gen_range(0.0f32..8.0)];
            let before = cubes.iter().any(|c| c.contains(&p));
            let after = merged.iter().any(|c| c.contains(&p));
            assert_eq!(before, after, "coverage changed at {p:?}");
        }
    }

    /// `merge_adjacent` on disjoint irregular grid cells emits boxes that
    /// are pairwise disjoint by exact interval arithmetic (not sampling),
    /// and that preserve total volume.
    fn merged_boxes_geometrically_disjoint(rng) {
        let dim = rng.gen_range(1usize..4);
        let per_axis = rng.gen_range(2usize..5);
        let cells = random_grid_cells(rng, dim, per_axis);
        let input_volume: f64 = cells.iter().map(Hypercube::volume).sum();
        let merged = merge_adjacent(cells);
        for (i, a) in merged.iter().enumerate() {
            for b in &merged[i + 1..] {
                assert!(!overlaps(a, b), "merged boxes overlap: {a:?} vs {b:?}");
            }
        }
        let merged_volume: f64 = merged.iter().map(Hypercube::volume).sum();
        // Extents are f32: a merged box's extent (c - a) and the sum of its
        // parts (b - a) + (c - b) round differently at ~1e-7 relative.
        let tol = 1e-4 * input_volume.abs().max(1.0);
        assert!(
            (merged_volume - input_volume).abs() <= tol,
            "volume changed: {input_volume} -> {merged_volume}"
        );
    }

    /// Merged boxes cover exactly the union of the inputs: membership is
    /// unchanged both for points drawn inside input cells and for arbitrary
    /// probes (which may fall in gaps or outside entirely).
    fn merge_union_exact_on_irregular_grid(rng) {
        let dim = rng.gen_range(1usize..4);
        let per_axis = rng.gen_range(2usize..5);
        let cells = random_grid_cells(rng, dim, per_axis);
        let merged = merge_adjacent(cells.clone());
        for _ in 0..30 {
            let p: Vec<f32> = (0..dim).map(|_| rng.gen_range(-6.0f32..6.0)).collect();
            let before = cells.iter().any(|c| c.contains(&p));
            let after = merged.iter().any(|c| c.contains(&p));
            assert_eq!(before, after, "coverage changed at probe {p:?}");
        }
        for cell in &cells {
            let p: Vec<f32> = cell
                .lo
                .iter()
                .zip(&cell.hi)
                .map(|(&l, &h)| l + (h - l) * rng.gen_range(0.0f32..1.0))
                .collect();
            if cell.contains(&p) {
                assert!(
                    merged.iter().any(|c| c.contains(&p)),
                    "interior point {p:?} of {cell:?} lost by merge"
                );
            }
        }
    }

    /// The compiled whitelist reproduces the forest's leaf-label *vote*
    /// (computed by hand from the trees and `votes_needed`, not via
    /// `IGuardForest::predict`) on 1k sampled points per case.
    fn ruleset_matches_forest_voting_on_1k_points(rng, cases = 4) {
        let seed = rng.gen_range(0u64..1000);
        let cut = rng.gen_range(0.2f32..0.8);
        let forest = trained_forest(seed, cut);
        let rules = RuleSet::from_iguard(&forest, 400_000).unwrap();
        let needed = forest.votes_needed();
        let mut probe = Rng::seed_from_u64(seed ^ 0x5EED);
        for _ in 0..1000 {
            let x: Vec<f32> = (0..3).map(|_| probe.gen_range(-1.0f32..2.0)).collect();
            let mal_votes =
                forest.trees().iter().filter(|t| t.predict(&x).expect("distilled")).count();
            let vote = mal_votes >= needed;
            assert_eq!(
                rules.predict(&x),
                vote,
                "rule/vote disagreement at {x:?} ({mal_votes}/{needed} votes)"
            );
        }
    }

    /// Binary entropy is bounded by [0, 1], symmetric, and zero at purity.
    fn entropy_properties(rng, cases = 256) {
        let mal = rng.gen_range(0usize..100);
        let extra = rng.gen_range(0usize..100);
        let total = mal + extra;
        let h = entropy(mal, total);
        assert!((0.0..=1.0 + 1e-12).contains(&h));
        assert!((h - entropy(extra, total)).abs() < 1e-12);
        assert_eq!(entropy(0, total), 0.0);
        assert_eq!(entropy(total, total), 0.0);
    }
}
