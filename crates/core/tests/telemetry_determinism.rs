//! Telemetry must be a pure observer: turning recording on or off, or
//! changing the worker count, must not change a single bit of the trained
//! forest, its distilled labels, or the compiled whitelist.

use iguard_core::forest::{IGuardConfig, IGuardForest};
use iguard_core::rules::RuleSet;
use iguard_core::teacher::OracleTeacher;
use iguard_runtime::par::with_workers;
use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;

/// Both tests flip the process-global telemetry gate; the harness runs
/// them on parallel threads, so they serialise on this lock.
fn gate_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn uniform2(n: usize, rng: &mut Rng) -> Dataset {
    let mut d = Dataset::new(2);
    for _ in 0..n {
        d.push_row(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
    }
    d
}

/// Full pipeline (fit → distill → rule compilation → TSV) rendered to a
/// byte-comparable string.
fn pipeline_fingerprint(data: &Dataset) -> String {
    let teacher = OracleTeacher(|x: &[f32]| x[0] > 0.6);
    let cfg = IGuardConfig { n_trees: 7, subsample: 128, k_augment: 32, ..Default::default() };
    let mut rng = Rng::seed_from_u64(41);
    let mut forest = IGuardForest::fit(data, &teacher, &cfg, &mut rng);
    forest.distill(data, &teacher, 16, &mut rng);
    let rules = RuleSet::from_iguard(&forest, 100_000).unwrap();
    let leaves = format!("{:?}", forest.trees().iter().map(|t| &t.leaves).collect::<Vec<_>>());
    format!("{leaves}\n{}\n{:?}", rules.to_tsv(), forest.scores(data))
}

#[test]
fn telemetry_gate_never_perturbs_results() {
    let _g = gate_lock();
    let mut rng = Rng::seed_from_u64(40);
    let data = uniform2(256, &mut rng);

    iguard_telemetry::set_enabled(true);
    let with_telemetry = pipeline_fingerprint(&data);
    iguard_telemetry::set_enabled(false);
    let without_telemetry = pipeline_fingerprint(&data);
    iguard_telemetry::set_enabled(true);

    assert_eq!(with_telemetry, without_telemetry, "telemetry gate changed pipeline output");

    for workers in [1usize, 2, 8] {
        let run = with_workers(workers, || pipeline_fingerprint(&data));
        assert_eq!(with_telemetry, run, "output differs at {workers} workers");
    }
}

/// Recording during a parallel pipeline run keeps every snapshot invariant
/// intact, and a later snapshot is monotonic over an earlier one.
#[test]
fn snapshots_stay_consistent_across_runs() {
    let _g = gate_lock();
    let mut rng = Rng::seed_from_u64(42);
    let data = uniform2(256, &mut rng);

    iguard_telemetry::set_enabled(true);
    let _ = pipeline_fingerprint(&data);
    let first = iguard_telemetry::registry::snapshot().expect("telemetry enabled");
    first.verify().unwrap();
    assert!(
        first.counters.get("core.forest.trees_fit").copied().unwrap_or(0) > 0,
        "fit instrumentation did not fire"
    );
    assert!(
        first.counters.get("core.rules.regions").copied().unwrap_or(0) > 0,
        "rule-compilation instrumentation did not fire"
    );

    let _ = pipeline_fingerprint(&data);
    let second = iguard_telemetry::registry::snapshot().expect("telemetry enabled");
    second.verify().unwrap();
    second.verify_monotonic_since(&first).unwrap();
}
