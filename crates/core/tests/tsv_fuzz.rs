//! Fuzz-style round-trip tests for the `RuleSet` TSV format: randomly
//! built rule sets with NaN-free extreme floats must survive
//! `from_tsv(to_tsv())` bit-for-bit, and random structural corruptions of
//! a valid document must be rejected with an error, never a panic.

use iguard_core::rules::{Hypercube, RuleSet};
use iguard_runtime::proptest_lite;
use iguard_runtime::rng::Rng;

/// Draws from the nasty corners of `f32` — infinities, extremes of the
/// normal range, subnormals, signed zero — plus arbitrary non-NaN bit
/// patterns. NaN is excluded by construction: it is not a meaningful rule
/// boundary and `NaN != NaN` would make bit-exact comparison vacuous.
fn extreme_f32(rng: &mut Rng) -> f32 {
    match rng.gen_range(0u32..10) {
        0 => f32::INFINITY,
        1 => f32::NEG_INFINITY,
        2 => f32::MAX,
        3 => f32::MIN,
        4 => f32::MIN_POSITIVE,
        5 => -f32::MIN_POSITIVE,
        6 => 1.0e-40, // subnormal
        7 => -0.0,
        8 => 0.0,
        _ => loop {
            let v = f32::from_bits(rng.next_u64() as u32);
            if !v.is_nan() {
                break v;
            }
        },
    }
}

fn random_ruleset(rng: &mut Rng, min_rules: usize) -> RuleSet {
    let dim = rng.gen_range(1usize..6);
    let bounds = (0..dim).map(|_| (extreme_f32(rng), extreme_f32(rng))).collect();
    let n = rng.gen_range(min_rules..8);
    let whitelist = (0..n)
        .map(|_| Hypercube {
            lo: (0..dim).map(|_| extreme_f32(rng)).collect(),
            hi: (0..dim).map(|_| extreme_f32(rng)).collect(),
        })
        .collect();
    RuleSet { bounds, whitelist, total_regions: rng.gen_range(0usize..1_000_000) }
}

fn bits(vals: &[f32]) -> Vec<u32> {
    vals.iter().map(|v| v.to_bits()).collect()
}

/// Bit-pattern equality — `==` on floats would call `-0.0` and `0.0`
/// interchangeable and hide a sign-losing serialiser.
fn assert_bit_identical(a: &RuleSet, b: &RuleSet) {
    let unzip = |r: &RuleSet| -> (Vec<f32>, Vec<f32>) { r.bounds.iter().copied().unzip() };
    let (alo, ahi) = unzip(a);
    let (blo, bhi) = unzip(b);
    assert_eq!(bits(&alo), bits(&blo), "bounds_lo changed");
    assert_eq!(bits(&ahi), bits(&bhi), "bounds_hi changed");
    assert_eq!(a.whitelist.len(), b.whitelist.len());
    for (x, y) in a.whitelist.iter().zip(&b.whitelist) {
        assert_eq!(bits(&x.lo), bits(&y.lo), "rule lo changed");
        assert_eq!(bits(&x.hi), bits(&y.hi), "rule hi changed");
    }
    assert_eq!(a.total_regions, b.total_regions);
}

proptest_lite! {
    /// Round trip is bit-exact for rule sets built from extreme floats.
    fn tsv_round_trips_extreme_values(rng, cases = 64) {
        let rules = random_ruleset(rng, 0);
        let doc = rules.to_tsv();
        let back = RuleSet::from_tsv(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert_bit_identical(&rules, &back);
    }

    /// Random structural corruption of a valid document is always a clean
    /// `Err`, never a panic and never a silently different rule set.
    fn tsv_rejects_corrupted_documents(rng, cases = 64) {
        let rules = random_ruleset(rng, 1);
        let doc = rules.to_tsv();
        let mut lines: Vec<String> = doc.lines().map(str::to_owned).collect();
        let corrupted = match rng.gen_range(0u32..6) {
            // Drop the final rule line: fewer lines than the header promises.
            0 => {
                lines.pop();
                lines.join("\n")
            }
            // Replace one float field of a random non-header line with junk.
            1 => {
                let li = rng.gen_range(1usize..lines.len());
                let mut fields: Vec<&str> = lines[li].split('\t').collect();
                let fi = rng.gen_range(1usize..fields.len());
                fields[fi] = "not-a-float";
                lines[li] = fields.join("\t");
                lines.join("\n")
            }
            // Unknown format version in the header.
            2 => {
                lines[0] = lines[0].replace("\tv1\t", "\tv9\t");
                lines.join("\n")
            }
            // Misspelled line tag.
            3 => {
                let li = rng.gen_range(1usize..lines.len());
                let rest = lines[li].split_once('\t').map(|(_, r)| r.to_owned());
                lines[li] = format!("bogus\t{}", rest.unwrap_or_default());
                lines.join("\n")
            }
            // Widen a rule line: width no longer 2 * dim.
            4 => {
                let li = lines.len() - 1;
                lines[li].push_str("\t0");
                lines.join("\n")
            }
            // Truncate at an arbitrary char boundary strictly before the
            // last line, so the final rule line is always wholly missing.
            // (Cutting *within* the last float is legal-by-construction:
            // "2.5" truncated to "2." still parses, and the format cannot
            // detect it — so that is not an error path to probe.)
            _ => {
                let last_line_start = doc.trim_end().rfind('\n').unwrap() + 1;
                let mut cut = rng.gen_range(1usize..last_line_start);
                while !doc.is_char_boundary(cut) {
                    cut -= 1;
                }
                doc[..cut].trim_end_matches('\n').to_owned()
            }
        };
        let err = RuleSet::from_tsv(&corrupted)
            .expect_err("corrupted document parsed cleanly");
        assert!(!err.is_empty());
    }
}

/// The degenerate shapes: no rules at all, and a zero-dimensional space.
#[test]
fn tsv_round_trips_empty_rulesets() {
    for rules in [
        RuleSet { bounds: vec![(0.0, 1.0), (-1.0, 2.0)], whitelist: vec![], total_regions: 0 },
        RuleSet { bounds: vec![], whitelist: vec![], total_regions: 0 },
        RuleSet {
            bounds: vec![(f32::NEG_INFINITY, f32::INFINITY)],
            whitelist: vec![],
            total_regions: 17,
        },
    ] {
        let back = RuleSet::from_tsv(&rules.to_tsv()).unwrap();
        assert_bit_identical(&rules, &back);
    }
}

/// Error paths the corruption fuzzer cannot hit reliably: missing bounds
/// lines, a dim/width mismatch between header and bounds, and NaN floats
/// (which parse, but only arrive from hand-written documents).
#[test]
fn tsv_error_paths_are_informative() {
    let missing_bounds = RuleSet::from_tsv("iguard-ruleset\tv1\t2\t0\t0").unwrap_err();
    assert!(missing_bounds.contains("bounds_lo"), "{missing_bounds}");

    let narrow =
        RuleSet::from_tsv("iguard-ruleset\tv1\t3\t0\t0\nbounds_lo\t0\nbounds_hi\t1").unwrap_err();
    assert!(narrow.contains("width"), "{narrow}");

    let bad_float = RuleSet::from_tsv("iguard-ruleset\tv1\t1\t0\t0\nbounds_lo\tzero\nbounds_hi\t1")
        .unwrap_err();
    assert!(bad_float.contains("zero"), "error should name the bad token: {bad_float}");

    let bad_count = RuleSet::from_tsv("iguard-ruleset\tv1\t1\t0\tmany\nbounds_lo\t0\nbounds_hi\t1")
        .unwrap_err();
    assert!(bad_count.contains("rule count"), "{bad_count}");
}
