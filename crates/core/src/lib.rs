//! # iguard-core — the iGuard model (paper §3.2)
//!
//! The paper's primary contribution: an isolation-forest design whose
//! training is guided by a teacher (an autoencoder ensemble), whose leaves
//! are labelled by knowledge distillation, and which compiles to a small
//! set of whitelist rules installable in a switch data plane.
//!
//! * [`guided`] — **autoencoder-guided iTree training** (§3.2.1): at each
//!   node, augment the node's samples with `k` synthetic points drawn from
//!   the node's feature ranges, label the union with the teacher, and pick
//!   the split `(q*, p*)` maximising information gain; stop on `|X| ≤ 1`,
//!   `h ≥ ⌈log₂ Ψ⌉`, or class skew below `τ_split`.
//! * [`forest`] — the [`forest::IGuardForest`] ensemble: **knowledge
//!   distillation** (§3.2.2) labels each leaf by the teacher's weighted
//!   vote over expected reconstruction-error labels; inference is a
//!   majority vote of leaf labels over the `t` trees.
//! * [`rules`] — **whitelist-rule generation** (§3.2.3): decompose feature
//!   space into hypercubes on which the forest's vote is constant, merge
//!   adjacent same-label cubes, and keep the benign (label-0) cubes as
//!   whitelist rules; includes the consistency check `C`.
//! * [`drift`] — the controller-side [`drift::DriftDetector`]: a
//!   deterministic rolling-window shift detector over digest labels that
//!   triggers the warm-start retrain ([`forest::IGuardForest::refit_warm`])
//!   of the online adaptation loop.
//! * [`teacher`] — the [`teacher::Teacher`] trait decoupling the forest
//!   from any particular guide (autoencoder ensemble, VAE, oracle in
//!   tests), plus adapters.
//! * [`early`] — the early-packet model (§3.3.1): a conventional iForest
//!   on packet-level features compiled to whitelist rules and merged with
//!   the flow-level rules.
//! * [`rule_index`] — the **compiled rule index**: per-dimension sorted
//!   cut points with interval bitmaps, making first-match classification a
//!   handful of binary searches plus a word-wise AND instead of a linear
//!   scan, with bit-exact agreement with the scan on every key.
//! * [`error`] — the workspace-wide [`error::IguardError`] uniting the
//!   rule-generation, TCAM-compilation, and wire-parse error enums.
//! * [`tuner`] — grid search over `(t, Ψ, k, T)` for iGuard and
//!   `(t, Ψ, contamination)` for the baseline, maximising the mean of
//!   macro F1 / PRAUC / ROCAUC (§4.1) or the memory-aware reward (§4.2.1).

#![forbid(unsafe_code)]

pub mod drift;
pub mod early;
pub mod error;
pub mod forest;
pub mod guided;
pub mod phase;
pub mod rule_index;
pub mod rules;
pub mod teacher;
pub mod tuner;

pub use drift::{DriftConfig, DriftDetector};
pub use error::{IguardError, SwitchError, TcamError};
pub use forest::{IGuardConfig, IGuardForest};
pub use phase::{PhaseModels, PhaseTrainConfig, DEFAULT_PHASE_BOUNDARIES};
pub use rule_index::{IndexBuilder, IntervalIndex, RuleIndex};
pub use rules::{Hypercube, RuleSet};
pub use teacher::Teacher;
