//! Whitelist-rule generation (paper §3.2.3).
//!
//! The labelled forest is compiled into axis-aligned hypercubes on which
//! its vote is constant. The paper describes enumerating the cartesian
//! product of all leaf boundaries; we compute the same partition by
//! **adaptive region splitting** — recursively split a region only while
//! some tree's decision still straddles it — which emits each maximal
//! constant-vote region directly instead of enumerating grid cells that
//! would be merged again afterwards. The decomposition proceeds breadth
//! first so each frontier level resolves in parallel across the runtime
//! worker pool; the result is independent of worker count because split
//! order never affects the final partition. Adjacent same-label cubes are
//! then greedily merged, and the benign (label-0) cubes become the
//! whitelist: anything matching no whitelist rule is treated as malicious.

use iguard_iforest::tree::Node as IfNode;
use iguard_iforest::IsolationForest;
use iguard_runtime::{par, Dataset};
use iguard_telemetry::{counter, histogram, span};

use crate::forest::IGuardForest;
use crate::rule_index::RuleIndex;

/// An axis-aligned box `[lo, hi)` over the feature space.
#[derive(Clone, Debug, PartialEq)]
pub struct Hypercube {
    pub lo: Vec<f32>,
    pub hi: Vec<f32>,
}

impl Hypercube {
    /// Half-open membership test.
    pub fn contains(&self, x: &[f32]) -> bool {
        x.iter().zip(self.lo.iter().zip(&self.hi)).all(|(&v, (&lo, &hi))| v >= lo && v < hi)
    }

    /// Volume of the box (product of extents).
    pub fn volume(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(&lo, &hi)| (hi - lo).max(0.0) as f64).product()
    }

    fn dims(&self) -> usize {
        self.lo.len()
    }
}

/// Rule-generation failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleGenError {
    /// The decomposition exceeded the region budget — the model is too
    /// fragmented to compile into a rule table of acceptable size.
    /// `reached` is the region count at the point the budget was blown,
    /// so callers can tell a near miss from a runaway decomposition.
    TooManyRegions { budget: usize, reached: usize },
    /// A model constructor was handed zero training rows. Feature bounds
    /// (and therefore rule hypercubes) are undefined on an empty set, so
    /// the caller gets a typed error instead of a library panic.
    EmptyTrainingSet,
}

impl std::fmt::Display for RuleGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleGenError::TooManyRegions { budget, reached } => {
                write!(
                    f,
                    "region decomposition exceeded budget of {budget}: reached {reached} regions"
                )
            }
            RuleGenError::EmptyTrainingSet => {
                write!(f, "empty training set: cannot derive feature bounds or rules")
            }
        }
    }
}

impl std::error::Error for RuleGenError {}

/// A compiled whitelist rule set.
#[derive(Clone, Debug)]
pub struct RuleSet {
    /// Global feature bounds the rules were compiled within.
    pub bounds: Vec<(f32, f32)>,
    /// Benign (label-0) regions, post-merge.
    pub whitelist: Vec<Hypercube>,
    /// Constant-vote regions found before dropping malicious ones and
    /// before merging (a fragmentation measure).
    pub total_regions: usize,
}

/// How a region resolves against an ensemble. `Sync` because frontier
/// levels of the decomposition resolve concurrently.
type Resolve<'a> = dyn Fn(&[f32], &[f32]) -> Result<bool, (usize, f32)> + Sync + 'a;

impl RuleSet {
    /// Compiles a distilled [`IGuardForest`] into whitelist rules.
    ///
    /// The region's verdict is the *majority vote*, so the decomposition
    /// short-circuits: once enough trees have resolved that the remaining
    /// (straddled) trees cannot change the majority, the region is
    /// constant and need not be split further. This is what keeps the
    /// compilation tractable in 13 dimensions.
    pub fn from_iguard(forest: &IGuardForest, max_regions: usize) -> Result<Self, RuleGenError> {
        assert!(forest.is_distilled(), "distill the forest before compiling rules");
        let needed = forest.votes_needed();
        let resolve = |lo: &[f32], hi: &[f32]| -> Result<bool, (usize, f32)> {
            let mut mal = 0usize;
            let mut unresolved = 0usize;
            let mut first_straddle: Option<(usize, f32)> = None;
            for tree in forest.trees() {
                match tree.resolve_region(lo, hi) {
                    Ok(leaf) => {
                        if tree.leaves[leaf].label.expect("undistilled leaf") {
                            mal += 1;
                        }
                    }
                    Err(straddle) => {
                        unresolved += 1;
                        first_straddle.get_or_insert(straddle);
                    }
                }
            }
            if mal >= needed {
                return Ok(true); // malicious vote already locked in
            }
            if mal + unresolved < needed {
                return Ok(false); // benign even if all straddles go malicious
            }
            Err(first_straddle.expect("undetermined region must have a straddle"))
        };
        Self::compile(forest.bounds().to_vec(), &resolve, max_regions)
    }

    /// Compiles a conventional [`IsolationForest`] (thresholded anomaly
    /// score) into whitelist rules — how HorusEye-style deployments install
    /// the baseline iForest in the data plane.
    ///
    /// Branch-and-bound: for each tree, the region's attainable path
    /// length is bounded by exploring both sides of straddled splits; if
    /// the resulting score interval lies entirely on one side of the
    /// threshold, the region's verdict is constant without further
    /// splitting.
    pub fn from_iforest(
        forest: &IsolationForest,
        bounds: &[(f32, f32)],
        max_regions: usize,
    ) -> Result<Self, RuleGenError> {
        let resolve = |lo: &[f32], hi: &[f32]| -> Result<bool, (usize, f32)> {
            let mut path_min = 0.0f64;
            let mut path_max = 0.0f64;
            let mut first_straddle: Option<(usize, f32)> = None;
            for tree in forest.trees() {
                let b = iforest_path_bounds(tree.root(), lo, hi, 0, &mut first_straddle);
                path_min += b.0;
                path_max += b.1;
            }
            let n = forest.trees().len() as f64;
            // Score is decreasing in mean path length.
            let score_hi = 2f64.powf(-(path_min / n) / forest.c_psi());
            let score_lo = 2f64.powf(-(path_max / n) / forest.c_psi());
            if score_lo > forest.threshold() {
                return Ok(true);
            }
            if score_hi <= forest.threshold() {
                return Ok(false);
            }
            Err(first_straddle.expect("undetermined region must have a straddle"))
        };
        Self::compile(bounds.to_vec(), &resolve, max_regions)
    }

    /// The shared adaptive decomposition + merge pipeline.
    ///
    /// The root region is **unbounded**: tree inference routes every point
    /// (inside training bounds or not) to some leaf, so the rule table must
    /// cover the whole feature space to be consistent with the forest. Edge
    /// rules extend to ±∞ and are intersected with finite field domains
    /// only when installed into a TCAM.
    ///
    /// Breadth-first: every region of the current frontier resolves in
    /// parallel, then straddled regions split into the next frontier.
    fn compile(
        bounds: Vec<(f32, f32)>,
        resolve: &Resolve<'_>,
        max_regions: usize,
    ) -> Result<Self, RuleGenError> {
        let dim = bounds.len();
        let (benign, total_regions) = span!("core.rules.decompose").time(|| {
            let mut frontier =
                vec![Hypercube { lo: vec![f32::NEG_INFINITY; dim], hi: vec![f32::INFINITY; dim] }];
            let mut benign = Vec::new();
            let mut total_regions = 0usize;
            while !frontier.is_empty() {
                histogram!("core.rules.frontier_width").record(frontier.len() as u64);
                let resolved = par::par_map_vec(frontier, |cube| {
                    let r = resolve(&cube.lo, &cube.hi);
                    (cube, r)
                });
                let mut next = Vec::new();
                for (cube, resolution) in resolved {
                    match resolution {
                        Ok(label) => {
                            total_regions += 1;
                            if total_regions > max_regions {
                                return Err(RuleGenError::TooManyRegions {
                                    budget: max_regions,
                                    reached: total_regions,
                                });
                            }
                            if !label {
                                benign.push(cube);
                            }
                        }
                        Err((feature, split)) => {
                            debug_assert!(
                                cube.lo[feature] < split && split < cube.hi[feature],
                                "straddle split must be interior"
                            );
                            let mut left = cube.clone();
                            left.hi[feature] = split;
                            let mut right = cube;
                            right.lo[feature] = split;
                            next.push(left);
                            next.push(right);
                            if next.len() > max_regions * 2 {
                                return Err(RuleGenError::TooManyRegions {
                                    budget: max_regions,
                                    reached: total_regions + next.len(),
                                });
                            }
                        }
                    }
                }
                frontier = next;
            }
            Ok((benign, total_regions))
        })?;
        counter!("core.rules.regions").add(total_regions as u64);
        let whitelist = span!("core.rules.merge").time(|| merge_adjacent(benign));
        counter!("core.rules.whitelist_rules").add(whitelist.len() as u64);
        Ok(Self { bounds, whitelist, total_regions })
    }

    /// Number of whitelist rules.
    pub fn len(&self) -> usize {
        self.whitelist.len()
    }

    pub fn is_empty(&self) -> bool {
        self.whitelist.is_empty()
    }

    /// Whether `x` matches a whitelist rule. No clamping: edge rules are
    /// unbounded, mirroring forest inference on out-of-range points.
    pub fn matches(&self, x: &[f32]) -> bool {
        self.whitelist.iter().any(|c| c.contains(x))
    }

    /// Index of the first whitelist cube containing `x` — the linear-scan
    /// reference the compiled [`RuleIndex`] must reproduce bit-for-bit.
    pub fn lookup(&self, x: &[f32]) -> Option<usize> {
        self.whitelist.iter().position(|c| c.contains(x))
    }

    /// Compiles the whitelist into a [`RuleIndex`] for sublinear
    /// first-match lookups.
    pub fn build_index(&self) -> RuleIndex {
        RuleIndex::build(self)
    }

    /// Hard prediction: malicious iff no whitelist rule matches.
    pub fn predict(&self, x: &[f32]) -> bool {
        !self.matches(x)
    }

    /// Batch predictions over the rows of `xs`, in parallel through the
    /// compiled index. Rows are processed in fixed-size chunks with one
    /// scratch buffer per chunk, so the output is byte-identical at any
    /// `IGUARD_WORKERS` setting — and, because the index agrees with the
    /// scan on every key, identical to mapping [`RuleSet::predict`] over
    /// the rows (cross-checked per row in debug builds).
    pub fn predictions(&self, xs: &Dataset) -> Vec<bool> {
        const CHUNK: usize = 1024;
        let n = xs.rows();
        if n == 0 {
            return Vec::new();
        }
        let index = self.build_index();
        let starts: Vec<usize> = (0..n).step_by(CHUNK).collect();
        let parts = par::par_map_vec(starts, |start| {
            let end = (start + CHUNK).min(n);
            let mut scratch = Vec::new();
            let mut out = Vec::with_capacity(end - start);
            for i in start..end {
                let hit = index.lookup(xs.row(i), &mut scratch);
                debug_assert_eq!(hit, self.lookup(xs.row(i)), "index/scan divergence at row {i}");
                out.push(hit.is_none());
            }
            out
        });
        parts.into_iter().flatten().collect()
    }

    /// Serialises the rule set to a line-oriented TSV document.
    ///
    /// `f32` values print through `Display`, whose shortest-round-trip
    /// output parses back to the identical bit pattern (infinities print
    /// as `inf`/`-inf`), so `from_tsv(to_tsv())` reproduces the rule set
    /// exactly — no binary encoding needed.
    pub fn to_tsv(&self) -> String {
        let dim = self.bounds.len();
        let mut out = String::new();
        out.push_str(&format!(
            "iguard-ruleset\tv1\t{}\t{}\t{}\n",
            dim,
            self.total_regions,
            self.whitelist.len()
        ));
        let push_vals = |out: &mut String, tag: &str, vals: &[f32]| {
            out.push_str(tag);
            for v in vals {
                out.push('\t');
                out.push_str(&v.to_string());
            }
            out.push('\n');
        };
        let (los, his): (Vec<f32>, Vec<f32>) = self.bounds.iter().copied().unzip();
        push_vals(&mut out, "bounds_lo", &los);
        push_vals(&mut out, "bounds_hi", &his);
        for cube in &self.whitelist {
            let mut line = cube.lo.clone();
            line.extend_from_slice(&cube.hi);
            push_vals(&mut out, "rule", &line);
        }
        out
    }

    /// Parses a document produced by [`RuleSet::to_tsv`].
    pub fn from_tsv(s: &str) -> Result<Self, String> {
        fn vals(fields: &[&str]) -> Result<Vec<f32>, String> {
            fields
                .iter()
                .map(|f| f.parse::<f32>().map_err(|e| format!("bad float {f:?}: {e}")))
                .collect()
        }
        let mut lines = s.lines();
        let header = lines.next().ok_or("empty document")?;
        let h: Vec<&str> = header.split('\t').collect();
        if h.len() != 5 || h[0] != "iguard-ruleset" || h[1] != "v1" {
            return Err(format!("bad header: {header:?}"));
        }
        let dim: usize = h[2].parse().map_err(|e| format!("bad dim: {e}"))?;
        let total_regions: usize = h[3].parse().map_err(|e| format!("bad total_regions: {e}"))?;
        let n_rules: usize = h[4].parse().map_err(|e| format!("bad rule count: {e}"))?;
        let mut expect = |tag: &str| -> Result<Vec<f32>, String> {
            let line = lines.next().ok_or_else(|| format!("missing {tag} line"))?;
            let f: Vec<&str> = line.split('\t').collect();
            if f.first() != Some(&tag) {
                return Err(format!("expected {tag} line, got {line:?}"));
            }
            vals(&f[1..])
        };
        let los = expect("bounds_lo")?;
        let his = expect("bounds_hi")?;
        if los.len() != dim || his.len() != dim {
            return Err("bounds width mismatch".into());
        }
        let bounds: Vec<(f32, f32)> = los.into_iter().zip(his).collect();
        let mut whitelist = Vec::with_capacity(n_rules);
        for _ in 0..n_rules {
            let line = expect("rule")?;
            if line.len() != 2 * dim {
                return Err(format!("rule width {} != 2*{dim}", line.len()));
            }
            whitelist.push(Hypercube { lo: line[..dim].to_vec(), hi: line[dim..].to_vec() });
        }
        Ok(Self { bounds, whitelist, total_regions })
    }
}

/// Bounds on the path length a point inside region `[lo, hi)` can attain
/// in a conventional iTree. Straddled splits explore both children; the
/// first straddle encountered is recorded for region splitting.
fn iforest_path_bounds(
    node: &IfNode,
    lo: &[f32],
    hi: &[f32],
    depth: usize,
    first_straddle: &mut Option<(usize, f32)>,
) -> (f64, f64) {
    match node {
        IfNode::Leaf { size } => {
            let p = depth as f64 + iguard_iforest::tree::average_path_length(*size);
            (p, p)
        }
        IfNode::Internal { feature, split, left, right } => {
            if hi[*feature] <= *split {
                iforest_path_bounds(left, lo, hi, depth + 1, first_straddle)
            } else if lo[*feature] >= *split {
                iforest_path_bounds(right, lo, hi, depth + 1, first_straddle)
            } else {
                first_straddle.get_or_insert((*feature, *split));
                let l = iforest_path_bounds(left, lo, hi, depth + 1, first_straddle);
                let r = iforest_path_bounds(right, lo, hi, depth + 1, first_straddle);
                (l.0.min(r.0), l.1.max(r.1))
            }
        }
    }
}

/// Greedy merging of adjacent same-label boxes: two boxes merge when they
/// agree on every dimension except one where they abut exactly. Runs to a
/// fixpoint over all axes.
///
/// Implementation: for each axis, boxes are hash-grouped by their
/// coordinates on every *other* axis; within a group, a sort-and-sweep
/// along the axis coalesces abutting runs. This is `O(d · n log n)` per
/// pass, which matters — baseline iForests can decompose into 10⁵ regions.
pub fn merge_adjacent(mut cubes: Vec<Hypercube>) -> Vec<Hypercube> {
    use std::collections::HashMap;
    if cubes.is_empty() {
        return cubes;
    }
    let dims = cubes[0].dims();
    loop {
        counter!("core.rules.merge_pass").inc();
        let mut merged_any = false;
        for d in 0..dims {
            // Key = bit patterns of (lo, hi) on all axes except d.
            let mut groups: HashMap<Vec<u32>, Vec<Hypercube>> = HashMap::new();
            for cube in cubes.drain(..) {
                let mut key = Vec::with_capacity(2 * (dims - 1));
                for a in 0..dims {
                    if a == d {
                        continue;
                    }
                    key.push(cube.lo[a].to_bits());
                    key.push(cube.hi[a].to_bits());
                }
                groups.entry(key).or_default().push(cube);
            }
            // Deterministic output order: sort groups by key.
            let mut keyed: Vec<(Vec<u32>, Vec<Hypercube>)> = groups.into_iter().collect();
            keyed.sort_by(|a, b| a.0.cmp(&b.0));
            for (_, mut group) in keyed {
                // `total_cmp`, not `partial_cmp(..).unwrap()`: a NaN bound
                // (e.g. from a degenerate split) must not panic the merge.
                group.sort_by(|a, b| a.lo[d].total_cmp(&b.lo[d]));
                let mut run: Option<Hypercube> = None;
                for cube in group {
                    match run.take() {
                        None => run = Some(cube),
                        Some(mut prev) => {
                            if prev.hi[d] == cube.lo[d] {
                                prev.hi[d] = cube.hi[d];
                                merged_any = true;
                                run = Some(prev);
                            } else {
                                cubes.push(prev);
                                run = Some(cube);
                            }
                        }
                    }
                }
                if let Some(prev) = run {
                    cubes.push(prev);
                }
            }
        }
        if !merged_any {
            return cubes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::IGuardConfig;
    use crate::teacher::OracleTeacher;
    use iguard_runtime::rng::Rng;

    fn cube(lo: &[f32], hi: &[f32]) -> Hypercube {
        Hypercube { lo: lo.to_vec(), hi: hi.to_vec() }
    }

    fn uniform2(n: usize, rng: &mut Rng) -> Dataset {
        let mut d = Dataset::new(2);
        for _ in 0..n {
            d.push_row(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
        }
        d
    }

    #[test]
    fn merge_adjacent_survives_nan_bounds() {
        // A NaN bound must not panic the merge sort — NaN cubes sort last
        // under `total_cmp` and simply fail to merge with anything.
        let cubes = vec![
            cube(&[0.0, 0.0], &[0.5, 1.0]),
            cube(&[f32::NAN, 0.0], &[1.0, 1.0]),
            cube(&[0.5, 0.0], &[1.0, 1.0]),
        ];
        let merged = merge_adjacent(cubes);
        assert_eq!(merged.len(), 2, "finite pair merges, NaN cube survives");
    }

    #[test]
    fn contains_is_half_open() {
        let c = cube(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(c.contains(&[0.0, 0.5]));
        assert!(!c.contains(&[1.0, 0.5]));
        assert!(!c.contains(&[0.5, -0.1]));
    }

    #[test]
    fn merge_abutting_boxes() {
        let merged =
            merge_adjacent(vec![cube(&[0.0, 0.0], &[0.5, 1.0]), cube(&[0.5, 0.0], &[1.0, 1.0])]);
        assert_eq!(merged, vec![cube(&[0.0, 0.0], &[1.0, 1.0])]);
    }

    #[test]
    fn merge_is_transitive_across_passes() {
        // Three boxes in a row merge into one (needs a second pass).
        let merged =
            merge_adjacent(vec![cube(&[0.0], &[1.0]), cube(&[2.0], &[3.0]), cube(&[1.0], &[2.0])]);
        assert_eq!(merged, vec![cube(&[0.0], &[3.0])]);
    }

    #[test]
    fn no_merge_across_gap_or_two_axes() {
        let gap = merge_adjacent(vec![cube(&[0.0], &[1.0]), cube(&[1.5], &[2.0])]);
        assert_eq!(gap.len(), 2);
        let diag =
            merge_adjacent(vec![cube(&[0.0, 0.0], &[1.0, 1.0]), cube(&[1.0, 1.0], &[2.0, 2.0])]);
        assert_eq!(diag.len(), 2);
    }

    fn trained_forest(rng: &mut Rng) -> (IGuardForest, Dataset) {
        let data = uniform2(512, rng);
        let teacher = OracleTeacher(|x: &[f32]| x[0] > 0.6);
        let cfg = IGuardConfig { n_trees: 7, subsample: 128, k_augment: 32, ..Default::default() };
        let mut forest = IGuardForest::fit(&data, &teacher, &cfg, rng);
        forest.distill(&data, &teacher, 16, rng);
        (forest, data)
    }

    /// The paper's consistency check: rules reproduce the distilled forest.
    #[test]
    fn rules_are_consistent_with_forest() {
        let mut rng = Rng::seed_from_u64(1);
        let (forest, _) = trained_forest(&mut rng);
        let rules = RuleSet::from_iguard(&forest, 100_000).unwrap();
        let mut agree = 0usize;
        let n = 1000;
        for _ in 0..n {
            let x = vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
            if rules.predict(&x) == forest.predict(&x) {
                agree += 1;
            }
        }
        let c = agree as f64 / n as f64;
        assert!(c >= 0.99, "consistency {c} below paper's 0.992–0.996 band");
    }

    #[test]
    fn whitelist_covers_benign_side() {
        let mut rng = Rng::seed_from_u64(2);
        let (forest, _) = trained_forest(&mut rng);
        let rules = RuleSet::from_iguard(&forest, 100_000).unwrap();
        assert!(!rules.is_empty());
        assert!(rules.matches(&[0.2, 0.5]), "benign point must match whitelist");
        assert!(rules.predict(&[0.9, 0.5]), "malicious point must not match");
    }

    #[test]
    fn out_of_range_points_follow_forest_semantics() {
        let mut rng = Rng::seed_from_u64(3);
        let (forest, _) = trained_forest(&mut rng);
        let rules = RuleSet::from_iguard(&forest, 100_000).unwrap();
        // Edge rules are unbounded: far outside the training bounds the
        // verdict matches the forest's own leaf routing.
        for x in [[-100.0f32, 0.5], [100.0, 0.5], [0.5, 1e9], [0.5, -1e9]] {
            assert_eq!(rules.predict(&x), forest.predict(&x), "x = {x:?}");
        }
    }

    #[test]
    fn budget_violation_reported() {
        let mut rng = Rng::seed_from_u64(4);
        let (forest, _) = trained_forest(&mut rng);
        match RuleSet::from_iguard(&forest, 1) {
            Err(err @ RuleGenError::TooManyRegions { budget: 1, reached }) => {
                assert!(reached > 1, "reached ({reached}) must exceed the budget of 1");
                let msg = err.to_string();
                assert!(
                    msg.contains("budget of 1") && msg.contains(&format!("reached {reached}")),
                    "error message must name budget and reached count: {msg:?}"
                );
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn iforest_rules_flag_outliers() {
        let mut rng = Rng::seed_from_u64(5);
        let mut data = Dataset::new(2);
        for _ in 0..512 {
            data.push_row(&[0.5 + rng.gen_range(-0.1..0.1), 0.5 + rng.gen_range(-0.1..0.1)]);
        }
        let cfg = iguard_iforest::IsolationForestConfig {
            n_trees: 10,
            subsample: 64,
            contamination: 0.05,
        };
        let forest = IsolationForest::fit(&data, &cfg, &mut rng);
        let bounds = vec![(0.0f32, 1.0), (0.0, 1.0)];
        let rules = RuleSet::from_iforest(&forest, &bounds, 500_000).unwrap();
        // Consistency with the thresholded forest on in-bounds points.
        let mut agree = 0;
        for _ in 0..500 {
            let x = vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
            if rules.predict(&x) == forest.predict(&x) {
                agree += 1;
            }
        }
        assert!(agree >= 495, "iforest rule consistency {agree}/500");
    }

    #[test]
    fn decomposition_partitions_space() {
        // Regions (kept + dropped) must tile the bounds: check by sampling
        // that exactly one benign box contains any benign-predicted point.
        let mut rng = Rng::seed_from_u64(6);
        let (forest, _) = trained_forest(&mut rng);
        let rules = RuleSet::from_iguard(&forest, 100_000).unwrap();
        for _ in 0..300 {
            let x = vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
            let hits = rules.whitelist.iter().filter(|c| c.contains(&x)).count();
            assert!(hits <= 1, "point {x:?} in {hits} merged boxes");
        }
    }

    /// The compiled index returns the identical rule as the linear scan on
    /// a trained whitelist, and batch `predictions` (which run through the
    /// index) equal per-point `predict` at any worker count.
    #[test]
    fn index_and_predictions_agree_with_linear_scan() {
        use iguard_runtime::par::with_workers;
        let mut rng = Rng::seed_from_u64(9);
        let (forest, data) = trained_forest(&mut rng);
        let rules = RuleSet::from_iguard(&forest, 100_000).unwrap();
        let index = rules.build_index();
        let mut scratch = Vec::new();
        for _ in 0..1000 {
            let x = vec![rng.gen_range(-0.5..1.5) as f32, rng.gen_range(-0.5..1.5) as f32];
            assert_eq!(index.lookup(&x, &mut scratch), rules.lookup(&x), "x = {x:?}");
        }
        let expect: Vec<bool> = (0..data.rows()).map(|i| rules.predict(data.row(i))).collect();
        for workers in [1, 2, 8] {
            let got = with_workers(workers, || rules.predictions(&data));
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    /// Same seed ⇒ identical whitelist regardless of worker count.
    #[test]
    fn compilation_identical_at_any_worker_count() {
        use iguard_runtime::par::with_workers;
        let mut rng = Rng::seed_from_u64(7);
        let (forest, _) = trained_forest(&mut rng);
        let run = |workers: usize| {
            with_workers(workers, || RuleSet::from_iguard(&forest, 100_000).unwrap())
        };
        let serial = run(1);
        for workers in [2, 8] {
            let r = run(workers);
            assert_eq!(serial.whitelist, r.whitelist, "workers = {workers}");
            assert_eq!(serial.total_regions, r.total_regions);
        }
    }

    /// TSV round trip is exact, including unbounded edge rules.
    #[test]
    fn tsv_round_trip_is_exact() {
        let mut rng = Rng::seed_from_u64(8);
        let (forest, _) = trained_forest(&mut rng);
        let rules = RuleSet::from_iguard(&forest, 100_000).unwrap();
        assert!(rules.whitelist.iter().any(|c| c.lo.iter().any(|v| v.is_infinite())));
        let back = RuleSet::from_tsv(&rules.to_tsv()).unwrap();
        assert_eq!(rules.bounds, back.bounds);
        assert_eq!(rules.whitelist, back.whitelist);
        assert_eq!(rules.total_regions, back.total_regions);
    }

    #[test]
    fn tsv_rejects_corrupt_input() {
        assert!(RuleSet::from_tsv("").is_err());
        assert!(RuleSet::from_tsv("not-a-ruleset\tv1\t2\t0\t0").is_err());
        assert!(RuleSet::from_tsv(
            "iguard-ruleset\tv1\t2\t5\t1\nbounds_lo\t0\t0\nbounds_hi\t1\t1\nrule\t0\t0\t1"
        )
        .is_err());
    }
}
