//! The iGuard forest: guided ensemble + knowledge distillation (§3.2.2).
//!
//! Trees are independent given the (shared, `Sync`) teacher, so both
//! training and distillation fan out across the runtime worker pool: each
//! tree draws from its own RNG stream `base.derive(tree_index)`, which
//! makes the result bit-identical at any `IGUARD_WORKERS` setting.

use iguard_runtime::rng::Rng;
use iguard_runtime::rng::SliceRandom;
use iguard_runtime::{par, Dataset};
use iguard_telemetry::{counter, span};

use crate::guided::{augment, GuidedTree, GuidedTreeConfig};
use crate::teacher::Teacher;

/// The full iGuard hyper-parameter surface the paper grid-searches:
/// `(t, Ψ, k, T)` — `T` lives inside the teacher (its RMSE threshold).
#[derive(Clone, Copy, Debug)]
pub struct IGuardConfig {
    /// `t`: number of guided trees.
    pub n_trees: usize,
    /// `Ψ`: sub-sample size per tree.
    pub subsample: usize,
    /// `k`: augmentation points per node (training) and per leaf
    /// (distillation).
    pub k_augment: usize,
    /// `τ_split` stopping threshold.
    pub tau_split: f64,
    /// Split candidates per feature during the information-gain search.
    pub n_candidates: usize,
}

impl Default for IGuardConfig {
    fn default() -> Self {
        Self { n_trees: 20, subsample: 256, k_augment: 32, tau_split: 1e-2, n_candidates: 8 }
    }
}

/// A trained (and optionally distilled) iGuard forest.
#[derive(Clone)]
pub struct IGuardForest {
    trees: Vec<GuidedTree>,
    bounds: Vec<(f32, f32)>,
    distilled: bool,
    /// Vote-fraction threshold: predict malicious when more than this
    /// fraction of trees vote malicious. 0.5 = the paper's plain majority;
    /// tuned on validation like the other thresholds in the pipeline.
    vote_threshold: f64,
}

impl IGuardForest {
    /// Autoencoder-guided training (paper §3.2.1): grows `t` guided trees
    /// on Ψ-sub-samples of the benign training set under the teacher,
    /// one worker per tree.
    pub fn fit(data: &Dataset, teacher: &dyn Teacher, cfg: &IGuardConfig, rng: &mut Rng) -> Self {
        let bounds = feature_bounds(data);
        Self::fit_with_bounds(data, bounds, teacher, cfg, rng)
    }

    /// Warm-start retrain for drift adaptation: regrows the trees on the
    /// new window but **fuses the previous generation's feature bounds**
    /// into the new envelope (per-feature union) and carries the tuned
    /// vote threshold over. Fused bounds keep the retrained rule
    /// hypercubes on the same feature envelope as the installed
    /// generation, so the compiled tables stay close and the install
    /// delta (the rule diff) stays small; a cold `fit` on a shifted
    /// window would re-derive every cube against fresh bounds and churn
    /// the whole table. The caller re-distills, exactly as after `fit`.
    pub fn refit_warm(
        &self,
        data: &Dataset,
        teacher: &dyn Teacher,
        cfg: &IGuardConfig,
        rng: &mut Rng,
    ) -> Self {
        assert_eq!(
            data.cols(),
            self.bounds.len(),
            "warm refit window must keep the feature dimensionality"
        );
        let mut bounds = feature_bounds(data);
        for (b, prev) in bounds.iter_mut().zip(&self.bounds) {
            b.0 = b.0.min(prev.0);
            b.1 = b.1.max(prev.1);
        }
        counter!("core.forest.warm_refits").inc();
        let mut forest = Self::fit_with_bounds(data, bounds, teacher, cfg, rng);
        forest.vote_threshold = self.vote_threshold;
        forest
    }

    fn fit_with_bounds(
        data: &Dataset,
        bounds: Vec<(f32, f32)>,
        teacher: &dyn Teacher,
        cfg: &IGuardConfig,
        rng: &mut Rng,
    ) -> Self {
        assert!(data.rows() > 0, "cannot fit on empty data");
        assert!(cfg.n_trees > 0, "need at least one tree");
        assert!(cfg.subsample > 1, "subsample must exceed 1");
        let psi = cfg.subsample.min(data.rows());
        let tree_cfg = GuidedTreeConfig {
            max_depth: (psi as f64).log2().ceil() as usize,
            k_augment: cfg.k_augment,
            tau_split: cfg.tau_split,
            n_candidates: cfg.n_candidates,
        };
        let all: Vec<usize> = (0..data.rows()).collect();
        let base = rng.split();
        let trees = span!("core.forest.fit").time(|| {
            par::par_map_range(cfg.n_trees, |i| {
                let mut tree_rng = base.derive(i as u64);
                let sample: Vec<usize> = all.choose_multiple(&mut tree_rng, psi).copied().collect();
                GuidedTree::fit(data, &sample, &bounds, teacher, &tree_cfg, &mut tree_rng)
            })
        });
        counter!("core.forest.trees_fit").add(trees.len() as u64);
        Self { trees, bounds, distilled: false, vote_threshold: 0.5 }
    }

    /// Knowledge distillation (paper §3.2.2): routes every training sample
    /// through every tree, augments each leaf with points from the leaf's
    /// feature ranges, and labels the leaf with the teacher's vote over
    /// the expected reconstruction errors (Eq. 5–6). Trees distill in
    /// parallel on derived RNG streams.
    ///
    /// Deviation from the paper's literal text: augmentation *tops up*
    /// each leaf to `k_augment` samples rather than unconditionally adding
    /// `k_augment`. Synthetic points draw each feature independently, so
    /// they sit far off the benign manifold and carry large reconstruction
    /// errors; added unconditionally they dominate Eq. 5's expectation and
    /// flip leaves that hundreds of real benign samples route to.
    /// Augmentation's role — making *sparse and empty* leaves labelable —
    /// is preserved.
    pub fn distill(
        &mut self,
        data: &Dataset,
        teacher: &dyn Teacher,
        k_augment: usize,
        rng: &mut Rng,
    ) {
        let _span = span!("core.forest.distill");
        let base = rng.split();
        let indexed: Vec<(usize, GuidedTree)> =
            std::mem::take(&mut self.trees).into_iter().enumerate().collect();
        self.trees = _span.time(|| {
            par::par_map_vec(indexed, |(ti, mut tree)| {
                let mut tree_rng = base.derive(ti as u64);
                // Bucket training samples per leaf.
                let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); tree.n_leaves()];
                for i in 0..data.rows() {
                    buckets[tree.leaf_of(data.row(i))].push(i);
                }
                for (leaf_id, bucket) in buckets.into_iter().enumerate() {
                    let mut set = data.select_rows(&bucket);
                    let top_up = k_augment.saturating_sub(set.rows()).max(if set.rows() == 0 {
                        1
                    } else {
                        0
                    });
                    // Top-up points sample the leaf's *volume* (paper footnote
                    // 7's bounds distribution): a sparse leaf whose box is
                    // mostly off the benign manifold should read as malicious
                    // even though a handful of benign samples routed into it.
                    for x in augment(&tree.leaves[leaf_id].bounds, top_up, &mut tree_rng) {
                        set.push_row(&x);
                    }
                    tree.leaves[leaf_id].label = Some(teacher.vote_on_set(&set));
                }
                tree
            })
        });
        counter!("core.forest.leaves_distilled").add(self.total_leaves() as u64);
        self.distilled = true;
    }

    /// Whether distillation has labelled every leaf.
    pub fn is_distilled(&self) -> bool {
        self.distilled
    }

    /// Vote of leaf labels over the `t` trees: malicious when the
    /// malicious-vote fraction exceeds [`Self::vote_threshold`]
    /// (`label(x) = majority_vote(label_leaf)` at the default 0.5, §3.2.2).
    ///
    /// # Panics
    /// Panics if called before [`Self::distill`].
    pub fn predict(&self, x: &[f32]) -> bool {
        assert!(self.distilled, "predict called before distillation");
        let mal = self.trees.iter().filter(|t| t.predict(x).expect("undistilled leaf")).count();
        mal >= self.votes_needed()
    }

    /// The smallest malicious-vote count that crosses the vote threshold.
    pub fn votes_needed(&self) -> usize {
        ((self.vote_threshold * self.trees.len() as f64).floor() as usize + 1).min(self.trees.len())
    }

    /// Current vote-fraction threshold.
    pub fn vote_threshold(&self) -> f64 {
        self.vote_threshold
    }

    /// Overrides the vote-fraction threshold (validation tuning). Values
    /// are clamped to [0, 1).
    pub fn set_vote_threshold(&mut self, v: f64) {
        self.vote_threshold = v.clamp(0.0, 0.999_999);
    }

    /// Continuous score: the fraction of trees voting malicious — used for
    /// the AUC metrics.
    pub fn score(&self, x: &[f32]) -> f64 {
        assert!(self.distilled, "score called before distillation");
        let mal = self.trees.iter().filter(|t| t.predict(x).expect("undistilled leaf")).count();
        mal as f64 / self.trees.len() as f64
    }

    /// Batch predictions over the rows of `xs`, in parallel.
    pub fn predictions(&self, xs: &Dataset) -> Vec<bool> {
        par::par_map_range(xs.rows(), |i| self.predict(xs.row(i)))
    }

    /// Batch scores over the rows of `xs`, in parallel.
    pub fn scores(&self, xs: &Dataset) -> Vec<f64> {
        par::par_map_range(xs.rows(), |i| self.score(xs.row(i)))
    }

    /// Global feature bounds seen at fit time.
    pub fn bounds(&self) -> &[(f32, f32)] {
        &self.bounds
    }

    pub fn trees(&self) -> &[GuidedTree] {
        &self.trees
    }

    /// Total leaves across trees (a proxy for model size).
    pub fn total_leaves(&self) -> usize {
        self.trees.iter().map(|t| t.n_leaves()).sum()
    }
}

/// Per-feature (min, max) over a dataset, widened so max is exclusive-safe.
pub fn feature_bounds(data: &Dataset) -> Vec<(f32, f32)> {
    assert!(data.rows() > 0);
    let dim = data.cols();
    let mut bounds = vec![(f32::INFINITY, f32::NEG_INFINITY); dim];
    for x in data.iter_rows() {
        for (b, &v) in bounds.iter_mut().zip(x) {
            b.0 = b.0.min(v);
            b.1 = b.1.max(v);
        }
    }
    // Widen degenerate / exact bounds slightly so every training point lies
    // strictly inside `[lo, hi)`. The widening must survive f32 rounding
    // even for large constant features (e.g. TTL = 64), so it scales with
    // the magnitude of the bound, not just the span.
    for b in &mut bounds {
        let span = (b.1 - b.0).abs().max(1e-6);
        let mut new_hi = b.1 + span * 1e-3;
        if new_hi <= b.1 {
            new_hi = b.1 + b.1.abs().max(1.0) * 1e-4;
        }
        debug_assert!(new_hi > b.1);
        b.1 = new_hi;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::teacher::OracleTeacher;
    use iguard_runtime::rng::Rng;

    fn uniform_data(n: usize, rng: &mut Rng) -> Dataset {
        let mut d = Dataset::new(2);
        for _ in 0..n {
            d.push_row(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
        }
        d
    }

    fn quick_cfg() -> IGuardConfig {
        IGuardConfig { n_trees: 9, subsample: 128, k_augment: 32, ..Default::default() }
    }

    #[test]
    fn learns_oracle_half_plane() {
        let mut rng = Rng::seed_from_u64(1);
        let data = uniform_data(512, &mut rng);
        let teacher = OracleTeacher(|x: &[f32]| x[0] > 0.55);
        let mut forest = IGuardForest::fit(&data, &teacher, &quick_cfg(), &mut rng);
        forest.distill(&data, &teacher, 32, &mut rng);
        // Evaluate far from the boundary.
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..200 {
            let x: Vec<f32> = vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
            if (x[0] - 0.55).abs() < 0.1 {
                continue;
            }
            total += 1;
            if forest.predict(&x) == (x[0] > 0.55) {
                correct += 1;
            }
        }
        assert!(correct as f64 / total as f64 > 0.9, "accuracy {correct}/{total} too low");
    }

    #[test]
    #[should_panic(expected = "before distillation")]
    fn predict_requires_distillation() {
        let mut rng = Rng::seed_from_u64(2);
        let data = uniform_data(64, &mut rng);
        let teacher = OracleTeacher(|_: &[f32]| false);
        let forest = IGuardForest::fit(&data, &teacher, &quick_cfg(), &mut rng);
        let _ = forest.predict(&[0.5, 0.5]);
    }

    #[test]
    fn score_is_vote_fraction() {
        let mut rng = Rng::seed_from_u64(3);
        let data = uniform_data(256, &mut rng);
        let teacher = OracleTeacher(|x: &[f32]| x[0] > 0.5);
        let mut forest = IGuardForest::fit(&data, &teacher, &quick_cfg(), &mut rng);
        forest.distill(&data, &teacher, 16, &mut rng);
        for x in [[0.1f32, 0.5], [0.9, 0.5]] {
            let s = forest.score(&x);
            assert!((0.0..=1.0).contains(&s));
            assert_eq!(forest.predict(&x), s > 0.5);
        }
    }

    #[test]
    fn all_leaves_labelled_after_distill() {
        let mut rng = Rng::seed_from_u64(4);
        let data = uniform_data(256, &mut rng);
        let teacher = OracleTeacher(|x: &[f32]| x[1] > 0.7);
        let mut forest = IGuardForest::fit(&data, &teacher, &quick_cfg(), &mut rng);
        forest.distill(&data, &teacher, 8, &mut rng);
        for tree in forest.trees() {
            assert!(tree.leaves.iter().all(|l| l.label.is_some()));
        }
    }

    #[test]
    fn warm_refit_fuses_bounds_and_carries_threshold() {
        let mut rng = Rng::seed_from_u64(11);
        let wide = uniform_data(256, &mut rng);
        let teacher = OracleTeacher(|x: &[f32]| x[0] > 0.5);
        let mut first = IGuardForest::fit(&wide, &teacher, &quick_cfg(), &mut rng);
        first.set_vote_threshold(0.37);
        // The retrain window covers a narrower slice of feature space.
        let mut narrow = Dataset::new(2);
        for _ in 0..256 {
            narrow.push_row(&[rng.gen_range(0.4..0.6), rng.gen_range(0.4..0.6)]);
        }
        let second = first.refit_warm(&narrow, &teacher, &quick_cfg(), &mut rng);
        assert_eq!(second.vote_threshold(), 0.37, "tuned threshold must carry over");
        for (sb, fb) in second.bounds().iter().zip(first.bounds()) {
            assert!(sb.0 <= fb.0 && sb.1 >= fb.1, "fused bounds must cover the old envelope");
        }
        // A cold fit on the same narrow window shrinks to the window.
        let cold = IGuardForest::fit(&narrow, &teacher, &quick_cfg(), &mut rng);
        assert!(cold.bounds()[0].0 > first.bounds()[0].0);
    }

    #[test]
    fn warm_refit_is_seeded_deterministic() {
        let mut drng = Rng::seed_from_u64(12);
        let data = uniform_data(256, &mut drng);
        let teacher = OracleTeacher(|x: &[f32]| x[1] > 0.6);
        let run = || {
            let mut rng = Rng::seed_from_u64(21);
            let first = IGuardForest::fit(&data, &teacher, &quick_cfg(), &mut rng);
            let mut second = first.refit_warm(&data, &teacher, &quick_cfg(), &mut rng);
            second.distill(&data, &teacher, 16, &mut rng);
            second.scores(&data)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn feature_bounds_cover_data() {
        let data = Dataset::from_rows(&[vec![1.0f32, -5.0], vec![3.0, 2.0]]);
        let b = feature_bounds(&data);
        assert!(b[0].0 <= 1.0 && b[0].1 > 3.0);
        assert!(b[1].0 <= -5.0 && b[1].1 > 2.0);
    }

    #[test]
    fn pure_benign_teacher_gives_single_leaf_trees() {
        let mut rng = Rng::seed_from_u64(5);
        let data = uniform_data(256, &mut rng);
        let teacher = OracleTeacher(|_: &[f32]| false);
        let mut forest = IGuardForest::fit(&data, &teacher, &quick_cfg(), &mut rng);
        forest.distill(&data, &teacher, 8, &mut rng);
        assert_eq!(forest.total_leaves(), forest.trees().len());
        assert!(!forest.predict(&[0.5, 0.5]));
    }

    /// Same seed ⇒ bit-identical trees, leaf labels and scores regardless
    /// of how many workers trained the forest.
    #[test]
    fn fit_and_distill_identical_at_any_worker_count() {
        use iguard_runtime::par::with_workers;
        let mut drng = Rng::seed_from_u64(9);
        let data = uniform_data(256, &mut drng);
        let teacher = OracleTeacher(|x: &[f32]| x[0] > 0.5);
        let run = |workers: usize| {
            with_workers(workers, || {
                let mut rng = Rng::seed_from_u64(7);
                let mut f = IGuardForest::fit(&data, &teacher, &quick_cfg(), &mut rng);
                f.distill(&data, &teacher, 16, &mut rng);
                let leaves =
                    format!("{:?}", f.trees().iter().map(|t| &t.leaves).collect::<Vec<_>>());
                (leaves, f.scores(&data))
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }
}
