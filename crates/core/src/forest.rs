//! The iGuard forest: guided ensemble + knowledge distillation (§3.2.2).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::guided::{augment, GuidedTree, GuidedTreeConfig};
use crate::teacher::Teacher;

/// The full iGuard hyper-parameter surface the paper grid-searches:
/// `(t, Ψ, k, T)` — `T` lives inside the teacher (its RMSE threshold).
#[derive(Clone, Copy, Debug)]
pub struct IGuardConfig {
    /// `t`: number of guided trees.
    pub n_trees: usize,
    /// `Ψ`: sub-sample size per tree.
    pub subsample: usize,
    /// `k`: augmentation points per node (training) and per leaf
    /// (distillation).
    pub k_augment: usize,
    /// `τ_split` stopping threshold.
    pub tau_split: f64,
    /// Split candidates per feature during the information-gain search.
    pub n_candidates: usize,
}

impl Default for IGuardConfig {
    fn default() -> Self {
        Self { n_trees: 20, subsample: 256, k_augment: 32, tau_split: 1e-2, n_candidates: 8 }
    }
}

/// A trained (and optionally distilled) iGuard forest.
#[derive(Clone)]
pub struct IGuardForest {
    trees: Vec<GuidedTree>,
    bounds: Vec<(f32, f32)>,
    distilled: bool,
    /// Vote-fraction threshold: predict malicious when more than this
    /// fraction of trees vote malicious. 0.5 = the paper's plain majority;
    /// tuned on validation like the other thresholds in the pipeline.
    vote_threshold: f64,
}

impl IGuardForest {
    /// Autoencoder-guided training (paper §3.2.1): grows `t` guided trees
    /// on Ψ-sub-samples of the benign training set under the teacher.
    pub fn fit(
        data: &[Vec<f32>],
        teacher: &mut dyn Teacher,
        cfg: &IGuardConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!data.is_empty(), "cannot fit on empty data");
        assert!(cfg.n_trees > 0, "need at least one tree");
        assert!(cfg.subsample > 1, "subsample must exceed 1");
        let bounds = feature_bounds(data);
        let psi = cfg.subsample.min(data.len());
        let tree_cfg = GuidedTreeConfig {
            max_depth: (psi as f64).log2().ceil() as usize,
            k_augment: cfg.k_augment,
            tau_split: cfg.tau_split,
            n_candidates: cfg.n_candidates,
        };
        let all: Vec<usize> = (0..data.len()).collect();
        let trees = (0..cfg.n_trees)
            .map(|_| {
                let sample: Vec<usize> = all.choose_multiple(rng, psi).copied().collect();
                GuidedTree::fit(data, &sample, &bounds, teacher, &tree_cfg, rng)
            })
            .collect();
        Self { trees, bounds, distilled: false, vote_threshold: 0.5 }
    }

    /// Knowledge distillation (paper §3.2.2): routes every training sample
    /// through every tree, augments each leaf with points from the leaf's
    /// feature ranges, and labels the leaf with the teacher's vote over
    /// the expected reconstruction errors (Eq. 5–6).
    ///
    /// Deviation from the paper's literal text: augmentation *tops up*
    /// each leaf to `k_augment` samples rather than unconditionally adding
    /// `k_augment`. Synthetic points draw each feature independently, so
    /// they sit far off the benign manifold and carry large reconstruction
    /// errors; added unconditionally they dominate Eq. 5's expectation and
    /// flip leaves that hundreds of real benign samples route to.
    /// Augmentation's role — making *sparse and empty* leaves labelable —
    /// is preserved.
    pub fn distill(
        &mut self,
        data: &[Vec<f32>],
        teacher: &mut dyn Teacher,
        k_augment: usize,
        rng: &mut impl Rng,
    ) {
        for tree in &mut self.trees {
            // Bucket training samples per leaf.
            let mut buckets: Vec<Vec<Vec<f32>>> = vec![Vec::new(); tree.n_leaves()];
            for x in data {
                buckets[tree.leaf_of(x)].push(x.clone());
            }
            for (leaf_id, bucket) in buckets.into_iter().enumerate() {
                let mut set = bucket;
                let top_up = k_augment.saturating_sub(set.len()).max(if set.is_empty() {
                    1
                } else {
                    0
                });
                // Top-up points sample the leaf's *volume* (paper footnote
                // 7's bounds distribution): a sparse leaf whose box is
                // mostly off the benign manifold should read as malicious
                // even though a handful of benign samples routed into it.
                set.extend(augment(&tree.leaves[leaf_id].bounds, top_up, rng));
                tree.leaves[leaf_id].label = Some(teacher.vote_on_set(&set));
            }
        }
        self.distilled = true;
    }

    /// Whether distillation has labelled every leaf.
    pub fn is_distilled(&self) -> bool {
        self.distilled
    }

    /// Vote of leaf labels over the `t` trees: malicious when the
    /// malicious-vote fraction exceeds [`Self::vote_threshold`]
    /// (`label(x) = majority_vote(label_leaf)` at the default 0.5, §3.2.2).
    ///
    /// # Panics
    /// Panics if called before [`Self::distill`].
    pub fn predict(&self, x: &[f32]) -> bool {
        assert!(self.distilled, "predict called before distillation");
        let mal = self
            .trees
            .iter()
            .filter(|t| t.predict(x).expect("undistilled leaf"))
            .count();
        mal >= self.votes_needed()
    }

    /// The smallest malicious-vote count that crosses the vote threshold.
    pub fn votes_needed(&self) -> usize {
        ((self.vote_threshold * self.trees.len() as f64).floor() as usize + 1)
            .min(self.trees.len())
    }

    /// Current vote-fraction threshold.
    pub fn vote_threshold(&self) -> f64 {
        self.vote_threshold
    }

    /// Overrides the vote-fraction threshold (validation tuning). Values
    /// are clamped to [0, 1).
    pub fn set_vote_threshold(&mut self, v: f64) {
        self.vote_threshold = v.clamp(0.0, 0.999_999);
    }

    /// Continuous score: the fraction of trees voting malicious — used for
    /// the AUC metrics.
    pub fn score(&self, x: &[f32]) -> f64 {
        assert!(self.distilled, "score called before distillation");
        let mal = self
            .trees
            .iter()
            .filter(|t| t.predict(x).expect("undistilled leaf"))
            .count();
        mal as f64 / self.trees.len() as f64
    }

    /// Batch predictions.
    pub fn predictions(&self, xs: &[Vec<f32>]) -> Vec<bool> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Batch scores.
    pub fn scores(&self, xs: &[Vec<f32>]) -> Vec<f64> {
        xs.iter().map(|x| self.score(x)).collect()
    }

    /// Global feature bounds seen at fit time.
    pub fn bounds(&self) -> &[(f32, f32)] {
        &self.bounds
    }

    pub fn trees(&self) -> &[GuidedTree] {
        &self.trees
    }

    /// Total leaves across trees (a proxy for model size).
    pub fn total_leaves(&self) -> usize {
        self.trees.iter().map(|t| t.n_leaves()).sum()
    }
}

/// Per-feature (min, max) over a dataset, widened so max is exclusive-safe.
pub fn feature_bounds(data: &[Vec<f32>]) -> Vec<(f32, f32)> {
    assert!(!data.is_empty());
    let dim = data[0].len();
    let mut bounds = vec![(f32::INFINITY, f32::NEG_INFINITY); dim];
    for x in data {
        for (b, &v) in bounds.iter_mut().zip(x) {
            b.0 = b.0.min(v);
            b.1 = b.1.max(v);
        }
    }
    // Widen degenerate / exact bounds slightly so every training point lies
    // strictly inside `[lo, hi)`. The widening must survive f32 rounding
    // even for large constant features (e.g. TTL = 64), so it scales with
    // the magnitude of the bound, not just the span.
    for b in &mut bounds {
        let span = (b.1 - b.0).abs().max(1e-6);
        let mut new_hi = b.1 + span * 1e-3;
        if new_hi <= b.1 {
            new_hi = b.1 + b.1.abs().max(1.0) * 1e-4;
        }
        debug_assert!(new_hi > b.1);
        b.1 = new_hi;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::teacher::OracleTeacher;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};

    fn uniform_data(n: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
        (0..n).map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]).collect()
    }

    fn quick_cfg() -> IGuardConfig {
        IGuardConfig { n_trees: 9, subsample: 128, k_augment: 32, ..Default::default() }
    }

    #[test]
    fn learns_oracle_half_plane() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = uniform_data(512, &mut rng);
        let mut teacher = OracleTeacher(|x: &[f32]| x[0] > 0.55);
        let mut forest = IGuardForest::fit(&data, &mut teacher, &quick_cfg(), &mut rng);
        forest.distill(&data, &mut teacher, 32, &mut rng);
        // Evaluate far from the boundary.
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..200 {
            let x: Vec<f32> = vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
            if (x[0] - 0.55).abs() < 0.1 {
                continue;
            }
            total += 1;
            if forest.predict(&x) == (x[0] > 0.55) {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.9,
            "accuracy {correct}/{total} too low"
        );
    }

    #[test]
    #[should_panic(expected = "before distillation")]
    fn predict_requires_distillation() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = uniform_data(64, &mut rng);
        let mut teacher = OracleTeacher(|_: &[f32]| false);
        let forest = IGuardForest::fit(&data, &mut teacher, &quick_cfg(), &mut rng);
        let _ = forest.predict(&[0.5, 0.5]);
    }

    #[test]
    fn score_is_vote_fraction() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = uniform_data(256, &mut rng);
        let mut teacher = OracleTeacher(|x: &[f32]| x[0] > 0.5);
        let mut forest = IGuardForest::fit(&data, &mut teacher, &quick_cfg(), &mut rng);
        forest.distill(&data, &mut teacher, 16, &mut rng);
        for x in [[0.1f32, 0.5], [0.9, 0.5]] {
            let s = forest.score(&x);
            assert!((0.0..=1.0).contains(&s));
            assert_eq!(forest.predict(&x), s > 0.5);
        }
    }

    #[test]
    fn all_leaves_labelled_after_distill() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = uniform_data(256, &mut rng);
        let mut teacher = OracleTeacher(|x: &[f32]| x[1] > 0.7);
        let mut forest = IGuardForest::fit(&data, &mut teacher, &quick_cfg(), &mut rng);
        forest.distill(&data, &mut teacher, 8, &mut rng);
        for tree in forest.trees() {
            assert!(tree.leaves.iter().all(|l| l.label.is_some()));
        }
    }

    #[test]
    fn feature_bounds_cover_data() {
        let data = vec![vec![1.0f32, -5.0], vec![3.0, 2.0]];
        let b = feature_bounds(&data);
        assert!(b[0].0 <= 1.0 && b[0].1 > 3.0);
        assert!(b[1].0 <= -5.0 && b[1].1 > 2.0);
    }

    #[test]
    fn pure_benign_teacher_gives_single_leaf_trees() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = uniform_data(256, &mut rng);
        let mut teacher = OracleTeacher(|_: &[f32]| false);
        let mut forest = IGuardForest::fit(&data, &mut teacher, &quick_cfg(), &mut rng);
        forest.distill(&data, &mut teacher, 8, &mut rng);
        assert_eq!(forest.total_leaves(), forest.trees().len());
        assert!(!forest.predict(&[0.5, 0.5]));
    }
}
