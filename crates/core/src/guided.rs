//! Autoencoder-guided iTree training (paper §3.2.1).
//!
//! Unlike a conventional iTree (random feature, random split), a guided
//! tree asks the teacher to label the node's samples — augmented with `k`
//! synthetic points drawn from the node's feature ranges (footnote 7:
//! normal with mean = midpoint of the bounds and std = half the range,
//! clipped) — and picks the split maximising information gain (Eq. 2–4).
//! Growth stops when `|X_node| ≤ 1`, depth reaches `⌈log₂ Ψ⌉`, or the
//! teacher-labelled class ratio at the node drops below `τ_split`
//! (the extra criterion that later shrinks the rule table, §4.2.2).

use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;
use iguard_telemetry::{counter, histogram};

use crate::teacher::Teacher;

/// Hyper-parameters of guided tree growth.
#[derive(Clone, Copy, Debug)]
pub struct GuidedTreeConfig {
    /// Depth cap; callers usually pass `⌈log₂ Ψ⌉`.
    pub max_depth: usize,
    /// `k`: augmentation points per node.
    pub k_augment: usize,
    /// `τ_split`: stop when min/max class ratio drops below this
    /// (paper footnote 8: 1e-2 works well).
    pub tau_split: f64,
    /// Candidate split points examined per feature.
    pub n_candidates: usize,
}

impl Default for GuidedTreeConfig {
    fn default() -> Self {
        Self { max_depth: 8, k_augment: 32, tau_split: 1e-2, n_candidates: 8 }
    }
}

/// Arena node of a guided tree.
#[derive(Clone, Debug)]
pub enum GNode {
    /// `x[feature] < split` goes to `left`, else `right` (arena indices).
    Internal { feature: usize, split: f32, left: usize, right: usize },
    /// Terminal node, indexing into [`GuidedTree::leaves`].
    Leaf { leaf_id: usize },
}

/// A terminal region of the tree.
#[derive(Clone, Debug)]
pub struct LeafInfo {
    /// Axis-aligned bounds `[lo, hi)` per feature (the leaf's hypercube).
    pub bounds: Vec<(f32, f32)>,
    /// Distilled label; `None` until knowledge distillation runs.
    pub label: Option<bool>,
    /// Training samples that reached this leaf while growing.
    pub train_count: usize,
    /// Depth of the leaf.
    pub depth: usize,
}

/// One guided isolation tree.
#[derive(Clone, Debug)]
pub struct GuidedTree {
    nodes: Vec<GNode>,
    /// Leaf metadata, indexed by `leaf_id`.
    pub leaves: Vec<LeafInfo>,
}

/// A region either resolves to a single leaf or straddles a split.
pub type RegionResolution = Result<usize, (usize, f32)>;

impl GuidedTree {
    /// Grows a guided tree on `data` restricted to `indices` (the Ψ
    /// sub-sample), within `global_bounds` per feature.
    pub fn fit(
        data: &Dataset,
        indices: &[usize],
        global_bounds: &[(f32, f32)],
        teacher: &dyn Teacher,
        cfg: &GuidedTreeConfig,
        rng: &mut Rng,
    ) -> Self {
        assert!(data.rows() > 0, "cannot fit on empty data");
        assert_eq!(data.cols(), global_bounds.len(), "bounds/feature width mismatch");
        let mut tree = Self { nodes: Vec::new(), leaves: Vec::new() };
        let root = tree.build(data, indices.to_vec(), global_bounds.to_vec(), 0, teacher, cfg, rng);
        debug_assert_eq!(root, 0, "root must be node 0");
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        data: &Dataset,
        indices: Vec<usize>,
        bounds: Vec<(f32, f32)>,
        depth: usize,
        teacher: &dyn Teacher,
        cfg: &GuidedTreeConfig,
        rng: &mut Rng,
    ) -> usize {
        let node_slot = self.nodes.len();
        self.nodes.push(GNode::Leaf { leaf_id: usize::MAX }); // placeholder

        // Hard stopping criteria that need no teacher call.
        if indices.len() <= 1 || depth >= cfg.max_depth {
            return self.seal_leaf(node_slot, bounds, indices.len(), depth);
        }

        // X_decision = X_node ∪ X_aug (manifold-aware blending; see
        // `augment_around` for why pure bounds sampling fails here).
        let mut decision = data.select_rows(&indices);
        for x in augment_around(&decision, &bounds, cfg.k_augment, rng) {
            decision.push_row(&x);
        }
        let labels = teacher.predict(&decision);
        let n_mal = labels.iter().filter(|&&l| l).count();
        let n_ben = labels.len() - n_mal;

        // Skew stopping criterion: min/max < τ_split.
        let ratio = if n_mal.max(n_ben) == 0 {
            0.0
        } else {
            n_mal.min(n_ben) as f64 / n_mal.max(n_ben) as f64
        };
        if ratio < cfg.tau_split {
            return self.seal_leaf(node_slot, bounds, indices.len(), depth);
        }

        // Search (q*, p*) maximising information gain over candidates.
        let parent_h = entropy(n_mal, labels.len());
        let dim = bounds.len();
        let mut best: Option<(usize, f32, f64)> = None;
        for q in 0..dim {
            for p in split_candidates(&decision, q, cfg.n_candidates) {
                counter!("core.guided.split_candidates").inc();
                let (mut lm, mut ln, mut rm, mut rn) = (0usize, 0usize, 0usize, 0usize);
                for (x, &mal) in decision.iter_rows().zip(&labels) {
                    if x[q] < p {
                        ln += 1;
                        if mal {
                            lm += 1;
                        }
                    } else {
                        rn += 1;
                        if mal {
                            rm += 1;
                        }
                    }
                }
                if ln == 0 || rn == 0 {
                    continue;
                }
                let w_left = ln as f64 / labels.len() as f64;
                let child_h = w_left * entropy(lm, ln) + (1.0 - w_left) * entropy(rm, rn);
                let gain = parent_h - child_h;
                if gain > best.map_or(0.0, |(_, _, g)| g) {
                    best = Some((q, p, gain));
                }
            }
        }

        let Some((q, p, _gain)) = best else {
            // No split improves purity: terminal.
            return self.seal_leaf(node_slot, bounds, indices.len(), depth);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| data[(i, q)] < p);
        // Degenerate partitions of the *training* samples still recurse —
        // the children cover distinct regions of augmented space — but an
        // empty side gets an empty index set and terminates immediately.
        let mut left_bounds = bounds.clone();
        left_bounds[q].1 = p;
        let mut right_bounds = bounds;
        right_bounds[q].0 = p;
        let left = self.build(data, left_idx, left_bounds, depth + 1, teacher, cfg, rng);
        let right = self.build(data, right_idx, right_bounds, depth + 1, teacher, cfg, rng);
        self.nodes[node_slot] = GNode::Internal { feature: q, split: p, left, right };
        node_slot
    }

    fn seal_leaf(
        &mut self,
        node_slot: usize,
        bounds: Vec<(f32, f32)>,
        train_count: usize,
        depth: usize,
    ) -> usize {
        let leaf_id = self.leaves.len();
        counter!("core.guided.leaves").inc();
        histogram!("core.guided.leaf_depth").record(depth as u64);
        self.leaves.push(LeafInfo { bounds, label: None, train_count, depth });
        self.nodes[node_slot] = GNode::Leaf { leaf_id };
        node_slot
    }

    /// The leaf a sample routes to.
    pub fn leaf_of(&self, x: &[f32]) -> usize {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                GNode::Leaf { leaf_id } => return *leaf_id,
                GNode::Internal { feature, split, left, right } => {
                    idx = if x[*feature] < *split { *left } else { *right };
                }
            }
        }
    }

    /// Distilled label of the leaf `x` routes to; `None` before distillation.
    pub fn predict(&self, x: &[f32]) -> Option<bool> {
        self.leaves[self.leaf_of(x)].label
    }

    /// All split points on `feature`, ascending.
    pub fn boundaries(&self, feature: usize) -> Vec<f32> {
        let mut out: Vec<f32> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                GNode::Internal { feature: f, split, .. } if *f == feature => Some(*split),
                _ => None,
            })
            .collect();
        out.sort_by(|a, b| a.total_cmp(b));
        out.dedup();
        out
    }

    /// Resolves an axis-aligned region `[lo, hi)` to a single leaf, or
    /// reports the first straddling split `(feature, split)` — the
    /// primitive behind whitelist-rule generation.
    pub fn resolve_region(&self, lo: &[f32], hi: &[f32]) -> RegionResolution {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                GNode::Leaf { leaf_id } => return Ok(*leaf_id),
                GNode::Internal { feature, split, left, right } => {
                    if hi[*feature] <= *split {
                        idx = *left;
                    } else if lo[*feature] >= *split {
                        idx = *right;
                    } else {
                        return Err((*feature, *split));
                    }
                }
            }
        }
    }

    pub fn n_leaves(&self) -> usize {
        self.leaves.len()
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Binary entropy of `mal` positives among `total` (paper Eq. 2).
pub fn entropy(mal: usize, total: usize) -> f64 {
    if total == 0 || mal == 0 || mal == total {
        return 0.0;
    }
    let p = mal as f64 / total as f64;
    -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
}

/// Bounds-cloud augmentation: `k` points ~ Normal(midpoint, range/2) per
/// feature, clipped to the bounds (paper footnote 7). Features are drawn
/// independently.
pub fn augment(bounds: &[(f32, f32)], k: usize, rng: &mut Rng) -> Vec<Vec<f32>> {
    (0..k)
        .map(|_| {
            bounds
                .iter()
                .map(|&(lo, hi)| {
                    let mean = 0.5 * (lo + hi);
                    let std = 0.5 * (hi - lo);
                    if std <= 0.0 {
                        return lo;
                    }
                    let g = rng.normal();
                    (mean + std * g as f32).clamp(lo, hi)
                })
                .collect()
        })
        .collect()
}

/// Manifold-aware augmentation: each point is a real node sample jittered
/// by Gaussian noise scaled to the node data's own per-feature spread,
/// with a log-uniform excursion multiplier in `[1/4, 4]`.
///
/// Why not pure bounds sampling? Flow features obey hard internal
/// constraints (min ≤ mean ≤ max packet size, count·mean ≈ total bytes),
/// so independently-drawn feature vectors are *all* infeasible and the
/// teacher labels the entire cloud malicious — zero entropy gradient, and
/// the information-gain search degenerates (measured: 2000/2000 of the
/// bounds cloud flagged). Local jitter instead surrounds the node's data
/// with an inner shell the teacher calls benign and an outer shell it
/// calls malicious, so the information-gain search places cuts exactly
/// where the teacher's boundary hugs the data — which is what distilling
/// the teacher into axis-aligned boxes requires. Falls back to [`augment`]
/// when the node holds no real samples.
pub fn augment_around(
    samples: &Dataset,
    bounds: &[(f32, f32)],
    k: usize,
    rng: &mut Rng,
) -> Vec<Vec<f32>> {
    if samples.rows() == 0 {
        return augment(bounds, k, rng);
    }
    let dim = bounds.len();
    // Per-feature std of the node's samples; degenerate features fall back
    // to a sliver of the node's bound range.
    let mut mean = vec![0.0f64; dim];
    for s in samples.iter_rows() {
        for (m, &v) in mean.iter_mut().zip(s.iter()) {
            *m += v as f64;
        }
    }
    for m in &mut mean {
        *m /= samples.rows() as f64;
    }
    let mut sigma = vec![0.0f64; dim];
    for s in samples.iter_rows() {
        for ((sg, &v), m) in sigma.iter_mut().zip(s.iter()).zip(&mean) {
            let d = v as f64 - m;
            *sg += d * d;
        }
    }
    for (sg, &(lo, hi)) in sigma.iter_mut().zip(bounds) {
        *sg = (*sg / samples.rows() as f64).sqrt();
        if *sg <= 0.0 {
            *sg = ((hi - lo) as f64 / 20.0).max(1e-9);
        }
    }
    (0..k)
        .map(|_| {
            let base = samples.row(rng.gen_range(0..samples.rows()));
            // Log-uniform excursion: 2^U(-2, 2) ∈ [1/4, 4].
            let scale = 2f64.powf(rng.gen_range(-2.0..2.0));
            base.iter()
                .zip(bounds)
                .zip(&sigma)
                .map(|((&x, &(lo, hi)), &sg)| {
                    let jitter = (rng.normal() * sg * scale) as f32;
                    (x + jitter).clamp(lo, hi.max(lo))
                })
                .collect()
        })
        .collect()
}

/// Candidate split points for feature `q`: midpoints between evenly spaced
/// order statistics of the decision set (capped at `n_candidates`).
fn split_candidates(decision: &Dataset, q: usize, n_candidates: usize) -> Vec<f32> {
    let mut vals: Vec<f32> = decision.iter_rows().map(|x| x[q]).collect();
    vals.sort_by(|a, b| a.total_cmp(b));
    vals.dedup();
    if vals.len() < 2 {
        return Vec::new();
    }
    let n = (vals.len() - 1).min(n_candidates);
    (1..=n)
        .map(|i| {
            let pos = i * (vals.len() - 1) / (n + 1).max(1);
            let pos = pos.min(vals.len() - 2);
            0.5 * (vals[pos] + vals[pos + 1])
        })
        .filter(|p| p.is_finite())
        .collect::<Vec<f32>>()
        .into_iter()
        .fold(Vec::new(), |mut acc, p| {
            if acc.last() != Some(&p) {
                acc.push(p);
            }
            acc
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::teacher::OracleTeacher;
    use iguard_runtime::rng::Rng;

    fn bounds2() -> Vec<(f32, f32)> {
        vec![(0.0, 1.0), (0.0, 1.0)]
    }

    fn uniform2(n: usize, rng: &mut Rng) -> Dataset {
        let mut d = Dataset::new(2);
        for _ in 0..n {
            d.push_row(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
        }
        d
    }

    /// Benign = left half plane; oracle teacher knows it.
    #[test]
    fn guided_tree_finds_oracle_boundary() {
        let mut rng = Rng::seed_from_u64(1);
        let data = uniform2(256, &mut rng);
        let indices: Vec<usize> = (0..data.rows()).collect();
        let teacher = OracleTeacher(|x: &[f32]| x[0] > 0.5);
        let cfg = GuidedTreeConfig { max_depth: 8, k_augment: 64, ..Default::default() };
        let tree = GuidedTree::fit(&data, &indices, &bounds2(), &teacher, &cfg, &mut rng);
        // The tree should split (near) x0 = 0.5 at the root region.
        let splits = tree.boundaries(0);
        assert!(splits.iter().any(|s| (s - 0.5).abs() < 0.15), "no split near 0.5: {splits:?}");
        // Samples on either side of the oracle boundary go to different leaves.
        assert_ne!(tree.leaf_of(&[0.1, 0.5]), tree.leaf_of(&[0.9, 0.5]));
    }

    #[test]
    fn skew_stops_growth_for_pure_regions() {
        let mut rng = Rng::seed_from_u64(2);
        // Teacher says everything benign: τ_split stops at the root.
        let data = uniform2(128, &mut rng);
        let indices: Vec<usize> = (0..data.rows()).collect();
        let teacher = OracleTeacher(|_: &[f32]| false);
        let tree = GuidedTree::fit(
            &data,
            &indices,
            &bounds2(),
            &teacher,
            &GuidedTreeConfig::default(),
            &mut rng,
        );
        assert_eq!(tree.n_leaves(), 1, "pure data should yield a single leaf");
    }

    #[test]
    fn depth_cap_is_respected() {
        let mut rng = Rng::seed_from_u64(3);
        let data = uniform2(512, &mut rng);
        let indices: Vec<usize> = (0..data.rows()).collect();
        // Checkerboard oracle forces deep splitting; cap must hold.
        let teacher =
            OracleTeacher(|x: &[f32]| ((x[0] * 8.0) as i32 + (x[1] * 8.0) as i32) % 2 == 0);
        let cfg = GuidedTreeConfig { max_depth: 4, k_augment: 16, ..Default::default() };
        let tree = GuidedTree::fit(&data, &indices, &bounds2(), &teacher, &cfg, &mut rng);
        assert!(tree.leaves.iter().all(|l| l.depth <= 4));
    }

    #[test]
    fn leaf_bounds_partition_space() {
        let mut rng = Rng::seed_from_u64(4);
        let data = uniform2(256, &mut rng);
        let indices: Vec<usize> = (0..data.rows()).collect();
        let teacher = OracleTeacher(|x: &[f32]| x[0] + x[1] > 1.0);
        let tree = GuidedTree::fit(
            &data,
            &indices,
            &bounds2(),
            &teacher,
            &GuidedTreeConfig::default(),
            &mut rng,
        );
        // Every probe point lands in exactly one leaf whose bounds contain it.
        for _ in 0..200 {
            let x = [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
            let leaf = &tree.leaves[tree.leaf_of(&x)];
            for (v, &(lo, hi)) in x.iter().zip(&leaf.bounds) {
                assert!(*v >= lo && *v < hi || (*v == hi && hi == 1.0));
            }
        }
    }

    #[test]
    fn resolve_region_matches_leaf_of() {
        let mut rng = Rng::seed_from_u64(5);
        let data = uniform2(256, &mut rng);
        let indices: Vec<usize> = (0..data.rows()).collect();
        let teacher = OracleTeacher(|x: &[f32]| x[1] > 0.6);
        let tree = GuidedTree::fit(
            &data,
            &indices,
            &bounds2(),
            &teacher,
            &GuidedTreeConfig::default(),
            &mut rng,
        );
        // A tiny region around a point resolves to that point's leaf.
        let x = [0.3f32, 0.3];
        let eps = 1e-5f32;
        let lo = [x[0] - eps, x[1] - eps];
        let hi = [x[0] + eps, x[1] + eps];
        match tree.resolve_region(&lo, &hi) {
            Ok(leaf) => assert_eq!(leaf, tree.leaf_of(&x)),
            Err(_) => {} // x happens to lie on a boundary — acceptable
        }
        // The whole space straddles if the tree split at all.
        if tree.n_leaves() > 1 {
            assert!(tree.resolve_region(&[0.0, 0.0], &[1.0, 1.0]).is_err());
        }
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(0, 10), 0.0);
        assert_eq!(entropy(10, 10), 0.0);
        assert!((entropy(5, 10) - 1.0).abs() < 1e-12);
        assert_eq!(entropy(0, 0), 0.0);
    }

    #[test]
    fn augment_respects_bounds() {
        let mut rng = Rng::seed_from_u64(6);
        let bounds = vec![(0.2f32, 0.4), (10.0, 10.0)];
        for x in augment(&bounds, 100, &mut rng) {
            assert!((0.2..=0.4).contains(&x[0]));
            assert_eq!(x[1], 10.0); // degenerate range collapses to lo
        }
    }

    #[test]
    fn split_candidates_sorted_within_range() {
        let decision =
            Dataset::from_rows(&(0..50).map(|i| vec![i as f32 / 50.0]).collect::<Vec<_>>());
        let cands = split_candidates(&decision, 0, 8);
        assert!(!cands.is_empty() && cands.len() <= 8);
        assert!(cands.windows(2).all(|w| w[0] < w[1]));
        assert!(cands.iter().all(|&p| p > 0.0 && p < 1.0));
    }
}
