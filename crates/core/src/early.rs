//! The early-packet model (paper §3.3.1, "Early packets are ignored").
//!
//! Flow-level features only become reliable at the packet-count threshold
//! `n`, so the first packets of a flow would go unchecked — early malicious
//! packets could flood the network. The paper's fix: train a *conventional*
//! iForest on the **packet-level features of first packets** (destination
//! port, protocol, packet length, TTL), compile it to whitelist rules, and
//! install those alongside the flow-level rules. Early packets then match
//! the PL table while the flow table warms up.

use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;

use iguard_iforest::{IsolationForest, IsolationForestConfig};

use crate::forest::feature_bounds;
use crate::rules::{RuleGenError, RuleSet};

/// The trained early-packet model: a PL-feature iForest and its compiled
/// whitelist rules.
pub struct EarlyModel {
    forest: IsolationForest,
    /// Compiled packet-level whitelist rules.
    pub rules: RuleSet,
}

impl EarlyModel {
    /// Trains on the packet-level features of benign flows' early packets
    /// and compiles the whitelist immediately.
    pub fn train(
        pl_features: &Dataset,
        cfg: &IsolationForestConfig,
        max_regions: usize,
        rng: &mut Rng,
    ) -> Result<Self, RuleGenError> {
        if pl_features.rows() == 0 {
            return Err(RuleGenError::EmptyTrainingSet);
        }
        let forest = IsolationForest::fit(pl_features, cfg, rng);
        let bounds = feature_bounds(pl_features);
        let rules = RuleSet::from_iforest(&forest, &bounds, max_regions)?;
        Ok(Self { forest, rules })
    }

    /// Rule-table verdict for one packet's PL features
    /// (`true` = malicious).
    pub fn predict(&self, pl: &[f32]) -> bool {
        self.rules.predict(pl)
    }

    /// The verdict of the underlying forest (for consistency checks).
    pub fn forest_predict(&self, pl: &[f32]) -> bool {
        self.forest.predict(pl)
    }

    /// Number of compiled whitelist rules.
    pub fn n_rules(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_runtime::rng::Rng;

    /// Benign PL features: web-ish ports, per-port size clusters, TTL 64.
    /// Sizes are bimodal (small requests, large payloads) leaving a gap in
    /// the middle — the kind of sparse region an iForest isolates fast.
    fn benign_pl(n: usize, rng: &mut Rng) -> Dataset {
        let mut d = Dataset::new(4);
        for _ in 0..n {
            let port = [53.0f32, 443.0, 8883.0][rng.gen_range(0..3)];
            let size = if rng.gen_bool(0.5) {
                rng.gen_range(60.0..180.0)
            } else {
                rng.gen_range(900.0..1300.0)
            };
            d.push_row(&[port, if port == 53.0 { 17.0 } else { 6.0 }, size, 64.0]);
        }
        d
    }

    #[test]
    fn early_model_flags_gap_packets() {
        let mut rng = Rng::seed_from_u64(1);
        let train = benign_pl(512, &mut rng);
        // A conventional iForest separates gap anomalies only weakly (the
        // paper's motivation); an aggressive contamination keeps them on
        // the malicious side of the threshold.
        let cfg = IsolationForestConfig { n_trees: 25, subsample: 128, contamination: 0.2 };
        let model = EarlyModel::train(&train, &cfg, 500_000, &mut rng).unwrap();
        assert!(model.n_rules() > 0);
        // Probe in both the port gap and the size gap: no benign early
        // packet looks like this.
        let mut hits = 0;
        for _ in 0..50 {
            let pl = vec![5000.0, 6.0, rng.gen_range(480.0..620.0), 64.0];
            if model.predict(&pl) {
                hits += 1;
            }
        }
        assert!(hits >= 30, "gap probes detected {hits}/50");
        // And the detection rate must exceed the benign false-positive rate.
        let fps = benign_pl(50, &mut rng).iter_rows().filter(|x| model.predict(x)).count();
        assert!(hits > fps, "gap hits {hits} <= benign FPs {fps}");
    }

    #[test]
    fn early_model_passes_benign_packets() {
        let mut rng = Rng::seed_from_u64(2);
        let train = benign_pl(512, &mut rng);
        let cfg = IsolationForestConfig { n_trees: 15, subsample: 64, contamination: 0.02 };
        let model = EarlyModel::train(&train, &cfg, 500_000, &mut rng).unwrap();
        let test = benign_pl(100, &mut rng);
        let fps = test.iter_rows().filter(|x| model.predict(x)).count();
        assert!(fps < 15, "{fps}/100 benign early packets flagged");
    }

    #[test]
    fn empty_training_set_is_a_typed_error_not_a_panic() {
        let mut rng = Rng::seed_from_u64(4);
        let empty = Dataset::new(4);
        let cfg = IsolationForestConfig { n_trees: 5, subsample: 16, contamination: 0.05 };
        let err = match EarlyModel::train(&empty, &cfg, 500_000, &mut rng) {
            Err(e) => e,
            Ok(_) => panic!("empty training set must not produce a model"),
        };
        assert_eq!(err, RuleGenError::EmptyTrainingSet);
    }

    #[test]
    fn rules_consistent_with_forest() {
        let mut rng = Rng::seed_from_u64(3);
        let train = benign_pl(256, &mut rng);
        let cfg = IsolationForestConfig { n_trees: 10, subsample: 64, contamination: 0.05 };
        let model = EarlyModel::train(&train, &cfg, 500_000, &mut rng).unwrap();
        let mut agree = 0;
        let n = 300;
        for x in benign_pl(n, &mut rng).iter_rows() {
            if model.predict(x) == model.forest_predict(x) {
                agree += 1;
            }
        }
        assert!(agree as f64 / n as f64 > 0.98, "consistency {agree}/{n}");
    }
}
