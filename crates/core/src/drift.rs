//! Controller-side drift detection over the digest stream.
//!
//! The paper trains the whitelist once and installs it forever, but
//! ROADMAP names online drift adaptation as an open item (pForest's
//! phase-aware retraining and Genos's incremental updates make the same
//! argument): as traffic shifts, the fraction of flow digests the forest
//! labels malicious drifts away from what it was when the installed
//! generation was validated — benign traffic starts falling outside the
//! whitelist (false-positive inflation) or the malicious mix changes.
//!
//! [`DriftDetector`] watches exactly the signal the controller already
//! receives for free — the per-digest malicious bit — and fires when the
//! rolling-window malicious fraction moves more than
//! [`DriftConfig::threshold`] away from a frozen **reference** fraction
//! captured right after (re)deployment. Firing starts a cooldown and
//! re-baselines once the cooldown drains — by then the window reflects
//! the settled new regime — so one regime change produces one retrain
//! trigger, not a trigger per digest.
//!
//! The detector is deliberately free of randomness and clocks: its state
//! is a fixed-size ring of label bits plus a few counters, so identical
//! digest streams produce identical trigger points on any backend, worker
//! count, or replay — the same determinism contract as the rest of the
//! pipeline.

use std::collections::VecDeque;

use iguard_telemetry::counter;

/// Tuning knobs of the [`DriftDetector`].
#[derive(Clone, Copy, Debug)]
pub struct DriftConfig {
    /// Rolling-window length, in digests.
    pub window: usize,
    /// Observations required before the reference fraction is frozen and
    /// detection arms (also the minimum fill before any verdict).
    pub min_samples: usize,
    /// Absolute malicious-fraction shift (vs. the reference) that fires.
    pub threshold: f64,
    /// Observations ignored after a fire before detection re-arms —
    /// covers the retrain + swap round-trip so one regime change cannot
    /// fire twice.
    pub cooldown: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self { window: 512, min_samples: 256, threshold: 0.15, cooldown: 512 }
    }
}

iguard_runtime::builder_setters! { DriftConfig =>
    /// Builder: rolling-window length in digests.
    with_window => window: usize,
    /// Builder: observations required before detection arms.
    with_min_samples => min_samples: usize,
    /// Builder: absolute malicious-fraction shift that fires.
    with_threshold => threshold: f64,
    /// Builder: post-fire cooldown in observations.
    with_cooldown => cooldown: u64,
}

/// Rolling-window shift detector over digest labels — see the module docs.
#[derive(Clone, Debug)]
pub struct DriftDetector {
    cfg: DriftConfig,
    ring: VecDeque<bool>,
    mal_in_window: usize,
    /// Malicious fraction frozen at arm time (and re-frozen at each fire).
    reference: Option<f64>,
    observed: u64,
    cooldown_left: u64,
    fired: u64,
}

impl DriftDetector {
    pub fn new(cfg: DriftConfig) -> Self {
        assert!(cfg.window >= 1, "drift window must hold at least one digest");
        assert!(cfg.min_samples >= 1, "need at least one sample before arming");
        assert!(cfg.threshold > 0.0, "a zero threshold would fire on noise");
        Self {
            ring: VecDeque::with_capacity(cfg.window),
            cfg,
            mal_in_window: 0,
            reference: None,
            observed: 0,
            cooldown_left: 0,
            fired: 0,
        }
    }

    /// Feeds one digest label; returns `true` when this observation fires
    /// the drift trigger (at most once per cooldown period).
    pub fn observe(&mut self, malicious: bool) -> bool {
        self.observed += 1;
        counter!("core.drift.observed").inc();
        if self.ring.len() == self.cfg.window {
            if self.ring.pop_front().expect("non-empty ring") {
                self.mal_in_window -= 1;
            }
        }
        self.ring.push_back(malicious);
        if malicious {
            self.mal_in_window += 1;
        }

        if self.ring.len() < self.cfg.min_samples.min(self.cfg.window) {
            return false;
        }
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return false;
        }
        let frac = self.window_fraction();
        let Some(reference) = self.reference else {
            // First armed observation after deployment (or after a fire's
            // cooldown drained): freeze the baseline. With `cooldown >=
            // window` the ring fully reflects the settled regime by now,
            // not the mid-transition mix at fire time.
            self.reference = Some(frac);
            return false;
        };
        if (frac - reference).abs() > self.cfg.threshold {
            self.fired += 1;
            counter!("core.drift.fired").inc();
            self.reference = None;
            self.cooldown_left = self.cfg.cooldown;
            return true;
        }
        false
    }

    /// Malicious fraction of the current window (0 when empty).
    pub fn window_fraction(&self) -> f64 {
        if self.ring.is_empty() {
            return 0.0;
        }
        self.mal_in_window as f64 / self.ring.len() as f64
    }

    /// The frozen reference fraction, once armed.
    pub fn reference(&self) -> Option<f64> {
        self.reference
    }

    /// Total digests observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Drift triggers fired so far.
    pub fn fires(&self) -> u64 {
        self.fired
    }

    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DriftConfig {
        DriftConfig::default().with_window(100).with_min_samples(50).with_threshold(0.2)
    }

    #[test]
    fn stable_stream_never_fires() {
        let mut d = DriftDetector::new(cfg());
        for i in 0..10_000u32 {
            // Steady 10% malicious mix.
            assert!(!d.observe(i % 10 == 0));
        }
        assert_eq!(d.fires(), 0);
        let reference = d.reference().expect("armed");
        assert!((reference - 0.1).abs() < 0.05, "reference {reference} far from mix");
    }

    #[test]
    fn regime_change_fires_exactly_once() {
        let mut d = DriftDetector::new(cfg());
        for _ in 0..1_000 {
            d.observe(false);
        }
        // Shift to an all-malicious regime: one trigger, then cooldown.
        let fires: u32 = (0..1_000).map(|_| d.observe(true) as u32).sum();
        assert_eq!(fires, 1);
        assert_eq!(d.fires(), 1);
        // Reference re-froze at the new regime, so staying there is quiet.
        assert!(d.reference().expect("re-frozen") > 0.2);
    }

    #[test]
    fn refires_after_cooldown_on_second_shift() {
        let mut d = DriftDetector::new(cfg().with_cooldown(100));
        for _ in 0..500 {
            d.observe(false);
        }
        assert_eq!((0..500).map(|_| d.observe(true) as u32).sum::<u32>(), 1);
        // Second regime change, after the cooldown has drained.
        assert_eq!((0..500).map(|_| d.observe(false) as u32).sum::<u32>(), 1);
        assert_eq!(d.fires(), 2);
    }

    #[test]
    fn does_not_arm_before_min_samples() {
        let mut d = DriftDetector::new(cfg());
        for _ in 0..49 {
            assert!(!d.observe(true));
            assert!(d.reference().is_none());
        }
        d.observe(true);
        assert!(d.reference().is_some());
    }

    #[test]
    fn identical_streams_fire_at_identical_points() {
        let run = || {
            let mut d = DriftDetector::new(cfg());
            (0..2_000u32).map(|i| d.observe(i > 700 && i % 3 != 0)).collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }
}
