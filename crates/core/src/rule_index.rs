//! Compiled rule index: sublinear first-match lookup over axis-aligned
//! rule sets.
//!
//! Both whitelist representations in this workspace — float
//! [`Hypercube`](crate::rules::Hypercube) rules and the quantized TCAM
//! range entries in `iguard-switch` — are conjunctions of per-dimension
//! intervals resolved by a priority-ordered linear scan. That scan is
//! `O(rules · dims)` per key. This module compiles the same rules into a
//! per-dimension **interval table**: the distinct cut points of all rules,
//! sorted, where each of the `cuts + 1` elementary intervals carries a
//! bitmap (rows of `u64` words) of the rules covering it. A lookup is one
//! binary search per dimension plus a word-wise AND across dimensions; the
//! first set bit of the surviving bitmap is the first-match rule. Cost:
//! `O(dims · log cuts + dims · rules/64)` — sublinear in practice because
//! the AND runs 64 rules per word and exits early on an all-zero
//! intersection.
//!
//! The index is **exact**: it returns the identical rule (or miss) as the
//! linear scan on every key, including NaN components (always a miss, as
//! IEEE comparison dictates), signed zeros (`-0.0` and `+0.0` compare
//! equal and are normalised to one cut), and infinite rule bounds. The cut
//! domain is `u64`; float bounds enter through [`ord_key`], a monotone
//! bijection from non-NaN `f32` onto an integer order, so every float
//! comparison carries over to integer comparison exactly. The quantized
//! TCAM index in `iguard-switch` uses field values as cuts directly.

use iguard_telemetry::counter;

/// Maps a non-NaN `f32` onto `u64` such that `a < b ⇔ ord_key(a) <
/// ord_key(b)` (with `-0.0` and `+0.0` mapped to the same key, matching
/// IEEE `==`). The usual sign-flip trick: negative floats have their bits
/// inverted, positive floats get the sign bit set, which linearises the
/// two monotone halves of the IEEE encoding.
///
/// NaN is the caller's problem: rule bounds containing NaN make the rule
/// empty, key components containing NaN make the lookup a miss — both are
/// handled before any key is formed.
#[inline]
pub fn ord_key(v: f32) -> u64 {
    debug_assert!(!v.is_nan(), "NaN must be filtered before ordering");
    // Branchless on purpose — this runs inside the batch probe's key
    // conversion loop, which vectorises only if every lane is straight
    // arithmetic. `+ 0.0` collapses -0.0 onto +0.0 (IEEE: -0.0 + 0.0 =
    // +0.0, x + 0.0 = x otherwise); the XOR mask inverts negative
    // payloads and sets the sign bit of positive ones in one expression.
    let b = (v + 0.0).to_bits() as i32;
    let u = (b as u32) ^ (((b >> 31) as u32) | 0x8000_0000);
    u as u64
}

/// One dimension of the index: sorted distinct cut points and, for each of
/// the `cuts.len() + 1` elementary intervals, a bitmap row of the rules
/// covering that interval.
#[derive(Clone, Debug)]
struct DimIntervals {
    cuts: Vec<u64>,
    /// `(cuts.len() + 1) * words` words; row `i` covers keys `k` with
    /// `cuts[i-1] <= k < cuts[i]` (row 0: `k < cuts[0]`; last row:
    /// `k >= cuts[last]`).
    rows: Vec<u64>,
    /// `cuts` narrowed to `u32` when every cut fits (always true for
    /// [`ord_key`] cuts, whose range is `u32`); empty otherwise. The
    /// batch probe's cut-major count runs on this homogeneous `u32`
    /// form — compare, add, and accumulator all one lane width, twice
    /// the SIMD lanes of the `u64` domain.
    cuts32: Vec<u32>,
}

/// A compiled interval index over `u64` cut keys. Build with
/// [`IndexBuilder`]; bit positions are assigned in push order, and
/// [`IntervalIndex::lookup_with`] returns the lowest set bit — so pushing
/// rules in priority order makes the result the first match.
#[derive(Clone, Debug)]
pub struct IntervalIndex {
    dims: Vec<DimIntervals>,
    words: usize,
    n_rules: usize,
}

/// Accumulates per-rule, per-dimension half-open cut ranges `[lo, hi)`
/// before compiling them into an [`IntervalIndex`].
pub struct IndexBuilder {
    n_dims: usize,
    /// One entry per pushed rule; `None` marks a rule that can never match
    /// (empty in some dimension) — it keeps its bit position but sets no
    /// interval bits and contributes no cuts.
    rules: Vec<Option<Vec<(u64, u64)>>>,
}

impl IndexBuilder {
    pub fn new(n_dims: usize) -> Self {
        Self { n_dims, rules: Vec::new() }
    }

    /// Adds the next rule (bit position = call order). `bounds[d]` is the
    /// half-open `[lo, hi)` the rule covers in cut space; a rule with
    /// `lo >= hi` in any dimension is empty and will never match.
    pub fn push_rule(&mut self, bounds: &[(u64, u64)]) {
        assert_eq!(bounds.len(), self.n_dims, "one bound pair per dimension");
        if bounds.iter().any(|&(lo, hi)| lo >= hi) {
            self.rules.push(None);
        } else {
            self.rules.push(Some(bounds.to_vec()));
        }
    }

    pub fn finish(self) -> IntervalIndex {
        let n_rules = self.rules.len();
        let words = n_rules.div_ceil(64);
        let mut dims = Vec::with_capacity(self.n_dims);
        for d in 0..self.n_dims {
            let mut cuts: Vec<u64> =
                self.rules.iter().flatten().flat_map(|r| [r[d].0, r[d].1]).collect();
            cuts.sort_unstable();
            cuts.dedup();
            let mut rows = vec![0u64; (cuts.len() + 1) * words];
            for (bit, rule) in self.rules.iter().enumerate() {
                let Some(rule) = rule else { continue };
                let (lo, hi) = rule[d];
                // `lo` and `hi` are both cuts: the rule covers the
                // elementary intervals strictly after `lo`'s row up to and
                // including `hi`'s row.
                let first = cuts.partition_point(|&c| c <= lo);
                let last = cuts.partition_point(|&c| c < hi);
                debug_assert!(first <= last);
                for iv in first..=last {
                    rows[iv * words + bit / 64] |= 1u64 << (bit % 64);
                }
            }
            let cuts32 = if cuts.iter().all(|&c| c <= u32::MAX as u64) {
                cuts.iter().map(|&c| c as u32).collect()
            } else {
                Vec::new()
            };
            dims.push(DimIntervals { cuts, rows, cuts32 });
        }
        IntervalIndex { dims, words, n_rules }
    }
}

/// Caller-owned scratch for [`IntervalIndex::lookup_batch_with`]: the
/// row-major `rows × words` AND accumulator and the dimension-major
/// cut-space key buffer, reused across batches so the probe loop never
/// allocates.
#[derive(Clone, Debug, Default)]
pub struct BatchScratch {
    acc: Vec<u64>,
    /// Dimension-major elementary-interval indices (`dims × rows`) of the
    /// register-resident fast path.
    iv: Vec<u32>,
    /// One dimension's cut-space keys, materialised (and clamped to
    /// `u32`) so the interval count can run cut-major over a contiguous
    /// buffer.
    keys: Vec<u32>,
}

/// Cut arrays up to this length resolve by branchless linear count in the
/// batch probe (vectorises, no cross-row dependency); longer arrays use
/// the run-amortised binary search. Break-even sits around one cache line
/// of cuts per SIMD lane-width comparison vs `log2(n)` mispredictable
/// branches.
const LINEAR_CUT_SCAN_MAX: usize = 64;

/// Rule sets up to `64 × REG_WORDS_MAX` rules run the batch AND pass with
/// the whole accumulator in registers (a fixed-size array the compiler
/// keeps out of memory); wider sets fall back to the row-major scratch
/// block.
const REG_WORDS_MAX: usize = 4;

/// Run-amortised interval search: resolves cut-space key `k` to its
/// elementary-interval index, reusing the previous `(key, interval)` pair
/// of this dimension. Batch keys arrive in whatever row order the caller
/// produced, but real traffic repeats values (ports, protocols, quantized
/// buckets), so equal neighbours cost nothing and near neighbours search
/// only the cut run between the two keys instead of the full cut array.
#[inline]
fn run_interval(cuts: &[u64], prev: &mut Option<(u64, usize)>, k: u64) -> usize {
    let iv = match *prev {
        Some((pk, piv)) if k == pk => piv,
        // Key moved up: the answer is at or after the previous interval,
        // so search only the suffix run.
        Some((pk, piv)) if k > pk => piv + cuts[piv..].partition_point(|&c| c <= k),
        // Key moved down: every cut past `piv` exceeds the previous key
        // (and hence `k`), so the prefix search is exact.
        Some((_, piv)) => cuts[..piv].partition_point(|&c| c <= k),
        None => cuts.partition_point(|&c| c <= k),
    };
    debug_assert_eq!(iv, cuts.partition_point(|&c| c <= k));
    *prev = Some((k, iv));
    iv
}

impl IntervalIndex {
    pub fn n_rules(&self) -> usize {
        self.n_rules
    }

    /// Total cut points across dimensions (a size measure for reporting).
    pub fn total_cuts(&self) -> usize {
        self.dims.iter().map(|d| d.cuts.len()).sum()
    }

    /// First-match lookup: `key(d)` supplies the cut-space key for
    /// dimension `d`. Returns the lowest bit position whose rule covers
    /// the key in every dimension. `scratch` is the caller-owned AND
    /// accumulator (resized to the word count on every call), so the hot
    /// path allocates nothing.
    pub fn lookup_with(&self, scratch: &mut Vec<u64>, key: impl Fn(usize) -> u64) -> Option<u32> {
        if self.n_rules == 0 {
            return None;
        }
        scratch.clear();
        scratch.resize(self.words, !0u64);
        // Bits past n_rules never belong to a rule; mask them off so the
        // early-exit test below sees a true all-zero intersection.
        let tail = self.n_rules % 64;
        if tail != 0 {
            scratch[self.words - 1] = (1u64 << tail) - 1;
        }
        for (d, dim) in self.dims.iter().enumerate() {
            let k = key(d);
            let iv = dim.cuts.partition_point(|&c| c <= k);
            let row = &dim.rows[iv * self.words..(iv + 1) * self.words];
            let mut any = 0u64;
            for (w, &r) in scratch.iter_mut().zip(row) {
                *w &= r;
                any |= *w;
            }
            if any == 0 {
                return None;
            }
        }
        scratch
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(wi, &w)| (wi * 64) as u32 + w.trailing_zeros())
    }

    /// Columnar batch lookup: resolves `n` keys at once, dimension-major.
    /// `key(d, i)` supplies the cut-space key of row `i` in dimension `d`;
    /// `out` receives one first-match answer per row, identical to `n`
    /// independent [`IntervalIndex::lookup_with`] calls (debug-asserted).
    ///
    /// The probe walks one dimension at a time across the whole batch, so
    /// each dimension's cut array stays hot while binary searches are
    /// amortised over key runs ([`run_interval`]), and the per-row AND
    /// accumulators live in one contiguous `rows × words` block. Rows
    /// whose accumulator has already gone all-zero skip the search
    /// entirely.
    pub fn lookup_batch_with(
        &self,
        scratch: &mut BatchScratch,
        n: usize,
        key: impl Fn(usize, usize) -> u64,
        out: &mut Vec<Option<u32>>,
    ) {
        out.clear();
        if self.n_rules == 0 {
            out.resize(n, None);
            return;
        }
        let words = self.words;
        // Bits past n_rules never belong to a rule; start each row's
        // accumulator with them masked off so dead rows read as all-zero.
        let tail = self.n_rules % 64;
        let tail_mask = if tail == 0 { !0u64 } else { (1u64 << tail) - 1 };
        // ≤ 64 × REG_WORDS_MAX rules: two-pass register-resident probe.
        // Pass 1 resolves every row's elementary interval per dimension
        // (dimension-major, so each cut array stays hot); pass 2 walks
        // row-major with the whole AND accumulator in a fixed-size array
        // the compiler keeps in registers — no `rows × words` scratch
        // block to initialise, write per dimension, and re-read for
        // extraction.
        if words <= REG_WORDS_MAX {
            self.resolve_intervals(scratch, n, &key);
            match words {
                1 => self.reg_and_pass::<1>(scratch, n, tail_mask, out),
                2 => self.reg_and_pass::<2>(scratch, n, tail_mask, out),
                3 => self.reg_and_pass::<3>(scratch, n, tail_mask, out),
                _ => self.reg_and_pass::<4>(scratch, n, tail_mask, out),
            }
        } else {
            // Wide rule sets: dimension-major walk over a `rows × words`
            // accumulator block, skipping rows already all-zero.
            scratch.acc.clear();
            scratch.acc.resize(n * words, !0u64);
            if tail_mask != !0 {
                for r in 0..n {
                    scratch.acc[(r + 1) * words - 1] = tail_mask;
                }
            }
            for (d, dim) in self.dims.iter().enumerate() {
                let cuts = &dim.cuts[..];
                let mut prev: Option<(u64, usize)> = None;
                for (i, acc) in scratch.acc.chunks_exact_mut(words).enumerate() {
                    if acc.iter().all(|&w| w == 0) {
                        continue;
                    }
                    let iv = run_interval(cuts, &mut prev, key(d, i));
                    let row = &dim.rows[iv * words..(iv + 1) * words];
                    for (w, &r) in acc.iter_mut().zip(row) {
                        *w &= r;
                    }
                }
            }
            for acc in scratch.acc.chunks_exact(words) {
                out.push(
                    acc.iter()
                        .enumerate()
                        .find(|(_, &w)| w != 0)
                        .map(|(wi, &w)| (wi * 64) as u32 + w.trailing_zeros()),
                );
            }
        }
        #[cfg(debug_assertions)]
        {
            // Scalar oracle: the batch probe must agree with the per-key
            // path bit for bit.
            let mut s = Vec::new();
            for (i, &got) in out.iter().enumerate() {
                debug_assert_eq!(got, self.lookup_with(&mut s, |d| key(d, i)), "row {i}");
            }
        }
    }

    /// Pass 1 of the register-resident batch probe: fill `scratch.iv`
    /// (dimension-major, `dims × n`) with each row's elementary-interval
    /// index. Short cut arrays that fit `u32` resolve by a **cut-major**
    /// linear count: the dimension's key column is materialised once
    /// (clamped to `u32`, exact because every cut fits `u32`), then each
    /// cut makes one unit-stride pass over it, accumulating
    /// `iv[i] += (cut <= key[i])`. Every pass is a long contiguous
    /// compare/add loop in one lane width with no cross-row dependency,
    /// so it vectorises — unlike a per-row scan of the cut array, whose
    /// short mixed-width inner loop defeats the vectoriser. Long (or
    /// 64-bit) cut arrays fall back to the run-amortised binary search,
    /// which real traffic keeps cheap because adjacent rows repeat
    /// values.
    fn resolve_intervals(
        &self,
        scratch: &mut BatchScratch,
        n: usize,
        key: &impl Fn(usize, usize) -> u64,
    ) {
        let BatchScratch { iv, keys, .. } = scratch;
        iv.clear();
        iv.resize(self.dims.len() * n, 0);
        for (d, dim) in self.dims.iter().enumerate() {
            let cuts = &dim.cuts[..];
            let ivs = &mut iv[d * n..(d + 1) * n];
            if !dim.cuts32.is_empty() && cuts.len() <= LINEAR_CUT_SCAN_MAX {
                // Clamping keys to u32::MAX preserves every `cut <= key`
                // outcome because no cut exceeds u32::MAX.
                keys.clear();
                keys.extend((0..n).map(|i| key(d, i).min(u32::MAX as u64) as u32));
                // Range pruning: a cut at or below the chunk's smallest
                // key is counted by *every* row — fold those into a
                // constant base. A cut above the largest key is counted
                // by none — skip it. Only cuts inside the chunk's key
                // range need a compare pass, which on repeat-heavy
                // traffic (floods: one value per dimension) collapses
                // the loop to at most one pass.
                let (mut kmin, mut kmax) = (u32::MAX, 0u32);
                for &k in keys.iter() {
                    kmin = kmin.min(k);
                    kmax = kmax.max(k);
                }
                let lo = dim.cuts32.partition_point(|&c| c <= kmin);
                let hi = dim.cuts32.partition_point(|&c| c <= kmax);
                if lo > 0 {
                    ivs.fill(lo as u32);
                }
                for &c in &dim.cuts32[lo..hi] {
                    for (slot, &k) in ivs.iter_mut().zip(keys.iter()) {
                        *slot += (c <= k) as u32;
                    }
                }
            } else {
                let mut prev: Option<(u64, usize)> = None;
                for (i, slot) in ivs.iter_mut().enumerate() {
                    *slot = run_interval(cuts, &mut prev, key(d, i)) as u32;
                }
            }
            #[cfg(debug_assertions)]
            for (i, slot) in ivs.iter().enumerate() {
                debug_assert_eq!(*slot as usize, cuts.partition_point(|&c| c <= key(d, i)));
            }
        }
    }

    /// Pass 2 of the register-resident batch probe: row-major AND over
    /// the intervals resolved by [`IntervalIndex::resolve_intervals`].
    /// `W` is the compile-time word count, so the accumulator is a plain
    /// `[u64; W]` in registers; per dimension only an index load and `W`
    /// gathered ANDs remain.
    fn reg_and_pass<const W: usize>(
        &self,
        scratch: &BatchScratch,
        n: usize,
        tail_mask: u64,
        out: &mut Vec<Option<u32>>,
    ) {
        debug_assert_eq!(self.words, W);
        let ivs = &scratch.iv[..];
        for i in 0..n {
            let mut w = [!0u64; W];
            w[W - 1] = tail_mask;
            for (d, dim) in self.dims.iter().enumerate() {
                let base = ivs[d * n + i] as usize * W;
                let row = &dim.rows[base..base + W];
                for j in 0..W {
                    w[j] &= row[j];
                }
            }
            out.push(
                w.iter()
                    .enumerate()
                    .find(|(_, &x)| x != 0)
                    .map(|(wi, &x)| (wi * 64) as u32 + x.trailing_zeros()),
            );
        }
    }
}

/// The compiled index of a float [`RuleSet`](crate::rules::RuleSet):
/// first-match semantics identical to scanning `whitelist` in order and
/// returning the first [`Hypercube`](crate::rules::Hypercube) containing
/// the point.
#[derive(Clone, Debug)]
pub struct RuleIndex {
    inner: IntervalIndex,
}

impl RuleIndex {
    pub fn build(rules: &crate::rules::RuleSet) -> Self {
        let n_dims = rules.bounds.len();
        let mut b = IndexBuilder::new(n_dims);
        let mut buf = Vec::with_capacity(n_dims);
        for cube in &rules.whitelist {
            buf.clear();
            for d in 0..n_dims {
                let (lo, hi) = (cube.lo[d], cube.hi[d]);
                if lo.is_nan() || hi.is_nan() || !(lo < hi) {
                    // `contains` is false for every point (NaN comparisons
                    // are false; lo >= hi covers nothing): empty marker.
                    buf.push((1, 0));
                } else {
                    buf.push((ord_key(lo), ord_key(hi)));
                }
            }
            b.push_rule(&buf);
        }
        Self { inner: b.finish() }
    }

    /// Index of the first whitelist cube containing `x`, or `None`. Equal
    /// to [`RuleSet::lookup`](crate::rules::RuleSet::lookup) on every
    /// input, NaN included.
    pub fn lookup(&self, x: &[f32], scratch: &mut Vec<u64>) -> Option<usize> {
        counter!("core.rule_index.lookup").inc();
        // A NaN component fails `v >= lo` for every rule, even unbounded
        // ones — the linear scan misses, so the index must too.
        if x.iter().any(|v| v.is_nan()) {
            return None;
        }
        let hit = self.inner.lookup_with(scratch, |d| ord_key(x[d]));
        if hit.is_some() {
            counter!("core.rule_index.hit").inc();
        }
        hit.map(|bit| bit as usize)
    }

    /// Columnar batch lookup: `cols[d]` is the feature-`d` column of the
    /// batch (all columns the same length). Fills `out` with one answer
    /// per row, equal to calling [`RuleIndex::lookup`] on each gathered
    /// row; counters advance by the same totals as the per-key path.
    ///
    /// NaN components are folded into the key domain instead of branching
    /// per row: `u64::MAX` is strictly above [`ord_key`] of every non-NaN
    /// float, so a NaN lands in the top elementary interval — and because
    /// every non-empty rule's upper bound is itself a cut, no rule covers
    /// that interval. The row misses, exactly as the scalar NaN scan does.
    pub fn lookup_batch(
        &self,
        cols: &[&[f32]],
        scratch: &mut BatchScratch,
        out: &mut Vec<Option<u32>>,
    ) {
        let n = cols.first().map_or(0, |c| c.len());
        debug_assert!(cols.iter().all(|c| c.len() == n), "ragged feature columns");
        counter!("core.rule_index.lookup").add(n as u64);
        self.inner.lookup_batch_with(
            scratch,
            n,
            |d, i| {
                let v = cols[d][i];
                // Branchless NaN fold: `v != v` only for NaN, and OR-ing
                // all-ones yields u64::MAX — keeps the key-materialisation
                // loop straight-line so it vectorises.
                let b = (v + 0.0).to_bits() as i32;
                let k = ((b as u32) ^ (((b >> 31) as u32) | 0x8000_0000)) as u64;
                k | ((v != v) as u64).wrapping_neg()
            },
            out,
        );
        let hits = out.iter().filter(|h| h.is_some()).count();
        counter!("core.rule_index.hit").add(hits as u64);
    }

    pub fn n_rules(&self) -> usize {
        self.inner.n_rules()
    }

    pub fn total_cuts(&self) -> usize {
        self.inner.total_cuts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Hypercube, RuleSet};
    use iguard_runtime::rng::Rng;

    #[test]
    fn ord_key_is_monotone_and_collapses_zero() {
        let vals = [
            f32::NEG_INFINITY,
            -1e30,
            -2.5,
            -1.0,
            -f32::MIN_POSITIVE,
            0.0,
            f32::MIN_POSITIVE,
            1.0,
            2.5,
            1e30,
            f32::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(ord_key(w[0]) < ord_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert_eq!(ord_key(-0.0), ord_key(0.0));
    }

    #[test]
    fn empty_index_misses() {
        let idx = IndexBuilder::new(3).finish();
        assert_eq!(idx.lookup_with(&mut Vec::new(), |_| 5), None);
    }

    #[test]
    fn first_match_wins_on_overlap() {
        let mut b = IndexBuilder::new(1);
        b.push_rule(&[(10, 20)]);
        b.push_rule(&[(0, 100)]);
        let idx = b.finish();
        let mut s = Vec::new();
        assert_eq!(idx.lookup_with(&mut s, |_| 15), Some(0));
        assert_eq!(idx.lookup_with(&mut s, |_| 5), Some(1));
        assert_eq!(idx.lookup_with(&mut s, |_| 100), None, "hi is exclusive");
        assert_eq!(idx.lookup_with(&mut s, |_| 20), Some(1), "rule 0 hi exclusive");
    }

    #[test]
    fn empty_rule_keeps_bit_position() {
        let mut b = IndexBuilder::new(1);
        b.push_rule(&[(7, 7)]); // empty: lo >= hi
        b.push_rule(&[(0, 10)]);
        let idx = b.finish();
        assert_eq!(idx.lookup_with(&mut Vec::new(), |_| 7), Some(1));
    }

    #[test]
    fn more_than_64_rules_crosses_word_boundary() {
        let mut b = IndexBuilder::new(1);
        for r in 0..130u64 {
            b.push_rule(&[(r * 10, r * 10 + 10)]);
        }
        let idx = b.finish();
        let mut s = Vec::new();
        for r in 0..130u64 {
            assert_eq!(idx.lookup_with(&mut s, |_| r * 10 + 5), Some(r as u32));
        }
        assert_eq!(idx.lookup_with(&mut s, |_| 1300), None);
    }

    #[test]
    fn batch_lookup_matches_scalar_on_random_columns() {
        let mut rng = Rng::seed_from_u64(0xBA7C);
        for trial in 0..12 {
            let dims = 1 + (trial % 4);
            let n_rules = 1 + (trial * 13) % 100; // crosses the 64-bit word boundary
            let mut whitelist = Vec::new();
            for _ in 0..n_rules {
                let mut lo = Vec::new();
                let mut hi = Vec::new();
                for _ in 0..dims {
                    let a = (rng.gen_range(-8.0..8.0) as f32 * 4.0).round() / 4.0;
                    let w = rng.gen_range(0.0..4.0) as f32;
                    lo.push(if rng.gen_bool(0.1) { f32::NEG_INFINITY } else { a });
                    hi.push(if rng.gen_bool(0.1) { f32::INFINITY } else { a + w });
                }
                whitelist.push(Hypercube { lo, hi });
            }
            let rules =
                RuleSet { bounds: vec![(-8.0, 8.0); dims], whitelist, total_regions: n_rules };
            let idx = RuleIndex::build(&rules);
            // Column-major probe batch with runs of repeated values plus
            // NaN/±inf/±0 specials scattered in.
            let n = 257;
            let mut cols: Vec<Vec<f32>> = vec![Vec::with_capacity(n); dims];
            for i in 0..n {
                for col in cols.iter_mut() {
                    let v = if rng.gen_bool(0.08) {
                        [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 0.0]
                            [rng.gen_range(0..5usize)]
                    } else if i > 0 && rng.gen_bool(0.3) {
                        col[i - 1] // repeated run: exercises the amortised path
                    } else {
                        rng.gen_range(-10.0..10.0) as f32
                    };
                    col.push(v);
                }
            }
            let views: Vec<&[f32]> = cols.iter().map(|c| c.as_slice()).collect();
            let mut scratch = BatchScratch::default();
            let mut out = Vec::new();
            idx.lookup_batch(&views, &mut scratch, &mut out);
            assert_eq!(out.len(), n);
            let mut s = Vec::new();
            for i in 0..n {
                let row: Vec<f32> = cols.iter().map(|c| c[i]).collect();
                assert_eq!(
                    out[i].map(|b| b as usize),
                    idx.lookup(&row, &mut s),
                    "trial {trial}, row {i}: {row:?}"
                );
            }
        }
    }

    /// Random rule sets: index lookup equals the linear first-match scan
    /// on every probe, including NaN/±0/±inf components.
    #[test]
    fn rule_index_matches_linear_scan_exhaustively() {
        let mut rng = Rng::seed_from_u64(0x1D5E);
        for trial in 0..20 {
            let dims = 1 + (trial % 3);
            let n_rules = 1 + (trial * 7) % 90;
            let mut whitelist = Vec::new();
            for _ in 0..n_rules {
                let mut lo = Vec::new();
                let mut hi = Vec::new();
                for _ in 0..dims {
                    let a = (rng.gen_range(-8.0..8.0) as f32 * 4.0).round() / 4.0;
                    let w = rng.gen_range(0.0..4.0) as f32;
                    let l = if rng.gen_range(0.0..1.0) < 0.1 { f32::NEG_INFINITY } else { a };
                    let h = if rng.gen_range(0.0..1.0) < 0.1 { f32::INFINITY } else { a + w };
                    lo.push(l);
                    hi.push(h);
                }
                whitelist.push(Hypercube { lo, hi });
            }
            let rules =
                RuleSet { bounds: vec![(-8.0, 8.0); dims], whitelist, total_regions: n_rules };
            let idx = RuleIndex::build(&rules);
            let mut scratch = Vec::new();
            let mut probe = |x: &[f32]| {
                assert_eq!(
                    idx.lookup(x, &mut scratch),
                    rules.lookup(x),
                    "trial {trial}, x = {x:?}"
                );
            };
            for _ in 0..400 {
                let x: Vec<f32> = (0..dims).map(|_| rng.gen_range(-10.0..10.0) as f32).collect();
                probe(&x);
            }
            for special in [f32::NAN, -0.0, 0.0, f32::INFINITY, f32::NEG_INFINITY, 2.0] {
                let x = vec![special; dims];
                probe(&x);
            }
        }
    }
}
