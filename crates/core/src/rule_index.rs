//! Compiled rule index: sublinear first-match lookup over axis-aligned
//! rule sets.
//!
//! Both whitelist representations in this workspace — float
//! [`Hypercube`](crate::rules::Hypercube) rules and the quantized TCAM
//! range entries in `iguard-switch` — are conjunctions of per-dimension
//! intervals resolved by a priority-ordered linear scan. That scan is
//! `O(rules · dims)` per key. This module compiles the same rules into a
//! per-dimension **interval table**: the distinct cut points of all rules,
//! sorted, where each of the `cuts + 1` elementary intervals carries a
//! bitmap (rows of `u64` words) of the rules covering it. A lookup is one
//! binary search per dimension plus a word-wise AND across dimensions; the
//! first set bit of the surviving bitmap is the first-match rule. Cost:
//! `O(dims · log cuts + dims · rules/64)` — sublinear in practice because
//! the AND runs 64 rules per word and exits early on an all-zero
//! intersection.
//!
//! The index is **exact**: it returns the identical rule (or miss) as the
//! linear scan on every key, including NaN components (always a miss, as
//! IEEE comparison dictates), signed zeros (`-0.0` and `+0.0` compare
//! equal and are normalised to one cut), and infinite rule bounds. The cut
//! domain is `u64`; float bounds enter through [`ord_key`], a monotone
//! bijection from non-NaN `f32` onto an integer order, so every float
//! comparison carries over to integer comparison exactly. The quantized
//! TCAM index in `iguard-switch` uses field values as cuts directly.

use iguard_telemetry::counter;

/// Maps a non-NaN `f32` onto `u64` such that `a < b ⇔ ord_key(a) <
/// ord_key(b)` (with `-0.0` and `+0.0` mapped to the same key, matching
/// IEEE `==`). The usual sign-flip trick: negative floats have their bits
/// inverted, positive floats get the sign bit set, which linearises the
/// two monotone halves of the IEEE encoding.
///
/// NaN is the caller's problem: rule bounds containing NaN make the rule
/// empty, key components containing NaN make the lookup a miss — both are
/// handled before any key is formed.
#[inline]
pub fn ord_key(v: f32) -> u64 {
    debug_assert!(!v.is_nan(), "NaN must be filtered before ordering");
    let v = if v == 0.0 { 0.0 } else { v }; // collapse -0.0 onto +0.0
    let b = v.to_bits() as i32;
    let u = if b < 0 { !(b as u32) } else { (b as u32) | 0x8000_0000 };
    u as u64
}

/// One dimension of the index: sorted distinct cut points and, for each of
/// the `cuts.len() + 1` elementary intervals, a bitmap row of the rules
/// covering that interval.
#[derive(Clone, Debug)]
struct DimIntervals {
    cuts: Vec<u64>,
    /// `(cuts.len() + 1) * words` words; row `i` covers keys `k` with
    /// `cuts[i-1] <= k < cuts[i]` (row 0: `k < cuts[0]`; last row:
    /// `k >= cuts[last]`).
    rows: Vec<u64>,
}

/// A compiled interval index over `u64` cut keys. Build with
/// [`IndexBuilder`]; bit positions are assigned in push order, and
/// [`IntervalIndex::lookup_with`] returns the lowest set bit — so pushing
/// rules in priority order makes the result the first match.
#[derive(Clone, Debug)]
pub struct IntervalIndex {
    dims: Vec<DimIntervals>,
    words: usize,
    n_rules: usize,
}

/// Accumulates per-rule, per-dimension half-open cut ranges `[lo, hi)`
/// before compiling them into an [`IntervalIndex`].
pub struct IndexBuilder {
    n_dims: usize,
    /// One entry per pushed rule; `None` marks a rule that can never match
    /// (empty in some dimension) — it keeps its bit position but sets no
    /// interval bits and contributes no cuts.
    rules: Vec<Option<Vec<(u64, u64)>>>,
}

impl IndexBuilder {
    pub fn new(n_dims: usize) -> Self {
        Self { n_dims, rules: Vec::new() }
    }

    /// Adds the next rule (bit position = call order). `bounds[d]` is the
    /// half-open `[lo, hi)` the rule covers in cut space; a rule with
    /// `lo >= hi` in any dimension is empty and will never match.
    pub fn push_rule(&mut self, bounds: &[(u64, u64)]) {
        assert_eq!(bounds.len(), self.n_dims, "one bound pair per dimension");
        if bounds.iter().any(|&(lo, hi)| lo >= hi) {
            self.rules.push(None);
        } else {
            self.rules.push(Some(bounds.to_vec()));
        }
    }

    pub fn finish(self) -> IntervalIndex {
        let n_rules = self.rules.len();
        let words = n_rules.div_ceil(64);
        let mut dims = Vec::with_capacity(self.n_dims);
        for d in 0..self.n_dims {
            let mut cuts: Vec<u64> =
                self.rules.iter().flatten().flat_map(|r| [r[d].0, r[d].1]).collect();
            cuts.sort_unstable();
            cuts.dedup();
            let mut rows = vec![0u64; (cuts.len() + 1) * words];
            for (bit, rule) in self.rules.iter().enumerate() {
                let Some(rule) = rule else { continue };
                let (lo, hi) = rule[d];
                // `lo` and `hi` are both cuts: the rule covers the
                // elementary intervals strictly after `lo`'s row up to and
                // including `hi`'s row.
                let first = cuts.partition_point(|&c| c <= lo);
                let last = cuts.partition_point(|&c| c < hi);
                debug_assert!(first <= last);
                for iv in first..=last {
                    rows[iv * words + bit / 64] |= 1u64 << (bit % 64);
                }
            }
            dims.push(DimIntervals { cuts, rows });
        }
        IntervalIndex { dims, words, n_rules }
    }
}

impl IntervalIndex {
    pub fn n_rules(&self) -> usize {
        self.n_rules
    }

    /// Total cut points across dimensions (a size measure for reporting).
    pub fn total_cuts(&self) -> usize {
        self.dims.iter().map(|d| d.cuts.len()).sum()
    }

    /// First-match lookup: `key(d)` supplies the cut-space key for
    /// dimension `d`. Returns the lowest bit position whose rule covers
    /// the key in every dimension. `scratch` is the caller-owned AND
    /// accumulator (resized to the word count on every call), so the hot
    /// path allocates nothing.
    pub fn lookup_with(&self, scratch: &mut Vec<u64>, key: impl Fn(usize) -> u64) -> Option<u32> {
        if self.n_rules == 0 {
            return None;
        }
        scratch.clear();
        scratch.resize(self.words, !0u64);
        // Bits past n_rules never belong to a rule; mask them off so the
        // early-exit test below sees a true all-zero intersection.
        let tail = self.n_rules % 64;
        if tail != 0 {
            scratch[self.words - 1] = (1u64 << tail) - 1;
        }
        for (d, dim) in self.dims.iter().enumerate() {
            let k = key(d);
            let iv = dim.cuts.partition_point(|&c| c <= k);
            let row = &dim.rows[iv * self.words..(iv + 1) * self.words];
            let mut any = 0u64;
            for (w, &r) in scratch.iter_mut().zip(row) {
                *w &= r;
                any |= *w;
            }
            if any == 0 {
                return None;
            }
        }
        scratch
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(wi, &w)| (wi * 64) as u32 + w.trailing_zeros())
    }
}

/// The compiled index of a float [`RuleSet`](crate::rules::RuleSet):
/// first-match semantics identical to scanning `whitelist` in order and
/// returning the first [`Hypercube`](crate::rules::Hypercube) containing
/// the point.
#[derive(Clone, Debug)]
pub struct RuleIndex {
    inner: IntervalIndex,
}

impl RuleIndex {
    pub fn build(rules: &crate::rules::RuleSet) -> Self {
        let n_dims = rules.bounds.len();
        let mut b = IndexBuilder::new(n_dims);
        let mut buf = Vec::with_capacity(n_dims);
        for cube in &rules.whitelist {
            buf.clear();
            for d in 0..n_dims {
                let (lo, hi) = (cube.lo[d], cube.hi[d]);
                if lo.is_nan() || hi.is_nan() || !(lo < hi) {
                    // `contains` is false for every point (NaN comparisons
                    // are false; lo >= hi covers nothing): empty marker.
                    buf.push((1, 0));
                } else {
                    buf.push((ord_key(lo), ord_key(hi)));
                }
            }
            b.push_rule(&buf);
        }
        Self { inner: b.finish() }
    }

    /// Index of the first whitelist cube containing `x`, or `None`. Equal
    /// to [`RuleSet::lookup`](crate::rules::RuleSet::lookup) on every
    /// input, NaN included.
    pub fn lookup(&self, x: &[f32], scratch: &mut Vec<u64>) -> Option<usize> {
        counter!("core.rule_index.lookup").inc();
        // A NaN component fails `v >= lo` for every rule, even unbounded
        // ones — the linear scan misses, so the index must too.
        if x.iter().any(|v| v.is_nan()) {
            return None;
        }
        let hit = self.inner.lookup_with(scratch, |d| ord_key(x[d]));
        if hit.is_some() {
            counter!("core.rule_index.hit").inc();
        }
        hit.map(|bit| bit as usize)
    }

    pub fn n_rules(&self) -> usize {
        self.inner.n_rules()
    }

    pub fn total_cuts(&self) -> usize {
        self.inner.total_cuts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Hypercube, RuleSet};
    use iguard_runtime::rng::Rng;

    #[test]
    fn ord_key_is_monotone_and_collapses_zero() {
        let vals = [
            f32::NEG_INFINITY,
            -1e30,
            -2.5,
            -1.0,
            -f32::MIN_POSITIVE,
            0.0,
            f32::MIN_POSITIVE,
            1.0,
            2.5,
            1e30,
            f32::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(ord_key(w[0]) < ord_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert_eq!(ord_key(-0.0), ord_key(0.0));
    }

    #[test]
    fn empty_index_misses() {
        let idx = IndexBuilder::new(3).finish();
        assert_eq!(idx.lookup_with(&mut Vec::new(), |_| 5), None);
    }

    #[test]
    fn first_match_wins_on_overlap() {
        let mut b = IndexBuilder::new(1);
        b.push_rule(&[(10, 20)]);
        b.push_rule(&[(0, 100)]);
        let idx = b.finish();
        let mut s = Vec::new();
        assert_eq!(idx.lookup_with(&mut s, |_| 15), Some(0));
        assert_eq!(idx.lookup_with(&mut s, |_| 5), Some(1));
        assert_eq!(idx.lookup_with(&mut s, |_| 100), None, "hi is exclusive");
        assert_eq!(idx.lookup_with(&mut s, |_| 20), Some(1), "rule 0 hi exclusive");
    }

    #[test]
    fn empty_rule_keeps_bit_position() {
        let mut b = IndexBuilder::new(1);
        b.push_rule(&[(7, 7)]); // empty: lo >= hi
        b.push_rule(&[(0, 10)]);
        let idx = b.finish();
        assert_eq!(idx.lookup_with(&mut Vec::new(), |_| 7), Some(1));
    }

    #[test]
    fn more_than_64_rules_crosses_word_boundary() {
        let mut b = IndexBuilder::new(1);
        for r in 0..130u64 {
            b.push_rule(&[(r * 10, r * 10 + 10)]);
        }
        let idx = b.finish();
        let mut s = Vec::new();
        for r in 0..130u64 {
            assert_eq!(idx.lookup_with(&mut s, |_| r * 10 + 5), Some(r as u32));
        }
        assert_eq!(idx.lookup_with(&mut s, |_| 1300), None);
    }

    /// Random rule sets: index lookup equals the linear first-match scan
    /// on every probe, including NaN/±0/±inf components.
    #[test]
    fn rule_index_matches_linear_scan_exhaustively() {
        let mut rng = Rng::seed_from_u64(0x1D5E);
        for trial in 0..20 {
            let dims = 1 + (trial % 3);
            let n_rules = 1 + (trial * 7) % 90;
            let mut whitelist = Vec::new();
            for _ in 0..n_rules {
                let mut lo = Vec::new();
                let mut hi = Vec::new();
                for _ in 0..dims {
                    let a = (rng.gen_range(-8.0..8.0) as f32 * 4.0).round() / 4.0;
                    let w = rng.gen_range(0.0..4.0) as f32;
                    let l = if rng.gen_range(0.0..1.0) < 0.1 { f32::NEG_INFINITY } else { a };
                    let h = if rng.gen_range(0.0..1.0) < 0.1 { f32::INFINITY } else { a + w };
                    lo.push(l);
                    hi.push(h);
                }
                whitelist.push(Hypercube { lo, hi });
            }
            let rules =
                RuleSet { bounds: vec![(-8.0, 8.0); dims], whitelist, total_regions: n_rules };
            let idx = RuleIndex::build(&rules);
            let mut scratch = Vec::new();
            let mut probe = |x: &[f32]| {
                assert_eq!(
                    idx.lookup(x, &mut scratch),
                    rules.lookup(x),
                    "trial {trial}, x = {x:?}"
                );
            };
            for _ in 0..400 {
                let x: Vec<f32> = (0..dims).map(|_| rng.gen_range(-10.0..10.0) as f32).collect();
                probe(&x);
            }
            for special in [f32::NAN, -0.0, 0.0, f32::INFINITY, f32::NEG_INFINITY, 2.0] {
                let x = vec![special; dims];
                probe(&x);
            }
        }
    }
}
