//! Per-phase guided forests for phase-aware classification.
//!
//! pForest-style phases: instead of one verdict at the packet-count
//! threshold `n`, the data plane consults an *additional* whitelist at
//! each intermediate boundary (default 4/16/64 packets). Each phase's
//! whitelist is compiled from a guided forest trained on flow features
//! truncated to that boundary's packet prefix, so the rules only ever see
//! the statistics a switch would actually have accumulated by then.
//!
//! Phase verdicts are **convict-only**: a flow that falls outside the
//! phase whitelist is confidently malicious and is blacklisted
//! immediately; a flow inside the whitelist is *not* labelled benign — it
//! escalates to the next boundary (and finally to the single-shot
//! threshold, which keeps its full two-sided semantics). The certainty
//! knob is the forest's vote-fraction threshold: raising it grows the
//! compiled benign envelope, so early phases only convict flows that a
//! super-majority of trees agree on.
//!
//! Later phases warm-start from the previous phase's forest via
//! [`IGuardForest::refit_warm`] where the bounds allow (same feature
//! dimensionality); the fused feature envelope keeps consecutive phases'
//! rule tables on the same scale so they compile to comparable TCAM
//! footprints.

use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;
use iguard_telemetry::counter;

use crate::forest::{IGuardConfig, IGuardForest};
use crate::rules::{RuleGenError, RuleSet};
use crate::teacher::Teacher;

/// The paper-default phase boundaries (packets seen before each early
/// look). Deployments with a smaller packet threshold pass their own
/// boundaries — they must stay strictly below the threshold.
pub const DEFAULT_PHASE_BOUNDARIES: [u64; 3] = [4, 16, 64];

/// Training configuration shared by every phase.
#[derive(Clone, Debug)]
pub struct PhaseTrainConfig {
    /// Guided-forest shape used for each phase's forest.
    pub forest: IGuardConfig,
    /// Vote-fraction certainty threshold applied to every phase forest
    /// before rule compilation. Higher ⇒ more trees must agree a region
    /// is malicious ⇒ a larger compiled benign envelope ⇒ fewer (more
    /// certain) early convictions.
    pub certainty: f64,
    /// Region budget per compiled phase ruleset.
    pub max_regions: usize,
    /// Warm-start later phases from the previous phase's forest when the
    /// feature dimensionality matches (it always does for the 13 switch
    /// features; truncated feature sets may differ).
    pub warm_start: bool,
}

impl Default for PhaseTrainConfig {
    fn default() -> Self {
        Self {
            forest: IGuardConfig::default(),
            certainty: 0.5,
            max_regions: 500_000,
            warm_start: true,
        }
    }
}

/// The trained phase ladder: one forest and one compiled whitelist per
/// boundary, in boundary order.
pub struct PhaseModels {
    pub forests: Vec<IGuardForest>,
    pub rulesets: Vec<RuleSet>,
    /// How many phases were warm-started from their predecessor.
    pub warm_started: usize,
}

impl PhaseModels {
    pub fn len(&self) -> usize {
        self.rulesets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rulesets.is_empty()
    }
}

/// Trains one guided forest per phase and compiles each to a whitelist.
///
/// `datasets[i]` is the benign training set whose features were extracted
/// from packet prefixes truncated at boundary `i` — the statistics the
/// data plane will actually hold when it consults phase `i`'s rules.
///
/// Phase 0 is a cold [`IGuardForest::fit`]; later phases warm-start from
/// the previous phase's forest via [`IGuardForest::refit_warm`] when
/// `cfg.warm_start` is set and the dimensionality matches (a differing
/// column count falls back to a cold fit rather than panicking). Every
/// phase is distilled, gets the certainty threshold, and compiles under
/// `cfg.max_regions`.
///
/// An empty dataset at any position is a typed
/// [`RuleGenError::EmptyTrainingSet`] — never a panic — mirroring the
/// [`crate::early::EarlyModel::train`] contract.
pub fn train_phases(
    datasets: &[Dataset],
    teacher: &dyn Teacher,
    cfg: &PhaseTrainConfig,
    rng: &mut Rng,
) -> Result<PhaseModels, RuleGenError> {
    let mut forests: Vec<IGuardForest> = Vec::with_capacity(datasets.len());
    let mut rulesets = Vec::with_capacity(datasets.len());
    let mut warm_started = 0usize;
    for data in datasets {
        if data.rows() == 0 {
            return Err(RuleGenError::EmptyTrainingSet);
        }
        let warm_from =
            forests.last().filter(|prev| cfg.warm_start && prev.bounds().len() == data.cols());
        let mut forest = match warm_from {
            Some(prev) => {
                warm_started += 1;
                counter!("core.phase.warm_starts").inc();
                prev.refit_warm(data, teacher, &cfg.forest, rng)
            }
            None => IGuardForest::fit(data, teacher, &cfg.forest, rng),
        };
        forest.distill(data, teacher, cfg.forest.k_augment, rng);
        forest.set_vote_threshold(cfg.certainty);
        let rules = RuleSet::from_iguard(&forest, cfg.max_regions)?;
        counter!("core.phase.trained").inc();
        forests.push(forest);
        rulesets.push(rules);
    }
    Ok(PhaseModels { forests, rulesets, warm_started })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Benign points cluster in the unit square's lower-left quadrant;
    /// the teacher flags anything outside it.
    struct QuadrantTeacher;

    impl Teacher for QuadrantTeacher {
        fn predict(&self, xs: &Dataset) -> Vec<bool> {
            xs.iter_rows().map(|x| x[0] > 0.5 || x[1] > 0.5).collect()
        }

        fn vote_on_set(&self, xs: &Dataset) -> bool {
            if xs.rows() == 0 {
                return false;
            }
            let mal = self.predict(xs).iter().filter(|&&m| m).count();
            mal * 2 > xs.rows()
        }
    }

    /// Mostly benign-core points plus a scatter across the whole square,
    /// so the training envelope straddles the teacher's 0.5 boundary and
    /// the guided trees have something to split on.
    fn quadrant_mix(n: usize, spread: f32, rng: &mut Rng) -> Dataset {
        let mut d = Dataset::new(2);
        for _ in 0..n {
            if rng.gen_bool(0.8) {
                d.push_row(&[rng.gen_range(0.0..spread), rng.gen_range(0.0..spread)]);
            } else {
                d.push_row(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
            }
        }
        d
    }

    fn cfg() -> PhaseTrainConfig {
        PhaseTrainConfig {
            forest: IGuardConfig { n_trees: 7, subsample: 64, k_augment: 32, ..Default::default() },
            certainty: 0.5,
            max_regions: 200_000,
            warm_start: true,
        }
    }

    #[test]
    fn ladder_trains_one_whitelist_per_phase_with_warm_starts() {
        let mut rng = Rng::seed_from_u64(11);
        // Successive phases see slightly wider prefixes of the same
        // distribution — the truncated-feature analogue.
        let datasets = vec![
            quadrant_mix(256, 0.35, &mut rng),
            quadrant_mix(256, 0.40, &mut rng),
            quadrant_mix(256, 0.45, &mut rng),
        ];
        let models = train_phases(&datasets, &QuadrantTeacher, &cfg(), &mut rng).unwrap();
        assert_eq!(models.len(), 3);
        assert_eq!(models.warm_started, 2, "phases 1 and 2 must warm-start");
        for (f, rules) in models.forests.iter().zip(&models.rulesets) {
            assert!(f.is_distilled());
            assert!(!rules.is_empty());
            // Deep-benign stays whitelisted; deep-malicious is convicted.
            assert!(rules.matches(&[0.1, 0.1]), "benign core must match the whitelist");
            assert!(rules.predict(&[0.9, 0.9]), "malicious corner must convict");
        }
    }

    #[test]
    fn empty_phase_dataset_is_a_typed_error_not_a_panic() {
        let mut rng = Rng::seed_from_u64(12);
        let datasets = vec![quadrant_mix(128, 0.35, &mut rng), Dataset::new(2)];
        let err = train_phases(&datasets, &QuadrantTeacher, &cfg(), &mut rng)
            .err()
            .expect("empty phase data must fail");
        assert_eq!(err, RuleGenError::EmptyTrainingSet);
    }

    #[test]
    fn dimensionality_change_falls_back_to_cold_fit() {
        let mut rng = Rng::seed_from_u64(13);
        let mut d3 = Dataset::new(3);
        for _ in 0..128 {
            d3.push_row(&[rng.gen_range(0.0..0.4), rng.gen_range(0.0..0.4), 0.1]);
        }
        let datasets = vec![quadrant_mix(128, 0.35, &mut rng), d3];
        let models = train_phases(&datasets, &QuadrantTeacher, &cfg(), &mut rng).unwrap();
        assert_eq!(models.len(), 2);
        assert_eq!(models.warm_started, 0, "2-D → 3-D must not warm-start");
    }

    #[test]
    fn higher_certainty_grows_the_benign_envelope() {
        let mut rng = Rng::seed_from_u64(14);
        let datasets = vec![quadrant_mix(256, 0.35, &mut rng)];
        let probes: Vec<[f32; 2]> =
            (0..200).map(|_| [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]).collect();
        let convictions = |certainty: f64, rng: &mut Rng| -> usize {
            let c = PhaseTrainConfig { certainty, ..cfg() };
            let mut r = Rng::seed_from_u64(99); // same forests, different compile threshold
            let _ = rng;
            let m = train_phases(&datasets, &QuadrantTeacher, &c, &mut r).unwrap();
            probes.iter().filter(|p| m.rulesets[0].predict(&p[..])).count()
        };
        let loose = convictions(0.2, &mut rng);
        let strict = convictions(0.9, &mut rng);
        assert!(
            strict <= loose,
            "raising certainty must not convict more (strict {strict} > loose {loose})"
        );
    }
}
