//! Grid search over hyper-parameters (paper §4.1 / §4.2.1).
//!
//! iGuard tunes `(t, Ψ, k, T)` and the baseline `(t, Ψ, contamination)`,
//! each maximising the mean of macro F1, PRAUC and ROCAUC on the
//! validation set; the testbed variant maximises the memory-aware reward
//! instead. The tuner is deliberately objective-agnostic: callers supply
//! the candidate list and an evaluation closure.

use iguard_iforest::IsolationForestConfig;
use iguard_runtime::par;

use crate::forest::IGuardConfig;

/// Exhaustive grid search: evaluates every candidate — in parallel across
/// the runtime worker pool — and returns the arg-max with its objective
/// value. Ties go to the earliest candidate, independent of worker count.
///
/// # Panics
/// Panics on an empty candidate list.
pub fn grid_search<C: Clone + Sync>(candidates: &[C], eval: impl Fn(&C) -> f64 + Sync) -> (C, f64) {
    assert!(!candidates.is_empty(), "grid search needs candidates");
    let values = par::par_map_range(candidates.len(), |i| eval(&candidates[i]));
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        assert!(!v.is_nan(), "objective returned NaN");
        match &best {
            Some((_, bv)) if *bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    let (i, v) = best.expect("non-empty candidates");
    (candidates[i].clone(), v)
}

/// The iGuard candidate grid over `(t, Ψ, k)`; the teacher threshold `T`
/// is swept separately via `threshold_quantiles`.
#[derive(Clone, Debug)]
pub struct IGuardGrid {
    pub n_trees: Vec<usize>,
    pub subsample: Vec<usize>,
    pub k_augment: Vec<usize>,
    /// Benign-RMSE quantiles tried for the teacher threshold `T`.
    pub threshold_quantiles: Vec<f64>,
}

impl Default for IGuardGrid {
    fn default() -> Self {
        Self {
            n_trees: vec![7, 15],
            subsample: vec![64, 128],
            k_augment: vec![16, 32],
            threshold_quantiles: vec![0.95, 0.98],
        }
    }
}

impl IGuardGrid {
    /// Expands the grid into `(config, threshold_quantile)` candidates.
    pub fn candidates(&self) -> Vec<(IGuardConfig, f64)> {
        let mut out = Vec::new();
        for &t in &self.n_trees {
            for &psi in &self.subsample {
                for &k in &self.k_augment {
                    for &q in &self.threshold_quantiles {
                        out.push((
                            IGuardConfig {
                                n_trees: t,
                                subsample: psi,
                                k_augment: k,
                                ..Default::default()
                            },
                            q,
                        ));
                    }
                }
            }
        }
        out
    }
}

/// The baseline grid over `(t, Ψ, contamination)`.
#[derive(Clone, Debug)]
pub struct IForestGrid {
    pub n_trees: Vec<usize>,
    pub subsample: Vec<usize>,
    pub contamination: Vec<f64>,
}

impl Default for IForestGrid {
    fn default() -> Self {
        Self {
            n_trees: vec![25, 50, 100],
            subsample: vec![64, 128, 256],
            contamination: vec![0.01, 0.05, 0.1],
        }
    }
}

impl IForestGrid {
    pub fn candidates(&self) -> Vec<IsolationForestConfig> {
        let mut out = Vec::new();
        for &t in &self.n_trees {
            for &psi in &self.subsample {
                for &c in &self.contamination {
                    out.push(IsolationForestConfig {
                        n_trees: t,
                        subsample: psi,
                        contamination: c,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_search_finds_argmax() {
        let candidates = vec![1.0f64, 3.0, 2.0, -5.0];
        let (best, val) = grid_search(&candidates, |&c| -(c - 2.5).abs());
        assert_eq!(best, 3.0);
        assert!((val - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn grid_search_prefers_first_on_ties() {
        let candidates = vec!["a", "b"];
        let (best, _) = grid_search(&candidates, |_| 1.0);
        assert_eq!(best, "a");
    }

    #[test]
    fn grid_search_identical_at_any_worker_count() {
        use iguard_runtime::par::with_workers;
        let candidates: Vec<f64> = (0..64).map(|i| i as f64 / 64.0).collect();
        let run = |workers: usize| {
            with_workers(workers, || grid_search(&candidates, |&c| -(c - 0.37).abs()))
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn iguard_grid_size_is_product() {
        let g = IGuardGrid::default();
        assert_eq!(
            g.candidates().len(),
            g.n_trees.len() * g.subsample.len() * g.k_augment.len() * g.threshold_quantiles.len()
        );
    }

    #[test]
    fn iforest_grid_size_is_product() {
        let g = IForestGrid::default();
        assert_eq!(g.candidates().len(), 27);
    }

    #[test]
    #[should_panic(expected = "needs candidates")]
    fn empty_grid_rejected() {
        let _ = grid_search::<u32>(&[], |_| 0.0);
    }
}
