//! The teacher abstraction: who guides iGuard's training and distillation.
//!
//! The paper uses an ensemble of autoencoders (Magnifier instances); the
//! forest only ever needs two operations from its guide, so we abstract
//! them behind [`Teacher`]:
//!
//! * [`Teacher::predict`] — hard per-sample labels, used during guided
//!   training to compute node entropies (paper Eq. 1–2);
//! * [`Teacher::vote_on_set`] — the distillation vote over a *set* of
//!   samples: each ensemble member averages its reconstruction error over
//!   the set (Eq. 5) and the weighted member vote labels the set (Eq. 6).
//!
//! Teachers answer through `&self` and are `Sync`: guided trees grow in
//! parallel across the runtime worker pool, all querying one shared guide.

use iguard_models::AnomalyDetector;
use iguard_runtime::Dataset;

/// A guide for iGuard training and distillation.
pub trait Teacher: Sync {
    /// Hard labels for a batch; `true` = malicious.
    fn predict(&self, xs: &Dataset) -> Vec<bool>;

    /// Labels a *set* of samples as one unit via expected scores
    /// (paper Eq. 5–6). An empty set votes benign.
    fn vote_on_set(&self, xs: &Dataset) -> bool;
}

/// A weighted ensemble of anomaly detectors as teacher — the general form
/// of the paper's autoencoder ensemble. Weights are normalised to sum to 1;
/// a sample (or set) is malicious when the weighted member vote exceeds ½.
pub struct EnsembleTeacher<D: AnomalyDetector> {
    members: Vec<D>,
    weights: Vec<f64>,
}

impl<D: AnomalyDetector> EnsembleTeacher<D> {
    /// Uniform-weight ensemble.
    pub fn uniform(members: Vec<D>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let w = 1.0 / members.len() as f64;
        let weights = vec![w; members.len()];
        Self { members, weights }
    }

    /// Explicit weights `w_u` (renormalised).
    pub fn weighted(members: Vec<D>, weights: Vec<f64>) -> Self {
        assert_eq!(members.len(), weights.len(), "one weight per member");
        assert!(!members.is_empty(), "ensemble needs at least one member");
        assert!(weights.iter().all(|&w| w >= 0.0), "weights must be non-negative");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        Self { members, weights: weights.into_iter().map(|w| w / total).collect() }
    }

    pub fn members_mut(&mut self) -> &mut [D] {
        &mut self.members
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl<D: AnomalyDetector> Teacher for EnsembleTeacher<D> {
    fn predict(&self, xs: &Dataset) -> Vec<bool> {
        let mut vote = vec![0.0f64; xs.rows()];
        for (u, m) in self.members.iter().enumerate() {
            let w = self.weights[u];
            for (v, x) in vote.iter_mut().zip(xs.iter_rows()) {
                if m.predict(x) {
                    *v += w;
                }
            }
        }
        vote.into_iter().map(|v| v > 0.5).collect()
    }

    fn vote_on_set(&self, xs: &Dataset) -> bool {
        if xs.rows() == 0 {
            return false;
        }
        let mut vote = 0.0f64;
        for (u, m) in self.members.iter().enumerate() {
            let mean: f64 = xs.iter_rows().map(|x| m.score(x)).sum::<f64>() / xs.rows() as f64;
            if mean > m.threshold() {
                vote += self.weights[u];
            }
        }
        vote > 0.5
    }
}

/// A single detector as teacher (the `r = 1` special case used in most of
/// the paper's experiments, where the single Magnifier guides iGuard).
pub struct DetectorTeacher<D: AnomalyDetector>(pub D);

impl<D: AnomalyDetector> Teacher for DetectorTeacher<D> {
    fn predict(&self, xs: &Dataset) -> Vec<bool> {
        xs.iter_rows().map(|x| self.0.predict(x)).collect()
    }

    fn vote_on_set(&self, xs: &Dataset) -> bool {
        if xs.rows() == 0 {
            return false;
        }
        let mean: f64 = xs.iter_rows().map(|x| self.0.score(x)).sum::<f64>() / xs.rows() as f64;
        mean > self.0.threshold()
    }
}

/// A closure-backed oracle teacher for tests and upper-bound ablations.
pub struct OracleTeacher<F: Fn(&[f32]) -> bool + Sync>(pub F);

impl<F: Fn(&[f32]) -> bool + Sync> Teacher for OracleTeacher<F> {
    fn predict(&self, xs: &Dataset) -> Vec<bool> {
        xs.iter_rows().map(|x| (self.0)(x)).collect()
    }

    fn vote_on_set(&self, xs: &Dataset) -> bool {
        if xs.rows() == 0 {
            return false;
        }
        let mal = xs.iter_rows().filter(|x| (self.0)(x)).count();
        2 * mal > xs.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(rows: &[Vec<f32>]) -> Dataset {
        Dataset::from_rows(rows)
    }

    /// Minimal detector: score = first feature, threshold 0.5.
    struct Stub {
        threshold: f64,
    }

    impl AnomalyDetector for Stub {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn score(&self, x: &[f32]) -> f64 {
            x[0] as f64
        }
        fn threshold(&self) -> f64 {
            self.threshold
        }
        fn set_threshold(&mut self, t: f64) {
            self.threshold = t;
        }
    }

    #[test]
    fn detector_teacher_thresholds_scores() {
        let t = DetectorTeacher(Stub { threshold: 0.5 });
        let labels = t.predict(&rows(&[vec![0.2], vec![0.9]]));
        assert_eq!(labels, vec![false, true]);
    }

    #[test]
    fn detector_teacher_votes_on_mean() {
        let t = DetectorTeacher(Stub { threshold: 0.5 });
        assert!(!t.vote_on_set(&rows(&[vec![0.2], vec![0.3]])));
        assert!(t.vote_on_set(&rows(&[vec![0.2], vec![0.95], vec![0.95]])));
        assert!(!t.vote_on_set(&Dataset::new(1)));
    }

    #[test]
    fn ensemble_weighted_vote() {
        // Member A (weight 0.75) says malicious above 0.5; member B
        // (weight 0.25) above 0.9. A alone carries the vote.
        let members = vec![Stub { threshold: 0.5 }, Stub { threshold: 0.9 }];
        let ens = EnsembleTeacher::weighted(members, vec![3.0, 1.0]);
        let labels = ens.predict(&rows(&[vec![0.7], vec![0.95], vec![0.1]]));
        assert_eq!(labels, vec![true, true, false]);
    }

    #[test]
    fn ensemble_tie_is_benign() {
        // Two members, uniform: one yes + one no = 0.5, not > 0.5.
        let members = vec![Stub { threshold: 0.5 }, Stub { threshold: 0.9 }];
        let ens = EnsembleTeacher::uniform(members);
        assert_eq!(ens.predict(&rows(&[vec![0.7]])), vec![false]);
    }

    #[test]
    fn oracle_majority_on_sets() {
        let o = OracleTeacher(|x: &[f32]| x[0] > 0.0);
        assert!(o.vote_on_set(&rows(&[vec![1.0], vec![1.0], vec![-1.0]])));
        assert!(!o.vote_on_set(&rows(&[vec![1.0], vec![-1.0]]))); // tie -> benign
    }
}
