//! The workspace-wide error type.
//!
//! Before this module each layer had its own enum — [`RuleGenError`] in
//! rule generation, panicking asserts in the TCAM compiler, `WireError` in
//! the packet parsers — and cross-layer callers (the bench harness, the
//! facade examples) had to thread three incompatible `Result` types.
//! [`IguardError`] is the union: every concrete enum keeps its precise
//! variants and `From` impls lift them, so `?` works across layer
//! boundaries while matching on the concrete error stays possible.

use std::fmt;

use crate::rules::RuleGenError;
use iguard_flow::wire::WireError;

/// TCAM compilation failures.
///
/// The ternary compiler lives in `iguard-switch`, which depends on this
/// crate — so the error type is defined here, where the unified
/// [`IguardError`] can name it without a dependency cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcamError {
    /// Field width outside the supported 1..=32 bits.
    BadFieldWidth { bits: u8 },
    /// A quantisation scale that is zero, negative, or non-finite.
    BadScale,
    /// A range entry with `lo > hi`.
    EmptyRange { lo: u32, hi: u32 },
    /// A range bound that does not fit the field width.
    RangeExceedsField { hi: u32, field_max: u32 },
    /// Rule dimensionality disagrees with the field-spec list.
    DimensionMismatch { rules: usize, specs: usize },
}

impl fmt::Display for TcamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcamError::BadFieldWidth { bits } => {
                write!(f, "field width {bits} outside supported 1..=32 bits")
            }
            TcamError::BadScale => write!(f, "quantisation scale must be positive and finite"),
            TcamError::EmptyRange { lo, hi } => write!(f, "empty range [{lo}, {hi}]"),
            TcamError::RangeExceedsField { hi, field_max } => {
                write!(f, "range bound {hi} exceeds field maximum {field_max}")
            }
            TcamError::DimensionMismatch { rules, specs } => {
                write!(f, "rule set has {rules} fields but {specs} field specs were given")
            }
        }
    }
}

impl std::error::Error for TcamError {}

/// Control-loop failures of the emulated switch deployment.
///
/// Rule installs travel a fallible channel to a finite TCAM: both the
/// transport and the destination can refuse. Defined here (like
/// [`TcamError`]) so the unified [`IguardError`] can name it without a
/// dependency cycle on `iguard-switch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchError {
    /// The data-plane blacklist TCAM has no free entry for an install.
    TcamFull { capacity: usize },
    /// The control channel is down (scripted outage or transient fault);
    /// the command was not delivered.
    ChannelDown,
    /// A command was abandoned after exhausting its retry budget.
    RetriesExhausted { attempts: u32 },
    /// A ruleset transaction arrived out of order: its diff was computed
    /// against a base version the data plane does not hold, so applying
    /// it would install a partial table. `expected` is the next version
    /// the plane accepts; `got` is the transaction's version. (Versions
    /// at or below the installed one are idempotent no-ops, not errors.)
    StaleRuleset { expected: u64, got: u64 },
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchError::TcamFull { capacity } => {
                write!(f, "blacklist TCAM full at {capacity} entries")
            }
            SwitchError::ChannelDown => write!(f, "control channel down"),
            SwitchError::RetriesExhausted { attempts } => {
                write!(f, "command abandoned after {attempts} attempts")
            }
            SwitchError::StaleRuleset { expected, got } => {
                write!(f, "stale ruleset transaction: expected version {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for SwitchError {}

/// The unified error of the iGuard workspace.
///
/// Wraps the layer-specific enums; construct via `From`/`?` and match on
/// the variant to recover the concrete error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IguardError {
    /// Whitelist-rule generation failed (region budget exceeded, …).
    RuleGen(RuleGenError),
    /// TCAM range→ternary compilation failed.
    Tcam(TcamError),
    /// A wire-format parse failed (truncated, bad checksum, …).
    Wire(WireError),
    /// A switch control-loop operation failed (channel down, TCAM full, …).
    Switch(SwitchError),
}

impl fmt::Display for IguardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IguardError::RuleGen(e) => write!(f, "rule generation: {e}"),
            IguardError::Tcam(e) => write!(f, "tcam compile: {e}"),
            IguardError::Wire(e) => write!(f, "wire parse: {e}"),
            IguardError::Switch(e) => write!(f, "switch control loop: {e}"),
        }
    }
}

impl From<SwitchError> for IguardError {
    fn from(e: SwitchError) -> Self {
        IguardError::Switch(e)
    }
}

impl From<RuleGenError> for IguardError {
    fn from(e: RuleGenError) -> Self {
        IguardError::RuleGen(e)
    }
}

impl From<TcamError> for IguardError {
    fn from(e: TcamError) -> Self {
        IguardError::Tcam(e)
    }
}

impl From<WireError> for IguardError {
    fn from(e: WireError) -> Self {
        IguardError::Wire(e)
    }
}

impl std::error::Error for IguardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IguardError::RuleGen(e) => Some(e),
            IguardError::Tcam(e) => Some(e),
            IguardError::Wire(e) => Some(e),
            IguardError::Switch(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_lift_each_layer() {
        let r: IguardError = RuleGenError::TooManyRegions { budget: 10, reached: 11 }.into();
        assert!(matches!(r, IguardError::RuleGen(_)));
        let t: IguardError = TcamError::BadScale.into();
        assert!(matches!(t, IguardError::Tcam(TcamError::BadScale)));
        let w: IguardError = WireError::Truncated.into();
        assert!(matches!(w, IguardError::Wire(WireError::Truncated)));
        let s: IguardError = SwitchError::ChannelDown.into();
        assert!(matches!(s, IguardError::Switch(SwitchError::ChannelDown)));
    }

    #[test]
    fn switch_errors_display_their_detail() {
        assert!(IguardError::Switch(SwitchError::TcamFull { capacity: 64 })
            .to_string()
            .contains("64 entries"));
        assert!(IguardError::Switch(SwitchError::RetriesExhausted { attempts: 6 })
            .to_string()
            .contains("6 attempts"));
        let s = IguardError::Switch(SwitchError::StaleRuleset { expected: 3, got: 7 }).to_string();
        assert!(s.contains("version 3") && s.contains("got 7"), "{s}");
    }

    #[test]
    fn display_prefixes_layer_and_keeps_detail() {
        let e = IguardError::Tcam(TcamError::EmptyRange { lo: 9, hi: 3 });
        let s = e.to_string();
        assert!(s.contains("tcam"), "{s}");
        assert!(s.contains("[9, 3]"), "{s}");
        let e = IguardError::RuleGen(RuleGenError::TooManyRegions { budget: 2, reached: 5 });
        assert!(e.to_string().contains("budget of 2"), "{e}");
    }

    #[test]
    fn question_mark_crosses_layers() {
        fn parse() -> Result<(), IguardError> {
            Err(WireError::BadChecksum)?
        }
        assert_eq!(parse().unwrap_err(), IguardError::Wire(WireError::BadChecksum));
    }

    #[test]
    fn source_chains_to_concrete_error() {
        use std::error::Error;
        let e = IguardError::Wire(WireError::BadLength);
        assert!(e.source().is_some());
    }
}
