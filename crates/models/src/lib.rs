//! # iguard-models — unsupervised anomaly-detection baselines
//!
//! The candidate study of paper Appendix A (Fig. 10) compares six
//! unsupervised models as potential "teachers" for iGuard. This crate
//! implements all of them behind one trait:
//!
//! * [`detector::AnomalyDetector`] — fit on benign data, score test samples
//!   (higher = more anomalous), threshold for hard labels.
//! * [`knn::KnnDetector`] — distance to the k-th nearest benign neighbour.
//! * [`pca::PcaDetector`] — reconstruction error outside the top-k
//!   principal subspace (eigen-decomposition via Jacobi rotations).
//! * [`xmeans::XMeansDetector`] — k-means with BIC-driven cluster splitting
//!   (Pelleg & Moore); anomaly score = distance to the nearest centroid.
//! * [`vae::VaeDetector`] — variational autoencoder with the
//!   reparameterisation trick, scored by reconstruction RMSE.
//! * [`magnifier::Magnifier`] — the asymmetric autoencoder of HorusEye
//!   (heavy dilated-convolution encoder, light decoder), the teacher the
//!   paper selects for iGuard.
//!
//! `iguard-iforest` provides the sixth candidate (Isolation Forest); the
//! [`detector`] module wraps it into the same trait.

#![forbid(unsafe_code)]

pub mod detector;
pub mod knn;
pub mod magnifier;
pub mod pca;
pub mod vae;
pub mod xmeans;

pub use detector::{AnomalyDetector, IForestDetector};
pub use knn::KnnDetector;
pub use magnifier::Magnifier;
pub use pca::PcaDetector;
pub use vae::VaeDetector;
pub use xmeans::XMeansDetector;
