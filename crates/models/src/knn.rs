//! k-nearest-neighbour anomaly detection.
//!
//! Score = Euclidean distance (in min-max-scaled space) to the k-th nearest
//! benign training sample. Far from every benign sample ⇒ anomalous.

use iguard_nn::matrix::Matrix;
use iguard_nn::scale::MinMaxScaler;
use iguard_runtime::Dataset;

use crate::detector::{threshold_from_contamination, AnomalyDetector};

/// Configuration of the kNN detector.
#[derive(Clone, Copy, Debug)]
pub struct KnnConfig {
    /// The k in k-th nearest neighbour.
    pub k: usize,
    /// Reference-set cap: at most this many training samples are kept
    /// (evenly strided) to bound inference cost.
    pub max_refs: usize,
    /// Contamination for the default threshold.
    pub contamination: f64,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self { k: 5, max_refs: 2048, contamination: 0.02 }
    }
}

/// The fitted kNN detector.
pub struct KnnDetector {
    /// Columnar reference set (already min-max scaled).
    refs: Dataset,
    scaler: MinMaxScaler,
    k: usize,
    threshold: f64,
}

impl KnnDetector {
    /// Fits on benign training samples.
    ///
    /// # Panics
    /// Panics if `train` is empty or `k` is zero.
    pub fn fit(train: &Dataset, cfg: &KnnConfig) -> Self {
        assert!(train.rows() > 0, "empty training set");
        assert!(cfg.k >= 1, "k must be >= 1");
        let scaler = MinMaxScaler::fit(&Matrix::from_dataset(train));
        // Evenly strided subsample keeps the reference set representative
        // without randomness.
        let stride = (train.rows() / cfg.max_refs.max(1)).max(1);
        let mut refs = Dataset::new(train.cols());
        for x in train.iter_rows().step_by(stride).take(cfg.max_refs) {
            refs.push_row(&scaler.transform_row(x));
        }
        let det = Self { refs, scaler, k: cfg.k, threshold: f64::INFINITY };
        let mut train_scores: Vec<f64> = train.iter_rows().map(|x| det.score_raw(x)).collect();
        let threshold = threshold_from_contamination(&mut train_scores, cfg.contamination);
        Self { threshold, ..det }
    }

    fn score_raw(&self, x: &[f32]) -> f64 {
        let xs = self.scaler.transform_row(x);
        let k = self.k.min(self.refs.rows());
        // Maintain the k smallest distances with a small insertion buffer.
        let mut best = vec![f64::INFINITY; k];
        for r in self.refs.iter_rows() {
            let mut d = 0.0f64;
            for (a, b) in xs.iter().zip(r) {
                let diff = (*a - *b) as f64;
                d += diff * diff;
            }
            if d < best[k - 1] {
                // Insertion sort into the top-k buffer.
                let mut i = k - 1;
                while i > 0 && best[i - 1] > d {
                    best[i] = best[i - 1];
                    i -= 1;
                }
                best[i] = d;
            }
        }
        best[k - 1].sqrt()
    }
}

impl AnomalyDetector for KnnDetector {
    fn name(&self) -> &'static str {
        "kNN"
    }

    fn score(&self, x: &[f32]) -> f64 {
        self.score_raw(x)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn set_threshold(&mut self, t: f64) {
        self.threshold = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testutil;
    use iguard_runtime::rng::Rng;

    #[test]
    fn separates_clusters() {
        let mut rng = Rng::seed_from_u64(1);
        let train = testutil::benign(512, 4, &mut rng);
        let det = KnnDetector::fit(&train, &KnnConfig::default());
        testutil::assert_separates(&det, &mut rng);
    }

    #[test]
    fn training_point_scores_near_zero() {
        let mut rng = Rng::seed_from_u64(2);
        let train = testutil::benign(128, 4, &mut rng);
        let det = KnnDetector::fit(&train, &KnnConfig { k: 1, ..Default::default() });
        // A sample from the training set has distance 0 to itself.
        let s = det.score(train.row(0));
        assert!(s < 1e-6, "self-distance {s}");
    }

    #[test]
    fn kth_distance_monotone_in_k() {
        let mut rng = Rng::seed_from_u64(3);
        let train = testutil::benign(128, 4, &mut rng);
        let x = vec![0.5; 4];
        let mut prev = 0.0;
        for k in [1, 3, 9] {
            let det = KnnDetector::fit(&train, &KnnConfig { k, ..Default::default() });
            let s = det.score(&x);
            assert!(s >= prev, "k={k}: {s} < {prev}");
            prev = s;
        }
    }

    #[test]
    fn max_refs_caps_reference_set() {
        let mut rng = Rng::seed_from_u64(4);
        let train = testutil::benign(1000, 4, &mut rng);
        let det = KnnDetector::fit(&train, &KnnConfig { max_refs: 100, ..Default::default() });
        assert!(det.refs.rows() <= 100);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_train() {
        let _ = KnnDetector::fit(&Dataset::new(4), &KnnConfig::default());
    }
}
