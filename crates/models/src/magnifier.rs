//! Magnifier — the asymmetric autoencoder of HorusEye (USENIX Sec '23),
//! the teacher the paper selects to guide iGuard (Appendix A, Fig. 10).
//!
//! Architecture reproduced here: a *heavy* encoder opening with a dilated
//! 1-D convolution over the feature vector followed by dense compression,
//! and a deliberately *light* decoder (asymmetric) — the encoder does the
//! representational work, keeping reconstruction of benign traffic easy
//! and out-of-distribution traffic hard.

use iguard_nn::conv::DilatedConv1d;
use iguard_nn::layer::{Activation, ActivationLayer, Dense};
use iguard_nn::loss::per_sample_rmse;
use iguard_nn::matrix::Matrix;
use iguard_nn::network::{Network, TrainConfig};
use iguard_nn::optim::Adam;
use iguard_nn::scale::MinMaxScaler;
use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;

use crate::detector::{threshold_from_contamination, AnomalyDetector};

/// Configuration of the Magnifier detector.
#[derive(Clone, Copy, Debug)]
pub struct MagnifierConfig {
    /// Channels produced by the dilated-conv front end.
    pub conv_channels: usize,
    /// Kernel size of the dilated conv (odd).
    pub kernel: usize,
    /// Dilation factor.
    pub dilation: usize,
    /// Dense bottleneck width.
    pub latent: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    /// Quantile of benign training RMSE used as threshold `T`.
    pub threshold_quantile: f64,
}

impl Default for MagnifierConfig {
    fn default() -> Self {
        Self {
            conv_channels: 2,
            kernel: 3,
            dilation: 2,
            latent: 6,
            epochs: 60,
            batch_size: 32,
            learning_rate: 2e-3,
            threshold_quantile: 0.98,
        }
    }
}

/// The fitted Magnifier autoencoder.
pub struct Magnifier {
    scaler: MinMaxScaler,
    net: Network,
    threshold: f64,
    input_dim: usize,
}

impl Magnifier {
    /// Trains on benign samples.
    pub fn fit(train: &Dataset, cfg: &MagnifierConfig, rng: &mut Rng) -> Self {
        assert!(train.rows() > 0, "empty training set");
        let x_raw = Matrix::from_dataset(train);
        let scaler = MinMaxScaler::fit(&x_raw);
        let x = scaler.transform(&x_raw);
        let dim = x.cols();
        // Heavy encoder: dilated conv (1 -> C channels over the feature
        // signal) then dense compression; light decoder: single linear map
        // from the bottleneck back to the features (the asymmetry).
        let conv_out = cfg.conv_channels * dim;
        let enc_mid = (dim * 2).max(cfg.latent + 1);
        let mut net = Network::new(vec![
            Box::new(DilatedConv1d::new(1, cfg.conv_channels, dim, cfg.kernel, cfg.dilation, rng)),
            Box::new(ActivationLayer::new(Activation::LeakyRelu)),
            Box::new(Dense::new(conv_out, enc_mid, rng)),
            Box::new(ActivationLayer::new(Activation::Tanh)),
            Box::new(Dense::new(enc_mid, cfg.latent, rng)),
            Box::new(ActivationLayer::new(Activation::Tanh)),
            // Asymmetric decoder: straight linear reconstruction.
            Box::new(Dense::new(cfg.latent, dim, rng)),
        ]);
        let mut opt = Adam::new(cfg.learning_rate);
        let tc = TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            tol: 1e-7,
            shuffle: true,
        };
        net.fit(&x.clone(), &x, &mut opt, &tc, rng);
        let mut mag = Self { scaler, net, threshold: f64::INFINITY, input_dim: dim };
        let mut scores: Vec<f64> = train.iter_rows().map(|s| mag.score_raw(s)).collect();
        // The paper tunes T by grid search; the default is a benign quantile.
        let q = cfg.threshold_quantile.clamp(0.0, 1.0);
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pos = q * (scores.len() - 1) as f64;
        mag.threshold = scores[pos.round() as usize];
        let _ = threshold_from_contamination; // same mechanism, quantile form
        mag
    }

    /// Reconstruction errors for a batch of raw (unscaled) samples.
    /// Shared-reference inference: many threads can score one Magnifier.
    pub fn reconstruction_errors(&self, xs: &Dataset) -> Vec<f64> {
        if xs.rows() == 0 {
            return Vec::new();
        }
        let x = self.scaler.transform(&Matrix::from_dataset(xs));
        let y = self.net.infer(&x);
        per_sample_rmse(&y, &x).into_iter().map(|v| v as f64).collect()
    }

    /// Mean reconstruction error over a sample set — `RE_leaf` of paper
    /// Eq. 5 when called on a leaf's samples.
    pub fn mean_reconstruction_error(&self, xs: &Dataset) -> f64 {
        let errs = self.reconstruction_errors(xs);
        if errs.is_empty() {
            0.0
        } else {
            errs.iter().sum::<f64>() / errs.len() as f64
        }
    }

    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    pub fn param_count(&self) -> usize {
        self.net.param_count()
    }
}

impl AnomalyDetector for Magnifier {
    fn name(&self) -> &'static str {
        "Magnifier"
    }

    fn score(&self, x: &[f32]) -> f64 {
        self.score_raw(x)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn set_threshold(&mut self, t: f64) {
        self.threshold = t;
    }
}

impl Magnifier {
    fn score_raw(&self, x: &[f32]) -> f64 {
        assert_eq!(x.len(), self.input_dim, "feature width mismatch");
        self.reconstruction_errors(&Dataset::from_rows(&[x.to_vec()]))[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testutil;
    use iguard_runtime::rng::Rng;

    fn quick_cfg() -> MagnifierConfig {
        MagnifierConfig { epochs: 50, ..Default::default() }
    }

    #[test]
    fn separates_clusters() {
        let mut rng = Rng::seed_from_u64(1);
        let train = testutil::benign(512, 4, &mut rng);
        let det = Magnifier::fit(&train, &quick_cfg(), &mut rng);
        testutil::assert_separates(&det, &mut rng);
    }

    #[test]
    fn benign_errors_below_threshold_mostly() {
        let mut rng = Rng::seed_from_u64(2);
        let train = testutil::benign(256, 4, &mut rng);
        let det = Magnifier::fit(&train, &quick_cfg(), &mut rng);
        let flagged = train.iter_rows().filter(|x| det.predict(x)).count();
        // 98th-percentile threshold: ~2% of training flagged.
        assert!(flagged <= 16, "flagged {flagged}/256");
    }

    #[test]
    fn mean_reconstruction_error_orders_classes() {
        let mut rng = Rng::seed_from_u64(3);
        let train = testutil::benign(512, 4, &mut rng);
        let det = Magnifier::fit(&train, &quick_cfg(), &mut rng);
        let ben = testutil::benign(64, 4, &mut rng);
        let mal = testutil::anomalies(64, 4, &mut rng);
        assert!(det.mean_reconstruction_error(&mal) > det.mean_reconstruction_error(&ben));
    }

    #[test]
    fn empty_batch_is_safe() {
        let mut rng = Rng::seed_from_u64(4);
        let train = testutil::benign(64, 4, &mut rng);
        let det =
            Magnifier::fit(&train, &MagnifierConfig { epochs: 3, ..Default::default() }, &mut rng);
        let empty = Dataset::new(4);
        assert!(det.reconstruction_errors(&empty).is_empty());
        assert_eq!(det.mean_reconstruction_error(&empty), 0.0);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn rejects_wrong_width() {
        let mut rng = Rng::seed_from_u64(5);
        let train = testutil::benign(64, 4, &mut rng);
        let det =
            Magnifier::fit(&train, &MagnifierConfig { epochs: 2, ..Default::default() }, &mut rng);
        let _ = det.score(&[0.0; 7]);
    }
}
