//! PCA-subspace anomaly detection.
//!
//! Fit: eigen-decompose the covariance of (standard-scaled) benign data via
//! cyclic Jacobi rotations; keep the top components explaining
//! `variance_kept` of total variance. Score: reconstruction error after
//! projecting onto the retained subspace — samples off the benign subspace
//! reconstruct poorly.

use iguard_nn::matrix::Matrix;
use iguard_nn::scale::StandardScaler;
use iguard_runtime::Dataset;

use crate::detector::{threshold_from_contamination, AnomalyDetector};

/// Configuration of the PCA detector.
#[derive(Clone, Copy, Debug)]
pub struct PcaConfig {
    /// Fraction of variance the retained subspace must explain.
    pub variance_kept: f64,
    /// Contamination for the default threshold.
    pub contamination: f64,
}

impl Default for PcaConfig {
    fn default() -> Self {
        Self { variance_kept: 0.95, contamination: 0.02 }
    }
}

/// Symmetric eigen-decomposition by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors as *columns* of
/// the returned matrix, sorted by descending eigenvalue.
pub fn jacobi_eigen(a: &Matrix, sweeps: usize) -> (Vec<f64>, Matrix) {
    let n = a.rows();
    assert_eq!(n, a.cols(), "matrix must be square");
    let mut m: Vec<Vec<f64>> =
        (0..n).map(|i| a.row(i).iter().map(|&v| v as f64).collect()).collect();
    let mut v = vec![vec![0.0f64; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _ in 0..sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[i][j] * m[i][j];
            }
        }
        if off < 1e-18 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if m[p][q].abs() < 1e-15 {
                    continue;
                }
                let theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let (mkp, mkq) = (m[k][p], m[k][q]);
                    m[k][p] = c * mkp - s * mkq;
                    m[k][q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let (mpk, mqk) = (m[p][k], m[q][k]);
                    m[p][k] = c * mpk - s * mqk;
                    m[q][k] = s * mpk + c * mqk;
                }
                for vk in v.iter_mut() {
                    let (vkp, vkq) = (vk[p], vk[q]);
                    vk[p] = c * vkp - s * vkq;
                    vk[q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[i][i], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let eigenvalues: Vec<f64> = pairs.iter().map(|(val, _)| *val).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (col, (_, src)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors[(r, col)] = v[r][*src] as f32;
        }
    }
    (eigenvalues, vectors)
}

/// The fitted PCA detector.
pub struct PcaDetector {
    scaler: StandardScaler,
    /// `dim x k` matrix of retained components (columns).
    components: Matrix,
    threshold: f64,
    n_components: usize,
}

impl PcaDetector {
    /// Fits on benign training samples.
    ///
    /// The covariance is accumulated straight off the columnar [`Dataset`]:
    /// one pass over the flat row-major buffer, one scratch row for the
    /// scaled sample — no intermediate row-of-vecs materialisation.
    pub fn fit(train: &Dataset, cfg: &PcaConfig) -> Self {
        assert!(train.rows() > 0, "empty training set");
        assert!((0.0..=1.0).contains(&cfg.variance_kept));
        let scaler = StandardScaler::fit(&Matrix::from_dataset(train));
        let dim = train.cols();
        let n = train.rows();
        // Covariance = X^T X / n (data already centred by the scaler),
        // accumulated in f64 row by row off the columnar buffer.
        let mut acc = vec![0.0f64; dim * dim];
        for row in train.iter_rows() {
            let xs = scaler.transform_row(row);
            for j in 0..dim {
                let xj = xs[j] as f64;
                for k in j..dim {
                    acc[j * dim + k] += xj * xs[k] as f64;
                }
            }
        }
        let mut cov = Matrix::zeros(dim, dim);
        for j in 0..dim {
            for k in j..dim {
                let v = (acc[j * dim + k] / n as f64) as f32;
                cov[(j, k)] = v;
                cov[(k, j)] = v;
            }
        }
        let (eigenvalues, vectors) = jacobi_eigen(&cov, 50);
        let total: f64 = eigenvalues.iter().map(|&e| e.max(0.0)).sum();
        let mut kept = 0usize;
        let mut acc = 0.0;
        for &e in &eigenvalues {
            kept += 1;
            acc += e.max(0.0);
            if total > 0.0 && acc / total >= cfg.variance_kept {
                break;
            }
        }
        let kept = kept.clamp(1, dim);
        // Copy the first `kept` columns.
        let mut components = Matrix::zeros(dim, kept);
        for r in 0..dim {
            for c in 0..kept {
                components[(r, c)] = vectors[(r, c)];
            }
        }
        let mut det = Self { scaler, components, threshold: f64::INFINITY, n_components: kept };
        let mut scores: Vec<f64> = train.iter_rows().map(|s| det.score_raw(s)).collect();
        det.threshold = threshold_from_contamination(&mut scores, cfg.contamination);
        det
    }

    pub fn n_components(&self) -> usize {
        self.n_components
    }

    fn score_raw(&self, x: &[f32]) -> f64 {
        let xs = self.scaler.transform(&Matrix::from_rows(&[x.to_vec()]));
        // Project and reconstruct: x̂ = (x W) Wᵀ.
        let z = xs.matmul(&self.components);
        let recon = z.matmul_t(&self.components);
        let mut err = 0.0f64;
        for (a, b) in xs.as_slice().iter().zip(recon.as_slice()) {
            let d = (*a - *b) as f64;
            err += d * d;
        }
        (err / xs.cols() as f64).sqrt()
    }
}

impl AnomalyDetector for PcaDetector {
    fn name(&self) -> &'static str {
        "PCA"
    }

    fn score(&self, x: &[f32]) -> f64 {
        self.score_raw(x)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn set_threshold(&mut self, t: f64) {
        self.threshold = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_runtime::rng::Rng;

    #[test]
    fn jacobi_recovers_diagonal() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]);
        let (vals, _) = jacobi_eigen(&a, 20);
        assert!((vals[0] - 3.0).abs() < 1e-5);
        assert!((vals[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn jacobi_known_symmetric() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (vals, vecs) = jacobi_eigen(&a, 20);
        assert!((vals[0] - 3.0).abs() < 1e-5);
        assert!((vals[1] - 1.0).abs() < 1e-5);
        // First eigenvector ∝ (1,1)/√2.
        let v0 = (vecs[(0, 0)], vecs[(1, 0)]);
        assert!((v0.0.abs() - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!((v0.0 - v0.1).abs() < 1e-3);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0, 0.5], vec![1.0, 3.0, 0.2], vec![0.5, 0.2, 2.0]]);
        let (_, vecs) = jacobi_eigen(&a, 30);
        let gram = vecs.t_matmul(&vecs);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((gram[(i, j)] - want).abs() < 1e-4, "gram[{i}{j}] = {}", gram[(i, j)]);
            }
        }
    }

    /// Data on a 1-D line embedded in 3-D: off-line points score high.
    #[test]
    fn detects_off_subspace_points() {
        let mut rng = Rng::seed_from_u64(1);
        let mut train = Dataset::new(3);
        for _ in 0..400 {
            let t: f32 = rng.gen_range(-1.0..1.0);
            train.push_row(&[
                t,
                2.0 * t + rng.gen_range(-0.01..0.01),
                -t + rng.gen_range(-0.01..0.01),
            ]);
        }
        let det = PcaDetector::fit(&train, &PcaConfig { variance_kept: 0.9, contamination: 0.02 });
        assert!(det.n_components() < 3, "line data should need < 3 components");
        let on_line = det.score(&[0.5, 1.0, -0.5]);
        let off_line = det.score(&[0.5, -1.0, 0.5]);
        assert!(off_line > 5.0 * on_line, "off {off_line} vs on {on_line}");
    }

    #[test]
    fn full_variance_keeps_all_components_and_zero_error() {
        let mut rng = Rng::seed_from_u64(2);
        let mut train = Dataset::new(2);
        for _ in 0..100 {
            train.push_row(&[rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
        }
        let det = PcaDetector::fit(&train, &PcaConfig { variance_kept: 1.0, contamination: 0.05 });
        assert_eq!(det.n_components(), 2);
        // With all components kept, reconstruction is exact.
        assert!(det.score(train.row(3)) < 1e-3);
    }
}
