//! The common anomaly-detector interface and the iForest adapter.

use iguard_iforest::{IsolationForest, IsolationForestConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An unsupervised anomaly detector: fitted on benign data only, it assigns
/// each sample a score (higher = more anomalous) and a hard label via a
/// threshold.
///
/// `score` takes `&mut self` because neural detectors cache activations on
/// the forward pass.
pub trait AnomalyDetector {
    /// Human-readable model name (matches paper Fig. 10 labels).
    fn name(&self) -> &'static str;

    /// Anomaly score of one sample; higher = more anomalous.
    fn score(&mut self, x: &[f32]) -> f64;

    /// The decision threshold used by [`Self::predict`].
    fn threshold(&self) -> f64;

    /// Overrides the decision threshold (validation tuning).
    fn set_threshold(&mut self, t: f64);

    /// Hard label: `true` = malicious.
    fn predict(&mut self, x: &[f32]) -> bool {
        self.score(x) > self.threshold()
    }

    /// Batch scores.
    fn scores(&mut self, xs: &[Vec<f32>]) -> Vec<f64> {
        xs.iter().map(|x| self.score(x)).collect()
    }

    /// Batch labels.
    fn predictions(&mut self, xs: &[Vec<f32>]) -> Vec<bool> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Conventional Isolation Forest behind the common interface (the sixth
/// candidate of paper Fig. 10 and the baseline of every comparison).
pub struct IForestDetector {
    forest: IsolationForest,
    threshold: f64,
}

impl IForestDetector {
    /// Fits an Isolation Forest on benign training data with a
    /// deterministic internal RNG derived from `seed`.
    pub fn fit(train: &[Vec<f32>], cfg: &IsolationForestConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let forest = IsolationForest::fit(train, cfg, &mut rng);
        let threshold = forest.threshold();
        Self { forest, threshold }
    }

    pub fn forest(&self) -> &IsolationForest {
        &self.forest
    }
}

impl AnomalyDetector for IForestDetector {
    fn name(&self) -> &'static str {
        "iForest"
    }

    fn score(&mut self, x: &[f32]) -> f64 {
        self.forest.score(x)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn set_threshold(&mut self, t: f64) {
        self.threshold = t;
    }
}

/// Fits `detector.set_threshold` so that `contamination` of the given
/// (typically validation) scores exceed it. Shared by every detector.
pub fn threshold_from_contamination(scores: &mut Vec<f64>, contamination: f64) -> f64 {
    assert!(!scores.is_empty(), "need scores to fit threshold");
    assert!((0.0..1.0).contains(&contamination));
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((1.0 - contamination) * (scores.len() - 1) as f64).round() as usize;
    scores[idx.min(scores.len() - 1)]
}

#[cfg(test)]
pub(crate) mod testutil {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A benign cluster around 0.3 with mild spread in `dim` dimensions.
    pub fn benign(n: usize, dim: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
        (0..n)
            .map(|_| (0..dim).map(|_| 0.3 + rng.gen_range(-0.08..0.08)).collect())
            .collect()
    }

    /// Anomalies around 0.85.
    pub fn anomalies(n: usize, dim: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
        (0..n)
            .map(|_| (0..dim).map(|_| 0.85 + rng.gen_range(-0.05..0.05)).collect())
            .collect()
    }

    /// Asserts the detector separates the clusters with AUC-like quality.
    pub fn assert_separates(det: &mut dyn super::AnomalyDetector, rng: &mut StdRng) {
        let ben = benign(64, 4, rng);
        let mal = anomalies(64, 4, rng);
        let b_mean: f64 = ben.iter().map(|x| det.score(x)).sum::<f64>() / 64.0;
        let m_mean: f64 = mal.iter().map(|x| det.score(x)).sum::<f64>() / 64.0;
        assert!(
            m_mean > b_mean,
            "{}: anomaly score {m_mean} <= benign {b_mean}",
            det.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn iforest_detector_separates_clusters() {
        let mut rng = StdRng::seed_from_u64(1);
        let train = testutil::benign(512, 4, &mut rng);
        let cfg = IsolationForestConfig { n_trees: 50, subsample: 128, contamination: 0.05 };
        let mut det = IForestDetector::fit(&train, &cfg, 7);
        testutil::assert_separates(&mut det, &mut rng);
    }

    #[test]
    fn threshold_override_changes_predictions() {
        let mut rng = StdRng::seed_from_u64(2);
        let train = testutil::benign(256, 4, &mut rng);
        let cfg = IsolationForestConfig::default();
        let mut det = IForestDetector::fit(&train, &cfg, 7);
        let x = vec![0.3; 4];
        det.set_threshold(-1.0);
        assert!(det.predict(&x)); // everything above an impossible threshold
        det.set_threshold(2.0);
        assert!(!det.predict(&x));
    }

    #[test]
    fn contamination_quantile_threshold() {
        let mut scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let t = threshold_from_contamination(&mut scores, 0.1);
        assert_eq!(t, 89.0);
        let above = scores.iter().filter(|&&s| s > t).count();
        assert_eq!(above, 10);
    }
}
