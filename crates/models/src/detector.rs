//! The common anomaly-detector interface and the iForest adapter.

use iguard_iforest::{IsolationForest, IsolationForestConfig};
use iguard_runtime::rng::Rng;
use iguard_runtime::{par, Dataset};

/// An unsupervised anomaly detector: fitted on benign data only, it assigns
/// each sample a score (higher = more anomalous) and a hard label via a
/// threshold.
///
/// Scoring goes through `&self` so a fitted detector can be shared across
/// the runtime worker pool; the default batch methods exploit that by
/// scoring [`Dataset`] rows in parallel (output order matches row order).
pub trait AnomalyDetector: Sync {
    /// Human-readable model name (matches paper Fig. 10 labels).
    fn name(&self) -> &'static str;

    /// Anomaly score of one sample; higher = more anomalous.
    fn score(&self, x: &[f32]) -> f64;

    /// The decision threshold used by [`Self::predict`].
    fn threshold(&self) -> f64;

    /// Overrides the decision threshold (validation tuning).
    fn set_threshold(&mut self, t: f64);

    /// Hard label: `true` = malicious.
    fn predict(&self, x: &[f32]) -> bool {
        self.score(x) > self.threshold()
    }

    /// Batch scores over the rows of `data`, in parallel.
    fn scores(&self, data: &Dataset) -> Vec<f64> {
        par::par_map_range(data.rows(), |i| self.score(data.row(i)))
    }

    /// Batch labels over the rows of `data`, in parallel.
    fn predictions(&self, data: &Dataset) -> Vec<bool> {
        par::par_map_range(data.rows(), |i| self.predict(data.row(i)))
    }
}

/// Conventional Isolation Forest behind the common interface (the sixth
/// candidate of paper Fig. 10 and the baseline of every comparison).
pub struct IForestDetector {
    forest: IsolationForest,
    threshold: f64,
}

impl IForestDetector {
    /// Fits an Isolation Forest on benign training data with a
    /// deterministic internal RNG derived from `seed`.
    pub fn fit(train: &Dataset, cfg: &IsolationForestConfig, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let forest = IsolationForest::fit(train, cfg, &mut rng);
        let threshold = forest.threshold();
        Self { forest, threshold }
    }

    pub fn forest(&self) -> &IsolationForest {
        &self.forest
    }
}

impl AnomalyDetector for IForestDetector {
    fn name(&self) -> &'static str {
        "iForest"
    }

    fn score(&self, x: &[f32]) -> f64 {
        self.forest.score(x)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn set_threshold(&mut self, t: f64) {
        self.threshold = t;
    }
}

/// Fits `detector.set_threshold` so that `contamination` of the given
/// (typically validation) scores exceed it. Shared by every detector.
pub fn threshold_from_contamination(scores: &mut Vec<f64>, contamination: f64) -> f64 {
    assert!(!scores.is_empty(), "need scores to fit threshold");
    assert!((0.0..1.0).contains(&contamination));
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((1.0 - contamination) * (scores.len() - 1) as f64).round() as usize;
    scores[idx.min(scores.len() - 1)]
}

#[cfg(test)]
pub(crate) mod testutil {
    use iguard_runtime::rng::Rng;
    use iguard_runtime::Dataset;

    /// A benign cluster around 0.3 with mild spread in `dim` dimensions.
    pub fn benign(n: usize, dim: usize, rng: &mut Rng) -> Dataset {
        let mut d = Dataset::new(dim);
        for _ in 0..n {
            let row: Vec<f32> = (0..dim).map(|_| 0.3 + rng.gen_range(-0.08..0.08)).collect();
            d.push_row(&row);
        }
        d
    }

    /// Anomalies around 0.85.
    pub fn anomalies(n: usize, dim: usize, rng: &mut Rng) -> Dataset {
        let mut d = Dataset::new(dim);
        for _ in 0..n {
            let row: Vec<f32> = (0..dim).map(|_| 0.85 + rng.gen_range(-0.05..0.05)).collect();
            d.push_row(&row);
        }
        d
    }

    /// Asserts the detector separates the clusters with AUC-like quality.
    pub fn assert_separates(det: &dyn super::AnomalyDetector, rng: &mut Rng) {
        let ben = benign(64, 4, rng);
        let mal = anomalies(64, 4, rng);
        let b_mean: f64 = det.scores(&ben).iter().sum::<f64>() / 64.0;
        let m_mean: f64 = det.scores(&mal).iter().sum::<f64>() / 64.0;
        assert!(m_mean > b_mean, "{}: anomaly score {m_mean} <= benign {b_mean}", det.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_runtime::rng::Rng;

    #[test]
    fn iforest_detector_separates_clusters() {
        let mut rng = Rng::seed_from_u64(1);
        let train = testutil::benign(512, 4, &mut rng);
        let cfg = IsolationForestConfig { n_trees: 50, subsample: 128, contamination: 0.05 };
        let det = IForestDetector::fit(&train, &cfg, 7);
        testutil::assert_separates(&det, &mut rng);
    }

    #[test]
    fn threshold_override_changes_predictions() {
        let mut rng = Rng::seed_from_u64(2);
        let train = testutil::benign(256, 4, &mut rng);
        let cfg = IsolationForestConfig::default();
        let mut det = IForestDetector::fit(&train, &cfg, 7);
        let x = vec![0.3; 4];
        det.set_threshold(-1.0);
        assert!(det.predict(&x)); // everything above an impossible threshold
        det.set_threshold(2.0);
        assert!(!det.predict(&x));
    }

    #[test]
    fn batch_scores_match_serial_at_any_worker_count() {
        use iguard_runtime::par::with_workers;
        let mut rng = Rng::seed_from_u64(3);
        let train = testutil::benign(256, 4, &mut rng);
        let det = IForestDetector::fit(&train, &IsolationForestConfig::default(), 7);
        let serial: Vec<f64> = train.iter_rows().map(|x| det.score(x)).collect();
        for workers in [1, 2, 8] {
            let batch = with_workers(workers, || det.scores(&train));
            assert_eq!(serial, batch, "workers = {workers}");
        }
    }

    #[test]
    fn contamination_quantile_threshold() {
        let mut scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let t = threshold_from_contamination(&mut scores, 0.1);
        assert_eq!(t, 89.0);
        let above = scores.iter().filter(|&&s| s > t).count();
        assert_eq!(above, 10);
    }
}
