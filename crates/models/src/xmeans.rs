//! X-means anomaly detection (Pelleg & Moore 2000).
//!
//! k-means whose k is chosen by recursively splitting clusters when the
//! Bayesian Information Criterion of a 2-way split beats the unsplit
//! parent. Anomaly score = distance to the nearest centroid in scaled
//! space (benign data sits near a centroid; attack traffic does not).

use iguard_nn::matrix::Matrix;
use iguard_nn::scale::MinMaxScaler;
use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;

use crate::detector::{threshold_from_contamination, AnomalyDetector};

/// Configuration of the X-means detector.
#[derive(Clone, Copy, Debug)]
pub struct XMeansConfig {
    /// Initial number of clusters.
    pub k_init: usize,
    /// Hard cap on clusters.
    pub k_max: usize,
    /// Lloyd iterations per k-means run.
    pub iterations: usize,
    /// Contamination for the default threshold.
    pub contamination: f64,
}

impl Default for XMeansConfig {
    fn default() -> Self {
        Self { k_init: 2, k_max: 16, iterations: 30, contamination: 0.02 }
    }
}

/// The fitted X-means detector.
pub struct XMeansDetector {
    scaler: MinMaxScaler,
    centroids: Vec<Vec<f32>>,
    threshold: f64,
}

/// Lloyd's k-means on scaled rows; returns (centroids, assignment).
fn kmeans(
    data: &Dataset,
    k: usize,
    iterations: usize,
    rng: &mut Rng,
) -> (Vec<Vec<f32>>, Vec<usize>) {
    let n = data.rows();
    let dim = data.cols();
    let k = k.min(n).max(1);
    // k-means++-lite seeding: first centroid random, rest farthest-point.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(data.row(rng.gen_range(0..n)).to_vec());
    while centroids.len() < k {
        let (mut best_i, mut best_d) = (0usize, -1.0f64);
        for (i, x) in data.iter_rows().enumerate() {
            let d = centroids.iter().map(|c| dist2(x, c)).fold(f64::INFINITY, f64::min);
            if d > best_d {
                best_d = d;
                best_i = i;
            }
        }
        centroids.push(data.row(best_i).to_vec());
    }
    let mut assign = vec![0usize; n];
    for _ in 0..iterations {
        let mut moved = false;
        for (i, x) in data.iter_rows().enumerate() {
            let (mut best_c, mut best_d) = (0usize, f64::INFINITY);
            for (c, cent) in centroids.iter().enumerate() {
                let d = dist2(x, cent);
                if d < best_d {
                    best_d = d;
                    best_c = c;
                }
            }
            if assign[i] != best_c {
                assign[i] = best_c;
                moved = true;
            }
        }
        let mut sums = vec![vec![0.0f64; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, x) in data.iter_rows().enumerate() {
            counts[assign[i]] += 1;
            for (s, &v) in sums[assign[i]].iter_mut().zip(x) {
                *s += v as f64;
            }
        }
        for (c, cent) in centroids.iter_mut().enumerate() {
            if counts[c] > 0 {
                for (cv, s) in cent.iter_mut().zip(&sums[c]) {
                    *cv = (*s / counts[c] as f64) as f32;
                }
            }
        }
        if !moved {
            break;
        }
    }
    (centroids, assign)
}

fn dist2(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum()
}

/// BIC of a spherical-Gaussian mixture model over `points` with the given
/// centroids/assignment (Pelleg & Moore's formulation).
fn bic(points: &Dataset, centroids: &[Vec<f32>], assign: &[usize]) -> f64 {
    let n = points.rows() as f64;
    let k = centroids.len() as f64;
    let dim = points.cols() as f64;
    if points.rows() <= centroids.len() {
        return f64::NEG_INFINITY;
    }
    let rss: f64 = points.iter_rows().zip(assign).map(|(x, &a)| dist2(x, &centroids[a])).sum();
    let variance = (rss / (n - k)).max(1e-12);
    let mut loglik = 0.0;
    for (c, cent) in centroids.iter().enumerate() {
        let nc = assign.iter().filter(|&&a| a == c).count() as f64;
        if nc == 0.0 {
            continue;
        }
        let _ = cent;
        loglik += nc * (nc / n).ln()
            - nc * dim / 2.0 * (2.0 * std::f64::consts::PI * variance).ln()
            - (nc - 1.0) / 2.0;
    }
    let params = k * (dim + 1.0);
    loglik - params / 2.0 * n.ln()
}

impl XMeansDetector {
    /// Fits on benign training samples.
    pub fn fit(train: &Dataset, cfg: &XMeansConfig, rng: &mut Rng) -> Self {
        assert!(train.rows() > 0, "empty training set");
        let scaler = MinMaxScaler::fit(&Matrix::from_dataset(train));
        let mut data = Dataset::new(train.cols());
        for x in train.iter_rows() {
            data.push_row(&scaler.transform_row(x));
        }
        let (mut centroids, mut assign) = kmeans(&data, cfg.k_init, cfg.iterations, rng);
        // Improve-structure loop: try splitting each cluster in two; keep
        // the split if the local BIC improves. One pass per doubling until
        // k_max or no split helps.
        loop {
            if centroids.len() >= cfg.k_max {
                break;
            }
            let mut new_centroids: Vec<Vec<f32>> = Vec::new();
            let mut split_any = false;
            for (c, cent) in centroids.iter().enumerate() {
                let member_idx: Vec<usize> =
                    assign.iter().enumerate().filter(|(_, &a)| a == c).map(|(i, _)| i).collect();
                let members = data.select_rows(&member_idx);
                if members.rows() < 8 || new_centroids.len() + 2 > cfg.k_max {
                    new_centroids.push(cent.clone());
                    continue;
                }
                let parent_bic = bic(&members, &[cent.clone()], &vec![0; members.rows()]);
                let (kids, kid_assign) = kmeans(&members, 2, cfg.iterations, rng);
                let child_bic = bic(&members, &kids, &kid_assign);
                if child_bic > parent_bic {
                    new_centroids.extend(kids);
                    split_any = true;
                } else {
                    new_centroids.push(cent.clone());
                }
            }
            centroids = new_centroids;
            // Re-assign globally after structural changes.
            let (refined, refined_assign) = {
                let mut cents = centroids.clone();
                let mut asg = vec![0usize; data.rows()];
                for _ in 0..cfg.iterations {
                    for (i, x) in data.iter_rows().enumerate() {
                        let (mut bc, mut bd) = (0usize, f64::INFINITY);
                        for (c, cent) in cents.iter().enumerate() {
                            let d = dist2(x, cent);
                            if d < bd {
                                bd = d;
                                bc = c;
                            }
                        }
                        asg[i] = bc;
                    }
                    let dim = data.cols();
                    let mut sums = vec![vec![0.0f64; dim]; cents.len()];
                    let mut counts = vec![0usize; cents.len()];
                    for (i, x) in data.iter_rows().enumerate() {
                        counts[asg[i]] += 1;
                        for (s, &v) in sums[asg[i]].iter_mut().zip(x) {
                            *s += v as f64;
                        }
                    }
                    for (c, cent) in cents.iter_mut().enumerate() {
                        if counts[c] > 0 {
                            for (cv, s) in cent.iter_mut().zip(&sums[c]) {
                                *cv = (*s / counts[c] as f64) as f32;
                            }
                        }
                    }
                }
                (cents, asg)
            };
            centroids = refined;
            assign = refined_assign;
            if !split_any {
                break;
            }
        }
        let mut det = Self { scaler, centroids, threshold: f64::INFINITY };
        let mut scores: Vec<f64> = train.iter_rows().map(|x| det.score_raw(x)).collect();
        det.threshold = threshold_from_contamination(&mut scores, cfg.contamination);
        det
    }

    pub fn n_clusters(&self) -> usize {
        self.centroids.len()
    }

    fn score_raw(&self, x: &[f32]) -> f64 {
        let xs = self.scaler.transform_row(x);
        self.centroids.iter().map(|c| dist2(&xs, c)).fold(f64::INFINITY, f64::min).sqrt()
    }
}

impl AnomalyDetector for XMeansDetector {
    fn name(&self) -> &'static str {
        "X-means"
    }

    fn score(&self, x: &[f32]) -> f64 {
        self.score_raw(x)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn set_threshold(&mut self, t: f64) {
        self.threshold = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testutil;
    use iguard_runtime::rng::Rng;

    #[test]
    fn separates_clusters() {
        let mut rng = Rng::seed_from_u64(1);
        let train = testutil::benign(512, 4, &mut rng);
        let det = XMeansDetector::fit(&train, &XMeansConfig::default(), &mut rng);
        testutil::assert_separates(&det, &mut rng);
    }

    #[test]
    fn finds_multiple_well_separated_clusters() {
        let mut rng = Rng::seed_from_u64(2);
        let mut train = Dataset::new(2);
        for center in [0.1f32, 0.5, 0.9] {
            for _ in 0..200 {
                train.push_row(&[
                    center + rng.gen_range(-0.02..0.02),
                    center + rng.gen_range(-0.02..0.02),
                ]);
            }
        }
        let det = XMeansDetector::fit(&train, &XMeansConfig::default(), &mut rng);
        assert!(det.n_clusters() >= 3, "found only {} clusters", det.n_clusters());
    }

    #[test]
    fn centroid_proximity_scores_low() {
        let mut rng = Rng::seed_from_u64(3);
        let train = testutil::benign(256, 4, &mut rng);
        let det = XMeansDetector::fit(&train, &XMeansConfig::default(), &mut rng);
        let near = det.score(&[0.3, 0.3, 0.3, 0.3]);
        let far = det.score(&[0.95, 0.95, 0.95, 0.95]);
        assert!(far > 3.0 * near.max(1e-6));
    }

    #[test]
    fn k_max_is_respected() {
        let mut rng = Rng::seed_from_u64(4);
        let train = testutil::benign(512, 4, &mut rng);
        let det =
            XMeansDetector::fit(&train, &XMeansConfig { k_max: 4, ..Default::default() }, &mut rng);
        assert!(det.n_clusters() <= 4);
    }

    #[test]
    fn kmeans_partitions_all_points() {
        let mut rng = Rng::seed_from_u64(5);
        let data = testutil::benign(100, 3, &mut rng);
        let (cents, assign) = kmeans(&data, 4, 20, &mut rng);
        assert_eq!(assign.len(), 100);
        assert!(assign.iter().all(|&a| a < cents.len()));
    }
}
