//! Variational autoencoder anomaly detection.
//!
//! A small VAE trained on benign data with the reparameterisation trick:
//! `z = μ + exp(logσ²/2)·ε`. Loss = reconstruction MSE + β·KL(q‖N(0,I)).
//! Anomaly score = reconstruction RMSE with the deterministic code `z = μ`.

use iguard_nn::layer::{Activation, ActivationLayer, Dense, Layer};
use iguard_nn::loss::{kl_standard_normal, mse, per_sample_rmse};
use iguard_nn::matrix::Matrix;
use iguard_nn::optim::{Adam, Optimizer};
use iguard_nn::scale::MinMaxScaler;
use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;

use crate::detector::{threshold_from_contamination, AnomalyDetector};

/// Configuration of the VAE detector.
#[derive(Clone, Copy, Debug)]
pub struct VaeConfig {
    pub hidden: usize,
    pub latent: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    /// Weight of the KL term.
    pub beta: f32,
    /// Contamination for the default threshold.
    pub contamination: f64,
}

impl Default for VaeConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            latent: 4,
            epochs: 60,
            batch_size: 32,
            learning_rate: 2e-3,
            beta: 0.05,
            contamination: 0.02,
        }
    }
}

/// The fitted VAE detector.
pub struct VaeDetector {
    scaler: MinMaxScaler,
    enc: Dense,
    enc_act: ActivationLayer,
    mu_head: Dense,
    logvar_head: Dense,
    dec: Dense,
    dec_act: ActivationLayer,
    out: Dense,
    threshold: f64,
}

impl VaeDetector {
    /// Trains on benign samples.
    pub fn fit(train: &Dataset, cfg: &VaeConfig, rng: &mut Rng) -> Self {
        assert!(train.rows() > 0, "empty training set");
        let x_raw = Matrix::from_dataset(train);
        let scaler = MinMaxScaler::fit(&x_raw);
        let x = scaler.transform(&x_raw);
        let dim = x.cols();
        let mut vae = Self {
            scaler,
            enc: Dense::new(dim, cfg.hidden, rng),
            enc_act: ActivationLayer::new(Activation::Tanh),
            mu_head: Dense::new(cfg.hidden, cfg.latent, rng),
            logvar_head: Dense::new(cfg.hidden, cfg.latent, rng),
            dec: Dense::new(cfg.latent, cfg.hidden, rng),
            dec_act: ActivationLayer::new(Activation::Tanh),
            out: Dense::new(cfg.hidden, dim, rng),
            threshold: f64::INFINITY,
        };
        let mut opt = Adam::new(cfg.learning_rate);
        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..cfg.epochs {
            // Fisher–Yates via rand.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(cfg.batch_size) {
                let xb = x.select_rows(chunk);
                vae.train_step(&xb, cfg.beta, &mut opt, rng);
            }
        }
        let mut scores: Vec<f64> = train.iter_rows().map(|s| vae.score_raw(s)).collect();
        vae.threshold = threshold_from_contamination(&mut scores, cfg.contamination);
        vae
    }

    fn train_step(&mut self, xb: &Matrix, beta: f32, opt: &mut Adam, rng: &mut Rng) {
        // Forward.
        let h = self.enc_act.forward(&self.enc.forward(xb));
        let mu = self.mu_head.forward(&h);
        let logvar = self.logvar_head.forward(&h);
        // Reparameterise: z = mu + exp(logvar/2) * eps.
        let mut eps = Matrix::zeros(mu.rows(), mu.cols());
        for v in eps.as_mut_slice() {
            *v = crate::vae::gauss01(rng);
        }
        let sigma = logvar.map(|lv| (0.5 * lv).exp());
        let z = mu.add(&sigma.hadamard(&eps));
        let y = self.out.forward(&self.dec_act.forward(&self.dec.forward(&z)));

        // Losses and gradients.
        let (_recon, dy) = mse(&y, xb);
        let (_kl, dkl_mu, dkl_lv) = kl_standard_normal(&mu, &logvar);

        // Backward through decoder.
        for l in [&mut self.out as &mut dyn Layer, &mut self.dec_act, &mut self.dec] {
            l.zero_grads();
        }
        self.enc.zero_grads();
        self.enc_act.zero_grads();
        self.mu_head.zero_grads();
        self.logvar_head.zero_grads();

        let dz = self.dec.backward(&self.dec_act.backward(&self.out.backward(&dy)));
        // dz/dmu = 1; dz/dlogvar = 0.5 * sigma * eps.
        let dmu = dz.add(&dkl_mu.scale(beta));
        let dlv = dz.hadamard(&sigma.hadamard(&eps).scale(0.5)).add(&dkl_lv.scale(beta));
        let dh_mu = self.mu_head.backward(&dmu);
        let dh_lv = self.logvar_head.backward(&dlv);
        let dh = dh_mu.add(&dh_lv);
        let _dx = self.enc.backward(&self.enc_act.backward(&dh));

        // Optimizer step over every tensor in stable order.
        let mut pairs: Vec<(&mut [f32], &mut [f32])> = Vec::new();
        pairs.extend(self.enc.params_and_grads());
        pairs.extend(self.mu_head.params_and_grads());
        pairs.extend(self.logvar_head.params_and_grads());
        pairs.extend(self.dec.params_and_grads());
        pairs.extend(self.out.params_and_grads());
        opt.step(&mut pairs);
    }

    /// Deterministic reconstruction (z = μ) of scaled inputs. Cache-free
    /// inference, so scoring shares the detector across threads.
    fn reconstruct(&self, x_scaled: &Matrix) -> Matrix {
        let h = self.enc_act.infer(&self.enc.infer(x_scaled));
        let mu = self.mu_head.infer(&h);
        self.out.infer(&self.dec_act.infer(&self.dec.infer(&mu)))
    }

    fn score_raw(&self, x: &[f32]) -> f64 {
        let xs = self.scaler.transform(&Matrix::from_rows(&[x.to_vec()]));
        let y = self.reconstruct(&xs);
        per_sample_rmse(&y, &xs)[0] as f64
    }
}

/// Standard-normal sample via Box–Muller.
fn gauss01(rng: &mut Rng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

impl AnomalyDetector for VaeDetector {
    fn name(&self) -> &'static str {
        "VAE"
    }

    fn score(&self, x: &[f32]) -> f64 {
        self.score_raw(x)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn set_threshold(&mut self, t: f64) {
        self.threshold = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testutil;
    use iguard_runtime::rng::Rng;

    fn quick_cfg() -> VaeConfig {
        VaeConfig { epochs: 40, hidden: 12, latent: 3, ..Default::default() }
    }

    #[test]
    fn separates_clusters() {
        let mut rng = Rng::seed_from_u64(1);
        let train = testutil::benign(512, 4, &mut rng);
        let det = VaeDetector::fit(&train, &quick_cfg(), &mut rng);
        testutil::assert_separates(&det, &mut rng);
    }

    #[test]
    fn benign_reconstruction_error_is_small() {
        let mut rng = Rng::seed_from_u64(2);
        let train = testutil::benign(512, 4, &mut rng);
        let det = VaeDetector::fit(&train, &quick_cfg(), &mut rng);
        // The blob is isotropic in 4-D, so a 3-D latent necessarily loses
        // ~one dimension of variance; the bound reflects that floor.
        let mean: f64 = train.iter_rows().take(64).map(|x| det.score(x)).sum::<f64>() / 64.0;
        assert!(mean < 0.35, "benign RMSE {mean} too large — VAE failed to train");
    }

    #[test]
    fn threshold_flags_contamination_fraction() {
        let mut rng = Rng::seed_from_u64(3);
        let train = testutil::benign(256, 4, &mut rng);
        let det =
            VaeDetector::fit(&train, &VaeConfig { contamination: 0.1, ..quick_cfg() }, &mut rng);
        let flagged = train.iter_rows().filter(|x| det.predict(x)).count();
        assert!((10..=60).contains(&flagged), "flagged {flagged}/256");
    }

    #[test]
    fn gauss01_is_standard_normal() {
        let mut rng = Rng::seed_from_u64(4);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gauss01(&mut rng) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05);
        assert!((var - 1.0).abs() < 0.1);
    }
}
