//! Fixed-bucket power-of-two histograms for sizes and latencies.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket `i` holds values whose bit length is `i`: bucket 0 is exactly
/// `{0}`, bucket 1 is `{1}`, bucket 2 is `[2, 4)`, …, bucket 64 is
/// `[2^63, u64::MAX]`. 65 buckets cover all of `u64` with no configuration.
pub const N_BUCKETS: usize = 65;

/// Bucket index of a value: its bit length.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// A fixed-bucket histogram. Recording touches three relaxed atomics plus
/// two saturating min/max updates; there is no locking and no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    total: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
            count: AtomicU64::new(0),
            total: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Smallest recorded value; `None` before any recording.
    pub fn min(&self) -> Option<u64> {
        let v = self.min.load(Ordering::Relaxed);
        (v != u64::MAX || self.count() > 0).then_some(v)
    }

    /// Largest recorded value; `None` before any recording.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Point-in-time copy of the full state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            total: self.total(),
            min: self.min(),
            max: self.max(),
        }
    }

    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.total.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A frozen copy of a [`Histogram`], checkable and serialisable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub total: u64,
    pub min: Option<u64>,
    pub max: Option<u64>,
}

impl HistogramSnapshot {
    /// Internal consistency (valid when writers are quiescent): the bucket
    /// sum equals the count, min/max bracket the populated buckets, and the
    /// mean lies within [min, max].
    pub fn verify(&self, name: &str) -> Result<(), String> {
        let sum: u64 = self.buckets.iter().sum();
        if sum != self.count {
            return Err(format!("histogram {name}: bucket sum {sum} != count {}", self.count));
        }
        if self.count == 0 {
            return Ok(());
        }
        let (min, max) = (self.min.unwrap_or(u64::MAX), self.max.unwrap_or(0));
        if min > max {
            return Err(format!("histogram {name}: min {min} > max {max}"));
        }
        let mean = self.total as f64 / self.count as f64;
        if mean < min as f64 || mean > max as f64 {
            return Err(format!("histogram {name}: mean {mean} outside [{min}, {max}]"));
        }
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 && (bucket_of(max) < i || bucket_of(min) > i) {
                return Err(format!(
                    "histogram {name}: populated bucket {i} outside min/max bit range"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..N_BUCKETS {
            assert_eq!(bucket_of(bucket_lo(i)), i.max(0));
        }
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.total, 1033);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(1024));
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the ones
        assert_eq!(s.buckets[3], 1); // 7 ∈ [4, 8)
        assert_eq!(s.buckets[11], 1); // 1024 ∈ [1024, 2048)
        s.verify("test").unwrap();
    }

    #[test]
    fn empty_histogram_verifies() {
        Histogram::new().snapshot().verify("empty").unwrap();
        assert_eq!(Histogram::new().min(), None);
        assert_eq!(Histogram::new().max(), None);
    }

    #[test]
    fn verify_catches_count_mismatch() {
        let mut s = Histogram::new().snapshot();
        s.count = 3; // buckets all zero
        assert!(s.verify("broken").unwrap_err().contains("bucket sum"));
    }

    #[test]
    fn verify_catches_mean_outside_range() {
        let h = Histogram::new();
        h.record(10);
        let mut s = h.snapshot();
        s.total = 1; // mean 1 < min 10
        assert!(s.verify("broken").unwrap_err().contains("mean"));
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, None);
        s.verify("reset").unwrap();
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..500u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        h.snapshot().verify("concurrent").unwrap();
        assert_eq!(h.count(), 2000);
    }
}
