//! A minimal JSON writer — just enough to serialise snapshots. Emission
//! only; the workspace never parses JSON (the bench-diff workflow uses
//! `jq`/Python outside the build).

/// Escapes and quotes a string per RFC 8259.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number. JSON has no NaN/∞; those become
/// `null`, and integral values print without a fractional part.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "null".into();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A growing JSON object literal: `{"k": v, ...}` with insertion order.
#[derive(Debug, Default)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a field with a pre-rendered JSON value.
    pub fn raw(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, string(value))
    }

    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, value.to_string())
    }

    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.raw(key, number(value))
    }

    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    pub fn opt_u64(&mut self, key: &str, value: Option<u64>) -> &mut Self {
        match value {
            Some(v) => self.u64(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// Renders the object; `indent` is the nesting depth for pretty output.
    pub fn render(&self, indent: usize) -> String {
        if self.fields.is_empty() {
            return "{}".into();
        }
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        let body = self
            .fields
            .iter()
            .map(|(k, v)| format!("{pad}{}: {v}", string(k)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\n{body}\n{close}}}")
    }
}

/// Renders a `u64` slice as a JSON array.
pub fn u64_array(values: &[u64]) -> String {
    let body = values.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
    format!("[{body}]")
}

/// Renders pre-rendered JSON values as a pretty array at nesting depth
/// `indent` (one element per line, matching [`Object::render`]).
pub fn array(items: &[String], indent: usize) -> String {
    if items.is_empty() {
        return "[]".into();
    }
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    let body = items.iter().map(|i| format!("{pad}{i}")).collect::<Vec<_>>().join(",\n");
    format!("[\n{body}\n{close}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        assert_eq!(string("ab"), r#""ab""#);
        assert_eq!(string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(3.5), "3.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_renders_nested() {
        let mut inner = Object::new();
        inner.u64("count", 2);
        let mut o = Object::new();
        o.str("name", "x").raw("inner", inner.render(1)).bool("on", true);
        let s = o.render(0);
        assert!(s.contains("\"name\": \"x\""));
        assert!(s.contains("\"count\": 2"));
        assert!(s.starts_with("{\n") && s.ends_with('}'));
    }

    #[test]
    fn arrays() {
        assert_eq!(u64_array(&[1, 2, 3]), "[1, 2, 3]");
        assert_eq!(u64_array(&[]), "[]");
    }

    #[test]
    fn pretty_arrays() {
        assert_eq!(array(&[], 0), "[]");
        let mut o = Object::new();
        o.u64("n", 1);
        let a = array(&[o.render(1), "2".into()], 0);
        assert!(a.starts_with("[\n") && a.ends_with(']'));
        assert!(a.contains("\"n\": 1"));
        assert!(a.contains("  2"));
    }
}
