//! Relaxed atomic event counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter. All operations are relaxed:
/// counters carry no synchronisation meaning, only totals, so the hot-path
/// cost is a single atomic add.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (bench-reporter runs start from a clean slate).
    /// After a reset, monotonicity checks against pre-reset snapshots are
    /// void — take a fresh baseline.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
