//! Named span timers: wall-clock accumulation per pipeline stage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Accumulated wall-clock time of a named stage: count, total, min, max in
/// nanoseconds. Recording is four relaxed atomics; [`Span::time`] skips the
/// clock reads entirely when telemetry is disabled, so a disabled build
/// pays only an atomic load and a branch per span.
#[derive(Debug, Default)]
pub struct Span {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Span {
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records a measured duration.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Times `f`, recording its duration. When telemetry is disabled the
    /// closure runs untimed — zero clock reads.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        if !crate::enabled() {
            return f();
        }
        let t = Instant::now();
        let r = f();
        self.record_ns(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        r
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    pub fn min_ns(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min_ns.load(Ordering::Relaxed))
    }

    pub fn max_ns(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max_ns.load(Ordering::Relaxed))
    }

    /// Mean nanoseconds per recorded span; `None` before any recording.
    pub fn mean_ns(&self) -> Option<f64> {
        let c = self.count();
        (c > 0).then(|| self.total_ns() as f64 / c as f64)
    }

    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_durations() {
        let s = Span::new();
        s.record_ns(100);
        s.record_ns(300);
        assert_eq!(s.count(), 2);
        assert_eq!(s.total_ns(), 400);
        assert_eq!(s.min_ns(), Some(100));
        assert_eq!(s.max_ns(), Some(300));
        assert_eq!(s.mean_ns(), Some(200.0));
    }

    #[test]
    fn empty_span_has_no_extremes() {
        let s = Span::new();
        assert_eq!(s.min_ns(), None);
        assert_eq!(s.max_ns(), None);
        assert_eq!(s.mean_ns(), None);
    }

    #[test]
    fn time_returns_closure_result() {
        let _g = crate::test_gate_lock();
        crate::set_enabled(true);
        let s = Span::new();
        let out = s.time(|| 2 + 2);
        assert_eq!(out, 4);
        assert_eq!(s.count(), 1);
        assert!(s.max_ns().unwrap() >= s.min_ns().unwrap());
    }

    #[test]
    fn disabled_time_skips_recording() {
        let _g = crate::test_gate_lock();
        crate::set_enabled(false);
        let s = Span::new();
        assert_eq!(s.time(|| 7), 7);
        assert_eq!(s.count(), 0);
        crate::set_enabled(true);
    }

    #[test]
    fn reset_clears() {
        let s = Span::new();
        s.record_ns(5);
        s.reset();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min_ns(), None);
    }
}
