//! The process-global metric registry and its JSON snapshots.
//!
//! Metrics are registered lazily by name and live for the process lifetime
//! (handles are leaked `&'static` references), so hot paths pay the
//! registry lock **once** — the [`counter!`](crate::counter!),
//! [`histogram!`](crate::histogram!) and [`span!`](crate::span!) macros
//! cache the handle in a call-site `OnceLock` and every subsequent hit is
//! a single atomic load plus the metric update itself.
//!
//! Naming convention: `crate.subsystem.event`, e.g. `flow.table.collision`
//! or `switch.pipeline.path.blue`. Names must be `'static` literals; the
//! registry deliberately has no string-formatting path that would allocate
//! per event.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::counter::Counter;
use crate::histogram::{Histogram, HistogramSnapshot};
use crate::json;
use crate::span::Span;

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    spans: Mutex<BTreeMap<&'static str, &'static Span>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter registered under `name`, creating it on first use. The
/// returned handle is `'static`: fetch once, increment forever.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = registry().counters.lock().unwrap();
    map.entry(name).or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// The histogram registered under `name`, creating it on first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = registry().histograms.lock().unwrap();
    map.entry(name).or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// The span timer registered under `name`, creating it on first use.
pub fn span(name: &'static str) -> &'static Span {
    let mut map = registry().spans.lock().unwrap();
    map.entry(name).or_insert_with(|| Box::leak(Box::new(Span::new())))
}

/// Cached-handle counter access: `counter!("flow.table.collision").inc()`.
/// After the first call the cost is one `OnceLock` load + the atomic add.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry::counter($name))
    }};
}

/// Cached-handle histogram access: `histogram!("x").record(v)`.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry::histogram($name))
    }};
}

/// Cached-handle span access: `span!("core.fit").time(|| ...)`.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Span> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry::span($name))
    }};
}

/// A frozen [`Span`] state.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanSnapshot {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: Option<u64>,
    pub max_ns: Option<u64>,
}

impl SpanSnapshot {
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total_ns as f64 / self.count as f64)
    }

    fn verify(&self, name: &str) -> Result<(), String> {
        if self.count == 0 {
            return Ok(());
        }
        let (min, max) = (self.min_ns.unwrap_or(u64::MAX), self.max_ns.unwrap_or(0));
        if min > max {
            return Err(format!("span {name}: min {min} > max {max}"));
        }
        let mean = self.mean_ns().unwrap();
        if mean + 1e-9 < min as f64 || mean - 1e-9 > max as f64 {
            return Err(format!("span {name}: mean {mean} outside [{min}, {max}]"));
        }
        Ok(())
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub spans: BTreeMap<String, SpanSnapshot>,
}

/// Snapshots the registry, or `None` when telemetry is disabled
/// (`IGUARD_TELEMETRY=0`) — the promised no-op.
pub fn snapshot() -> Option<Snapshot> {
    if !crate::enabled() {
        return None;
    }
    Some(snapshot_unchecked())
}

/// Snapshots regardless of the gate (the reporter uses it to embed the
/// "disabled" state explicitly; normal callers want [`snapshot`]).
pub fn snapshot_unchecked() -> Snapshot {
    let reg = registry();
    let counters =
        reg.counters.lock().unwrap().iter().map(|(&k, c)| (k.to_string(), c.get())).collect();
    let histograms = reg
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|(&k, h)| (k.to_string(), h.snapshot()))
        .collect();
    let spans = reg
        .spans
        .lock()
        .unwrap()
        .iter()
        .map(|(&k, s)| {
            (
                k.to_string(),
                SpanSnapshot {
                    count: s.count(),
                    total_ns: s.total_ns(),
                    min_ns: s.min_ns(),
                    max_ns: s.max_ns(),
                },
            )
        })
        .collect();
    Snapshot { counters, histograms, spans }
}

/// Zeroes every registered metric (bench runs start from a clean slate).
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().unwrap().values() {
        c.reset();
    }
    for h in reg.histograms.lock().unwrap().values() {
        h.reset();
    }
    for s in reg.spans.lock().unwrap().values() {
        s.reset();
    }
}

impl Snapshot {
    /// Checks every metric's internal invariants. Valid when writers are
    /// quiescent (between pipeline runs, before serialising a report).
    pub fn verify(&self) -> Result<(), String> {
        for (name, h) in &self.histograms {
            h.verify(name)?;
        }
        for (name, s) in &self.spans {
            s.verify(name)?;
        }
        Ok(())
    }

    /// Checks that this snapshot could follow `prev` in the same process:
    /// every counter/histogram/span total is monotonically non-decreasing
    /// and no metric disappeared. (A [`reset`] in between voids this.)
    pub fn verify_monotonic_since(&self, prev: &Snapshot) -> Result<(), String> {
        for (name, &old) in &prev.counters {
            match self.counters.get(name) {
                None => return Err(format!("counter {name} disappeared")),
                Some(&new) if new < old => {
                    return Err(format!("counter {name} went backwards: {old} -> {new}"))
                }
                _ => {}
            }
        }
        for (name, old) in &prev.histograms {
            match self.histograms.get(name) {
                None => return Err(format!("histogram {name} disappeared")),
                Some(new) if new.count < old.count => {
                    return Err(format!(
                        "histogram {name} count went backwards: {} -> {}",
                        old.count, new.count
                    ))
                }
                _ => {}
            }
        }
        for (name, old) in &prev.spans {
            match self.spans.get(name) {
                None => return Err(format!("span {name} disappeared")),
                Some(new) if new.count < old.count || new.total_ns < old.total_ns => {
                    return Err(format!("span {name} went backwards"))
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Serialises the snapshot as a pretty-printed JSON object at nesting
    /// depth `indent` (0 for a standalone document).
    pub fn to_json_at(&self, indent: usize) -> String {
        let mut counters = json::Object::new();
        for (name, &v) in &self.counters {
            counters.u64(name, v);
        }
        let mut histograms = json::Object::new();
        for (name, h) in &self.histograms {
            let mut o = json::Object::new();
            o.u64("count", h.count)
                .u64("total", h.total)
                .opt_u64("min", h.min)
                .opt_u64("max", h.max)
                .raw("buckets", json::u64_array(&h.buckets));
            histograms.raw(name, o.render(indent + 2));
        }
        let mut spans = json::Object::new();
        for (name, s) in &self.spans {
            let mut o = json::Object::new();
            o.u64("count", s.count)
                .u64("total_ns", s.total_ns)
                .opt_u64("min_ns", s.min_ns)
                .opt_u64("max_ns", s.max_ns);
            match s.mean_ns() {
                Some(m) => o.f64("mean_ns", m),
                None => o.raw("mean_ns", "null"),
            };
            spans.raw(name, o.render(indent + 2));
        }
        let mut root = json::Object::new();
        root.raw("counters", counters.render(indent + 1))
            .raw("histograms", histograms.render(indent + 1))
            .raw("spans", spans.render(indent + 1));
        root.render(indent)
    }

    /// Standalone JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_at(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_same_handle() {
        let a = counter("test.registry.same");
        let b = counter("test.registry.same");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn macros_cache_handles() {
        let h1 = counter!("test.registry.macro");
        let h2 = counter!("test.registry.macro");
        assert!(std::ptr::eq(h1, h2));
        h1.add(3);
        assert!(counter("test.registry.macro").get() >= 3);
    }

    #[test]
    fn snapshot_sees_all_metric_kinds() {
        counter("test.snap.counter").add(5);
        histogram("test.snap.hist").record(9);
        span("test.snap.span").record_ns(1000);
        let s = snapshot_unchecked();
        assert!(s.counters["test.snap.counter"] >= 5);
        assert!(s.histograms["test.snap.hist"].count >= 1);
        assert!(s.spans["test.snap.span"].count >= 1);
        s.verify().unwrap();
    }

    #[test]
    fn snapshot_respects_gate() {
        let _g = crate::test_gate_lock();
        crate::set_enabled(false);
        assert!(snapshot().is_none());
        crate::set_enabled(true);
        assert!(snapshot().is_some());
    }

    #[test]
    fn monotonic_check_accepts_growth_and_rejects_regress() {
        counter("test.mono.c").add(1);
        let before = snapshot_unchecked();
        counter("test.mono.c").add(1);
        let after = snapshot_unchecked();
        after.verify_monotonic_since(&before).unwrap();
        let err = before.verify_monotonic_since(&after);
        // `before` has strictly fewer test.mono.c events than `after`.
        assert!(err.unwrap_err().contains("went backwards"));
    }

    #[test]
    fn monotonic_check_rejects_disappearance() {
        counter("test.mono.gone").add(1);
        let before = snapshot_unchecked();
        let mut after = snapshot_unchecked();
        after.counters.remove("test.mono.gone");
        assert!(after.verify_monotonic_since(&before).unwrap_err().contains("disappeared"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        counter("test.json.c").add(2);
        histogram("test.json.h").record(3);
        span("test.json.s").record_ns(7);
        let s = snapshot_unchecked();
        let doc = s.to_json();
        assert!(doc.contains("\"test.json.c\""));
        assert!(doc.contains("\"counters\""));
        assert!(doc.contains("\"buckets\""));
        assert!(doc.contains("\"mean_ns\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert!(doc.starts_with('{') && doc.ends_with('}'));
    }

    /// Recording from many threads, snapshotting after the scope joins,
    /// passes every invariant — the quiescence contract in practice.
    #[test]
    fn concurrent_recording_then_verify() {
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..250u64 {
                        counter!("test.conc.c").inc();
                        histogram!("test.conc.h").record(i);
                        span!("test.conc.s").record_ns(i * 10);
                    }
                });
            }
        });
        let s = snapshot_unchecked();
        s.verify().unwrap();
        assert!(s.counters["test.conc.c"] >= 1000);
        assert!(s.histograms["test.conc.h"].count >= 1000);
    }
}
