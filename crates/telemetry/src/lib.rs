//! # iguard-telemetry — the observability substrate
//!
//! The paper's pitch is a resource budget (TCAM entries, SRAM, per-packet
//! actions — §3.2.3); this crate is how the reproduction *measures* itself
//! against that budget at runtime. Like the rest of the workspace it has
//! **zero external dependencies** and is safe to thread through every hot
//! path:
//!
//! * [`Counter`] — a relaxed atomic `u64`; `inc`/`add` compile to one
//!   `lock xadd`, cheap enough for per-packet call sites.
//! * [`Histogram`] — fixed power-of-two buckets over `u64` values (sizes,
//!   latencies, frontier widths); recording is three relaxed atomics.
//! * [`Span`] — a named timer accumulating count / total / min / max
//!   nanoseconds; [`Span::time`] wraps a closure and skips the clock
//!   entirely when telemetry is disabled.
//! * [`registry`] — a process-global, name-keyed registry that snapshots
//!   every metric to JSON ([`registry::snapshot`] / [`Snapshot::to_json`]).
//!
//! ## Invariant-checked counters
//!
//! Snapshots are not just bags of numbers: [`Snapshot::verify`] checks the
//! internal invariants (histogram bucket sums equal their counts, span
//! min ≤ mean ≤ max, bucket boundaries cover the recorded range) and
//! [`Snapshot::verify_monotonic_since`] checks that counters never move
//! backwards between two snapshots of the same process. The bench reporter
//! runs both before writing `BENCH_PR2.json`, so a broken counter shows up
//! as a failed run, not a silently wrong baseline.
//!
//! ## Determinism
//!
//! Telemetry must never perturb results: no call in this crate touches an
//! RNG stream or reorders work, so a pipeline run with recording on is
//! byte-identical to one with recording off at any worker count (covered
//! by `crates/core/tests/telemetry_determinism.rs`).
//!
//! ## Disabling
//!
//! `IGUARD_TELEMETRY=0` (or `off`/`false`) turns [`registry::snapshot`]
//! into a no-op (`None`) and makes [`Span::time`] skip its clock reads;
//! counters still increment — a relaxed atomic add is cheaper than a
//! branch that would have to be checked per call site anyway. Tests and
//! benches can override the gate in-process with [`set_enabled`].

#![forbid(unsafe_code)]

pub mod counter;
pub mod histogram;
pub mod json;
pub mod registry;
pub mod span;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Snapshot, SpanSnapshot};
pub use span::Span;

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state gate: 0 = unread, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether snapshots (and span clocks) are live. Defaults to enabled; the
/// `IGUARD_TELEMETRY` env var (`0`, `off`, `false`, case-insensitive)
/// disables it. Read once, then cached in an atomic.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = match std::env::var("IGUARD_TELEMETRY") {
                Ok(v) => {
                    let v = v.trim().to_ascii_lowercase();
                    !(v == "0" || v == "off" || v == "false")
                }
                Err(_) => true,
            };
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the gate in-process (tests, the bench reporter). Global, not
/// scoped: callers comparing enabled/disabled runs should be serial.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Serialises tests that flip the global gate (the `cargo test` harness
/// runs tests in parallel threads).
#[cfg(test)]
pub(crate) fn test_gate_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_toggles() {
        let _g = test_gate_lock();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
