//! The workspace-wide builder-setter convention, as one macro.
//!
//! Every config struct in the workspace (`ReplayConfig`, `ChaosConfig`,
//! `ShardedPipelineConfig`, `SketchedPipelineConfig`, `DriftConfig`, …)
//! exposes the same builder shape: public fields, a semantic `Default`,
//! and chained consuming `with_*` setters so call sites read
//!
//! ```text
//! let cfg = ReplayConfig::default().with_batch_size(64).with_exercise_wire(true);
//! ```
//!
//! Before PR 8 each family hand-wrote those setters; [`builder_setters!`]
//! generates the plain `self.field = value` ones so every family stays
//! mechanically identical. Setters with real bodies — clamping, asserts,
//! `Option` wrapping, list pushes — remain hand-written next to the
//! macro invocation, where the divergence from the plain shape is
//! visible. See DESIGN.md ("Config builder conventions") for the full
//! rules.

/// Generates chained consuming `with_*` setters on a config struct.
///
/// Each row is `[doc comments] setter_name => field: Type`; the
/// generated method moves `self`, assigns the field verbatim, and
/// returns `self`. One invocation produces one `impl` block, so
/// hand-written setters with custom bodies live in a separate
/// `impl` next to it.
///
/// ```
/// #[derive(Default)]
/// pub struct Cfg {
///     pub workers: usize,
///     pub verbose: bool,
/// }
///
/// iguard_runtime::builder_setters! { Cfg =>
///     /// Builder: worker count.
///     with_workers => workers: usize,
///     /// Builder: chatty logging.
///     with_verbose => verbose: bool,
/// }
///
/// let cfg = Cfg::default().with_workers(8).with_verbose(true);
/// assert_eq!((cfg.workers, cfg.verbose), (8, true));
/// ```
#[macro_export]
macro_rules! builder_setters {
    ($ty:ty => $( $(#[$doc:meta])* $setter:ident => $field:ident : $t:ty ),+ $(,)?) => {
        impl $ty {
            $(
                $(#[$doc])*
                #[must_use = "builder setters return the updated config"]
                pub fn $setter(mut self, value: $t) -> Self {
                    self.$field = value;
                    self
                }
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[derive(Clone, Copy, Debug, Default, PartialEq)]
    struct Demo {
        rate: f64,
        on: bool,
        tag: u32,
    }

    crate::builder_setters! { Demo =>
        /// Builder: rate.
        with_rate => rate: f64,
        /// Builder: toggle.
        with_on => on: bool,
        /// Builder: tag word.
        with_tag => tag: u32,
    }

    #[test]
    fn setters_chain_and_assign() {
        let d = Demo::default().with_rate(2.5).with_on(true).with_tag(7);
        assert_eq!(d, Demo { rate: 2.5, on: true, tag: 7 });
    }

    #[test]
    fn later_calls_overwrite_earlier_ones() {
        let d = Demo::default().with_tag(1).with_tag(9);
        assert_eq!(d.tag, 9);
    }
}
