//! Columnar sample storage: one flat row-major `Vec<f32>` plus dimensions.
//!
//! Replaces the pervasive `Vec<Vec<f32>>` on every batch path. One
//! allocation instead of `n`, contiguous rows for cache-friendly scoring,
//! and cheap strided column iteration for covariance/feature-bound passes.

use crate::par;

/// A dense batch of `rows()` samples with `cols()` features each.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Dataset {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Dataset {
    /// Empty dataset with a fixed feature width.
    pub fn new(cols: usize) -> Self {
        Dataset { data: Vec::new(), rows: 0, cols }
    }

    /// `rows × cols` zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dataset { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Wrap an existing flat row-major buffer.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer must be rows*cols");
        Dataset { data, rows, cols }
    }

    /// Copy in a `Vec<Vec<f32>>` / slice-of-rows. All rows must share one
    /// width; an empty input produces a 0×0 dataset.
    pub fn from_rows<R: AsRef<[f32]>>(rows: &[R]) -> Self {
        let cols = rows.first().map_or(0, |r| r.as_ref().len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            let r = r.as_ref();
            assert_eq!(r.len(), cols, "ragged rows: {} vs {}", r.len(), cols);
            data.extend_from_slice(r);
        }
        Dataset { data, rows: rows.len(), cols }
    }

    /// Number of samples.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of features per sample.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Append one sample. A completely empty dataset (0×0, e.g. from
    /// `Default`) adopts the width of the first pushed row.
    pub fn push_row(&mut self, row: &[f32]) {
        if self.cols == 0 && self.rows == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row width {} != {}", row.len(), self.cols);
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Append every row of another dataset of the same width. A completely
    /// empty dataset (0×0) adopts the other's width.
    pub fn extend_rows(&mut self, other: &Dataset) {
        if self.cols == 0 && self.rows == 0 {
            self.cols = other.cols;
        }
        assert_eq!(other.cols, self.cols, "dataset width mismatch");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Iterate rows as slices.
    pub fn iter_rows(&self) -> impl ExactSizeIterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Strided iterator over column `j`.
    pub fn column(&self, j: usize) -> impl ExactSizeIterator<Item = f32> + '_ {
        assert!(j < self.cols, "column {j} out of {}", self.cols);
        (0..self.rows).map(move |i| self.data[i * self.cols + j])
    }

    /// New dataset holding the given rows (indices may repeat).
    pub fn select_rows(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.cols);
        out.data.reserve(indices.len() * self.cols);
        for &i in indices {
            out.push_row(self.row(i));
        }
        out
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Convert back to the row-of-vecs shape (boundary/debug use only).
    pub fn to_rows(&self) -> Vec<Vec<f32>> {
        self.iter_rows().map(|r| r.to_vec()).collect()
    }

    /// Per-column `(min, max)` over all rows. Empty datasets yield an empty
    /// vec; a single pass over the flat buffer.
    pub fn column_bounds(&self) -> Vec<(f32, f32)> {
        if self.rows == 0 {
            return Vec::new();
        }
        let mut bounds: Vec<(f32, f32)> = self.row(0).iter().map(|&v| (v, v)).collect();
        for r in self.iter_rows().skip(1) {
            for (b, &v) in bounds.iter_mut().zip(r) {
                b.0 = b.0.min(v);
                b.1 = b.1.max(v);
            }
        }
        bounds
    }

    /// Map every row to a value, in parallel, preserving row order.
    pub fn par_map_rows<U, F>(&self, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(&[f32]) -> U + Sync,
    {
        par::par_map_range(self.rows, |i| f(self.row(i)))
    }
}

impl std::ops::Index<(usize, usize)> for Dataset {
    type Output = f32;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        &self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrip() {
        let rows = vec![vec![1.0f32, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let ds = Dataset::from_rows(&rows);
        assert_eq!((ds.rows(), ds.cols()), (3, 2));
        assert_eq!(ds.row(1), &[3.0, 4.0]);
        assert_eq!(ds.to_rows(), rows);
        assert_eq!(ds[(2, 1)], 6.0);
    }

    #[test]
    fn push_and_extend() {
        let mut ds = Dataset::new(3);
        ds.push_row(&[1.0, 2.0, 3.0]);
        ds.push_row(&[4.0, 5.0, 6.0]);
        let mut other = Dataset::new(3);
        other.push_row(&[7.0, 8.0, 9.0]);
        ds.extend_rows(&other);
        assert_eq!(ds.rows(), 3);
        assert_eq!(ds.row(2), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn column_iteration() {
        let ds = Dataset::from_rows(&[vec![1.0f32, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]);
        let col: Vec<f32> = ds.column(1).collect();
        assert_eq!(col, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn select_rows_copies() {
        let ds = Dataset::from_rows(&[vec![0.0f32], vec![1.0], vec![2.0]]);
        let sel = ds.select_rows(&[2, 0, 2]);
        assert_eq!(sel.to_rows(), vec![vec![2.0], vec![0.0], vec![2.0]]);
    }

    #[test]
    fn column_bounds_match_naive() {
        let ds = Dataset::from_rows(&[vec![1.0f32, -5.0], vec![3.0, 2.0], vec![-2.0, 0.5]]);
        assert_eq!(ds.column_bounds(), vec![(-2.0, 3.0), (-5.0, 2.0)]);
        assert!(Dataset::new(4).column_bounds().is_empty());
    }

    #[test]
    fn par_map_rows_ordered() {
        let ds = Dataset::from_rows(&(0..40).map(|i| vec![i as f32]).collect::<Vec<_>>());
        let sums = ds.par_map_rows(|r| r[0] as i64);
        assert_eq!(sums, (0..40).collect::<Vec<i64>>());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        Dataset::from_rows(&[vec![1.0f32, 2.0], vec![3.0]]);
    }
}
