//! # iguard-runtime — the hermetic substrate under every other crate
//!
//! The workspace builds with **zero external dependencies**; everything the
//! training/inference loop needs from the ecosystem is re-implemented here,
//! small and auditable:
//!
//! * [`rng`] — a seeded, splittable xoshiro256++ PRNG (SplitMix64 seeding)
//!   with the uniform / normal / choose / shuffle helpers the models use.
//!   Child streams ([`rng::Rng::derive`]) make parallel work byte-identical
//!   at any worker count.
//! * [`par`] — a scoped parallel map on `std::thread::scope`. Worker count
//!   defaults to `available_parallelism`, is overridable with the
//!   `IGUARD_WORKERS` env var, and can be pinned per call tree with
//!   [`par::with_workers`]. Results always come back in input order.
//! * [`fault`] — deterministic fault injection: seeded [`fault::FaultPlan`]s
//!   (drop / duplicate / reorder / delay probabilities, scripted outage
//!   windows) with one derived RNG stream per channel, so chaos runs are
//!   byte-identical at any worker count.
//! * [`dataset`] — a columnar (row-major, flat-buffer) [`dataset::Dataset`]
//!   replacing `Vec<Vec<f32>>` on the batch paths, cache-friendly for
//!   batched scoring and matrix construction.
//! * [`scratch`] — reusable scratch buffers ([`scratch::VecPool`],
//!   [`scratch::ShardBins`]) so per-batch hot loops allocate only at
//!   warm-up, not per iteration.
//! * [`builder`] — the [`builder_setters!`] macro generating the chained
//!   `with_*` config setters every config family in the workspace shares,
//!   so builder conventions are enforced in one place.
//! * [`proptest_lite`] — a seeded randomized-input test loop (macro
//!   [`proptest_lite!`]) with shrinking-free failure reporting.
//! * [`timing`] — a tiny benchmark harness (warmup + calibrated iteration
//!   count, min/mean/max in ns) for `benches/` targets with
//!   `harness = false`.

pub mod builder;
pub mod dataset;
pub mod fault;
pub mod par;
pub mod proptest_lite;
pub mod rng;
pub mod scratch;
pub mod timing;

pub use dataset::Dataset;
pub use fault::{ChannelKind, FaultPlan, FaultStream, OutageWindow};
pub use rng::{Rng, SliceRandom};
