//! Seeded, splittable PRNG: xoshiro256++ state seeded through SplitMix64.
//!
//! This is the single source of randomness for the whole workspace. The
//! generator is deterministic per seed, `Send`, cheap to fork
//! ([`Rng::split`] / [`Rng::derive`]), and exposes exactly the sampling
//! surface the models use: uniform ranges over the common numeric types,
//! Bernoulli draws, Gaussians, and slice shuffling/choice.
//!
//! Parallel determinism contract: derive one child stream per task *before*
//! fanning out (`rng.derive(task_index)` or a serial loop of `rng.split()`),
//! then hand each task its own child. Results are then byte-identical at any
//! worker count because no task ever touches the parent stream.

/// SplitMix64 step — used to expand a 64-bit seed into generator state and
/// to mix derived-stream keys.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator (Blackman & Vigna), seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build a generator from a 64-bit seed. Same seed ⇒ same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Next raw 64 bits (xoshiro256++ output function).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The raw generator state — lets checkpoint/restore code (the switch
    /// controller snapshot) persist an RNG mid-stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`Self::state`] snapshot, resuming the
    /// stream exactly where it was captured.
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }

    /// Fork a child stream, advancing this generator by one draw.
    pub fn split(&mut self) -> Rng {
        let seed = self.next_u64();
        Rng::seed_from_u64(seed)
    }

    /// Derive the `stream`-th child without mutating this generator.
    ///
    /// Every call with the same `(state, stream)` pair yields the same
    /// child, which is what makes fan-out order-independent: derive child
    /// `i` for task `i`, in any order, on any thread.
    pub fn derive(&self, stream: u64) -> Rng {
        let mut key = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::seed_from_u64(splitmix64(&mut key))
    }

    /// Uniform f64 in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f32 in `[0, 1)` with 24 random bits.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform draw from a range: `rng.gen_range(0..10)`,
    /// `rng.gen_range(0.0..1.0)`, `rng.gen_range(1u8..=255)`, …
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Uniform u64 in `[0, bound)` via 128-bit multiply-shift.
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut Rng) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut Rng) -> Self;
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open(lo: f64, hi: f64, rng: &mut Rng) -> f64 {
        assert!(lo < hi, "gen_range: empty f64 range");
        lo + (hi - lo) * rng.next_f64()
    }

    #[inline]
    fn sample_inclusive(lo: f64, hi: f64, rng: &mut Rng) -> f64 {
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + (hi - lo) * rng.next_f64()
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open(lo: f32, hi: f32, rng: &mut Rng) -> f32 {
        assert!(lo < hi, "gen_range: empty f32 range");
        lo + (hi - lo) * rng.next_f32()
    }

    #[inline]
    fn sample_inclusive(lo: f32, hi: f32, rng: &mut Rng) -> f32 {
        assert!(lo <= hi, "gen_range: empty f32 range");
        lo + (hi - lo) * rng.next_f32()
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(lo: $t, hi: $t, rng: &mut Rng) -> $t {
                assert!(lo < hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.bounded_u64(span) as i128) as $t
            }

            #[inline]
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut Rng) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded_u64(span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range shapes [`Rng::gen_range`] accepts. The blanket impls tie the
/// output type to the range's element type, so literal ranges infer the
/// same way they did under `rand` (`0.3 + rng.gen_range(-0.05..0.05)`
/// resolves to `f32` when the context wants `f32`).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut Rng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Shuffling and sampling helpers on slices, mirroring the subset of
/// `rand::seq::SliceRandom` the workspace uses.
pub trait SliceRandom {
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle(&mut self, rng: &mut Rng);

    /// One uniformly chosen element, or `None` if empty.
    fn choose<'a>(&'a self, rng: &mut Rng) -> Option<&'a Self::Item>;

    /// `amount` distinct elements, sampled without replacement (fewer if the
    /// slice is shorter). Returns an iterator of references so call sites
    /// can `.copied().collect()`.
    fn choose_multiple<'a>(
        &'a self,
        rng: &mut Rng,
        amount: usize,
    ) -> ChooseMultiple<'a, Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut Rng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut Rng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<'a>(&'a self, rng: &mut Rng, amount: usize) -> ChooseMultiple<'a, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index table: the first `amount`
        // entries are a uniform sample without replacement.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..indices.len().max(i + 1));
            indices.swap(i, j);
        }
        indices.truncate(amount);
        ChooseMultiple { slice: self, indices, pos: 0 }
    }
}

/// Iterator returned by [`SliceRandom::choose_multiple`].
pub struct ChooseMultiple<'a, T> {
    slice: &'a [T],
    indices: Vec<usize>,
    pos: usize,
}

impl<'a, T> Iterator for ChooseMultiple<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let idx = *self.indices.get(self.pos)?;
        self.pos += 1;
        Some(&self.slice[idx])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.indices.len() - self.pos;
        (rem, Some(rem))
    }
}

impl<T> ExactSizeIterator for ChooseMultiple<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = Rng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Rng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same == 0, "streams for different seeds should diverge");
    }

    #[test]
    fn derive_is_order_independent() {
        let rng = Rng::seed_from_u64(7);
        let mut c3 = rng.derive(3);
        let mut c1 = rng.derive(1);
        let mut c3_again = rng.derive(3);
        assert_eq!(c3.next_u64(), c3_again.next_u64());
        assert_ne!(c3.next_u64(), c1.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let d = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&d));
            let u = rng.gen_range(5usize..17);
            assert!((5..17).contains(&u));
            let i = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&i));
            let b = rng.gen_range(1u8..=255);
            assert!(b >= 1);
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit: {seen:?}");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = Rng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_800..3_200).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut Rng::seed_from_u64(5));
        b.shuffle(&mut Rng::seed_from_u64(5));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_multiple_distinct_and_complete() {
        let items: Vec<usize> = (0..100).collect();
        let mut rng = Rng::seed_from_u64(19);
        let picked: Vec<usize> = items.choose_multiple(&mut rng, 30).copied().collect();
        assert_eq!(picked.len(), 30);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 30, "sample must be without replacement");
        // Requesting more than available returns everything.
        let all: Vec<usize> = items.choose_multiple(&mut rng, 500).copied().collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn choose_in_range() {
        let items = [10, 20, 30];
        let mut rng = Rng::seed_from_u64(23);
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
