//! Minimal benchmark harness for `harness = false` bench targets.
//!
//! One warmup call sizes the iteration count so each measurement loop takes
//! roughly [`TARGET_RUN`]; the harness then reports min/mean/max ns per
//! iteration. No statistics beyond that — the repo's benches compare
//! order-of-magnitude costs and serial-vs-parallel ratios, not microseconds
//! of jitter.

use std::time::{Duration, Instant};

/// Target wall-clock budget for one measured run.
pub const TARGET_RUN: Duration = Duration::from_millis(200);

/// Hard cap on iterations per run (cheap bodies would otherwise spin long).
pub const MAX_ITERS: usize = 100_000;

/// Result of one [`bench`] measurement.
#[derive(Clone, Debug)]
pub struct Timing {
    pub label: String,
    pub iters: usize,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

impl Timing {
    /// Mean seconds per iteration.
    pub fn mean_secs(&self) -> f64 {
        self.mean_ns / 1e9
    }
}

impl std::fmt::Display for Timing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} {:>12} /iter  (min {}, max {}, {} iters)",
            self.label,
            fmt_ns(self.mean_ns),
            fmt_ns(self.min_ns),
            fmt_ns(self.max_ns),
            self.iters
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Measure `f`, printing and returning the timing.
pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) -> Timing {
    // Warmup doubles as calibration.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));

    let iters = (TARGET_RUN.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as usize;
    let (mut min, mut max, mut total) = (f64::INFINITY, 0.0f64, 0.0f64);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        let ns = t.elapsed().as_nanos() as f64;
        min = min.min(ns);
        max = max.max(ns);
        total += ns;
    }
    let timing = Timing {
        label: label.to_string(),
        iters,
        mean_ns: total / iters as f64,
        min_ns: min,
        max_ns: max,
    };
    println!("{timing}");
    timing
}

/// Print a section header, grouping related benches in the output.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        let t = bench("spin", || {
            std::hint::black_box((0..1000u64).fold(0u64, |a, b| a.wrapping_add(b)))
        });
        assert!(t.iters >= 1);
        assert!(t.min_ns <= t.mean_ns && t.mean_ns <= t.max_ns);
        assert!(t.mean_ns > 0.0);
    }

    #[test]
    fn display_units() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(2_000_000_000.0).contains("s"));
    }
}
