//! Deterministic fault injection for control-loop chaos testing.
//!
//! A [`FaultPlan`] is a *seeded description* of how a control channel
//! misbehaves: per-message drop / duplicate / reorder / delay
//! probabilities, a per-send failure probability for the command
//! direction, and scripted **outage windows** during which a channel is
//! entirely down. The plan itself holds no mutable state; consumers derive
//! one [`FaultStream`] per channel via [`FaultPlan::stream`], which forks a
//! child of the workspace xoshiro256++ RNG keyed by the channel id.
//!
//! ## Determinism rules
//!
//! 1. **One stream per channel.** Each channel draws from its own derived
//!    child ([`Rng::derive`] on the plan seed), so adding a channel — or
//!    reordering channel construction — never shifts another channel's
//!    draws.
//! 2. **Draws follow message order.** A stream is consumed serially, one
//!    draw sequence per offered message, by whoever owns the channel.
//!    Channels sit on the *merged* (sequence-ordered) digest stream, which
//!    PR 3 made identical across shard and worker counts — so fault
//!    decisions are byte-identical at `IGUARD_WORKERS=1/2/8`.
//! 3. **Zero-probability plans draw nothing.** [`FaultPlan::is_none`]
//!    short-circuits every fault path, so a `FaultPlan::none()` run is
//!    bit-for-bit the fault-free run — not merely statistically equal.
//! 4. **Outages are scripted, not sampled.** Windows are tick ranges fixed
//!    in the plan, so "the channel heals at tick 40" means exactly that on
//!    every run.
//!
//! Ticks are defined by the consumer (the switch replay loop uses one tick
//! per batch); this module only compares them.

use crate::rng::Rng;

/// Which control channel a fault applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelKind {
    /// Data plane → controller digests.
    Digest,
    /// Controller → data plane commands (rule installs etc.).
    Action,
}

impl ChannelKind {
    /// Stable stream id for [`Rng::derive`].
    fn stream_id(self) -> u64 {
        match self {
            ChannelKind::Digest => 0xD1,
            ChannelKind::Action => 0xAC,
        }
    }
}

/// A scripted interval `[start, end)` of ticks during which a channel is
/// completely down: digests offered are lost, sends fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutageWindow {
    pub channel: ChannelKind,
    /// First tick of the outage.
    pub start: u64,
    /// First tick *after* the outage (the heal tick).
    pub end: u64,
}

/// A seeded, declarative description of control-channel faults.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-channel fault RNG streams.
    pub seed: u64,
    /// Probability a digest is silently dropped in transit.
    pub drop_p: f64,
    /// Probability a digest is delivered twice.
    pub duplicate_p: f64,
    /// Probability an adjacent delivered pair is swapped (per pair).
    pub reorder_p: f64,
    /// Probability a digest is held back for 1..=`max_delay_ticks` ticks.
    pub delay_p: f64,
    /// Maximum transit delay, in ticks, for delayed digests.
    pub max_delay_ticks: u64,
    /// Probability a controller→data-plane send fails outright.
    pub send_fail_p: f64,
    /// Scripted full-channel outages.
    pub outages: Vec<OutageWindow>,
}

impl FaultPlan {
    /// The fault-free plan: no probabilities, no outages, no RNG draws.
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_p: 0.0,
            duplicate_p: 0.0,
            reorder_p: 0.0,
            delay_p: 0.0,
            max_delay_ticks: 0,
            send_fail_p: 0.0,
            outages: Vec::new(),
        }
    }

    /// A lossy-but-alive channel: drops, duplicates, reorders and delays at
    /// the given `rate`, seeded by `seed`. A convenient chaos-grid default.
    pub fn lossy(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            drop_p: rate,
            duplicate_p: rate / 2.0,
            reorder_p: rate / 2.0,
            delay_p: rate,
            max_delay_ticks: 4,
            send_fail_p: rate / 2.0,
            outages: Vec::new(),
        }
    }

    /// Builder: seed of the fault RNG streams.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: digest drop probability.
    pub fn with_drop_p(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Builder: digest duplication probability.
    pub fn with_duplicate_p(mut self, p: f64) -> Self {
        self.duplicate_p = p;
        self
    }

    /// Builder: adjacent-pair reorder probability.
    pub fn with_reorder_p(mut self, p: f64) -> Self {
        self.reorder_p = p;
        self
    }

    /// Builder: delay probability and maximum delay in ticks.
    pub fn with_delay(mut self, p: f64, max_ticks: u64) -> Self {
        self.delay_p = p;
        self.max_delay_ticks = max_ticks;
        self
    }

    /// Builder: controller-send failure probability.
    pub fn with_send_fail_p(mut self, p: f64) -> Self {
        self.send_fail_p = p;
        self
    }

    /// Builder: add a scripted outage window `[start, end)` on `channel`.
    pub fn with_outage(mut self, channel: ChannelKind, start: u64, end: u64) -> Self {
        assert!(start < end, "outage window must be non-empty");
        self.outages.push(OutageWindow { channel, start, end });
        self
    }

    /// True when this plan can never perturb anything — the pass-through
    /// fast path that guarantees bit-identity with fault-free runs.
    pub fn is_none(&self) -> bool {
        self.drop_p == 0.0
            && self.duplicate_p == 0.0
            && self.reorder_p == 0.0
            && self.delay_p == 0.0
            && self.send_fail_p == 0.0
            && self.outages.is_empty()
    }

    /// Whether `channel` is inside a scripted outage at `tick`.
    pub fn is_down(&self, channel: ChannelKind, tick: u64) -> bool {
        self.outages.iter().any(|w| w.channel == channel && w.start <= tick && tick < w.end)
    }

    /// The last tick at which any outage on `channel` ends (the channel's
    /// heal tick), or `None` if the plan scripts no outage on it.
    pub fn heal_tick(&self, channel: ChannelKind) -> Option<u64> {
        self.outages.iter().filter(|w| w.channel == channel).map(|w| w.end).max()
    }

    /// Derive the fault RNG stream for `channel`. Same plan seed + channel
    /// ⇒ same stream, independent of any other channel's activity.
    pub fn stream(&self, channel: ChannelKind) -> FaultStream {
        let root = Rng::seed_from_u64(self.seed ^ 0xFA17_FA17_FA17_FA17);
        FaultStream { rng: root.derive(channel.stream_id()) }
    }
}

/// The mutable per-channel fault stream: a derived RNG consumed serially,
/// one decision sequence per message, by the channel that owns it.
#[derive(Clone, Debug)]
pub struct FaultStream {
    rng: Rng,
}

impl FaultStream {
    /// One Bernoulli fault decision. `p == 0.0` draws nothing, so plans
    /// with a zero probability stay bit-identical to fault-free runs.
    #[inline]
    pub fn fires(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen_bool(p)
    }

    /// A delay of `1..=max_ticks` ticks (0 when `max_ticks` is 0).
    #[inline]
    pub fn delay_ticks(&mut self, max_ticks: u64) -> u64 {
        if max_ticks == 0 {
            0
        } else {
            self.rng.gen_range(1..=max_ticks)
        }
    }

    /// A jitter draw of `0..=max_ticks` ticks (used by retry backoff).
    #[inline]
    pub fn jitter_ticks(&mut self, max_ticks: u64) -> u64 {
        if max_ticks == 0 {
            0
        } else {
            self.rng.gen_range(0..=max_ticks)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(!plan.is_down(ChannelKind::Digest, 0));
        assert_eq!(plan.heal_tick(ChannelKind::Digest), None);
        let mut s = plan.stream(ChannelKind::Digest);
        assert!(!s.fires(0.0));
        assert_eq!(s.delay_ticks(0), 0);
    }

    #[test]
    fn outage_windows_are_half_open() {
        let plan = FaultPlan::none().with_outage(ChannelKind::Digest, 10, 20);
        assert!(!plan.is_none());
        assert!(!plan.is_down(ChannelKind::Digest, 9));
        assert!(plan.is_down(ChannelKind::Digest, 10));
        assert!(plan.is_down(ChannelKind::Digest, 19));
        assert!(!plan.is_down(ChannelKind::Digest, 20));
        // The other channel is unaffected.
        assert!(!plan.is_down(ChannelKind::Action, 15));
        assert_eq!(plan.heal_tick(ChannelKind::Digest), Some(20));
    }

    #[test]
    fn heal_tick_is_last_outage_end() {
        let plan = FaultPlan::none().with_outage(ChannelKind::Action, 5, 9).with_outage(
            ChannelKind::Action,
            30,
            41,
        );
        assert_eq!(plan.heal_tick(ChannelKind::Action), Some(41));
    }

    #[test]
    fn channel_streams_are_independent_and_reproducible() {
        let plan = FaultPlan::lossy(42, 0.3);
        let mut d1 = plan.stream(ChannelKind::Digest);
        let mut d2 = plan.stream(ChannelKind::Digest);
        let mut a = plan.stream(ChannelKind::Action);
        let ds1: Vec<bool> = (0..64).map(|_| d1.fires(0.5)).collect();
        let ds2: Vec<bool> = (0..64).map(|_| d2.fires(0.5)).collect();
        let as_: Vec<bool> = (0..64).map(|_| a.fires(0.5)).collect();
        assert_eq!(ds1, ds2, "same channel stream must replay identically");
        assert_ne!(ds1, as_, "digest and action streams must differ");
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a: Vec<bool> = {
            let mut s = FaultPlan::lossy(1, 0.5).stream(ChannelKind::Digest);
            (0..64).map(|_| s.fires(0.5)).collect()
        };
        let b: Vec<bool> = {
            let mut s = FaultPlan::lossy(2, 0.5).stream(ChannelKind::Digest);
            (0..64).map(|_| s.fires(0.5)).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn delay_and_jitter_bounds() {
        let mut s = FaultPlan::lossy(7, 0.5).stream(ChannelKind::Digest);
        for _ in 0..200 {
            let d = s.delay_ticks(4);
            assert!((1..=4).contains(&d), "delay {d}");
            let j = s.jitter_ticks(3);
            assert!(j <= 3, "jitter {j}");
        }
    }

    #[test]
    fn zero_probability_draws_nothing() {
        // `fires(0.0)` must not consume RNG state: two streams, one asked
        // with p=0 in between, must stay in lockstep.
        let plan = FaultPlan::lossy(9, 0.5);
        let mut a = plan.stream(ChannelKind::Digest);
        let mut b = plan.stream(ChannelKind::Digest);
        let _ = a.fires(0.0);
        let _ = a.fires(0.0);
        assert_eq!(a.fires(0.5), b.fires(0.5));
    }
}
