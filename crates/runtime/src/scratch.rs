//! Reusable scratch buffers for per-batch / per-shard hot loops.
//!
//! The replay and sharded-data-plane paths run millions of small batches;
//! allocating a fresh `Vec` per batch (or per shard per batch) turns the
//! allocator into the bottleneck. These helpers keep the backing storage
//! alive across iterations: a `clear()` on a `Vec` keeps its capacity, so
//! steady state allocates nothing.

/// A pool of reusable `Vec<T>` buffers.
///
/// `take` hands out an empty vector (recycled when available), `put`
/// returns it with its capacity intact. Intended for single-threaded
/// owners that fan buffers out to scoped workers and collect them back.
#[derive(Debug)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> VecPool<T> {
    pub const fn new() -> Self {
        Self { free: Vec::new() }
    }

    /// An empty buffer, reusing a returned one when possible.
    pub fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool; its contents are dropped, its
    /// capacity is kept.
    pub fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        self.free.push(buf);
    }

    /// Buffers currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

/// Reusable per-group index bins: the batch dispatcher's scratch.
///
/// `reset(groups)` clears every bin without freeing storage; `push`
/// appends an item index to a group's bin. Iterating a bin yields the
/// indices in the order they were pushed — for the sharded data plane
/// that is global packet order, which the determinism argument relies on.
#[derive(Debug, Default)]
pub struct ShardBins {
    bins: Vec<Vec<u32>>,
}

impl ShardBins {
    pub const fn new() -> Self {
        Self { bins: Vec::new() }
    }

    /// Makes exactly `groups` empty bins available, retaining capacity.
    pub fn reset(&mut self, groups: usize) {
        for bin in &mut self.bins {
            bin.clear();
        }
        if self.bins.len() < groups {
            self.bins.resize_with(groups, Vec::new);
        } else {
            self.bins.truncate(groups);
        }
    }

    pub fn push(&mut self, group: usize, idx: u32) {
        self.bins[group].push(idx);
    }

    pub fn bin(&self, group: usize) -> &[u32] {
        &self.bins[group]
    }

    pub fn groups(&self) -> usize {
        self.bins.len()
    }

    /// Total items across all bins.
    pub fn len(&self) -> usize {
        self.bins.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.bins.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_capacity() {
        let mut pool: VecPool<u64> = VecPool::new();
        let mut v = pool.take();
        v.extend(0..100);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.idle(), 1);
        let v2 = pool.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn bins_reset_and_preserve_push_order() {
        let mut bins = ShardBins::new();
        bins.reset(3);
        bins.push(0, 5);
        bins.push(2, 1);
        bins.push(0, 7);
        assert_eq!(bins.bin(0), &[5, 7]);
        assert_eq!(bins.bin(1), &[] as &[u32]);
        assert_eq!(bins.bin(2), &[1]);
        assert_eq!(bins.len(), 3);
        bins.reset(2);
        assert_eq!(bins.groups(), 2);
        assert!(bins.is_empty());
    }
}
