//! Scoped parallel map on `std::thread::scope`.
//!
//! * Worker count: [`with_workers`] override (per call tree, thread-local)
//!   → `IGUARD_WORKERS` env var → `available_parallelism()`.
//! * Results are always returned **in input order**, regardless of which
//!   worker computed what — callers can rely on positional correspondence.
//! * Work is distributed through a shared atomic cursor, so uneven task
//!   costs balance automatically.
//!
//! Determinism: the map itself introduces none of its own randomness and
//! preserves order, so as long as each task draws only from its own derived
//! RNG stream (see `rng::Rng::derive`), output is byte-identical at any
//! worker count — `IGUARD_WORKERS=1` and `IGUARD_WORKERS=64` agree.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    static WORKER_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Worker count from the environment: `IGUARD_WORKERS` if set and positive,
/// else `available_parallelism()`, else 1.
pub fn env_workers() -> usize {
    std::env::var("IGUARD_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Worker count in effect on this thread (override, else environment).
pub fn current_workers() -> usize {
    WORKER_OVERRIDE.with(|o| o.get()).unwrap_or_else(env_workers)
}

/// Run `f` with the worker count pinned to `n` for every `par_map` issued
/// from this thread inside the closure. Used by the determinism tests to
/// compare 1/2/8-worker runs without racing on the process environment.
pub fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = WORKER_OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Parallel map over `0..n` task indices; results in index order.
///
/// The core primitive: slices, datasets, and owned work lists all reduce to
/// an index space. Falls back to a serial loop when one worker suffices.
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = current_workers().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                results.lock().unwrap().extend(local);
            });
        }
    });

    let mut pairs = results.into_inner().unwrap();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, u)| u).collect()
}

/// Parallel map over a mutable slice; results in input order.
///
/// Each element is visited exactly once and mutated in place by exactly one
/// worker, so `T` needs only `Send` (no locking). Work is split into
/// contiguous chunks — one per worker — rather than through the atomic
/// cursor, because handing out disjoint `&mut` regions requires a static
/// partition. Callers with skewed per-element cost should balance items
/// across the slice themselves (the sharded data plane bins packets before
/// calling this).
pub fn par_map_mut<T, U, F>(items: &mut [T], f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T) -> U + Sync,
{
    let n = items.len();
    let workers = current_workers().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let chunk = n.div_ceil(workers);
    let results: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::with_capacity(workers));
    std::thread::scope(|scope| {
        let mut chunks = items.chunks_mut(chunk).enumerate();
        // The first chunk runs inline on the calling thread: hot callers
        // (the sharded data plane) invoke this per batch, so saving one
        // thread spawn per call matters.
        let first = chunks.next();
        for (ci, slice) in chunks {
            let results = &results;
            let f = &f;
            scope.spawn(move || {
                let base = ci * chunk;
                let out: Vec<U> =
                    slice.iter_mut().enumerate().map(|(i, t)| f(base + i, t)).collect();
                results.lock().unwrap().push((base, out));
            });
        }
        if let Some((_, slice)) = first {
            let out: Vec<U> = slice.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
            results.lock().unwrap().push((0, out));
        }
    });

    let mut groups = results.into_inner().unwrap();
    groups.sort_unstable_by_key(|&(base, _)| base);
    let out: Vec<U> = groups.into_iter().flat_map(|(_, v)| v).collect();
    debug_assert_eq!(out.len(), n);
    out
}

/// Parallel map over a slice; results in input order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_range(items.len(), |i| f(&items[i]))
}

/// Parallel map consuming a `Vec`; results in input order.
pub fn par_map_vec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    par_map_range(slots.len(), |i| {
        let item = slots[i].lock().unwrap().take().expect("each slot taken once");
        f(item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map_range(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn slice_and_vec_variants() {
        let items: Vec<u64> = (0..37).collect();
        assert_eq!(par_map(&items, |&x| x + 1), (1..38).collect::<Vec<_>>());
        assert_eq!(par_map_vec(items, |x| x * 2), (0..37).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert!(par_map_range(0, |i| i).is_empty());
        assert_eq!(par_map_range(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn with_workers_pins_and_restores() {
        assert_eq!(with_workers(3, current_workers), 3);
        with_workers(2, || {
            assert_eq!(current_workers(), 2);
            with_workers(5, || assert_eq!(current_workers(), 5));
            assert_eq!(current_workers(), 2);
        });
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let serial = with_workers(1, || par_map_range(64, |i| i as u64 * 3 + 1));
        let wide = with_workers(8, || par_map_range(64, |i| i as u64 * 3 + 1));
        assert_eq!(serial, wide);
    }

    #[test]
    fn par_map_mut_mutates_each_element_once_in_order() {
        let mut items: Vec<u64> = (0..97).collect();
        let out = with_workers(4, || {
            par_map_mut(&mut items, |i, x| {
                *x += 1;
                *x * i as u64
            })
        });
        assert_eq!(items, (1..98).collect::<Vec<_>>());
        assert_eq!(out, (0..97).map(|i| (i + 1) * i).collect::<Vec<u64>>());
    }

    #[test]
    fn par_map_mut_worker_invariant() {
        let run = |w: usize| {
            let mut items: Vec<u64> = (0..33).collect();
            with_workers(w, || par_map_mut(&mut items, |i, x| *x * 7 + i as u64))
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn uneven_tasks_balance() {
        let out = with_workers(4, || {
            par_map_range(32, |i| {
                // Skew work toward low indices; order must still hold.
                let spins = if i < 4 { 200_000 } else { 10 };
                (0..spins).fold(i as u64, |acc, _| {
                    acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
                }) ^ i as u64
            })
        });
        let reference = with_workers(1, || {
            par_map_range(32, |i| {
                let spins = if i < 4 { 200_000 } else { 10 };
                (0..spins).fold(i as u64, |acc, _| {
                    acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
                }) ^ i as u64
            })
        });
        assert_eq!(out, reference);
    }
}
