//! Seeded randomized-input test loop — the in-repo stand-in for `proptest`.
//!
//! Each test body runs [`DEFAULT_CASES`] times (override per test with
//! `cases = N`, or globally with the `IGUARD_PROPTEST_CASES` env var), with a
//! fresh [`Rng`](crate::rng::Rng) per case seeded from a hash of the test
//! name and the case index. A failing case panics with the case number and
//! seed so it can be replayed; there is no shrinking — rerun with the
//! reported seed and bisect by hand.
//!
//! ```
//! use iguard_runtime::proptest_lite;
//!
//! proptest_lite! {
//!     /// Addition commutes.
//!     fn add_commutes(rng) {
//!         let (a, b) = (rng.gen_range(0u32..1000), rng.gen_range(0u32..1000));
//!         assert_eq!(a + b, b + a);
//!     }
//!
//!     fn cheap_but_many(rng, cases = 256) {
//!         assert!(rng.gen_range(0.0f64..1.0) < 1.0);
//!     }
//! }
//! # fn main() {}
//! ```

use crate::rng::Rng;

/// Cases per test when not specified at the call site.
pub const DEFAULT_CASES: u64 = 32;

/// FNV-1a — stable name hash so each test gets its own seed family.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Cases to run: env override (`IGUARD_PROPTEST_CASES`) else `requested`.
pub fn case_count(requested: u64) -> u64 {
    std::env::var("IGUARD_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(requested)
}

/// Drive `body` through `cases` seeded runs, reporting the failing case.
pub fn run<F: FnMut(&mut Rng)>(name: &str, cases: u64, mut body: F) {
    let base = fnv1a(name);
    let cases = case_count(cases);
    for case in 0..cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = Rng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "proptest_lite `{name}` failed at case {case}/{cases} \
                 (replay seed {seed:#018x}): {msg}"
            );
        }
    }
}

/// Replay a single case by seed — paste the seed from a failure message.
pub fn replay<F: FnMut(&mut Rng)>(seed: u64, mut body: F) {
    let mut rng = Rng::seed_from_u64(seed);
    body(&mut rng);
}

/// Declare seeded randomized tests. Each item becomes a `#[test]` whose body
/// receives `rng: &mut Rng`; draw inputs from it instead of proptest
/// strategies.
#[macro_export]
macro_rules! proptest_lite {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($rng:ident, cases = $cases:expr) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::proptest_lite::run(
                concat!(module_path!(), "::", stringify!($name)),
                $cases,
                |$rng: &mut $crate::rng::Rng| $body,
            );
        }
        $crate::proptest_lite! { $($rest)* }
    };
    ($(#[$meta:meta])* fn $name:ident($rng:ident) $body:block $($rest:tt)*) => {
        $crate::proptest_lite! {
            $(#[$meta])*
            fn $name($rng, cases = $crate::proptest_lite::DEFAULT_CASES) $body
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case_with_distinct_seeds() {
        let mut draws = Vec::new();
        run("seed_family", 16, |rng| draws.push(rng.next_u64()));
        assert_eq!(draws.len(), 16);
        let mut uniq = draws.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 16, "each case should get a fresh stream");
    }

    #[test]
    fn failure_reports_case_and_seed() {
        let result = std::panic::catch_unwind(|| {
            run("always_fails_late", 8, |rng| {
                let x = rng.gen_range(0u32..100);
                assert!(x < u32::MAX, "force rng use");
                if true {
                    panic!("boom {x}");
                }
            });
        });
        let payload = result.expect_err("should propagate failure");
        let msg = payload.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails_late"), "{msg}");
        assert!(msg.contains("replay seed"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn replay_reproduces_case_stream() {
        let mut first = 0u64;
        run("replayable", 1, |rng| first = rng.next_u64());
        let base = fnv1a("replayable");
        let mut again = 0u64;
        replay(base, |rng| again = rng.next_u64());
        assert_eq!(first, again);
    }

    proptest_lite! {
        /// The macro itself compiles, runs, and hands out a usable rng.
        fn macro_smoke(rng) {
            let v = rng.gen_range(1usize..10);
            assert!((1..10).contains(&v));
        }

        fn macro_case_override(rng, cases = 3) {
            assert!(rng.gen_bool(1.0));
        }
    }
}
