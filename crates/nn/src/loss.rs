//! Loss functions with analytic gradients.

use crate::matrix::Matrix;

/// Mean-squared-error loss averaged over batch and features:
/// `L = mean((pred - target)^2)`.
///
/// Returns `(loss, dL/dpred)`.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "MSE shape mismatch");
    let n = (pred.rows() * pred.cols()).max(1) as f32;
    let diff = pred.sub(target);
    let loss = diff.as_slice().iter().map(|v| v * v).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Per-sample root-mean-square error across features:
/// `RE(x) = sqrt(mean_i (pred_i - target_i)^2)` — the reconstruction error
/// used by the autoencoders in the iGuard pipeline (paper §3.2.1).
pub fn per_sample_rmse(pred: &Matrix, target: &Matrix) -> Vec<f32> {
    assert_eq!(pred.shape(), target.shape(), "RMSE shape mismatch");
    let m = pred.cols().max(1) as f32;
    (0..pred.rows())
        .map(|r| {
            let acc: f32 =
                pred.row(r).iter().zip(target.row(r)).map(|(&p, &t)| (p - t) * (p - t)).sum();
            (acc / m).sqrt()
        })
        .collect()
}

/// KL divergence between `N(mu, exp(logvar))` and the standard normal, summed
/// over latent dims and averaged over the batch — the VAE regulariser.
///
/// Returns `(kl, dKL/dmu, dKL/dlogvar)`.
pub fn kl_standard_normal(mu: &Matrix, logvar: &Matrix) -> (f32, Matrix, Matrix) {
    assert_eq!(mu.shape(), logvar.shape());
    let batch = mu.rows().max(1) as f32;
    let mut kl = 0.0;
    for (&m, &lv) in mu.as_slice().iter().zip(logvar.as_slice()) {
        kl += -0.5 * (1.0 + lv - m * m - lv.exp());
    }
    kl /= batch;
    let dmu = mu.scale(1.0 / batch);
    let dlogvar = logvar.map(|lv| -0.5 * (1.0 - lv.exp())).scale(1.0 / batch);
    (kl, dmu, dlogvar)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_for_identical() {
        let a = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mse_matches_hand_computation() {
        let p = Matrix::row_vector(&[1.0, 2.0]);
        let t = Matrix::row_vector(&[0.0, 0.0]);
        let (l, g) = mse(&p, &t);
        assert!((l - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(g.as_slice(), &[1.0, 2.0]); // 2 * diff / 2
    }

    #[test]
    fn mse_gradient_is_finite_difference() {
        let mut p = Matrix::row_vector(&[0.3, -0.7, 1.2]);
        let t = Matrix::row_vector(&[0.1, 0.1, 0.1]);
        let (_, g) = mse(&p, &t);
        let eps = 1e-3;
        for i in 0..3 {
            let orig = p.as_slice()[i];
            p.as_mut_slice()[i] = orig + eps;
            let (lp, _) = mse(&p, &t);
            p.as_mut_slice()[i] = orig - eps;
            let (lm, _) = mse(&p, &t);
            p.as_mut_slice()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - g.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn per_sample_rmse_is_rowwise() {
        let p = Matrix::from_vec(2, 2, vec![1.0, 1.0, 0.0, 0.0]);
        let t = Matrix::from_vec(2, 2, vec![0.0, 0.0, 3.0, 4.0]);
        let re = per_sample_rmse(&p, &t);
        assert!((re[0] - 1.0).abs() < 1e-6);
        assert!((re[1] - (12.5f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn kl_zero_for_standard_normal_params() {
        let mu = Matrix::zeros(2, 3);
        let logvar = Matrix::zeros(2, 3);
        let (kl, dmu, dlv) = kl_standard_normal(&mu, &logvar);
        assert!(kl.abs() < 1e-6);
        assert!(dmu.as_slice().iter().all(|&v| v == 0.0));
        assert!(dlv.as_slice().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn kl_positive_away_from_prior() {
        let mu = Matrix::row_vector(&[2.0]);
        let logvar = Matrix::row_vector(&[1.0]);
        let (kl, _, _) = kl_standard_normal(&mu, &logvar);
        assert!(kl > 0.0);
    }
}
