//! Feature scaling fitted on training data and applied everywhere else.
//!
//! All models in the workspace (autoencoders, kNN, PCA, …) operate on
//! min-max-scaled features, mirroring the preprocessing in HorusEye /
//! Magnifier. The scaler is fitted **only** on the benign training split —
//! fitting on test data would leak information.

use crate::matrix::Matrix;

/// Min-max scaler mapping each feature to [0, 1] based on training extrema.
///
/// Values outside the training range are clamped by default, matching what a
/// switch pipeline does when a feature saturates its register width.
#[derive(Clone, Debug, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f32>,
    maxs: Vec<f32>,
    clamp: bool,
}

impl MinMaxScaler {
    /// Fits on the rows of `train`.
    ///
    /// # Panics
    /// Panics on an empty training matrix.
    pub fn fit(train: &Matrix) -> Self {
        assert!(train.rows() > 0, "cannot fit scaler on empty data");
        let cols = train.cols();
        let mut mins = vec![f32::INFINITY; cols];
        let mut maxs = vec![f32::NEG_INFINITY; cols];
        for r in 0..train.rows() {
            for (c, &v) in train.row(r).iter().enumerate() {
                mins[c] = mins[c].min(v);
                maxs[c] = maxs[c].max(v);
            }
        }
        Self { mins, maxs, clamp: true }
    }

    /// Disables clamping of out-of-range values (used when downstream code
    /// needs the raw linear extrapolation).
    pub fn without_clamp(mut self) -> Self {
        self.clamp = false;
        self
    }

    pub fn dims(&self) -> usize {
        self.mins.len()
    }

    /// Scales one value of feature `c`.
    pub fn transform_value(&self, c: usize, v: f32) -> f32 {
        let (lo, hi) = (self.mins[c], self.maxs[c]);
        let span = hi - lo;
        let scaled = if span > 0.0 { (v - lo) / span } else { 0.0 };
        if self.clamp {
            scaled.clamp(0.0, 1.0)
        } else {
            scaled
        }
    }

    /// Inverse of [`Self::transform_value`] (ignores clamping).
    pub fn inverse_value(&self, c: usize, v: f32) -> f32 {
        let (lo, hi) = (self.mins[c], self.maxs[c]);
        lo + v * (hi - lo)
    }

    /// Scales every row of `data`.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.dims(), "scaler width mismatch");
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = {
                    let (lo, hi) = (self.mins[c], self.maxs[c]);
                    let span = hi - lo;
                    let scaled = if span > 0.0 { (*v - lo) / span } else { 0.0 };
                    if self.clamp {
                        scaled.clamp(0.0, 1.0)
                    } else {
                        scaled
                    }
                };
            }
        }
        out
    }

    /// Scales a single feature vector.
    pub fn transform_row(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.dims(), "scaler width mismatch");
        row.iter().enumerate().map(|(c, &v)| self.transform_value(c, v)).collect()
    }

    /// Training minimum per feature.
    pub fn mins(&self) -> &[f32] {
        &self.mins
    }

    /// Training maximum per feature.
    pub fn maxs(&self) -> &[f32] {
        &self.maxs
    }
}

/// Standardising scaler: `(x - mean) / std` per feature.
#[derive(Clone, Debug, PartialEq)]
pub struct StandardScaler {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl StandardScaler {
    pub fn fit(train: &Matrix) -> Self {
        assert!(train.rows() > 0, "cannot fit scaler on empty data");
        let n = train.rows() as f64;
        let cols = train.cols();
        let mut means = vec![0.0f64; cols];
        for r in 0..train.rows() {
            for (c, &v) in train.row(r).iter().enumerate() {
                means[c] += v as f64;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0f64; cols];
        for r in 0..train.rows() {
            for (c, &v) in train.row(r).iter().enumerate() {
                let d = v as f64 - means[c];
                vars[c] += d * d;
            }
        }
        let stds = vars
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s as f32
                } else {
                    1.0
                }
            })
            .collect();
        Self { means: means.into_iter().map(|m| m as f32).collect(), stds }
    }

    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.means.len(), "scaler width mismatch");
        let mut out = data.clone();
        for r in 0..out.rows() {
            for (c, v) in out.row_mut(r).iter_mut().enumerate() {
                *v = (*v - self.means[c]) / self.stds[c];
            }
        }
        out
    }

    /// Scales one raw row without building a matrix.
    pub fn transform_row(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.means.len(), "scaler width mismatch");
        row.iter().enumerate().map(|(c, &v)| (v - self.means[c]) / self.stds[c]).collect()
    }

    pub fn means(&self) -> &[f32] {
        &self.means
    }

    pub fn stds(&self) -> &[f32] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_maps_train_to_unit_interval() {
        let train = Matrix::from_rows(&[vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]]);
        let scaler = MinMaxScaler::fit(&train);
        let t = scaler.transform(&train);
        assert_eq!(t.row(0), &[0.0, 0.0]);
        assert_eq!(t.row(2), &[1.0, 1.0]);
        assert_eq!(t.row(1), &[0.5, 0.5]);
    }

    #[test]
    fn minmax_clamps_out_of_range() {
        let train = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let scaler = MinMaxScaler::fit(&train);
        let test = Matrix::from_rows(&[vec![-5.0], vec![7.0]]);
        let t = scaler.transform(&test);
        assert_eq!(t.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn minmax_without_clamp_extrapolates() {
        let train = Matrix::from_rows(&[vec![0.0], vec![2.0]]);
        let scaler = MinMaxScaler::fit(&train).without_clamp();
        let t = scaler.transform(&Matrix::from_rows(&[vec![4.0]]));
        assert_eq!(t.as_slice(), &[2.0]);
    }

    #[test]
    fn minmax_constant_feature_maps_to_zero() {
        let train = Matrix::from_rows(&[vec![7.0], vec![7.0]]);
        let scaler = MinMaxScaler::fit(&train);
        let t = scaler.transform(&train);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn minmax_inverse_roundtrips() {
        let train = Matrix::from_rows(&[vec![2.0, -1.0], vec![8.0, 3.0]]);
        let scaler = MinMaxScaler::fit(&train);
        for (c, &v) in [5.0f32, 1.0].iter().enumerate() {
            let s = scaler.transform_value(c, v);
            assert!((scaler.inverse_value(c, s) - v).abs() < 1e-5);
        }
    }

    #[test]
    fn standard_scaler_zero_mean_unit_var() {
        let train = Matrix::from_rows(&[vec![1.0], vec![3.0], vec![5.0]]);
        let scaler = StandardScaler::fit(&train);
        let t = scaler.transform(&train);
        let mean: f32 = t.as_slice().iter().sum::<f32>() / 3.0;
        assert!(mean.abs() < 1e-6);
        let var: f32 = t.as_slice().iter().map(|v| v * v).sum::<f32>() / 3.0;
        assert!((var - 1.0).abs() < 1e-5);
    }

    #[test]
    fn standard_scaler_constant_feature_safe() {
        let train = Matrix::from_rows(&[vec![4.0], vec![4.0]]);
        let scaler = StandardScaler::fit(&train);
        let t = scaler.transform(&train);
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
    }
}
