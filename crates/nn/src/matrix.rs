//! Dense row-major matrix used throughout the network substrate.
//!
//! The networks in this workspace are small (tens of units per layer,
//! thousands of samples), so a straightforward `Vec<f32>` backing store with
//! cache-friendly row-major loops is both simple and fast enough; no BLAS is
//! needed or wanted in an offline build.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows x cols` matrix of `f32` in row-major order.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Copies a runtime [`iguard_runtime::Dataset`] into a matrix of the
    /// same shape — both are flat row-major `f32`, so this is one memcpy.
    pub fn from_dataset(d: &iguard_runtime::Dataset) -> Self {
        Self::from_vec(d.rows(), d.cols(), d.as_slice().to_vec())
    }

    /// Builds a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows: expected {cols}, got {}", r.len());
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// A 1 x n row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// (rows, cols) pair, handy for assertions.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} * {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous rows.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T * rhs` without materialising the transpose.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows,
            rhs.rows,
            "t_matmul shape mismatch: {:?}^T * {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = rhs.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * rhs^T` without materialising the transpose.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.cols,
            "matmul_t shape mismatch: {:?} * {:?}^T",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise sum; shapes must match.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference; shapes must match.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product; shapes must match.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Element-wise combination of two same-shape matrices.
    pub fn zip_with(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "element-wise shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Adds a 1 x cols row vector to every row (broadcast).
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Sums the rows into a 1 x cols vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; 0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Copies the rows selected by `indices` into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|v| v as f32).collect());
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|v| v as f32).collect());
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_adds_row_to_each_row() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::row_vector(&[1.0, 2.0]);
        let c = a.add_row_broadcast(&b);
        for r in 0..3 {
            assert_eq!(c.row(r), &[1.0, 2.0]);
        }
    }

    #[test]
    fn sum_rows_accumulates_columns() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]);
        assert_eq!(a.sum_rows().as_slice(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn select_rows_copies_in_order() {
        let a = Matrix::from_vec(3, 2, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn from_rows_builds_row_major() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m[(0, 1)], 2.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Matrix::zeros(0, 0).mean(), 0.0);
    }
}
