//! Sequential network container and a mini-batch training loop.

use iguard_runtime::rng::Rng;
use iguard_runtime::rng::SliceRandom;

use crate::layer::Layer;
use crate::loss::mse;
use crate::matrix::Matrix;
use crate::optim::Optimizer;

/// A feed-forward stack of layers trained end to end.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

/// Configuration for [`Network::fit`].
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    /// Stop early when the epoch loss improves by less than this between
    /// epochs; `0.0` disables early stopping.
    pub tol: f32,
    /// Print nothing; kept for parity with typical trainers.
    pub shuffle: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 60, batch_size: 32, tol: 1e-6, shuffle: true }
    }
}

impl Network {
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass through all layers (caches activations for backward).
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Inference pass through a shared reference: identical output to
    /// [`Network::forward`] but cache-free, so a trained network can score
    /// batches concurrently from many threads.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    /// Backward pass; returns the gradient w.r.t. the network input.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// One optimizer step over every layer's parameters.
    pub fn apply_grads(&mut self, optimizer: &mut dyn Optimizer) {
        let mut pairs: Vec<(&mut [f32], &mut [f32])> = Vec::new();
        for layer in &mut self.layers {
            pairs.extend(layer.params_and_grads());
        }
        optimizer.step(&mut pairs);
    }

    /// Trains the network to regress `targets` from `inputs` under MSE.
    ///
    /// Returns the per-epoch mean losses. For autoencoders pass
    /// `targets = inputs`.
    pub fn fit(
        &mut self,
        inputs: &Matrix,
        targets: &Matrix,
        optimizer: &mut dyn Optimizer,
        cfg: &TrainConfig,
        rng: &mut Rng,
    ) -> Vec<f32> {
        assert_eq!(inputs.rows(), targets.rows(), "inputs/targets row mismatch");
        assert!(inputs.rows() > 0, "cannot train on an empty dataset");
        assert!(cfg.batch_size > 0, "batch size must be positive");
        let n = inputs.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut prev_loss = f32::INFINITY;
        for _ in 0..cfg.epochs {
            if cfg.shuffle {
                order.shuffle(rng);
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                let x = inputs.select_rows(chunk);
                let y = targets.select_rows(chunk);
                let pred = self.forward(&x);
                let (loss, grad) = mse(&pred, &y);
                self.zero_grads();
                self.backward(&grad);
                self.apply_grads(optimizer);
                epoch_loss += loss;
                batches += 1;
            }
            epoch_loss /= batches.max(1) as f32;
            history.push(epoch_loss);
            if cfg.tol > 0.0 && (prev_loss - epoch_loss).abs() < cfg.tol {
                break;
            }
            prev_loss = epoch_loss;
        }
        history
    }

    /// Inference through a shared reference (alias for [`Network::infer`]).
    pub fn predict(&self, input: &Matrix) -> Matrix {
        self.infer(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, ActivationLayer, Dense};
    use crate::optim::Adam;
    use iguard_runtime::rng::Rng;

    fn xor_data() -> (Matrix, Matrix) {
        let x =
            Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]]);
        let y = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![1.0], vec![0.0]]);
        (x, y)
    }

    #[test]
    fn learns_xor() {
        let mut rng = Rng::seed_from_u64(3);
        let mut net = Network::new(vec![
            Box::new(Dense::new(2, 8, &mut rng)),
            Box::new(ActivationLayer::new(Activation::Tanh)),
            Box::new(Dense::new(8, 1, &mut rng)),
            Box::new(ActivationLayer::new(Activation::Sigmoid)),
        ]);
        let (x, y) = xor_data();
        let mut opt = Adam::new(0.05);
        let cfg = TrainConfig { epochs: 500, batch_size: 4, tol: 0.0, shuffle: true };
        let hist = net.fit(&x, &y, &mut opt, &cfg, &mut rng);
        assert!(hist.last().unwrap() < &0.05, "final loss {:?}", hist.last());
        let pred = net.predict(&x);
        for (i, want) in [0.0f32, 1.0, 1.0, 0.0].iter().enumerate() {
            assert!(
                (pred[(i, 0)] - want).abs() < 0.35,
                "sample {i}: got {} want {want}",
                pred[(i, 0)]
            );
        }
    }

    #[test]
    fn loss_decreases_during_training() {
        let mut rng = Rng::seed_from_u64(11);
        let mut net = Network::new(vec![
            Box::new(Dense::new(3, 5, &mut rng)),
            Box::new(ActivationLayer::new(Activation::Relu)),
            Box::new(Dense::new(5, 3, &mut rng)),
        ]);
        // Identity-reconstruction task.
        let mut x = Matrix::zeros(64, 3);
        for v in x.as_mut_slice() {
            *v = rng.gen_range(0.0..1.0);
        }
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig { epochs: 40, batch_size: 16, tol: 0.0, shuffle: true };
        let hist = net.fit(&x.clone(), &x, &mut opt, &cfg, &mut rng);
        assert!(hist.last().unwrap() < &hist[0], "loss should decrease: {hist:?}");
    }

    #[test]
    fn early_stopping_truncates_history() {
        let mut rng = Rng::seed_from_u64(5);
        let mut net = Network::new(vec![Box::new(Dense::new(2, 2, &mut rng))]);
        let x = Matrix::zeros(8, 2); // all-zero task converges instantly
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig { epochs: 100, batch_size: 8, tol: 1e-9, shuffle: false };
        let hist = net.fit(&x.clone(), &x, &mut opt, &cfg, &mut rng);
        assert!(hist.len() < 100, "expected early stop, ran {} epochs", hist.len());
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = Rng::seed_from_u64(0);
        let net = Network::new(vec![
            Box::new(Dense::new(4, 3, &mut rng)),
            Box::new(ActivationLayer::new(Activation::Relu)),
            Box::new(Dense::new(3, 2, &mut rng)),
        ]);
        assert_eq!(net.param_count(), (4 * 3 + 3) + (3 * 2 + 2));
    }

    /// End-to-end gradient check through a two-layer network.
    #[test]
    fn network_gradients_match_finite_differences() {
        let mut rng = Rng::seed_from_u64(21);
        let mut net = Network::new(vec![
            Box::new(Dense::new(3, 4, &mut rng)),
            Box::new(ActivationLayer::new(Activation::Tanh)),
            Box::new(Dense::new(4, 2, &mut rng)),
        ]);
        let mut x = Matrix::zeros(5, 3);
        for v in x.as_mut_slice() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let mut y = Matrix::zeros(5, 2);
        for v in y.as_mut_slice() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let pred = net.forward(&x);
        let (_, grad) = mse(&pred, &y);
        net.zero_grads();
        net.backward(&grad);

        // Gather analytic gradients, then perturb a few parameters.
        let analytic: Vec<Vec<f32>> = {
            let mut pairs: Vec<(&mut [f32], &mut [f32])> = Vec::new();
            for layer in &mut net.layers {
                pairs.extend(layer.params_and_grads());
            }
            pairs.iter().map(|(_, g)| g.to_vec()).collect()
        };
        let eps = 1e-2f32;
        for tensor in 0..analytic.len() {
            for idx in [0usize] {
                if analytic[tensor].len() <= idx {
                    continue;
                }
                let perturb = |net: &mut Network, delta: f32| {
                    let mut pairs: Vec<(&mut [f32], &mut [f32])> = Vec::new();
                    for layer in &mut net.layers {
                        pairs.extend(layer.params_and_grads());
                    }
                    pairs[tensor].0[idx] += delta;
                };
                perturb(&mut net, eps);
                let (lp, _) = mse(&net.forward(&x), &y);
                perturb(&mut net, -2.0 * eps);
                let (lm, _) = mse(&net.forward(&x), &y);
                perturb(&mut net, eps);
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic[tensor][idx];
                assert!(
                    (numeric - a).abs() < 5e-2 * (1.0 + numeric.abs()),
                    "tensor {tensor} idx {idx}: numeric {numeric} vs analytic {a}"
                );
            }
        }
    }
}
