//! Trainable layers: fully-connected and element-wise activations.
//!
//! Layers follow the classic forward/backward contract: `forward` caches
//! whatever the backward pass needs, `backward` consumes the gradient of the
//! loss w.r.t. the layer output and returns the gradient w.r.t. the layer
//! input while accumulating parameter gradients internally.

use iguard_runtime::rng::Rng;

use crate::matrix::Matrix;

/// A differentiable layer in a [`crate::network::Network`].
pub trait Layer: Send + Sync {
    /// Computes the layer output for a `batch x in_dim` input.
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Inference-only forward pass: same output as [`Layer::forward`] but
    /// touches no caches, so it works through a shared reference. This is
    /// what lets trained models score batches from many threads at once.
    fn infer(&self, input: &Matrix) -> Matrix;

    /// Propagates `grad_out` (`batch x out_dim`) back to the input,
    /// accumulating parameter gradients.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Flat views of (parameter, gradient) pairs for the optimizer.
    /// Stateless layers return an empty vec.
    fn params_and_grads(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        Vec::new()
    }

    /// Zeroes accumulated parameter gradients.
    fn zero_grads(&mut self) {}

    /// Number of trainable scalars, for reporting.
    fn param_count(&self) -> usize {
        0
    }

    /// Output width given an input width (used to validate stacking).
    fn out_dim(&self, in_dim: usize) -> usize;
}

/// Fully-connected layer: `y = x W + b` with `W: in_dim x out_dim`.
pub struct Dense {
    weights: Matrix,
    bias: Matrix,
    grad_w: Matrix,
    grad_b: Matrix,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// Glorot/Xavier-uniform initialisation, suitable for the tanh/sigmoid
    /// and leaky-ReLU mixes used by the autoencoders in this workspace.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "Dense dims must be positive");
        let limit = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let mut weights = Matrix::zeros(in_dim, out_dim);
        for v in weights.as_mut_slice() {
            *v = rng.gen_range(-limit..limit);
        }
        Self {
            weights,
            bias: Matrix::zeros(1, out_dim),
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: Matrix::zeros(1, out_dim),
            cached_input: None,
        }
    }

    /// Builds a dense layer from explicit parameters (tests, serialization).
    pub fn from_parts(weights: Matrix, bias: Matrix) -> Self {
        assert_eq!(bias.rows(), 1);
        assert_eq!(bias.cols(), weights.cols());
        let (i, o) = weights.shape();
        Self {
            weights,
            bias,
            grad_w: Matrix::zeros(i, o),
            grad_b: Matrix::zeros(1, o),
            cached_input: None,
        }
    }

    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    pub fn bias(&self) -> &Matrix {
        &self.bias
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        self.cached_input = Some(input.clone());
        self.infer(input)
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.weights.rows(),
            "Dense input width {} != expected {}",
            input.cols(),
            self.weights.rows()
        );
        input.matmul(&self.weights).add_row_broadcast(&self.bias)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self.cached_input.as_ref().expect("backward called before forward");
        // dL/dW = x^T g, dL/db = column sums of g, dL/dx = g W^T.
        self.grad_w = self.grad_w.add(&input.t_matmul(grad_out));
        self.grad_b = self.grad_b.add(&grad_out.sum_rows());
        grad_out.matmul_t(&self.weights)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        vec![
            (self.weights.as_mut_slice(), self.grad_w.as_mut_slice()),
            (self.bias.as_mut_slice(), self.grad_b.as_mut_slice()),
        ]
    }

    fn zero_grads(&mut self) {
        self.grad_w.as_mut_slice().fill(0.0);
        self.grad_b.as_mut_slice().fill(0.0);
    }

    fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.cols()
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        assert_eq!(in_dim, self.weights.rows(), "Dense stacked after wrong width");
        self.weights.cols()
    }
}

/// Element-wise activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    Relu,
    /// Leaky ReLU with slope 0.01 on the negative side.
    LeakyRelu,
    Sigmoid,
    Tanh,
    /// Exponential linear unit with alpha = 1.
    Elu,
    /// Identity — useful as an explicit "linear output" marker.
    Linear,
}

impl Activation {
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Elu => {
                if x > 0.0 {
                    x
                } else {
                    x.exp() - 1.0
                }
            }
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the pre-activation input `x` and the
    /// already-computed output `y` (cheaper for sigmoid/tanh).
    fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Elu => {
                if x > 0.0 {
                    1.0
                } else {
                    y + 1.0
                }
            }
            Activation::Linear => 1.0,
        }
    }
}

/// Stateless element-wise activation layer.
pub struct ActivationLayer {
    kind: Activation,
    cached_input: Option<Matrix>,
    cached_output: Option<Matrix>,
}

impl ActivationLayer {
    pub fn new(kind: Activation) -> Self {
        Self { kind, cached_input: None, cached_output: None }
    }
}

impl Layer for ActivationLayer {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let out = self.infer(input);
        self.cached_input = Some(input.clone());
        self.cached_output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        input.map(|v| self.kind.apply(v))
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self.cached_input.as_ref().expect("backward before forward");
        let y = self.cached_output.as_ref().expect("backward before forward");
        let deriv = x.zip_with(y, |xi, yi| self.kind.derivative(xi, yi));
        grad_out.hadamard(&deriv)
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        in_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_runtime::rng::Rng;

    #[test]
    fn dense_forward_matches_manual() {
        let w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::row_vector(&[0.5, -0.5]);
        let mut layer = Dense::from_parts(w, b);
        let x = Matrix::row_vector(&[1.0, 1.0]);
        let y = layer.forward(&x);
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn dense_backward_produces_expected_gradients() {
        let w = Matrix::from_vec(2, 1, vec![2.0, -1.0]);
        let b = Matrix::row_vector(&[0.0]);
        let mut layer = Dense::from_parts(w, b);
        let x = Matrix::row_vector(&[3.0, 4.0]);
        let _ = layer.forward(&x);
        let gx = layer.backward(&Matrix::row_vector(&[1.0]));
        // dL/dx = g W^T = [2, -1]
        assert_eq!(gx.as_slice(), &[2.0, -1.0]);
        let pg = layer.params_and_grads();
        // dL/dW = x^T g = [3, 4]^T
        assert_eq!(pg[0].1, &[3.0, 4.0]);
        assert_eq!(pg[1].1, &[1.0]);
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut rng = Rng::seed_from_u64(1);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Matrix::zeros(4, 3);
        let _ = layer.forward(&x);
        let _ = layer.backward(&Matrix::filled(4, 2, 1.0));
        layer.zero_grads();
        for (_, g) in layer.params_and_grads() {
            assert!(g.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn activations_match_definitions() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-6);
        assert!((Activation::LeakyRelu.apply(-1.0) + 0.01).abs() < 1e-7);
        assert!((Activation::Elu.apply(-1.0) - (f32::exp(-1.0) - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn activation_backward_uses_chain_rule() {
        let mut layer = ActivationLayer::new(Activation::Relu);
        let x = Matrix::row_vector(&[-1.0, 2.0]);
        let _ = layer.forward(&x);
        let g = layer.backward(&Matrix::row_vector(&[5.0, 5.0]));
        assert_eq!(g.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn sigmoid_derivative_peaks_at_zero() {
        let mut layer = ActivationLayer::new(Activation::Sigmoid);
        let x = Matrix::row_vector(&[0.0]);
        let _ = layer.forward(&x);
        let g = layer.backward(&Matrix::row_vector(&[1.0]));
        assert!((g.as_slice()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn glorot_init_within_limits() {
        let mut rng = Rng::seed_from_u64(7);
        let layer = Dense::new(10, 10, &mut rng);
        let limit = (6.0 / 20.0f32).sqrt();
        assert!(layer.weights().as_slice().iter().all(|v| v.abs() <= limit));
        assert!(layer.bias().as_slice().iter().all(|&v| v == 0.0));
    }
}
