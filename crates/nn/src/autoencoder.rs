//! Autoencoders and the weighted ensemble used to guide iGuard.
//!
//! An [`Autoencoder`] is trained to reconstruct benign feature vectors; its
//! per-sample RMSE reconstruction error `RE_u(x)` (paper §3.2.1) is large on
//! samples unlike the benign training distribution. An
//! [`AutoencoderEnsemble`] combines `r` autoencoders with weights `w_u`
//! (Σ w_u = 1) and predicts malicious when the weighted vote
//! `Σ w_u · 1{RE_u(x) > T_u}` exceeds 0.5.

use iguard_runtime::rng::Rng;

use crate::layer::{Activation, ActivationLayer, Dense, Layer};
use crate::loss::per_sample_rmse;
use crate::matrix::Matrix;
use crate::network::{Network, TrainConfig};
use crate::optim::Adam;

/// Architecture of an autoencoder as a list of hidden widths.
///
/// `encoder = [h1, h2, ..., latent]`, `decoder = [g1, ..., out=m]` is built
/// automatically to mirror or to the explicit `decoder` widths for
/// *asymmetric* autoencoders (Magnifier-style: heavy encoder, light decoder).
#[derive(Clone, Debug)]
pub struct AutoencoderSpec {
    pub input_dim: usize,
    pub encoder: Vec<usize>,
    /// Hidden widths of the decoder, *excluding* the final reconstruction
    /// layer (which is always `input_dim` wide). Empty = direct latent→out.
    pub decoder: Vec<usize>,
    pub activation: Activation,
}

impl AutoencoderSpec {
    /// Symmetric hourglass: encoder widths mirrored in the decoder.
    pub fn symmetric(input_dim: usize, encoder: Vec<usize>, activation: Activation) -> Self {
        assert!(!encoder.is_empty(), "need at least a latent layer");
        let decoder = encoder[..encoder.len() - 1].iter().rev().copied().collect();
        Self { input_dim, encoder, decoder, activation }
    }

    /// Asymmetric autoencoder: explicit, typically smaller decoder.
    pub fn asymmetric(
        input_dim: usize,
        encoder: Vec<usize>,
        decoder: Vec<usize>,
        activation: Activation,
    ) -> Self {
        assert!(!encoder.is_empty(), "need at least a latent layer");
        Self { input_dim, encoder, decoder, activation }
    }

    fn build(&self, rng: &mut Rng) -> Network {
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let mut width = self.input_dim;
        for &h in &self.encoder {
            layers.push(Box::new(Dense::new(width, h, rng)));
            layers.push(Box::new(ActivationLayer::new(self.activation)));
            width = h;
        }
        for &h in &self.decoder {
            layers.push(Box::new(Dense::new(width, h, rng)));
            layers.push(Box::new(ActivationLayer::new(self.activation)));
            width = h;
        }
        // Linear reconstruction head: features are min-max scaled to [0, 1],
        // and a linear output avoids saturating gradients at the boundaries.
        layers.push(Box::new(Dense::new(width, self.input_dim, rng)));
        Network::new(layers)
    }
}

/// Training hyper-parameters for an autoencoder.
#[derive(Clone, Debug)]
pub struct AeTrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    /// Quantile of benign-training reconstruction errors used as the RMSE
    /// threshold `T_u` (the paper tunes `T` by grid search; the quantile is
    /// the knob we sweep).
    pub threshold_quantile: f64,
}

impl Default for AeTrainConfig {
    fn default() -> Self {
        Self { epochs: 60, batch_size: 32, learning_rate: 1e-3, threshold_quantile: 0.98 }
    }
}

/// A trained autoencoder with its RMSE threshold `T_u`.
pub struct Autoencoder {
    net: Network,
    threshold: f32,
    input_dim: usize,
}

impl Autoencoder {
    /// Trains an autoencoder on benign data (rows of `train`), then fits the
    /// threshold as the configured quantile of training reconstruction error.
    pub fn train(
        spec: &AutoencoderSpec,
        train: &Matrix,
        cfg: &AeTrainConfig,
        rng: &mut Rng,
    ) -> Self {
        assert_eq!(train.cols(), spec.input_dim, "training width != spec input_dim");
        assert!(train.rows() > 0, "empty training set");
        let mut net = spec.build(rng);
        let mut opt = Adam::new(cfg.learning_rate);
        let tc = TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            tol: 1e-7,
            shuffle: true,
        };
        net.fit(&train.clone(), train, &mut opt, &tc, rng);
        let mut ae = Self { net, threshold: 0.0, input_dim: spec.input_dim };
        let errs = ae.reconstruction_errors(train);
        ae.threshold = quantile(&errs, cfg.threshold_quantile);
        ae
    }

    /// `RE_u(x)` for each row of `data`. Shared-reference inference, so
    /// ensembles and teachers can score concurrently.
    pub fn reconstruction_errors(&self, data: &Matrix) -> Vec<f32> {
        assert_eq!(data.cols(), self.input_dim);
        if data.rows() == 0 {
            return Vec::new();
        }
        let recon = self.net.infer(data);
        per_sample_rmse(&recon, data)
    }

    /// The fitted RMSE threshold `T_u`.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Overrides the threshold (grid-search tuning).
    pub fn set_threshold(&mut self, t: f32) {
        self.threshold = t;
    }

    /// `label_u(x) = 1{RE_u(x) > T_u}` per row.
    pub fn labels(&self, data: &Matrix) -> Vec<bool> {
        let t = self.threshold;
        self.reconstruction_errors(data).into_iter().map(|re| re > t).collect()
    }

    pub fn param_count(&self) -> usize {
        self.net.param_count()
    }
}

/// Weighted ensemble of autoencoders (paper §3.2.1).
pub struct AutoencoderEnsemble {
    members: Vec<Autoencoder>,
    weights: Vec<f32>,
}

impl AutoencoderEnsemble {
    /// Builds an ensemble with uniform weights.
    pub fn uniform(members: Vec<Autoencoder>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let w = 1.0 / members.len() as f32;
        let weights = vec![w; members.len()];
        Self { members, weights }
    }

    /// Builds an ensemble with explicit weights; weights are renormalised to
    /// sum to 1 as the paper requires.
    pub fn weighted(members: Vec<Autoencoder>, weights: Vec<f32>) -> Self {
        assert_eq!(members.len(), weights.len(), "one weight per member");
        assert!(!members.is_empty(), "ensemble needs at least one member");
        assert!(weights.iter().all(|&w| w >= 0.0), "weights must be non-negative");
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let weights = weights.into_iter().map(|w| w / total).collect();
        Self { members, weights }
    }

    /// Trains `r` independent autoencoders on the benign training set and
    /// combines them uniformly.
    pub fn train(
        specs: &[AutoencoderSpec],
        train: &Matrix,
        cfg: &AeTrainConfig,
        rng: &mut Rng,
    ) -> Self {
        let members = specs.iter().map(|s| Autoencoder::train(s, train, cfg, rng)).collect();
        Self::uniform(members)
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    pub fn members_mut(&mut self) -> &mut [Autoencoder] {
        &mut self.members
    }

    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Weighted ensemble prediction per row:
    /// `1{Σ w_u · 1{RE_u(x) > T_u} > 0.5}` (paper Eq. in §3.2.1).
    pub fn predict(&self, data: &Matrix) -> Vec<bool> {
        let n = data.rows();
        let mut score = vec![0.0f32; n];
        for (u, member) in self.members.iter().enumerate() {
            let w = self.weights[u];
            for (s, lab) in score.iter_mut().zip(member.labels(data)) {
                if lab {
                    *s += w;
                }
            }
        }
        score.into_iter().map(|s| s > 0.5).collect()
    }

    /// Mean reconstruction error per member over `data`
    /// (`RE_leaf_u` in paper Eq. 5 when `data` is a leaf's sample set).
    pub fn mean_errors(&self, data: &Matrix) -> Vec<f32> {
        self.members
            .iter()
            .map(|m| {
                let errs = m.reconstruction_errors(data);
                if errs.is_empty() {
                    0.0
                } else {
                    errs.iter().sum::<f32>() / errs.len() as f32
                }
            })
            .collect()
    }

    /// The distillation vote over *expected* errors (paper Eq. 6):
    /// `1{Σ w_u · 1{RE_leaf_u > T_u} > 0.5}`.
    pub fn vote_on_mean_errors(&self, data: &Matrix) -> bool {
        let means = self.mean_errors(data);
        let mut s = 0.0;
        for ((w, m), t) in
            self.weights.iter().zip(&means).zip(self.members.iter().map(|mm| mm.threshold))
        {
            if *m > t {
                s += w;
            }
        }
        s > 0.5
    }

    /// Continuous anomaly score in [0, 1]: the weighted fraction of members
    /// voting malicious. Used for AUC-style metrics of the ensemble itself.
    pub fn score(&self, data: &Matrix) -> Vec<f32> {
        let n = data.rows();
        let mut score = vec![0.0f32; n];
        for (u, member) in self.members.iter().enumerate() {
            let w = self.weights[u];
            let t = member.threshold;
            // Smooth margin: normalised RE excess, clamped, keeps ranking
            // information beyond the binary vote.
            for (s, re) in score.iter_mut().zip(member.reconstruction_errors(data)) {
                let margin = if t > 0.0 { (re / t).min(2.0) / 2.0 } else { 1.0 };
                *s += w * margin;
            }
        }
        score
    }
}

/// Empirical quantile (linear interpolation) of a non-empty slice.
pub fn quantile(values: &[f32], q: f64) -> f32 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = (pos - lo as f64) as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_runtime::rng::Rng;

    fn benign_blob(n: usize, rng: &mut Rng) -> Matrix {
        // Benign: tight cluster near (0.3, 0.3, 0.3, 0.3).
        let mut m = Matrix::zeros(n, 4);
        for v in m.as_mut_slice() {
            *v = 0.3 + rng.gen_range(-0.05..0.05);
        }
        m
    }

    fn anomalies(n: usize, rng: &mut Rng) -> Matrix {
        let mut m = Matrix::zeros(n, 4);
        for v in m.as_mut_slice() {
            *v = 0.9 + rng.gen_range(-0.05..0.05);
        }
        m
    }

    fn quick_cfg() -> AeTrainConfig {
        AeTrainConfig { epochs: 80, batch_size: 16, learning_rate: 5e-3, threshold_quantile: 0.95 }
    }

    #[test]
    fn autoencoder_flags_out_of_distribution_samples() {
        let mut rng = Rng::seed_from_u64(9);
        let train = benign_blob(256, &mut rng);
        let spec = AutoencoderSpec::symmetric(4, vec![3, 2], Activation::Tanh);
        let ae = Autoencoder::train(&spec, &train, &quick_cfg(), &mut rng);
        let benign_errs = ae.reconstruction_errors(&benign_blob(64, &mut rng));
        let mal_errs = ae.reconstruction_errors(&anomalies(64, &mut rng));
        let benign_mean: f32 = benign_errs.iter().sum::<f32>() / 64.0;
        let mal_mean: f32 = mal_errs.iter().sum::<f32>() / 64.0;
        assert!(
            mal_mean > 2.0 * benign_mean,
            "anomalous RE {mal_mean} should dwarf benign RE {benign_mean}"
        );
    }

    #[test]
    fn threshold_is_training_quantile() {
        let mut rng = Rng::seed_from_u64(10);
        let train = benign_blob(128, &mut rng);
        let spec = AutoencoderSpec::symmetric(4, vec![2], Activation::Tanh);
        let ae = Autoencoder::train(&spec, &train, &quick_cfg(), &mut rng);
        let errs = ae.reconstruction_errors(&train);
        let q95 = quantile(&errs, 0.95);
        assert!((ae.threshold() - q95).abs() < 1e-5);
    }

    #[test]
    fn ensemble_majority_vote_detects_anomalies() {
        let mut rng = Rng::seed_from_u64(12);
        let train = benign_blob(256, &mut rng);
        let specs = vec![
            AutoencoderSpec::symmetric(4, vec![3, 2], Activation::Tanh),
            AutoencoderSpec::asymmetric(4, vec![3, 2], vec![], Activation::Tanh),
            AutoencoderSpec::symmetric(4, vec![2], Activation::Tanh),
        ];
        let ens = AutoencoderEnsemble::train(&specs, &train, &quick_cfg(), &mut rng);
        let mal = anomalies(32, &mut rng);
        let preds = ens.predict(&mal);
        let detected = preds.iter().filter(|&&p| p).count();
        assert!(detected > 24, "detected only {detected}/32 anomalies");
        let ben = benign_blob(32, &mut rng);
        let fps = ens.predict(&ben).iter().filter(|&&p| p).count();
        assert!(fps < 8, "{fps}/32 false positives");
    }

    #[test]
    fn weighted_renormalises() {
        let mut rng = Rng::seed_from_u64(1);
        let train = benign_blob(64, &mut rng);
        let spec = AutoencoderSpec::symmetric(4, vec![2], Activation::Tanh);
        let cfg = AeTrainConfig { epochs: 5, ..quick_cfg() };
        let members = vec![
            Autoencoder::train(&spec, &train, &cfg, &mut rng),
            Autoencoder::train(&spec, &train, &cfg, &mut rng),
        ];
        let ens = AutoencoderEnsemble::weighted(members, vec![2.0, 6.0]);
        assert!((ens.weights()[0] - 0.25).abs() < 1e-6);
        assert!((ens.weights()[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn vote_on_mean_errors_consistent_with_extreme_data() {
        let mut rng = Rng::seed_from_u64(2);
        let train = benign_blob(128, &mut rng);
        let spec = AutoencoderSpec::symmetric(4, vec![2], Activation::Tanh);
        let ens = AutoencoderEnsemble::uniform(vec![Autoencoder::train(
            &spec,
            &train,
            &quick_cfg(),
            &mut rng,
        )]);
        assert!(!ens.vote_on_mean_errors(&benign_blob(32, &mut rng)));
        assert!(ens.vote_on_mean_errors(&anomalies(32, &mut rng)));
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0f32, 1.0, 2.0, 3.0];
        assert_eq!(quantile(&v, 0.0), 0.0);
        assert_eq!(quantile(&v, 1.0), 3.0);
        assert!((quantile(&v, 0.5) - 1.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }
}
