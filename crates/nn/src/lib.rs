//! # iguard-nn — neural-network substrate for iGuard
//!
//! A small, dependency-light neural-network library built from scratch for
//! the iGuard reproduction. It provides exactly what the paper's pipeline
//! needs:
//!
//! * [`matrix::Matrix`] — dense row-major `f32` matrices with the handful of
//!   products backpropagation needs.
//! * [`layer`] — fully-connected layers and element-wise activations, plus
//!   [`conv::DilatedConv1d`] reproducing the dilated convolutions of the
//!   Magnifier (HorusEye) autoencoder.
//! * [`optim`] — SGD (+momentum) and Adam.
//! * [`network::Network`] — a sequential container with an MSE training loop.
//! * [`autoencoder`] — trained autoencoders with RMSE thresholds `T_u` and
//!   the weighted [`autoencoder::AutoencoderEnsemble`] of paper §3.2.1.
//! * [`scale`] — min-max / standard scalers fitted on benign training data.
//!
//! ## Why from scratch?
//! The workspace builds hermetically — no external crates at all, so no
//! candle or linfa. The models involved are tiny (a few thousand
//! parameters), so a straightforward implementation is fast, auditable, and
//! fully seedable — every experiment in the benchmark harness is
//! reproducible bit for bit.
//!
//! ## Quick example
//! ```
//! use iguard_nn::autoencoder::{Autoencoder, AutoencoderSpec, AeTrainConfig};
//! use iguard_nn::layer::Activation;
//! use iguard_nn::matrix::Matrix;
//! use iguard_runtime::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(7);
//! // Benign data: tight cluster.
//! let mut train = Matrix::zeros(128, 4);
//! for v in train.as_mut_slice() { *v = 0.5 + rng.gen_range(-0.05..0.05); }
//! let spec = AutoencoderSpec::symmetric(4, vec![2], Activation::Tanh);
//! let cfg = AeTrainConfig { epochs: 30, ..Default::default() };
//! let ae = Autoencoder::train(&spec, &train, &cfg, &mut rng);
//! let errs = ae.reconstruction_errors(&train);
//! assert_eq!(errs.len(), 128);
//! ```

#![forbid(unsafe_code)]

pub mod autoencoder;
pub mod conv;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod network;
pub mod optim;
pub mod scale;

pub use autoencoder::{AeTrainConfig, Autoencoder, AutoencoderEnsemble, AutoencoderSpec};
pub use layer::Activation;
pub use matrix::Matrix;
pub use network::{Network, TrainConfig};
pub use scale::{MinMaxScaler, StandardScaler};
