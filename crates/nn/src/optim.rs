//! First-order optimizers operating on flat parameter/gradient slices.

/// An optimizer updates a list of (parameter, gradient) slice pairs in place.
///
/// The pairs are supplied in a stable order on every step (the network walks
/// its layers in order), which lets stateful optimizers like Adam keep one
/// moment buffer per parameter tensor.
pub trait Optimizer: Send {
    /// Applies one update step. `params_and_grads[i]` must refer to the same
    /// tensor on every call.
    fn step(&mut self, params_and_grads: &mut [(&mut [f32], &mut [f32])]);
}

/// Plain stochastic gradient descent with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum in [0,1)");
        Self { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params_and_grads: &mut [(&mut [f32], &mut [f32])]) {
        if self.velocity.len() != params_and_grads.len() {
            self.velocity = params_and_grads.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
        }
        for (i, (p, g)) in params_and_grads.iter_mut().enumerate() {
            let vel = &mut self.velocity[i];
            debug_assert_eq!(vel.len(), p.len(), "parameter tensor changed size");
            for ((pv, gv), v) in p.iter_mut().zip(g.iter()).zip(vel.iter_mut()) {
                *v = self.momentum * *v - self.lr * gv;
                *pv += *v;
            }
        }
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the canonical defaults (beta1 = 0.9, beta2 = 0.999).
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self { lr, beta1, beta2, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params_and_grads: &mut [(&mut [f32], &mut [f32])]) {
        if self.m.len() != params_and_grads.len() {
            self.m = params_and_grads.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
            self.v = params_and_grads.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (p, g)) in params_and_grads.iter_mut().enumerate() {
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            debug_assert_eq!(m.len(), p.len(), "parameter tensor changed size");
            for j in 0..p.len() {
                let grad = g[j];
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * grad;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * grad * grad;
                let m_hat = m[j] / bc1;
                let v_hat = v[j] / bc2;
                p[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)^2 with SGD; gradient is 2(x - 3).
    #[test]
    fn sgd_converges_on_quadratic() {
        let mut x = vec![0.0f32];
        let mut g = vec![0.0f32];
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            g[0] = 2.0 * (x[0] - 3.0);
            let mut pairs = vec![(x.as_mut_slice(), g.as_mut_slice())];
            opt.step(&mut pairs);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |mut opt: Sgd| {
            let mut x = vec![0.0f32];
            let mut g = vec![0.0f32];
            for _ in 0..20 {
                g[0] = 2.0 * (x[0] - 3.0);
                let mut pairs = vec![(x.as_mut_slice(), g.as_mut_slice())];
                opt.step(&mut pairs);
            }
            (x[0] - 3.0).abs()
        };
        let plain = run(Sgd::new(0.02));
        let momo = run(Sgd::with_momentum(0.02, 0.9));
        assert!(momo < plain, "momentum {momo} should beat plain {plain}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut x = vec![10.0f32];
        let mut g = vec![0.0f32];
        let mut opt = Adam::new(0.5);
        for _ in 0..200 {
            g[0] = 2.0 * (x[0] - 3.0);
            let mut pairs = vec![(x.as_mut_slice(), g.as_mut_slice())];
            opt.step(&mut pairs);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
    }

    #[test]
    fn adam_handles_multiple_tensors() {
        let mut a = vec![5.0f32, -5.0];
        let mut ga = vec![0.0f32; 2];
        let mut b = vec![1.0f32];
        let mut gb = vec![0.0f32];
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            for (i, v) in a.iter().enumerate() {
                ga[i] = 2.0 * v; // minimise a^2
            }
            gb[0] = 2.0 * (b[0] + 2.0); // minimise (b + 2)^2
            let mut pairs =
                vec![(a.as_mut_slice(), ga.as_mut_slice()), (b.as_mut_slice(), gb.as_mut_slice())];
            opt.step(&mut pairs);
        }
        assert!(a.iter().all(|v| v.abs() < 1e-2));
        assert!((b[0] + 2.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_nonpositive_lr() {
        let _ = Adam::new(0.0);
    }
}
