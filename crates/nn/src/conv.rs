//! One-dimensional dilated convolution.
//!
//! Magnifier (HorusEye) uses dilated convolutions in its asymmetric
//! autoencoder; this layer reproduces that building block for feature
//! vectors treated as 1-D signals. Input batches are laid out as
//! `batch x (channels * length)` with channel-major packing, i.e. the first
//! `length` columns are channel 0, the next `length` columns channel 1, etc.

use iguard_runtime::rng::Rng;

use crate::layer::Layer;
use crate::matrix::Matrix;

/// 1-D convolution with dilation and zero ("same") padding.
pub struct DilatedConv1d {
    in_channels: usize,
    out_channels: usize,
    length: usize,
    kernel: usize,
    dilation: usize,
    /// Weights: `out_channels x (in_channels * kernel)`, kernel-major per input channel.
    weights: Matrix,
    bias: Matrix,
    grad_w: Matrix,
    grad_b: Matrix,
    cached_input: Option<Matrix>,
}

impl DilatedConv1d {
    /// Creates a dilated conv layer operating on signals of `length` samples.
    ///
    /// Output keeps the same spatial length (zero padding), so the flat
    /// output width is `out_channels * length`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        length: usize,
        kernel: usize,
        dilation: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(kernel % 2 == 1, "kernel size must be odd for same padding");
        assert!(dilation >= 1, "dilation must be >= 1");
        assert!(length > 0 && in_channels > 0 && out_channels > 0);
        let fan_in = in_channels * kernel;
        let limit = (6.0 / (fan_in + out_channels * kernel) as f32).sqrt();
        let mut weights = Matrix::zeros(out_channels, in_channels * kernel);
        for v in weights.as_mut_slice() {
            *v = rng.gen_range(-limit..limit);
        }
        Self {
            in_channels,
            out_channels,
            length,
            kernel,
            dilation,
            weights,
            bias: Matrix::zeros(1, out_channels),
            grad_w: Matrix::zeros(out_channels, in_channels * kernel),
            grad_b: Matrix::zeros(1, out_channels),
            cached_input: None,
        }
    }

    fn in_width(&self) -> usize {
        self.in_channels * self.length
    }

    fn out_width(&self) -> usize {
        self.out_channels * self.length
    }

    /// Receptive-field offset of kernel tap `k` relative to the output
    /// position, in input samples. Centred kernel: taps span
    /// `[-(kernel/2)*dilation, +(kernel/2)*dilation]`.
    fn tap_offset(&self, k: usize) -> isize {
        (k as isize - (self.kernel / 2) as isize) * self.dilation as isize
    }
}

impl Layer for DilatedConv1d {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        self.cached_input = Some(input.clone());
        self.infer(input)
    }

    fn infer(&self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.in_width(),
            "conv input width {} != channels*length {}",
            input.cols(),
            self.in_width()
        );
        let mut out = Matrix::zeros(input.rows(), self.out_width());
        for b in 0..input.rows() {
            let x = input.row(b);
            for oc in 0..self.out_channels {
                let bias = self.bias[(0, oc)];
                for t in 0..self.length {
                    let mut acc = bias;
                    for ic in 0..self.in_channels {
                        for k in 0..self.kernel {
                            let src = t as isize + self.tap_offset(k);
                            if src < 0 || src >= self.length as isize {
                                continue; // zero padding
                            }
                            let w = self.weights[(oc, ic * self.kernel + k)];
                            acc += w * x[ic * self.length + src as usize];
                        }
                    }
                    out[(b, oc * self.length + t)] = acc;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self.cached_input.as_ref().expect("backward before forward");
        assert_eq!(grad_out.cols(), self.out_width());
        let mut grad_in = Matrix::zeros(input.rows(), self.in_width());
        for b in 0..input.rows() {
            let x = input.row(b);
            let g = grad_out.row(b);
            for oc in 0..self.out_channels {
                for t in 0..self.length {
                    let go = g[oc * self.length + t];
                    if go == 0.0 {
                        continue;
                    }
                    self.grad_b[(0, oc)] += go;
                    for ic in 0..self.in_channels {
                        for k in 0..self.kernel {
                            let src = t as isize + self.tap_offset(k);
                            if src < 0 || src >= self.length as isize {
                                continue;
                            }
                            let src = src as usize;
                            self.grad_w[(oc, ic * self.kernel + k)] +=
                                go * x[ic * self.length + src];
                            grad_in[(b, ic * self.length + src)] +=
                                go * self.weights[(oc, ic * self.kernel + k)];
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn params_and_grads(&mut self) -> Vec<(&mut [f32], &mut [f32])> {
        vec![
            (self.weights.as_mut_slice(), self.grad_w.as_mut_slice()),
            (self.bias.as_mut_slice(), self.grad_b.as_mut_slice()),
        ]
    }

    fn zero_grads(&mut self) {
        self.grad_w.as_mut_slice().fill(0.0);
        self.grad_b.as_mut_slice().fill(0.0);
    }

    fn param_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel + self.out_channels
    }

    fn out_dim(&self, in_dim: usize) -> usize {
        assert_eq!(in_dim, self.in_width(), "conv stacked after wrong width");
        self.out_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_runtime::rng::Rng;

    /// A kernel of [0, 1, 0] with dilation 1 is the identity.
    #[test]
    fn identity_kernel_passes_signal_through() {
        let mut rng = Rng::seed_from_u64(0);
        let mut conv = DilatedConv1d::new(1, 1, 5, 3, 1, &mut rng);
        conv.weights.as_mut_slice().copy_from_slice(&[0.0, 1.0, 0.0]);
        conv.bias.as_mut_slice().fill(0.0);
        let x = Matrix::row_vector(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let y = conv.forward(&x);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    /// Dilation 2 with kernel [1, 0, 0] reads the sample two to the left.
    #[test]
    fn dilation_widens_receptive_field() {
        let mut rng = Rng::seed_from_u64(0);
        let mut conv = DilatedConv1d::new(1, 1, 5, 3, 2, &mut rng);
        conv.weights.as_mut_slice().copy_from_slice(&[1.0, 0.0, 0.0]);
        conv.bias.as_mut_slice().fill(0.0);
        let x = Matrix::row_vector(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let y = conv.forward(&x);
        // Output[t] = x[t-2], zero-padded.
        assert_eq!(y.as_slice(), &[0.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn multiple_channels_sum_contributions() {
        let mut rng = Rng::seed_from_u64(0);
        let mut conv = DilatedConv1d::new(2, 1, 3, 1, 1, &mut rng);
        // One-tap kernel per channel: w = [2, 3].
        conv.weights.as_mut_slice().copy_from_slice(&[2.0, 3.0]);
        conv.bias.as_mut_slice().fill(1.0);
        // channel0 = [1,1,1], channel1 = [2,2,2]
        let x = Matrix::row_vector(&[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        let y = conv.forward(&x);
        assert_eq!(y.as_slice(), &[9.0, 9.0, 9.0]);
    }

    /// Finite-difference gradient check over all conv parameters and inputs.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from_u64(42);
        let mut conv = DilatedConv1d::new(2, 2, 4, 3, 2, &mut rng);
        let x = {
            let mut m = Matrix::zeros(2, 8);
            for v in m.as_mut_slice() {
                *v = rng.gen_range(-1.0..1.0);
            }
            m
        };
        // Loss = sum(y^2) / 2, so dL/dy = y.
        let loss = |conv: &mut DilatedConv1d, x: &Matrix| -> f32 {
            let y = conv.forward(x);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        let y = conv.forward(&x);
        conv.zero_grads();
        let grad_in = conv.backward(&y);

        let eps = 1e-3f32;
        // Check a sample of weight gradients.
        let analytic_w: Vec<f32> = conv.grad_w.as_slice().to_vec();
        for idx in [0usize, 3, 7, 11] {
            let orig = conv.weights.as_mut_slice()[idx];
            conv.weights.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&mut conv, &x);
            conv.weights.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&mut conv, &x);
            conv.weights.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic_w[idx]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "weight {idx}: numeric {numeric} vs analytic {}",
                analytic_w[idx]
            );
        }
        // Check a sample of input gradients.
        let mut x2 = x.clone();
        for idx in [0usize, 5, 10, 15] {
            let orig = x2.as_slice()[idx];
            x2.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&mut conv, &x2);
            x2.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&mut conv, &x2);
            x2.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in.as_slice()[idx]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "input {idx}: numeric {numeric} vs analytic {}",
                grad_in.as_slice()[idx]
            );
        }
    }
}
