//! Approximate flow-membership structures: count–min sketch + Bloom
//! filter.
//!
//! The exact double-hash [`crate::table::FlowShard`] spends a full slot
//! (~a hundred bytes of stats) on every flow it has ever admitted — fine
//! at thousands of concurrent flows, ruinous at millions, most of which
//! are one- or two-packet mice that will never reach the classification
//! threshold. The sketch-assisted data plane keeps those mice out of the
//! exact tables:
//!
//! * a [`BloomFilter`] answers "has this 5-tuple been seen at all?" in a
//!   few bits per flow, so the very first packet of a flow touches no
//!   counter state;
//! * a [`CountMinSketch`] counts repeat packets per flow in `O(depth)`
//!   u32 cells, **overestimating only** — a flow's estimate is never
//!   below its true count, so a promotion rule of the form
//!   "estimate ≥ k ⇒ claim an exact slot" can *over*-admit but never
//!   starve a genuinely heavy flow.
//!
//! Both structures hash the canonical 5-tuple with
//! [`FiveTuple::bi_hash`] under per-row derived seeds, so forward and
//! reverse directions of a flow share cells, estimates are deterministic
//! per seed, and nothing here depends on worker count or insertion
//! batching.
//!
//! The standard count–min error bound applies: with `width = ⌈e/ε⌉` and
//! `depth = ⌈ln(1/δ)⌉`, a point estimate after `N` total increments
//! exceeds the true count by more than `ε·N` with probability at most
//! `δ`. [`CountMinSketch::error_bound`] exposes the `ε·N` term so tests
//! and telemetry can check the bound against adversarially skewed
//! streams.

use crate::five_tuple::FiveTuple;

/// SplitMix64 step — derives decorrelated per-row hash seeds from one
/// user seed (same finalizer the runtime RNG uses for stream derivation).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded count–min sketch over canonical 5-tuples.
///
/// `depth` rows of `width` u32 counters (width rounded up to a power of
/// two so the per-packet index is a mask, not a divide). Increments
/// saturate instead of wrapping, preserving the overestimate-only
/// invariant even on pathological streams.
#[derive(Clone, Debug)]
pub struct CountMinSketch {
    width: usize,
    mask: u64,
    seeds: Vec<u64>,
    /// `depth × width`, row-major.
    counts: Vec<u32>,
}

impl CountMinSketch {
    /// `width` is rounded up to the next power of two; `depth` rows are
    /// seeded from `seed`.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0 && depth > 0, "sketch dimensions must be positive");
        let width = width.next_power_of_two();
        let seeds = (0..depth as u64).map(|r| splitmix(seed ^ splitmix(r))).collect();
        Self { width, mask: width as u64 - 1, seeds, counts: vec![0; width * depth] }
    }

    /// Sizes the sketch for the standard `(ε, δ)` guarantee:
    /// `width = ⌈e/ε⌉`, `depth = ⌈ln(1/δ)⌉`.
    pub fn with_error_bound(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(width, depth, seed)
    }

    #[inline]
    fn cell(&self, row: usize, key: &FiveTuple) -> usize {
        row * self.width + (key.bi_hash(self.seeds[row]) & self.mask) as usize
    }

    /// Adds one observation of `key` and returns the updated point
    /// estimate (the post-increment minimum across rows).
    pub fn increment(&mut self, key: &FiveTuple) -> u32 {
        let mut est = u32::MAX;
        for row in 0..self.seeds.len() {
            let c = self.cell(row, key);
            self.counts[c] = self.counts[c].saturating_add(1);
            est = est.min(self.counts[c]);
        }
        est
    }

    /// Point estimate of `key`'s count — always ≥ the true count.
    pub fn estimate(&self, key: &FiveTuple) -> u32 {
        (0..self.seeds.len()).map(|row| self.counts[self.cell(row, key)]).min().unwrap_or(0)
    }

    /// The `ε·N` additive error term of the count–min guarantee for a
    /// stream of `total` increments: a point estimate exceeds the true
    /// count by more than this with probability ≤ `δ = e^-depth`.
    pub fn error_bound(&self, total: u64) -> u64 {
        (std::f64::consts::E / self.width as f64 * total as f64).ceil() as u64
    }

    /// `δ = e^-depth`: per-query probability of exceeding
    /// [`CountMinSketch::error_bound`].
    pub fn delta(&self) -> f64 {
        (-(self.seeds.len() as f64)).exp()
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn depth(&self) -> usize {
        self.seeds.len()
    }

    /// Resident size of the counter array in bytes.
    pub fn bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u32>()
    }

    /// Zeroes every counter (epoch rotation).
    pub fn clear(&mut self) {
        self.counts.fill(0);
    }
}

/// A seeded Bloom filter over canonical 5-tuples.
///
/// `k` derived hash functions over a power-of-two bit array. No false
/// negatives ever: once inserted, a key always tests present.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    mask: u64,
    seeds: Vec<u64>,
    words: Vec<u64>,
}

impl BloomFilter {
    /// `bits` is rounded up to the next power of two (min 64); `hashes`
    /// probe positions per key are seeded from `seed`.
    pub fn new(bits: usize, hashes: usize, seed: u64) -> Self {
        assert!(bits > 0 && hashes > 0, "bloom dimensions must be positive");
        let bits = bits.next_power_of_two().max(64);
        let seeds =
            (0..hashes as u64).map(|r| splitmix(seed ^ splitmix(r ^ 0xB100_F11E))).collect();
        Self { mask: bits as u64 - 1, seeds, words: vec![0; bits / 64] }
    }

    #[inline]
    fn bit(&self, seed: u64, key: &FiveTuple) -> (usize, u64) {
        let b = key.bi_hash(seed) & self.mask;
        ((b >> 6) as usize, 1u64 << (b & 63))
    }

    /// Tests membership: false ⇒ definitely never inserted.
    pub fn contains(&self, key: &FiveTuple) -> bool {
        self.seeds.iter().all(|&s| {
            let (w, m) = self.bit(s, key);
            self.words[w] & m != 0
        })
    }

    /// Inserts `key`, returning whether it already tested present
    /// (i.e. the pre-insert [`BloomFilter::contains`]).
    pub fn insert(&mut self, key: &FiveTuple) -> bool {
        let mut present = true;
        for i in 0..self.seeds.len() {
            let (w, m) = self.bit(self.seeds[i], key);
            present &= self.words[w] & m != 0;
            self.words[w] |= m;
        }
        present
    }

    /// Resident size of the bit array in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Clears every bit (epoch rotation).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::five_tuple::{PROTO_TCP, PROTO_UDP};
    use iguard_runtime::proptest_lite;
    use iguard_runtime::rng::Rng;
    use std::collections::HashMap;

    fn key(i: u32, rng: &mut Rng) -> FiveTuple {
        FiveTuple::new(
            0x0A00_0000 | (i & 0xFFFF),
            0xC0A8_0000 | (i >> 16),
            10_000 + (i % 40_000) as u16,
            [80u16, 443, 53, 8883][rng.gen_range(0..4usize)],
            if rng.gen_bool(0.5) { PROTO_TCP } else { PROTO_UDP },
        )
    }

    #[test]
    fn cms_exact_on_sparse_stream() {
        let mut cms = CountMinSketch::new(1024, 4, 7);
        let mut rng = Rng::seed_from_u64(1);
        let a = key(1, &mut rng);
        let b = key(2, &mut rng);
        assert_eq!(cms.estimate(&a), 0);
        assert_eq!(cms.increment(&a), 1);
        assert_eq!(cms.increment(&a), 2);
        assert_eq!(cms.increment(&b), 1);
        assert_eq!(cms.estimate(&a), 2);
        assert_eq!(cms.estimate(&b), 1);
        cms.clear();
        assert_eq!(cms.estimate(&a), 0);
    }

    #[test]
    fn cms_direction_symmetric() {
        let mut cms = CountMinSketch::new(256, 3, 9);
        let mut rng = Rng::seed_from_u64(2);
        let k = key(77, &mut rng);
        cms.increment(&k);
        let mut rev = k;
        std::mem::swap(&mut rev.src_ip, &mut rev.dst_ip);
        std::mem::swap(&mut rev.src_port, &mut rev.dst_port);
        assert_eq!(cms.estimate(&rev), 1, "reverse direction must share cells");
    }

    #[test]
    fn cms_sizing_from_error_bound() {
        let cms = CountMinSketch::with_error_bound(0.01, 0.01, 3);
        assert!(cms.width() >= 272); // e/0.01 ≈ 271.8, rounded up to pow2
        assert!(cms.width().is_power_of_two());
        assert_eq!(cms.depth(), 5); // ln(100) ≈ 4.6 → 5
        assert!(cms.delta() <= 0.01);
    }

    #[test]
    fn bloom_no_false_negatives_dense() {
        let mut bloom = BloomFilter::new(1 << 12, 3, 11);
        let mut rng = Rng::seed_from_u64(3);
        let keys: Vec<FiveTuple> = (0..2000).map(|i| key(i, &mut rng)).collect();
        for k in &keys {
            bloom.insert(k);
        }
        // Way past the design fill — false positives abound, false
        // negatives must not exist.
        for k in &keys {
            assert!(bloom.contains(k), "inserted key tested absent");
        }
    }

    proptest_lite! {
        /// Point queries never underestimate, on any random stream.
        fn cms_overestimates_only(rng) {
            let mut cms = CountMinSketch::new(rng.gen_range(16usize..512), rng.gen_range(1usize..5), rng.next_u64());
            let distinct = rng.gen_range(4usize..200);
            let pool: Vec<FiveTuple> = (0..distinct).map(|i| key(i as u32, rng)).collect();
            let mut truth: HashMap<FiveTuple, u32> = HashMap::new();
            for _ in 0..rng.gen_range(10usize..3000) {
                let k = &pool[rng.gen_range(0..pool.len())];
                let canon = k.canonical();
                *truth.entry(canon).or_default() += 1;
                let est = cms.increment(k);
                assert!(est >= truth[&canon], "estimate {est} < true {}", truth[&canon]);
            }
            for (k, &t) in &truth {
                assert!(cms.estimate(k) >= t, "post-hoc estimate under-counts");
            }
        }

        /// The ε/δ bound holds on adversarially skewed (Zipf-like) streams:
        /// at most a small fraction of point queries exceed true + ε·N.
        fn cms_error_bound_on_skewed_stream(rng, cases = 16) {
            let mut cms = CountMinSketch::with_error_bound(0.02, 0.05, rng.next_u64());
            let distinct = rng.gen_range(200usize..800);
            let pool: Vec<FiveTuple> = (0..distinct).map(|i| key(i as u32, rng)).collect();
            let mut truth: HashMap<FiveTuple, u32> = HashMap::new();
            let n = rng.gen_range(5_000usize..20_000);
            for _ in 0..n {
                // Zipf-ish rank skew: rank = distinct * u^3 piles mass on
                // the low ranks — the adversarial regime for a sketch.
                let u = rng.next_f64();
                let rank = ((u * u * u) * pool.len() as f64) as usize;
                let k = &pool[rank.min(pool.len() - 1)];
                *truth.entry(k.canonical()).or_default() += 1;
                cms.increment(k);
            }
            let bound = cms.error_bound(n as u64) as u32;
            let violations = truth
                .iter()
                .filter(|(k, &t)| cms.estimate(k) > t.saturating_add(bound))
                .count();
            // Per-query violation probability ≤ δ = 0.05; allow 3× slack
            // over the expectation to keep the seeded cases stable.
            let allowed = ((truth.len() as f64) * cms.delta() * 3.0).ceil() as usize + 1;
            assert!(violations <= allowed, "{violations} ε/δ violations > {allowed} allowed");
        }

        /// Bloom: zero false negatives on any insert/query interleaving.
        fn bloom_zero_false_negatives(rng) {
            let mut bloom = BloomFilter::new(rng.gen_range(64usize..8192), rng.gen_range(1usize..6), rng.next_u64());
            let mut inserted: Vec<FiveTuple> = Vec::new();
            for i in 0..rng.gen_range(1usize..600) {
                let k = key(i as u32, rng);
                if rng.gen_bool(0.7) {
                    bloom.insert(&k);
                    inserted.push(k);
                }
                for k in &inserted {
                    debug_assert!(bloom.contains(k));
                }
            }
            for k in &inserted {
                assert!(bloom.contains(k), "false negative");
            }
        }

        /// Same seed ⇒ same estimates, regardless of the ambient worker
        /// count (the sketch is strictly sequential state).
        fn sketch_deterministic_across_worker_counts(rng, cases = 8) {
            let seed = rng.next_u64();
            let stream: Vec<FiveTuple> = (0..500).map(|i| key(i % 37, rng)).collect();
            let run = || {
                let mut cms = CountMinSketch::new(128, 3, seed);
                let mut bloom = BloomFilter::new(1024, 3, seed);
                let mut acc: u64 = 0;
                for k in &stream {
                    acc = acc.wrapping_mul(31).wrapping_add(cms.increment(k) as u64);
                    acc = acc.wrapping_mul(31).wrapping_add(bloom.insert(k) as u64);
                }
                acc
            };
            let want = iguard_runtime::par::with_workers(1, run);
            for workers in [2usize, 8] {
                assert_eq!(
                    iguard_runtime::par::with_workers(workers, run),
                    want,
                    "sketch state diverged at {workers} workers"
                );
            }
        }
    }
}
