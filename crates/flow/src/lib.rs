//! # iguard-flow — packet and flow substrate for iGuard
//!
//! Everything between raw bytes on the wire and the feature vectors the
//! models consume:
//!
//! * [`wire`] — typed Ethernet II / IPv4 / TCP / UDP header views with
//!   checksum generation and validation (smoltcp-style, zero-copy reads).
//! * [`packet`] — the parsed [`packet::Packet`] record used by generators
//!   and the switch emulator, with byte-level encode/decode.
//! * [`five_tuple`] — [`five_tuple::FiveTuple`] flow identity and the
//!   **bi-hash** (direction-symmetric hash) HorusEye uses for bidirectional
//!   flow indexing in the data plane.
//! * [`stats`] — streaming per-flow statistics (Welford variance, inter-
//!   packet delays, TCP flag counts) updatable at line rate, one packet at
//!   a time, with O(1) state — exactly the register state a switch keeps.
//! * [`features`] — the three feature views of the paper: the 13 switch
//!   flow-level features (§4.2), the 4 packet-level features for early
//!   packets (§3.3.1), and the richer Magnifier-grade CPU feature set (§4.1).
//! * [`table`] — the data-plane flow table: two hash tables with double
//!   hashing, explicit collision reporting, idle timeout `δ`, and the
//!   per-flow packet-count threshold `n` (§3.3.1).
//! * [`batch`] — structure-of-arrays packet batches
//!   ([`batch::PacketBatch`] / [`batch::FeatureColumns`]): the columnar
//!   ingest format of the batched classification hot path.

#![forbid(unsafe_code)]

pub mod batch;
pub mod features;
pub mod five_tuple;
pub mod packet;
pub mod sketch;
pub mod stats;
pub mod table;
pub mod wire;

pub use batch::{FeatureColumns, PacketBatch};
pub use features::{FeatureSet, MAGNIFIER_DIM, PL_DIM, SWITCH_FL_DIM};
pub use five_tuple::FiveTuple;
pub use packet::{Packet, TcpFlags};
pub use sketch::{BloomFilter, CountMinSketch};
pub use stats::FlowStats;
pub use table::{
    FlowShard, FlowTable, FlowTableConfig, FlowTableStats, InsertOutcome, PhaseSchedule, SlotClaim,
};
