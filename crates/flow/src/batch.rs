//! Structure-of-arrays packet batches: the columnar ingest format of the
//! classification hot path.
//!
//! The per-packet pipeline walks `Packet` structs one at a time; at batch
//! sizes the array-of-structs layout wastes the memory system — every
//! feature read drags a whole packet record through the cache, and every
//! per-packet feature vector costs an allocation. [`FeatureColumns`] holds
//! a batch's features **column-major** (one contiguous `f32` slice per
//! feature), and [`PacketBatch`] is the ingest step: one pass over the
//! packets fills the canonical flow keys and the four packet-level feature
//! columns in tight per-column loops, after which the match stage can
//! probe whole column slices at once and never touch the allocator.
//!
//! Both types are plain growable buffers designed for reuse: `fill`/
//! `reset` reshape in place, so a replay loop allocates once and then
//! processes arbitrarily many batches allocation-free.

use crate::features::PL_DIM;
use crate::five_tuple::FiveTuple;
use crate::packet::Packet;

/// A column-major `rows × dims` feature matrix: column `d` is the
/// contiguous slice `data[d*rows .. (d+1)*rows]`. The transpose of
/// `iguard_runtime::Dataset`'s row-major layout — this is the shape the
/// interval-index batch probes consume.
#[derive(Clone, Debug, Default)]
pub struct FeatureColumns {
    dims: usize,
    rows: usize,
    data: Vec<f32>,
}

impl FeatureColumns {
    /// Reshapes to `dims` columns of `rows` values each, reusing the
    /// backing buffer. Contents are unspecified until written.
    pub fn reset(&mut self, dims: usize, rows: usize) {
        self.dims = dims;
        self.rows = rows;
        self.data.clear();
        self.data.resize(dims * rows, 0.0);
    }

    pub fn dims(&self) -> usize {
        self.dims
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column `d` as a contiguous slice of length `rows`.
    #[inline]
    pub fn column(&self, d: usize) -> &[f32] {
        &self.data[d * self.rows..(d + 1) * self.rows]
    }

    /// Mutable view of column `d`.
    #[inline]
    pub fn column_mut(&mut self, d: usize) -> &mut [f32] {
        &mut self.data[d * self.rows..(d + 1) * self.rows]
    }

    /// Pre-grows the backing buffer for a `dims × rows` reshape without
    /// changing the current contents or shape.
    pub fn reserve(&mut self, dims: usize, rows: usize) {
        let need = dims * rows;
        if self.data.capacity() < need {
            self.data.reserve(need - self.data.len());
        }
    }

    /// Gathers row `i` (one value per column) into `out`.
    pub fn gather_row_into(&self, i: usize, out: &mut Vec<f32>) {
        debug_assert!(i < self.rows);
        out.clear();
        for d in 0..self.dims {
            out.push(self.data[d * self.rows + i]);
        }
    }
}

/// One ingested packet batch in structure-of-arrays form: the canonical
/// flow key per packet plus the 4 packet-level feature columns of
/// [`crate::features::FeatureSet::PacketLevel`] (dst_port, proto,
/// wire_len, ttl), extracted in per-column tight loops.
///
/// The batch is read-only after [`PacketBatch::fill`], so parallel shard
/// groups share one instance by reference.
#[derive(Clone, Debug, Default)]
pub struct PacketBatch {
    /// `keys[i]` = `pkts[i].five.canonical()` — computed once per packet
    /// here instead of once per lookup downstream.
    pub keys: Vec<FiveTuple>,
    /// The 4 packet-level feature columns, `pkts.len()` rows each.
    pub pl: FeatureColumns,
}

impl PacketBatch {
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Pre-grows the backing buffers for batches of up to `rows` packets,
    /// so a streaming loop that calls [`PacketBatch::fill`] with a known
    /// maximum batch size never reallocates after warm-up.
    pub fn reserve(&mut self, rows: usize) {
        if self.keys.capacity() < rows {
            self.keys.reserve(rows - self.keys.len());
        }
        self.pl.reserve(PL_DIM, rows);
    }

    /// Ingests `pkts`: canonical keys, then each PL feature column in its
    /// own pass. Reuses the previous fill's buffers.
    pub fn fill(&mut self, pkts: &[Packet]) {
        let n = pkts.len();
        self.keys.clear();
        self.keys.extend(pkts.iter().map(|p| p.five.canonical()));
        self.pl.reset(PL_DIM, n);
        for (dst, p) in self.pl.column_mut(0).iter_mut().zip(pkts) {
            *dst = p.five.dst_port as f32;
        }
        for (dst, p) in self.pl.column_mut(1).iter_mut().zip(pkts) {
            *dst = p.five.proto as f32;
        }
        for (dst, p) in self.pl.column_mut(2).iter_mut().zip(pkts) {
            *dst = p.wire_len as f32;
        }
        for (dst, p) in self.pl.column_mut(3).iter_mut().zip(pkts) {
            *dst = p.ttl as f32;
        }
    }

    /// The packet-level feature row of packet `i` — identical to
    /// [`crate::features::packet_level_features`] on the source packet.
    #[inline]
    pub fn pl_row(&self, i: usize) -> [f32; PL_DIM] {
        [self.pl.column(0)[i], self.pl.column(1)[i], self.pl.column(2)[i], self.pl.column(3)[i]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::packet_level_features;
    use crate::five_tuple::PROTO_TCP;
    use crate::packet::TcpFlags;

    fn pkt(sport: u16, len: u16, ttl: u8) -> Packet {
        Packet {
            ts_ns: 0,
            five: FiveTuple::new(0xC0A80101, 0x0A000001, sport, 80, PROTO_TCP),
            wire_len: len,
            ttl,
            flags: TcpFlags::default(),
        }
    }

    #[test]
    fn columns_match_per_packet_extraction() {
        let pkts = vec![pkt(40_000, 60, 64), pkt(40_001, 1500, 128), pkt(2, 0, 0)];
        let mut b = PacketBatch::default();
        b.fill(&pkts);
        assert_eq!(b.len(), 3);
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(b.keys[i], p.five.canonical());
            assert_eq!(b.pl_row(i).to_vec(), packet_level_features(p));
            let mut row = Vec::new();
            b.pl.gather_row_into(i, &mut row);
            assert_eq!(row, packet_level_features(p));
        }
    }

    #[test]
    fn refill_reshapes_in_place() {
        let mut b = PacketBatch::default();
        b.fill(&[pkt(1, 100, 64); 8]);
        assert_eq!(b.pl.rows(), 8);
        b.fill(&[pkt(2, 200, 32)]);
        assert_eq!(b.len(), 1);
        assert_eq!(b.pl.rows(), 1);
        assert_eq!(b.pl.column(2), &[200.0]);
        b.fill(&[]);
        assert!(b.is_empty());
        assert_eq!(b.pl.column(0), &[] as &[f32]);
    }
}
