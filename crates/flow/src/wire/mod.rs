//! Typed wire-format views: Ethernet II, IPv4, TCP, UDP.
//!
//! Follows the smoltcp idiom: a header type wraps a byte slice and exposes
//! typed accessors; emission writes into a caller-provided buffer. Parsing
//! never copies payload bytes.

pub mod checksum;
pub mod ethernet;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use ethernet::{EtherType, EthernetFrame, ETHERNET_HEADER_LEN};
pub use ipv4::{Ipv4Packet, IPV4_HEADER_LEN};
pub use tcp::{TcpSegment, TCP_HEADER_LEN};
pub use udp::{UdpDatagram, UDP_HEADER_LEN};

/// Errors surfaced while parsing wire formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header.
    Truncated,
    /// A length field is inconsistent with the buffer.
    BadLength,
    /// A checksum failed verification.
    BadChecksum,
    /// The version / ethertype / protocol field is not one we support.
    Unsupported,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadLength => write!(f, "inconsistent length field"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::Unsupported => write!(f, "unsupported protocol field"),
        }
    }
}

impl std::error::Error for WireError {}
