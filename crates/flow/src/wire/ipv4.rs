//! IPv4 header view with checksum support (no options).

use super::checksum;
use super::WireError;

/// Length of an IPv4 header without options (IHL = 5).
pub const IPV4_HEADER_LEN: usize = 20;

/// Zero-copy view over an IPv4 packet.
#[derive(Debug)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps and validates: version, IHL, total length vs buffer.
    pub fn new_checked(buffer: T) -> Result<Self, WireError> {
        let b = buffer.as_ref();
        if b.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if b[0] >> 4 != 4 {
            return Err(WireError::Unsupported);
        }
        let ihl = (b[0] & 0x0F) as usize * 4;
        if ihl < IPV4_HEADER_LEN || b.len() < ihl {
            return Err(WireError::BadLength);
        }
        let total = u16::from_be_bytes([b[2], b[3]]) as usize;
        if total < ihl || total > b.len() {
            return Err(WireError::BadLength);
        }
        Ok(Self { buffer })
    }

    fn header_len(&self) -> usize {
        (self.buffer.as_ref()[0] & 0x0F) as usize * 4
    }

    pub fn total_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    pub fn identification(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[9]
    }

    pub fn header_checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    pub fn src_ip(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[12], b[13], b[14], b[15]])
    }

    pub fn dst_ip(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[16], b[17], b[18], b[19]])
    }

    /// True iff the header checksum verifies.
    pub fn verify_checksum(&self) -> bool {
        let hlen = self.header_len();
        checksum::verify(&self.buffer.as_ref()[..hlen])
    }

    /// L4 payload as delimited by `total_len`.
    pub fn payload(&self) -> &[u8] {
        let hlen = self.header_len();
        let total = self.total_len() as usize;
        &self.buffer.as_ref()[hlen..total]
    }
}

/// Field bundle for emission.
#[derive(Clone, Copy, Debug)]
pub struct Ipv4Repr {
    pub src_ip: u32,
    pub dst_ip: u32,
    pub protocol: u8,
    pub ttl: u8,
    pub identification: u16,
    /// L4 payload length in bytes.
    pub payload_len: u16,
}

/// Emits a 20-byte IPv4 header (checksum included) into the front of `buf`.
pub fn emit(buf: &mut [u8], repr: &Ipv4Repr) {
    assert!(buf.len() >= IPV4_HEADER_LEN, "buffer too small for IPv4 header");
    let total = IPV4_HEADER_LEN as u16 + repr.payload_len;
    buf[0] = 0x45; // version 4, IHL 5
    buf[1] = 0; // DSCP/ECN
    buf[2..4].copy_from_slice(&total.to_be_bytes());
    buf[4..6].copy_from_slice(&repr.identification.to_be_bytes());
    buf[6..8].copy_from_slice(&[0x40, 0x00]); // DF, no fragmentation
    buf[8] = repr.ttl;
    buf[9] = repr.protocol;
    buf[10..12].copy_from_slice(&[0, 0]);
    buf[12..16].copy_from_slice(&repr.src_ip.to_be_bytes());
    buf[16..20].copy_from_slice(&repr.dst_ip.to_be_bytes());
    let ck = checksum::checksum(&buf[..IPV4_HEADER_LEN]);
    buf[10..12].copy_from_slice(&ck.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repr() -> Ipv4Repr {
        Ipv4Repr {
            src_ip: 0x0A000001,
            dst_ip: 0xC0A80101,
            protocol: 6,
            ttl: 64,
            identification: 0x1234,
            payload_len: 8,
        }
    }

    #[test]
    fn emit_then_parse_roundtrips() {
        let mut buf = vec![0u8; 28];
        emit(&mut buf, &repr());
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.src_ip(), 0x0A000001);
        assert_eq!(p.dst_ip(), 0xC0A80101);
        assert_eq!(p.protocol(), 6);
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.total_len(), 28);
        assert_eq!(p.identification(), 0x1234);
        assert!(p.verify_checksum());
        assert_eq!(p.payload().len(), 8);
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let mut buf = vec![0u8; 28];
        emit(&mut buf, &repr());
        buf[8] = 32; // mutate TTL after checksum
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = vec![0u8; 28];
        emit(&mut buf, &repr());
        buf[0] = 0x65; // IPv6-ish version nibble
        assert_eq!(Ipv4Packet::new_checked(&buf[..]).unwrap_err(), WireError::Unsupported);
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let mut buf = vec![0u8; 28];
        emit(&mut buf, &repr());
        buf[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(Ipv4Packet::new_checked(&buf[..]).unwrap_err(), WireError::BadLength);
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(Ipv4Packet::new_checked(&[0x45u8; 10][..]).unwrap_err(), WireError::Truncated);
    }
}
