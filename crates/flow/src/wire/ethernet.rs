//! Ethernet II framing.

use super::WireError;

/// Length of an Ethernet II header (no 802.1Q tag support, like smoltcp).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// EtherType values we emit/accept.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EtherType {
    Ipv4,
    Arp,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(o) => o,
        }
    }
}

/// Zero-copy view over an Ethernet II frame.
#[derive(Debug)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps a buffer, validating minimum length.
    pub fn new_checked(buffer: T) -> Result<Self, WireError> {
        if buffer.as_ref().len() < ETHERNET_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(Self { buffer })
    }

    pub fn dst_mac(&self) -> [u8; 6] {
        self.buffer.as_ref()[0..6].try_into().unwrap()
    }

    pub fn src_mac(&self) -> [u8; 6] {
        self.buffer.as_ref()[6..12].try_into().unwrap()
    }

    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[12], b[13]]).into()
    }

    /// The L3 payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[ETHERNET_HEADER_LEN..]
    }

    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    pub fn set_dst_mac(&mut self, mac: [u8; 6]) {
        self.buffer.as_mut()[0..6].copy_from_slice(&mac);
    }

    pub fn set_src_mac(&mut self, mac: [u8; 6]) {
        self.buffer.as_mut()[6..12].copy_from_slice(&mac);
    }

    pub fn set_ethertype(&mut self, et: EtherType) {
        let v: u16 = et.into();
        self.buffer.as_mut()[12..14].copy_from_slice(&v.to_be_bytes());
    }

    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[ETHERNET_HEADER_LEN..]
    }
}

/// Emits an Ethernet II header into the front of `buf`.
pub fn emit(buf: &mut [u8], src: [u8; 6], dst: [u8; 6], ethertype: EtherType) {
    assert!(buf.len() >= ETHERNET_HEADER_LEN, "buffer too small for Ethernet header");
    buf[0..6].copy_from_slice(&dst);
    buf[6..12].copy_from_slice(&src);
    let v: u16 = ethertype.into();
    buf[12..14].copy_from_slice(&v.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = vec![0u8; 20];
        emit(&mut buf, [1; 6], [2; 6], EtherType::Ipv4);
        let f = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.src_mac(), [1; 6]);
        assert_eq!(f.dst_mac(), [2; 6]);
        assert_eq!(f.ethertype(), EtherType::Ipv4);
        assert_eq!(f.payload().len(), 6);
    }

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(EthernetFrame::new_checked(&[0u8; 13][..]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn ethertype_conversion() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(u16::from(EtherType::Other(0x1234)), 0x1234);
    }
}
