//! TCP segment view (fixed 20-byte header, no options).

use super::checksum;
use super::WireError;

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// Zero-copy view over a TCP segment (header + payload).
#[derive(Debug)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    pub fn new_checked(buffer: T) -> Result<Self, WireError> {
        let b = buffer.as_ref();
        if b.len() < TCP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let data_off = (b[12] >> 4) as usize * 4;
        if data_off < TCP_HEADER_LEN || data_off > b.len() {
            return Err(WireError::BadLength);
        }
        Ok(Self { buffer })
    }

    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    pub fn seq(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    pub fn ack(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[8], b[9], b[10], b[11]])
    }

    /// Raw flag byte (CWR..FIN).
    pub fn flags(&self) -> u8 {
        self.buffer.as_ref()[13]
    }

    pub fn window(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[14], b[15]])
    }

    pub fn payload(&self) -> &[u8] {
        let off = (self.buffer.as_ref()[12] >> 4) as usize * 4;
        &self.buffer.as_ref()[off..]
    }

    /// Verifies the TCP checksum given the enclosing IPv4 addresses.
    pub fn verify_checksum(&self, src_ip: u32, dst_ip: u32) -> bool {
        let b = self.buffer.as_ref();
        let sum = checksum::pseudo_header_sum(src_ip, dst_ip, 6, b.len() as u16)
            + checksum::ones_complement_sum(b);
        checksum::finish(sum) == 0
    }
}

/// Field bundle for emission.
#[derive(Clone, Copy, Debug)]
pub struct TcpRepr {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: u8,
    pub window: u16,
}

/// Emits a TCP header + checksum over `payload_len` bytes already placed
/// after the header in `buf`.
pub fn emit(buf: &mut [u8], repr: &TcpRepr, src_ip: u32, dst_ip: u32, payload_len: usize) {
    let seg_len = TCP_HEADER_LEN + payload_len;
    assert!(buf.len() >= seg_len, "buffer too small for TCP segment");
    buf[0..2].copy_from_slice(&repr.src_port.to_be_bytes());
    buf[2..4].copy_from_slice(&repr.dst_port.to_be_bytes());
    buf[4..8].copy_from_slice(&repr.seq.to_be_bytes());
    buf[8..12].copy_from_slice(&repr.ack.to_be_bytes());
    buf[12] = (5u8) << 4; // data offset = 5 words
    buf[13] = repr.flags;
    buf[14..16].copy_from_slice(&repr.window.to_be_bytes());
    buf[16..18].copy_from_slice(&[0, 0]); // checksum placeholder
    buf[18..20].copy_from_slice(&[0, 0]); // urgent pointer
    let sum = checksum::pseudo_header_sum(src_ip, dst_ip, 6, seg_len as u16)
        + checksum::ones_complement_sum(&buf[..seg_len]);
    let ck = checksum::finish(sum);
    buf[16..18].copy_from_slice(&ck.to_be_bytes());
}

/// TCP flag bits.
pub mod flags {
    pub const FIN: u8 = 0x01;
    pub const SYN: u8 = 0x02;
    pub const RST: u8 = 0x04;
    pub const PSH: u8 = 0x08;
    pub const ACK: u8 = 0x10;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repr() -> TcpRepr {
        TcpRepr {
            src_port: 51234,
            dst_port: 443,
            seq: 1000,
            ack: 2000,
            flags: flags::SYN | flags::ACK,
            window: 65535,
        }
    }

    #[test]
    fn emit_then_parse_roundtrips() {
        let mut buf = vec![0u8; 24];
        buf[20..].copy_from_slice(b"data");
        emit(&mut buf, &repr(), 0x0A000001, 0xC0A80101, 4);
        let s = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(s.src_port(), 51234);
        assert_eq!(s.dst_port(), 443);
        assert_eq!(s.seq(), 1000);
        assert_eq!(s.ack(), 2000);
        assert_eq!(s.flags(), flags::SYN | flags::ACK);
        assert_eq!(s.window(), 65535);
        assert_eq!(s.payload(), b"data");
        assert!(s.verify_checksum(0x0A000001, 0xC0A80101));
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let mut buf = vec![0u8; 20];
        emit(&mut buf, &repr(), 0x0A000001, 0xC0A80101, 0);
        let s = TcpSegment::new_checked(&buf[..]).unwrap();
        // Wrong source IP must break verification.
        assert!(!s.verify_checksum(0x0A000002, 0xC0A80101));
    }

    #[test]
    fn corrupt_payload_breaks_checksum() {
        let mut buf = vec![0u8; 25];
        emit(&mut buf, &repr(), 1, 2, 5);
        buf[22] ^= 0xFF;
        let s = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(!s.verify_checksum(1, 2));
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(TcpSegment::new_checked(&[0u8; 19][..]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut buf = vec![0u8; 20];
        buf[12] = 3 << 4; // 12-byte header: illegal
        assert_eq!(TcpSegment::new_checked(&buf[..]).unwrap_err(), WireError::BadLength);
    }
}
