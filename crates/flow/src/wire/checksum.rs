//! RFC 1071 Internet checksum, shared by IPv4/TCP/UDP.

/// One's-complement sum over 16-bit big-endian words, with odd-byte padding.
pub fn ones_complement_sum(data: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += u16::from_be_bytes([*last, 0]) as u32;
    }
    sum
}

/// Folds carries and complements, producing the final checksum field value.
pub fn finish(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Computes the RFC 1071 checksum of `data`.
pub fn checksum(data: &[u8]) -> u16 {
    finish(ones_complement_sum(data))
}

/// Pseudo-header contribution for TCP/UDP checksums over IPv4.
pub fn pseudo_header_sum(src_ip: u32, dst_ip: u32, proto: u8, l4_len: u16) -> u32 {
    let mut sum = 0u32;
    sum += (src_ip >> 16) + (src_ip & 0xFFFF);
    sum += (dst_ip >> 16) + (dst_ip & 0xFFFF);
    sum += proto as u32;
    sum += l4_len as u32;
    sum
}

/// Verifies that a buffer containing its own checksum field sums to zero.
pub fn verify(data: &[u8]) -> bool {
    finish(ones_complement_sum(data)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical example from RFC 1071 §3.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold -> 0xddf2
        assert_eq!(checksum(&data), !0xddf2u16);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xFF]), checksum(&[0xFF, 0x00]));
    }

    #[test]
    fn verify_accepts_self_checksummed_buffer() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x40, 0x06, 0, 0];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn empty_buffer_checksums_to_ffff() {
        assert_eq!(checksum(&[]), 0xFFFF);
    }
}
