//! UDP datagram view.

use super::checksum;
use super::WireError;

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// Zero-copy view over a UDP datagram (header + payload).
#[derive(Debug)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    pub fn new_checked(buffer: T) -> Result<Self, WireError> {
        let b = buffer.as_ref();
        if b.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = u16::from_be_bytes([b[4], b[5]]) as usize;
        if len < UDP_HEADER_LEN || len > b.len() {
            return Err(WireError::BadLength);
        }
        Ok(Self { buffer })
    }

    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Header + payload length from the length field.
    pub fn len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    pub fn is_empty(&self) -> bool {
        self.len() as usize == UDP_HEADER_LEN
    }

    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[UDP_HEADER_LEN..self.len() as usize]
    }

    /// Verifies the UDP checksum; a zero checksum means "not computed" and
    /// verifies trivially, per RFC 768.
    pub fn verify_checksum(&self, src_ip: u32, dst_ip: u32) -> bool {
        let b = self.buffer.as_ref();
        let stored = u16::from_be_bytes([b[6], b[7]]);
        if stored == 0 {
            return true;
        }
        let len = self.len() as usize;
        let sum = checksum::pseudo_header_sum(src_ip, dst_ip, 17, len as u16)
            + checksum::ones_complement_sum(&b[..len]);
        checksum::finish(sum) == 0
    }
}

/// Emits a UDP header + checksum over `payload_len` bytes already placed
/// after the header in `buf`.
pub fn emit(
    buf: &mut [u8],
    src_port: u16,
    dst_port: u16,
    src_ip: u32,
    dst_ip: u32,
    payload_len: usize,
) {
    let len = UDP_HEADER_LEN + payload_len;
    assert!(buf.len() >= len, "buffer too small for UDP datagram");
    buf[0..2].copy_from_slice(&src_port.to_be_bytes());
    buf[2..4].copy_from_slice(&dst_port.to_be_bytes());
    buf[4..6].copy_from_slice(&(len as u16).to_be_bytes());
    buf[6..8].copy_from_slice(&[0, 0]);
    let sum = checksum::pseudo_header_sum(src_ip, dst_ip, 17, len as u16)
        + checksum::ones_complement_sum(&buf[..len]);
    let mut ck = checksum::finish(sum);
    if ck == 0 {
        ck = 0xFFFF; // RFC 768: transmitted as all ones if computed as zero
    }
    buf[6..8].copy_from_slice(&ck.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_then_parse_roundtrips() {
        let mut buf = vec![0u8; 13];
        buf[8..].copy_from_slice(b"hello");
        emit(&mut buf, 5353, 53, 0x0A000001, 0x08080808, 5);
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.src_port(), 5353);
        assert_eq!(d.dst_port(), 53);
        assert_eq!(d.len(), 13);
        assert_eq!(d.payload(), b"hello");
        assert!(d.verify_checksum(0x0A000001, 0x08080808));
    }

    #[test]
    fn zero_checksum_verifies_trivially() {
        let mut buf = vec![0u8; 8];
        emit(&mut buf, 1, 2, 3, 4, 0);
        buf[6..8].copy_from_slice(&[0, 0]);
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(d.verify_checksum(3, 4));
    }

    #[test]
    fn corruption_breaks_checksum() {
        let mut buf = vec![0u8; 12];
        buf[8..].copy_from_slice(b"abcd");
        emit(&mut buf, 1000, 2000, 1, 2, 4);
        buf[9] ^= 0x55;
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(!d.verify_checksum(1, 2));
    }

    #[test]
    fn rejects_length_field_beyond_buffer() {
        let mut buf = vec![0u8; 8];
        emit(&mut buf, 1, 2, 3, 4, 0);
        buf[4..6].copy_from_slice(&64u16.to_be_bytes());
        assert_eq!(UdpDatagram::new_checked(&buf[..]).unwrap_err(), WireError::BadLength);
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(UdpDatagram::new_checked(&[0u8; 7][..]).unwrap_err(), WireError::Truncated);
    }
}
