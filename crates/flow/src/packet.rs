//! The parsed packet record flowing through generators and the emulator.

use crate::five_tuple::{FiveTuple, PROTO_TCP, PROTO_UDP};
use crate::wire::{self, ethernet, ipv4, tcp, udp, EtherType, WireError};

/// TCP flags in a compact, copyable form.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpFlags {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub rst: bool,
    pub psh: bool,
}

impl TcpFlags {
    pub fn from_byte(b: u8) -> Self {
        Self {
            fin: b & tcp::flags::FIN != 0,
            syn: b & tcp::flags::SYN != 0,
            rst: b & tcp::flags::RST != 0,
            psh: b & tcp::flags::PSH != 0,
            ack: b & tcp::flags::ACK != 0,
        }
    }

    pub fn to_byte(self) -> u8 {
        let mut b = 0;
        if self.fin {
            b |= tcp::flags::FIN;
        }
        if self.syn {
            b |= tcp::flags::SYN;
        }
        if self.rst {
            b |= tcp::flags::RST;
        }
        if self.psh {
            b |= tcp::flags::PSH;
        }
        if self.ack {
            b |= tcp::flags::ACK;
        }
        b
    }

    /// A bare SYN (connection attempt).
    pub fn syn_only() -> Self {
        Self { syn: true, ..Default::default() }
    }
}

/// One packet of a trace: timestamp, flow identity, and the header fields
/// the iGuard pipeline consumes. `wire_len` is the on-the-wire length
/// including the Ethernet header (what a switch counter sees).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Nanoseconds since trace start.
    pub ts_ns: u64,
    pub five: FiveTuple,
    /// Total on-the-wire length in bytes (Ethernet + IP + L4 + payload).
    pub wire_len: u16,
    pub ttl: u8,
    pub flags: TcpFlags,
}

impl Packet {
    /// L4 payload length implied by `wire_len` for this protocol, saturating
    /// at zero for sub-minimum lengths.
    pub fn payload_len(&self) -> u16 {
        let overhead = ethernet::ETHERNET_HEADER_LEN
            + ipv4::IPV4_HEADER_LEN
            + if self.five.proto == PROTO_TCP {
                tcp::TCP_HEADER_LEN
            } else if self.five.proto == PROTO_UDP {
                udp::UDP_HEADER_LEN
            } else {
                8 // ICMP header
            };
        self.wire_len.saturating_sub(overhead as u16)
    }

    /// Serialises the packet to wire bytes (Ethernet + IPv4 + TCP/UDP with
    /// valid checksums and a zero-filled payload). ICMP and other protocols
    /// are emitted with a raw 8-byte L4 stub.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload_len = self.payload_len() as usize;
        let l4_len = payload_len
            + if self.five.proto == PROTO_TCP {
                tcp::TCP_HEADER_LEN
            } else if self.five.proto == PROTO_UDP {
                udp::UDP_HEADER_LEN
            } else {
                8
            };
        let total = ethernet::ETHERNET_HEADER_LEN + ipv4::IPV4_HEADER_LEN + l4_len;
        let mut buf = vec![0u8; total];
        ethernet::emit(
            &mut buf,
            [0x02, 0, 0, 0, 0, 0x01],
            [0x02, 0, 0, 0, 0, 0x02],
            EtherType::Ipv4,
        );
        let ip_start = ethernet::ETHERNET_HEADER_LEN;
        ipv4::emit(
            &mut buf[ip_start..],
            &ipv4::Ipv4Repr {
                src_ip: self.five.src_ip,
                dst_ip: self.five.dst_ip,
                protocol: self.five.proto,
                ttl: self.ttl,
                identification: (self.ts_ns & 0xFFFF) as u16,
                payload_len: l4_len as u16,
            },
        );
        let l4_start = ip_start + ipv4::IPV4_HEADER_LEN;
        if self.five.proto == PROTO_TCP {
            tcp::emit(
                &mut buf[l4_start..],
                &tcp::TcpRepr {
                    src_port: self.five.src_port,
                    dst_port: self.five.dst_port,
                    seq: 0,
                    ack: 0,
                    flags: self.flags.to_byte(),
                    window: 65535,
                },
                self.five.src_ip,
                self.five.dst_ip,
                payload_len,
            );
        } else if self.five.proto == PROTO_UDP {
            udp::emit(
                &mut buf[l4_start..],
                self.five.src_port,
                self.five.dst_port,
                self.five.src_ip,
                self.five.dst_ip,
                payload_len,
            );
        }
        buf
    }

    /// Parses wire bytes back into a packet record, validating the IPv4
    /// header checksum. `ts_ns` is supplied by the capture clock.
    pub fn from_bytes(ts_ns: u64, data: &[u8]) -> Result<Self, WireError> {
        let eth = ethernet::EthernetFrame::new_checked(data)?;
        if eth.ethertype() != EtherType::Ipv4 {
            return Err(WireError::Unsupported);
        }
        let ip = ipv4::Ipv4Packet::new_checked(eth.payload())?;
        if !ip.verify_checksum() {
            return Err(WireError::BadChecksum);
        }
        let (src_port, dst_port, flags) = match ip.protocol() {
            PROTO_TCP => {
                let seg = tcp::TcpSegment::new_checked(ip.payload())?;
                (seg.src_port(), seg.dst_port(), TcpFlags::from_byte(seg.flags()))
            }
            PROTO_UDP => {
                let dg = udp::UdpDatagram::new_checked(ip.payload())?;
                (dg.src_port(), dg.dst_port(), TcpFlags::default())
            }
            _ => (0, 0, TcpFlags::default()),
        };
        Ok(Self {
            ts_ns,
            five: FiveTuple::new(ip.src_ip(), ip.dst_ip(), src_port, dst_port, ip.protocol()),
            wire_len: data.len() as u16,
            ttl: ip.ttl(),
            flags,
        })
    }
}

// Re-export so downstream code can name the error without reaching into wire.
pub use wire::WireError as PacketParseError;

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_packet() -> Packet {
        Packet {
            ts_ns: 1_000,
            five: FiveTuple::new(0x0A000001, 0xC0A80101, 51234, 443, PROTO_TCP),
            wire_len: 120,
            ttl: 64,
            flags: TcpFlags { syn: true, ack: true, ..Default::default() },
        }
    }

    #[test]
    fn tcp_bytes_roundtrip() {
        let p = tcp_packet();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), p.wire_len as usize);
        let q = Packet::from_bytes(p.ts_ns, &bytes).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn udp_bytes_roundtrip() {
        let p = Packet {
            ts_ns: 5,
            five: FiveTuple::new(1, 2, 5353, 53, PROTO_UDP),
            wire_len: 80,
            ttl: 128,
            flags: TcpFlags::default(),
        };
        let q = Packet::from_bytes(5, &p.to_bytes()).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn payload_len_subtracts_headers() {
        let p = tcp_packet();
        // 120 - 14 (eth) - 20 (ip) - 20 (tcp) = 66
        assert_eq!(p.payload_len(), 66);
    }

    #[test]
    fn minimum_size_packet_has_empty_payload() {
        let p = Packet { wire_len: 40, ..tcp_packet() };
        assert_eq!(p.payload_len(), 0);
    }

    #[test]
    fn corrupted_bytes_rejected() {
        let p = tcp_packet();
        let mut bytes = p.to_bytes();
        bytes[ethernet::ETHERNET_HEADER_LEN + 8] ^= 0xFF; // TTL byte
        assert_eq!(Packet::from_bytes(0, &bytes).unwrap_err(), WireError::BadChecksum);
    }

    #[test]
    fn flags_byte_roundtrip() {
        for b in 0..32u8 {
            assert_eq!(TcpFlags::from_byte(b).to_byte(), b & 0x1F);
        }
    }
}
