//! The data-plane flow table: double hash tables with bi-hash indexing.
//!
//! Models the stateful storage of paper §3.3.1 / Fig. 4:
//!
//! * two fixed-size register arrays ("double hash tables") indexed by the
//!   direction-symmetric [`FiveTuple::bi_hash`] under two different seeds —
//!   a packet probes table 1 first, then table 2, mitigating collisions;
//! * a per-flow **packet-count threshold `n`**: flow-level features are
//!   considered reliable at the n-th packet, at which point the feature
//!   vector is frozen and handed to classification;
//! * an **idle timeout `δ`**: a flow idle longer than δ is classified with
//!   whatever state it has and its storage released;
//! * an explicit **collision** outcome when both candidate slots hold other
//!   live flows — the paper's orange execution path.
//!
//! The probe/install logic lives in [`FlowShard`], a self-contained pair of
//! hash tables. [`FlowTable`] — the type the single-threaded pipeline uses —
//! is one full-size shard; the sharded data plane instead owns many small
//! `FlowShard`s, one per 5-tuple partition, and the behaviour of each shard
//! is identical to a `FlowTable` of the same slot count.

use crate::five_tuple::FiveTuple;
use crate::packet::Packet;
use crate::stats::FlowStats;
use iguard_telemetry::counter;

/// Observations per churn-rate window: every `PRESSURE_WINDOW` packets a
/// shard observes, its collision/eviction tallies are folded into a churn
/// rate (per-mille of the window) and the window restarts. A fixed,
/// per-shard packet count — never wall-clock, batch, or worker derived —
/// so the pressure signal is byte-identical across batch sizes, worker
/// counts, and shard groupings.
pub const PRESSURE_WINDOW: u64 = 256;

/// Maximum number of intermediate phase boundaries a schedule can hold.
/// Fixed so [`PhaseSchedule`] (and therefore [`FlowTableConfig`]) stays
/// `Copy` — four early looks before the final threshold is already more
/// than the pForest-style designs use.
pub const MAX_PHASES: usize = 4;

/// Intermediate classification boundaries for phase-aware operation
/// (pForest-style): a tracked flow additionally surfaces its frozen
/// feature state at each boundary `b < pkt_threshold` packets, so the
/// pipeline can consult a per-phase model long before the final
/// threshold. The default (no boundaries) reproduces single-shot
/// semantics exactly — every packet path is bit-identical to a build
/// without this type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseSchedule {
    boundaries: [u64; MAX_PHASES],
    len: u8,
}

impl Default for PhaseSchedule {
    fn default() -> Self {
        Self::disabled()
    }
}

impl PhaseSchedule {
    /// The single-shot schedule: no intermediate boundaries.
    pub const fn disabled() -> Self {
        Self { boundaries: [0; MAX_PHASES], len: 0 }
    }

    /// A schedule with the given boundaries (at most [`MAX_PHASES`]).
    /// Ordering/range validity is enforced against the owning config by
    /// [`FlowShard::new`], which knows the final threshold.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(bounds.len() <= MAX_PHASES, "at most {MAX_PHASES} phase boundaries");
        let mut boundaries = [0u64; MAX_PHASES];
        boundaries[..bounds.len()].copy_from_slice(bounds);
        Self { boundaries, len: bounds.len() as u8 }
    }

    /// Number of intermediate boundaries.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether any intermediate boundary is configured.
    pub fn is_enabled(&self) -> bool {
        self.len > 0
    }

    /// The configured boundaries, in ascending packet-count order.
    pub fn boundaries(&self) -> &[u64] {
        &self.boundaries[..self.len as usize]
    }
}

/// Configuration of the flow table.
#[derive(Clone, Copy, Debug)]
pub struct FlowTableConfig {
    /// Slots per hash table (two tables of this size are kept).
    pub slots_per_table: usize,
    /// Packet-count threshold `n`: classify at the n-th packet.
    pub pkt_threshold: u64,
    /// Idle timeout `δ` in nanoseconds.
    pub timeout_ns: u64,
    /// Hash seed of table 1.
    pub seed1: u64,
    /// Hash seed of table 2.
    pub seed2: u64,
    /// Intermediate phase boundaries (default: disabled / single-shot).
    pub phases: PhaseSchedule,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        Self {
            slots_per_table: 4096,
            pkt_threshold: 8,
            timeout_ns: 2_000_000_000, // 2 s
            seed1: 0x5151_5151,
            seed2: 0xA3A3_A3A3,
            phases: PhaseSchedule::disabled(),
        }
    }
}

impl FlowTableConfig {
    /// Builder: slots per hash table.
    pub fn with_slots_per_table(mut self, slots: usize) -> Self {
        self.slots_per_table = slots;
        self
    }

    /// Builder: packet-count threshold `n`.
    pub fn with_pkt_threshold(mut self, n: u64) -> Self {
        self.pkt_threshold = n;
        self
    }

    /// Builder: idle timeout `δ` in nanoseconds.
    pub fn with_timeout_ns(mut self, timeout_ns: u64) -> Self {
        self.timeout_ns = timeout_ns;
        self
    }

    /// Builder: the two table hash seeds.
    pub fn with_seeds(mut self, seed1: u64, seed2: u64) -> Self {
        self.seed1 = seed1;
        self.seed2 = seed2;
        self
    }

    /// Builder: intermediate phase boundaries.
    pub fn with_phases(mut self, phases: PhaseSchedule) -> Self {
        self.phases = phases;
        self
    }
}

/// A point-in-time occupancy summary — the `DataPlane` trait reports this
/// uniformly for single-table and sharded backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Occupied slots across both hash tables (summed over shards).
    pub occupancy: usize,
    /// Total slot capacity across both hash tables (summed over shards).
    pub capacity: usize,
    /// Packets that hit the collision (orange) path.
    pub collision_packets: u64,
}

impl FlowTableStats {
    /// Fraction of slots occupied.
    pub fn fill(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.occupancy as f64 / self.capacity as f64
        }
    }

    /// Element-wise sum — merging per-shard stats into a table-wide view.
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            occupancy: self.occupancy + other.occupancy,
            capacity: self.capacity + other.capacity,
            collision_packets: self.collision_packets + other.collision_packets,
        }
    }
}

/// Point-in-time pressure summary of one shard (or a merge of many): the
/// live pressure signal plus the high-water marks that show how bad the
/// worst window so far was. See [`FlowShard::pressure_milli`] for the
/// signal definition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PressureStats {
    /// Current pressure, 0..=1000 (per-mille). Max over merged shards.
    pub pressure_milli: u32,
    /// Churn rate of the last completed window, 0..=1000. Max over shards.
    pub churn_milli: u32,
    /// Highest completed-window churn rate seen. Max over shards.
    pub churn_milli_hwm: u32,
    /// Most resident flows ever held at once. Summed over shards (an
    /// upper bound on the table-wide simultaneous high-water mark).
    pub occupancy_hwm: usize,
    /// Most collision packets in one completed window. Max over shards.
    pub collision_window_hwm: u64,
    /// Most displacements in one completed window. Max over shards.
    pub eviction_window_hwm: u64,
    /// Total residents displaced by newer flows (timed-out or classified
    /// slot reuse) plus budget evictions. Summed over shards.
    pub evictions: u64,
}

impl PressureStats {
    /// Folds another shard's pressure view into this one: rates and their
    /// high-water marks take the max (pressure is a per-shard signal — one
    /// hot shard must stay visible in the aggregate), while occupancy
    /// high-water and eviction totals sum.
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            pressure_milli: self.pressure_milli.max(other.pressure_milli),
            churn_milli: self.churn_milli.max(other.churn_milli),
            churn_milli_hwm: self.churn_milli_hwm.max(other.churn_milli_hwm),
            occupancy_hwm: self.occupancy_hwm + other.occupancy_hwm,
            collision_window_hwm: self.collision_window_hwm.max(other.collision_window_hwm),
            eviction_window_hwm: self.eviction_window_hwm.max(other.eviction_window_hwm),
            evictions: self.evictions + other.evictions,
        }
    }
}

/// One slot of a hash table.
#[derive(Clone, Copy, Debug)]
struct Slot {
    key: FiveTuple,
    stats: FlowStats,
    /// `None` = unclassified (-1 in the paper), `Some(m)` = classified.
    label: Option<bool>,
    /// Index of the next [`PhaseSchedule`] boundary this flow has yet to
    /// cross. Reset to 0 on install *and* on idle-timeout rebirth — a
    /// reborn flow restarts its phase ladder from scratch.
    phase: u8,
}

/// What [`FlowShard::admit_prehashed`] did to slot storage — the
/// bookkeeping signal the memory-budgeted (sketched) data plane needs to
/// keep an exact resident count and an exact eviction book without ever
/// scanning the tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotClaim {
    /// Installed into a previously empty slot: one more resident flow.
    Fresh,
    /// Installed over a timed-out or already-classified foreign resident,
    /// whose key is returned: resident count unchanged, but the displaced
    /// key is no longer tracked.
    Displaced(FiveTuple),
    /// Nothing installed (collision): resident set unchanged.
    Unclaimed,
}

/// The result of observing one packet — maps 1:1 to the coloured packet
/// execution paths of Fig. 4 (blacklist matching happens upstream in the
/// switch pipeline, not here).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InsertOutcome {
    /// 1..(n−1)-th packet of a tracked flow; state updated (brown path).
    Early { pkt_count: u64 },
    /// The n-th packet arrived, or the resident flow timed out: the frozen
    /// feature state is handed out and the slot awaits a label (blue path).
    Ready { stats: FlowStats, timed_out: bool },
    /// The flow crossed an intermediate [`PhaseSchedule`] boundary: its
    /// current feature state is surfaced for an early per-phase look, but
    /// the slot stays resident and unlabeled — tracking continues toward
    /// the next boundary or the final threshold. `phase` is the index of
    /// the boundary just crossed.
    PhaseReady { stats: FlowStats, phase: u8 },
    /// The flow was already classified; early decision (purple path).
    Classified { label: bool },
    /// Both candidate slots hold other *unclassified* live flows
    /// (orange path, resident label −1): the packet cannot be tracked.
    Collision,
    /// Both slots were occupied but a resident was already classified
    /// (orange path, resident label 0/1): the resident was evicted and the
    /// new flow installed.
    ReplacedClassified { pkt_count: u64 },
}

/// Deferred telemetry of [`FlowShard::observe_prehashed`]: per-event
/// counts accumulated in plain fields and flushed to the global registry
/// in one atomic add per event kind. A batched caller flushes once per
/// chunk; [`FlowShard::observe_keyed`] flushes per call — either way the
/// registry totals are identical to per-packet `counter!(..).inc()` calls.
#[derive(Clone, Copy, Debug, Default)]
pub struct ObserveTallies {
    pub classified: u64,
    pub ready_timeout: u64,
    pub ready: u64,
    pub phase_ready: u64,
    pub early: u64,
    pub install: u64,
    pub evict_classified: u64,
    pub collision: u64,
}

impl ObserveTallies {
    /// Adds the accumulated counts to the global metric registry and
    /// zeroes the tallies.
    pub fn flush(&mut self) {
        let flush_one = |n: u64, c: &'static iguard_telemetry::Counter| {
            if n > 0 {
                c.add(n);
            }
        };
        flush_one(self.classified, counter!("flow.table.classified"));
        flush_one(self.ready_timeout, counter!("flow.table.ready_timeout"));
        flush_one(self.ready, counter!("flow.table.ready"));
        flush_one(self.phase_ready, counter!("flow.table.phase_ready"));
        flush_one(self.early, counter!("flow.table.early"));
        flush_one(self.install, counter!("flow.table.install"));
        flush_one(self.evict_classified, counter!("flow.table.evict_classified"));
        flush_one(self.collision, counter!("flow.table.collision"));
        *self = Self::default();
    }
}

/// Double-hash-table flow storage: one self-contained partition.
///
/// This is the unit of state the sharded data plane distributes — each
/// shard owns the flows whose canonical 5-tuple hashes into it, and no
/// state is shared between shards.
pub struct FlowShard {
    cfg: FlowTableConfig,
    table1: Vec<Option<Slot>>,
    table2: Vec<Option<Slot>>,
    /// `slots_per_table - 1` when the size is a power of two (the
    /// default): `h % size == h & mask`, and the AND avoids a 64-bit
    /// divide on the per-packet path. `None` falls back to `%`.
    pow2_mask: Option<u64>,
    /// Count of packets that hit the collision path (telemetry).
    pub collision_packets: u64,
    /// Occupied slots across both tables, maintained O(1) at every slot
    /// mutation so the pressure signal never scans the tables.
    resident: usize,
    /// Most resident flows ever held at once.
    occupancy_hwm: usize,
    /// Residents displaced by newer flows plus budget evictions (total).
    evictions: u64,
    /// Packets observed in the current churn window.
    win_obs: u64,
    /// Collision packets in the current churn window.
    win_collisions: u64,
    /// Displacements (timed-out / classified slot reuse) in the current
    /// churn window.
    win_evictions: u64,
    /// Churn rate of the last completed window (per-mille of the window).
    churn_milli: u32,
    /// Highest completed-window churn rate seen.
    churn_milli_hwm: u32,
    /// Most collision packets in one completed window.
    collision_window_hwm: u64,
    /// Most displacements in one completed window.
    eviction_window_hwm: u64,
}

impl FlowShard {
    pub fn new(cfg: FlowTableConfig) -> Self {
        assert!(cfg.slots_per_table > 0, "table must have at least one slot");
        assert!(cfg.pkt_threshold >= 1, "packet threshold must be >= 1");
        // Phase boundaries must be strictly increasing, at least 2 (the
        // first packet of a flow takes the install path, which never emits
        // a phase look), and strictly below the final threshold (the
        // threshold itself is the single-shot blue path).
        let mut prev = 1u64;
        for &b in cfg.phases.boundaries() {
            assert!(b >= 2, "phase boundary {b} must be >= 2");
            assert!(b > prev, "phase boundaries must be strictly increasing");
            assert!(b < cfg.pkt_threshold, "phase boundary {b} must be below the packet threshold");
            prev = b;
        }
        Self {
            table1: vec![None; cfg.slots_per_table],
            table2: vec![None; cfg.slots_per_table],
            pow2_mask: cfg
                .slots_per_table
                .is_power_of_two()
                .then(|| cfg.slots_per_table as u64 - 1),
            cfg,
            collision_packets: 0,
            resident: 0,
            occupancy_hwm: 0,
            evictions: 0,
            win_obs: 0,
            win_collisions: 0,
            win_evictions: 0,
            churn_milli: 0,
            churn_milli_hwm: 0,
            collision_window_hwm: 0,
            eviction_window_hwm: 0,
        }
    }

    pub fn config(&self) -> &FlowTableConfig {
        &self.cfg
    }

    #[inline]
    fn reduce(&self, h: u64) -> usize {
        match self.pow2_mask {
            Some(mask) => (h & mask) as usize,
            None => (h % self.cfg.slots_per_table as u64) as usize,
        }
    }

    /// Advances the churn window by one observed packet, folding the
    /// window's collision/eviction tallies into `churn_milli` when it
    /// completes. Called once per packet from the resident probe.
    #[inline]
    fn note_observe(&mut self) {
        self.win_obs += 1;
        if self.win_obs >= PRESSURE_WINDOW {
            // A packet either collides or displaces, never both, so the
            // sum stays within the window.
            let churn = (self.win_collisions + self.win_evictions).min(self.win_obs);
            self.churn_milli = (churn * 1000 / self.win_obs) as u32;
            self.churn_milli_hwm = self.churn_milli_hwm.max(self.churn_milli);
            self.collision_window_hwm = self.collision_window_hwm.max(self.win_collisions);
            self.eviction_window_hwm = self.eviction_window_hwm.max(self.win_evictions);
            self.win_obs = 0;
            self.win_collisions = 0;
            self.win_evictions = 0;
        }
    }

    /// Resident-count / churn bookkeeping of one slot claim.
    #[inline]
    fn note_claim(&mut self, claim: &SlotClaim) {
        match claim {
            SlotClaim::Fresh => {
                self.resident += 1;
                self.occupancy_hwm = self.occupancy_hwm.max(self.resident);
            }
            SlotClaim::Displaced(_) => {
                self.evictions += 1;
                self.win_evictions += 1;
            }
            SlotClaim::Unclaimed => {}
        }
    }

    /// The live pressure signal, 0..=1000 (per-mille): the max of the
    /// last completed window's churn rate (collisions + displacements per
    /// observed packet) and *half* the occupancy fill. Churn-primary by
    /// design — a full but quiet table tops out at 500, below the
    /// degraded-mode entry threshold, so sustained slot fighting (the
    /// state-exhaustion signature) is what reads as overload, and the
    /// signal can fall back through the exit threshold in pulse gaps even
    /// while the table is still full of stale residents.
    #[inline]
    pub fn pressure_milli(&self) -> u32 {
        let occ = (self.resident * 500 / self.capacity()) as u32;
        self.churn_milli.max(occ)
    }

    /// Pressure + high-water-mark summary of this shard.
    pub fn pressure_stats(&self) -> PressureStats {
        PressureStats {
            pressure_milli: self.pressure_milli(),
            churn_milli: self.churn_milli,
            churn_milli_hwm: self.churn_milli_hwm,
            occupancy_hwm: self.occupancy_hwm,
            collision_window_hwm: self.collision_window_hwm,
            eviction_window_hwm: self.eviction_window_hwm,
            evictions: self.evictions,
        }
    }

    fn idx1(&self, key: &FiveTuple) -> usize {
        self.reduce(key.bi_hash(self.cfg.seed1))
    }

    fn idx2(&self, key: &FiveTuple) -> usize {
        self.reduce(key.bi_hash(self.cfg.seed2))
    }

    /// The candidate slot pair of `key` — a pure function of the config
    /// (seeds + table size), exposed so the columnar ingest path can hash
    /// a whole chunk of keys up front and prefetch the slots while earlier
    /// rows are still being walked.
    pub fn slot_index_pair(&self, key: &FiveTuple) -> (u32, u32) {
        (self.idx1(key) as u32, self.idx2(key) as u32)
    }

    /// Warms the cache lines of both candidate slots: issues dead loads
    /// the optimiser cannot delete (`black_box`), which the CPU retires
    /// without stalling — a safe-code software prefetch. A `Slot` spans
    /// ~3 cache lines and `observe` reads/writes stats fields throughout
    /// it, so for occupied slots the touch reads fields spread across the
    /// struct, not just the discriminant line. Purely a performance hint;
    /// no observable state changes.
    #[inline]
    pub fn prefetch_slots(&self, i1: u32, i2: u32) {
        let touch = |s: &Option<Slot>| {
            std::hint::black_box(
                s.as_ref().map(|e| e.stats.last_ts_ns ^ e.stats.min_ipd_ns ^ e.stats.rst_fin_count),
            );
        };
        touch(&self.table1[i1 as usize]);
        touch(&self.table2[i2 as usize]);
    }

    /// Observes one packet, advancing flow state and reporting which
    /// execution path it takes. `now_ns` is the packet's arrival time.
    pub fn observe(&mut self, p: &Packet, now_ns: u64) -> InsertOutcome {
        self.observe_keyed(p.five.canonical(), p, now_ns)
    }

    /// [`FlowShard::observe`] with the canonical flow key precomputed —
    /// the batched ingest path canonicalizes once per packet up front and
    /// passes the key through here and the blacklist probe.
    pub fn observe_keyed(&mut self, key: FiveTuple, p: &Packet, now_ns: u64) -> InsertOutcome {
        let (i1, i2) = self.slot_index_pair(&key);
        let mut t = ObserveTallies::default();
        let out = self.observe_prehashed(key, i1, i2, p, now_ns, &mut t);
        t.flush();
        out
    }

    /// The core probe/install walk with the slot pair precomputed and
    /// telemetry deferred: event counts land in `tallies` instead of the
    /// global registry, so a batched caller pays the atomic adds once per
    /// chunk rather than per packet (totals are identical — see
    /// [`ObserveTallies::flush`]).
    pub fn observe_prehashed(
        &mut self,
        key: FiveTuple,
        i1: u32,
        i2: u32,
        p: &Packet,
        now_ns: u64,
        tallies: &mut ObserveTallies,
    ) -> InsertOutcome {
        match self.observe_resident_prehashed(key, i1, i2, p, now_ns, tallies) {
            Some(out) => out,
            None => self.admit_prehashed(key, i1, i2, p, now_ns, tallies).0,
        }
    }

    /// The resident half of the probe/install walk: if `key` is tracked
    /// in either table, advance its state (classified / early / ready /
    /// timeout-restart, exactly as [`FlowShard::observe_prehashed`]) and
    /// return the outcome; if untracked, return `None` **without claiming
    /// a slot**. The seam the sketch-assisted data plane interposes on:
    /// untracked flows go to the admission sketch instead of straight to
    /// [`FlowShard::admit_prehashed`].
    pub fn observe_resident_prehashed(
        &mut self,
        key: FiveTuple,
        i1: u32,
        i2: u32,
        p: &Packet,
        now_ns: u64,
        tallies: &mut ObserveTallies,
    ) -> Option<InsertOutcome> {
        debug_assert_eq!(key, p.five.canonical());
        debug_assert_eq!((i1, i2), self.slot_index_pair(&key));
        self.note_observe();
        let (i1, i2) = (i1 as usize, i2 as usize);

        // Probe for the flow itself first (either table).
        for (table_id, idx) in [(1usize, i1), (2usize, i2)] {
            let slot_opt =
                if table_id == 1 { &mut self.table1[idx] } else { &mut self.table2[idx] };
            if let Some(slot) = slot_opt {
                if slot.key == key {
                    if let Some(label) = slot.label {
                        tallies.classified += 1;
                        return Some(InsertOutcome::Classified { label });
                    }
                    // Timeout check before updating: an idle flow is
                    // classified on whatever state it accumulated.
                    if slot.stats.timed_out(now_ns, self.cfg.timeout_ns) {
                        let stats = slot.stats;
                        // Restart tracking from this packet. The reborn
                        // incarnation restarts its phase ladder too — phase
                        // progress must not leak across the idle gap.
                        slot.stats = FlowStats::from_first_packet(p);
                        slot.phase = 0;
                        tallies.ready_timeout += 1;
                        return Some(InsertOutcome::Ready { stats, timed_out: true });
                    }
                    slot.stats.update(p);
                    if slot.stats.pkt_count >= self.cfg.pkt_threshold {
                        let stats = slot.stats;
                        tallies.ready += 1;
                        return Some(InsertOutcome::Ready { stats, timed_out: false });
                    }
                    // Intermediate phase boundary: surface the current
                    // state for an early look but keep tracking. `>=`
                    // (not `==`) catches up a ladder that skipped a
                    // boundary, though with one outcome per packet and
                    // strictly increasing boundaries that cannot happen
                    // from this walk alone.
                    let ph = slot.phase as usize;
                    if ph < self.cfg.phases.len()
                        && slot.stats.pkt_count >= self.cfg.phases.boundaries()[ph]
                    {
                        slot.phase += 1;
                        tallies.phase_ready += 1;
                        return Some(InsertOutcome::PhaseReady {
                            stats: slot.stats,
                            phase: ph as u8,
                        });
                    }
                    tallies.early += 1;
                    return Some(InsertOutcome::Early { pkt_count: slot.stats.pkt_count });
                }
            }
        }
        None
    }

    /// The install half of the walk, for a flow known to be untracked:
    /// claim a free or reclaimable slot, or report a collision. Also
    /// reports *what storage changed* ([`SlotClaim`]) so a budgeted
    /// caller can keep an exact resident count and learn which foreign
    /// key was displaced.
    pub fn admit_prehashed(
        &mut self,
        key: FiveTuple,
        i1: u32,
        i2: u32,
        p: &Packet,
        now_ns: u64,
        tallies: &mut ObserveTallies,
    ) -> (InsertOutcome, SlotClaim) {
        debug_assert_eq!(key, p.five.canonical());
        debug_assert_eq!((i1, i2), self.slot_index_pair(&key));
        let (i1, i2) = (i1 as usize, i2 as usize);

        // Find a free slot (table 1 preferred), evicting timed-out
        // residents.
        for (table_id, idx) in [(1usize, i1), (2usize, i2)] {
            let slot_opt =
                if table_id == 1 { &mut self.table1[idx] } else { &mut self.table2[idx] };
            let claim = match slot_opt {
                None => Some(SlotClaim::Fresh),
                Some(s) if s.stats.timed_out(now_ns, self.cfg.timeout_ns) => {
                    Some(SlotClaim::Displaced(s.key))
                }
                Some(_) => None,
            };
            if let Some(claim) = claim {
                // Build the stats once and install a copy: the threshold-1
                // fast path below reads the same value without re-probing
                // the slot it just wrote (no unwrap on the hot path).
                let stats = FlowStats::from_first_packet(p);
                *slot_opt = Some(Slot { key, stats, label: None, phase: 0 });
                self.note_claim(&claim);
                tallies.install += 1;
                let out = if self.cfg.pkt_threshold == 1 {
                    tallies.ready += 1;
                    InsertOutcome::Ready { stats, timed_out: false }
                } else {
                    tallies.early += 1;
                    InsertOutcome::Early { pkt_count: 1 }
                };
                return (out, claim);
            }
        }

        // Both occupied by live foreign flows — the orange path. A
        // *classified* resident can be evicted (its verdict lives on in the
        // blacklist/whitelist outcome); an unclassified one cannot.
        for (table_id, idx) in [(1usize, i1), (2usize, i2)] {
            let slot_opt =
                if table_id == 1 { &mut self.table1[idx] } else { &mut self.table2[idx] };
            if let Some(s) = slot_opt {
                if s.label.is_some() {
                    let displaced = s.key;
                    *slot_opt = Some(Slot {
                        key,
                        stats: FlowStats::from_first_packet(p),
                        label: None,
                        phase: 0,
                    });
                    let claim = SlotClaim::Displaced(displaced);
                    self.note_claim(&claim);
                    tallies.evict_classified += 1;
                    tallies.install += 1;
                    return (InsertOutcome::ReplacedClassified { pkt_count: 1 }, claim);
                }
            }
        }
        self.collision_packets += 1;
        self.win_collisions += 1;
        tallies.collision += 1;
        (InsertOutcome::Collision, SlotClaim::Unclaimed)
    }

    /// Releases a flow's slot under memory pressure (the budgeted data
    /// plane's policy eviction). Identical storage effect to
    /// [`FlowShard::clear`], but counted as an eviction, not a
    /// controller-driven clear. Returns false if the flow was not
    /// resident (e.g. a stale eviction-book entry).
    pub fn evict(&mut self, key: &FiveTuple) -> bool {
        let key = key.canonical();
        let i1 = self.idx1(&key);
        if matches!(&self.table1[i1], Some(s) if s.key == key) {
            self.table1[i1] = None;
            self.resident -= 1;
            self.evictions += 1;
            counter!("flow.table.evict_budget").inc();
            return true;
        }
        let i2 = self.idx2(&key);
        if matches!(&self.table2[i2], Some(s) if s.key == key) {
            self.table2[i2] = None;
            self.resident -= 1;
            self.evictions += 1;
            counter!("flow.table.evict_budget").inc();
            return true;
        }
        false
    }

    /// Resident bytes one tracked flow costs: one slot (key + stats +
    /// label + discriminant). The budgeted data plane divides its byte
    /// budget by this to get a tracked-flow cap.
    pub fn slot_bytes() -> usize {
        std::mem::size_of::<Option<Slot>>()
    }

    /// Installs a label for a tracked flow (the green loopback path writes
    /// the class into flow-label storage). Returns false if the flow is not
    /// resident.
    pub fn set_label(&mut self, key: &FiveTuple, label: bool) -> bool {
        let key = key.canonical();
        let i1 = self.idx1(&key);
        if let Some(slot) = &mut self.table1[i1] {
            if slot.key == key {
                slot.label = Some(label);
                return true;
            }
        }
        let i2 = self.idx2(&key);
        if let Some(slot) = &mut self.table2[i2] {
            if slot.key == key {
                slot.label = Some(label);
                return true;
            }
        }
        false
    }

    /// Reads the label of a tracked flow, if any.
    pub fn label_of(&self, key: &FiveTuple) -> Option<Option<bool>> {
        let key = key.canonical();
        if let Some(slot) = &self.table1[self.idx1(&key)] {
            if slot.key == key {
                return Some(slot.label);
            }
        }
        if let Some(slot) = &self.table2[self.idx2(&key)] {
            if slot.key == key {
                return Some(slot.label);
            }
        }
        None
    }

    /// Releases the storage of a flow (controller cleanup on digest).
    /// Returns true if the flow was resident.
    pub fn clear(&mut self, key: &FiveTuple) -> bool {
        let key = key.canonical();
        let i1 = self.idx1(&key);
        if matches!(&self.table1[i1], Some(s) if s.key == key) {
            self.table1[i1] = None;
            self.resident -= 1;
            counter!("flow.table.clear").inc();
            return true;
        }
        let i2 = self.idx2(&key);
        if matches!(&self.table2[i2], Some(s) if s.key == key) {
            self.table2[i2] = None;
            self.resident -= 1;
            counter!("flow.table.clear").inc();
            return true;
        }
        false
    }

    /// Appends every resident flow that already carries a label, in slot
    /// order (table 1 then table 2) — a deterministic iteration the
    /// control-plane resync path uses to re-derive lost digests after a
    /// channel outage.
    pub fn labeled_flows_into(&self, out: &mut Vec<(FiveTuple, bool)>) {
        for slot in self.table1.iter().chain(&self.table2).flatten() {
            if let Some(label) = slot.label {
                out.push((slot.key, label));
            }
        }
    }

    /// Number of occupied slots across both tables. O(1): reads the
    /// maintained resident counter; debug builds cross-check it against a
    /// full slot scan.
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(
            self.resident,
            self.table1.iter().chain(&self.table2).filter(|s| s.is_some()).count(),
            "resident counter drifted from slot scan"
        );
        self.resident
    }

    /// Total slot capacity across both tables.
    pub fn capacity(&self) -> usize {
        2 * self.cfg.slots_per_table
    }

    /// Occupancy + collision summary for this shard.
    pub fn stats(&self) -> FlowTableStats {
        FlowTableStats {
            occupancy: self.occupancy(),
            capacity: self.capacity(),
            collision_packets: self.collision_packets,
        }
    }
}

/// Double-hash-table flow storage: the single-partition table the serial
/// pipeline uses. A thin wrapper over one full-size [`FlowShard`] — the
/// probe/install/evict behaviour is exactly the shard's.
pub struct FlowTable {
    shard: FlowShard,
}

impl FlowTable {
    pub fn new(cfg: FlowTableConfig) -> Self {
        Self { shard: FlowShard::new(cfg) }
    }

    pub fn config(&self) -> &FlowTableConfig {
        self.shard.config()
    }

    /// The underlying shard (shared state view).
    pub fn shard(&self) -> &FlowShard {
        &self.shard
    }

    /// The underlying shard, mutably — the pipeline engine drives this.
    pub fn shard_mut(&mut self) -> &mut FlowShard {
        &mut self.shard
    }

    /// See [`FlowShard::observe`].
    pub fn observe(&mut self, p: &Packet, now_ns: u64) -> InsertOutcome {
        self.shard.observe(p, now_ns)
    }

    /// See [`FlowShard::set_label`].
    pub fn set_label(&mut self, key: &FiveTuple, label: bool) -> bool {
        self.shard.set_label(key, label)
    }

    /// See [`FlowShard::label_of`].
    pub fn label_of(&self, key: &FiveTuple) -> Option<Option<bool>> {
        self.shard.label_of(key)
    }

    /// See [`FlowShard::clear`].
    pub fn clear(&mut self, key: &FiveTuple) -> bool {
        self.shard.clear(key)
    }

    /// See [`FlowShard::labeled_flows_into`].
    pub fn labeled_flows_into(&self, out: &mut Vec<(FiveTuple, bool)>) {
        self.shard.labeled_flows_into(out)
    }

    pub fn occupancy(&self) -> usize {
        self.shard.occupancy()
    }

    pub fn capacity(&self) -> usize {
        self.shard.capacity()
    }

    /// Packets that hit the collision (orange) path.
    pub fn collision_packets(&self) -> u64 {
        self.shard.collision_packets
    }

    pub fn stats(&self) -> FlowTableStats {
        self.shard.stats()
    }

    /// See [`FlowShard::pressure_milli`].
    pub fn pressure_milli(&self) -> u32 {
        self.shard.pressure_milli()
    }

    /// See [`FlowShard::pressure_stats`].
    pub fn pressure_stats(&self) -> PressureStats {
        self.shard.pressure_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::five_tuple::PROTO_TCP;
    use crate::packet::TcpFlags;

    fn cfg() -> FlowTableConfig {
        FlowTableConfig {
            slots_per_table: 64,
            pkt_threshold: 3,
            timeout_ns: 1_000_000_000,
            seed1: 1,
            seed2: 2,
            phases: PhaseSchedule::disabled(),
        }
    }

    fn pkt(flow: u16, ts_ms: u64) -> Packet {
        Packet {
            ts_ns: ts_ms * 1_000_000,
            five: FiveTuple::new(0x0A000001, 0xC0A80101, 10_000 + flow, 80, PROTO_TCP),
            wire_len: 100,
            ttl: 64,
            flags: TcpFlags::default(),
        }
    }

    #[test]
    fn flow_progresses_to_threshold() {
        let mut t = FlowTable::new(cfg());
        assert_eq!(t.observe(&pkt(1, 0), 0), InsertOutcome::Early { pkt_count: 1 });
        assert_eq!(t.observe(&pkt(1, 1), 1_000_000), InsertOutcome::Early { pkt_count: 2 });
        match t.observe(&pkt(1, 2), 2_000_000) {
            InsertOutcome::Ready { stats, timed_out } => {
                assert_eq!(stats.pkt_count, 3);
                assert!(!timed_out);
            }
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn reverse_direction_hits_same_slot() {
        let mut t = FlowTable::new(cfg());
        let fwd = pkt(1, 0);
        let mut rev = pkt(1, 1);
        rev.five = fwd.five.reversed();
        rev.ts_ns = 1_000_000;
        assert_eq!(t.observe(&fwd, 0), InsertOutcome::Early { pkt_count: 1 });
        assert_eq!(t.observe(&rev, 1_000_000), InsertOutcome::Early { pkt_count: 2 });
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn classified_flow_takes_purple_path() {
        let mut t = FlowTable::new(cfg());
        let _ = t.observe(&pkt(1, 0), 0);
        assert!(t.set_label(&pkt(1, 0).five, true));
        assert_eq!(t.observe(&pkt(1, 1), 1_000_000), InsertOutcome::Classified { label: true });
    }

    #[test]
    fn timeout_freezes_state_and_restarts() {
        let mut t = FlowTable::new(cfg());
        let _ = t.observe(&pkt(1, 0), 0);
        // 2 s later: > 1 s timeout.
        match t.observe(&pkt(1, 2000), 2_000_000_000) {
            InsertOutcome::Ready { stats, timed_out } => {
                assert!(timed_out);
                assert_eq!(stats.pkt_count, 1);
            }
            other => panic!("expected timed-out Ready, got {other:?}"),
        }
        // Tracking restarted with the new packet.
        assert_eq!(t.label_of(&pkt(1, 0).five), Some(None));
    }

    #[test]
    fn phase_boundaries_surface_state_and_keep_tracking() {
        let c = FlowTableConfig { pkt_threshold: 6, phases: PhaseSchedule::new(&[2, 4]), ..cfg() };
        let mut t = FlowTable::new(c);
        assert_eq!(t.observe(&pkt(1, 0), 0), InsertOutcome::Early { pkt_count: 1 });
        match t.observe(&pkt(1, 1), 1_000_000) {
            InsertOutcome::PhaseReady { stats, phase } => {
                assert_eq!(phase, 0);
                assert_eq!(stats.pkt_count, 2);
            }
            other => panic!("expected PhaseReady 0, got {other:?}"),
        }
        assert_eq!(t.observe(&pkt(1, 2), 2_000_000), InsertOutcome::Early { pkt_count: 3 });
        match t.observe(&pkt(1, 3), 3_000_000) {
            InsertOutcome::PhaseReady { stats, phase } => {
                assert_eq!(phase, 1);
                assert_eq!(stats.pkt_count, 4);
            }
            other => panic!("expected PhaseReady 1, got {other:?}"),
        }
        assert_eq!(t.observe(&pkt(1, 4), 4_000_000), InsertOutcome::Early { pkt_count: 5 });
        assert!(matches!(
            t.observe(&pkt(1, 5), 5_000_000),
            InsertOutcome::Ready { timed_out: false, .. }
        ));
    }

    #[test]
    fn reborn_flow_restarts_at_phase_zero() {
        let c = FlowTableConfig { pkt_threshold: 6, phases: PhaseSchedule::new(&[2]), ..cfg() };
        let mut t = FlowTable::new(c);
        let _ = t.observe(&pkt(1, 0), 0);
        // Cross the boundary: phase ladder advances past boundary 0.
        assert!(matches!(
            t.observe(&pkt(1, 1), 1_000_000),
            InsertOutcome::PhaseReady { phase: 0, .. }
        ));
        // Idle past the 1 s timeout: the old incarnation flushes.
        assert!(matches!(
            t.observe(&pkt(1, 2000), 2_000_000_000),
            InsertOutcome::Ready { timed_out: true, .. }
        ));
        // The reborn incarnation must cross boundary 0 again at packet 2.
        assert!(matches!(
            t.observe(&pkt(1, 2001), 2_001_000_000),
            InsertOutcome::PhaseReady { phase: 0, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "below the packet threshold")]
    fn phase_boundary_at_threshold_is_rejected() {
        let c = FlowTableConfig { pkt_threshold: 4, phases: PhaseSchedule::new(&[2, 4]), ..cfg() };
        let _ = FlowTable::new(c);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn phase_boundaries_must_increase() {
        let c = FlowTableConfig { pkt_threshold: 10, phases: PhaseSchedule::new(&[4, 4]), ..cfg() };
        let _ = FlowTable::new(c);
    }

    #[test]
    fn collision_reported_when_both_tables_full() {
        let mut small = FlowTableConfig { slots_per_table: 1, ..cfg() };
        small.pkt_threshold = 100;
        let mut t = FlowTable::new(small);
        assert_eq!(t.observe(&pkt(1, 0), 0), InsertOutcome::Early { pkt_count: 1 });
        assert_eq!(t.observe(&pkt(2, 0), 0), InsertOutcome::Early { pkt_count: 1 });
        // Third distinct flow: both single-slot tables occupied, unclassified.
        assert_eq!(t.observe(&pkt(3, 0), 0), InsertOutcome::Collision);
        assert_eq!(t.collision_packets(), 1);
    }

    #[test]
    fn classified_resident_evicted_on_collision() {
        let mut small = FlowTableConfig { slots_per_table: 1, ..cfg() };
        small.pkt_threshold = 100;
        let mut t = FlowTable::new(small);
        let _ = t.observe(&pkt(1, 0), 0);
        let _ = t.observe(&pkt(2, 0), 0);
        assert!(t.set_label(&pkt(1, 0).five, false));
        assert_eq!(t.observe(&pkt(3, 0), 0), InsertOutcome::ReplacedClassified { pkt_count: 1 });
        // Old resident is gone.
        assert_eq!(t.label_of(&pkt(1, 0).five), None);
    }

    #[test]
    fn labeled_flows_lists_only_classified_residents() {
        let mut t = FlowTable::new(cfg());
        let _ = t.observe(&pkt(1, 0), 0);
        let _ = t.observe(&pkt(2, 0), 0);
        let _ = t.observe(&pkt(3, 0), 0);
        assert!(t.set_label(&pkt(1, 0).five, true));
        assert!(t.set_label(&pkt(3, 0).five, false));
        let mut labeled = Vec::new();
        t.labeled_flows_into(&mut labeled);
        labeled.sort_unstable_by_key(|(k, _)| *k);
        assert_eq!(
            labeled,
            vec![(pkt(1, 0).five.canonical(), true), (pkt(3, 0).five.canonical(), false)]
        );
        // Clearing removes the flow from the resync view.
        assert!(t.clear(&pkt(1, 0).five));
        labeled.clear();
        t.labeled_flows_into(&mut labeled);
        assert_eq!(labeled, vec![(pkt(3, 0).five.canonical(), false)]);
    }

    #[test]
    fn clear_releases_slot() {
        let mut t = FlowTable::new(cfg());
        let _ = t.observe(&pkt(1, 0), 0);
        assert_eq!(t.occupancy(), 1);
        assert!(t.clear(&pkt(1, 0).five));
        assert_eq!(t.occupancy(), 0);
        assert!(!t.clear(&pkt(1, 0).five));
    }

    #[test]
    fn threshold_one_classifies_first_packet() {
        let mut c = cfg();
        c.pkt_threshold = 1;
        let mut t = FlowTable::new(c);
        match t.observe(&pkt(1, 0), 0) {
            InsertOutcome::Ready { stats, .. } => assert_eq!(stats.pkt_count, 1),
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn pressure_rises_under_collision_churn_and_sets_high_water_marks() {
        // One slot per table, huge threshold: after the first two flows
        // claim the slots, every further distinct flow collides. Run two
        // full churn windows so churn_milli reflects a completed window.
        let mut small = FlowTableConfig { slots_per_table: 1, ..cfg() };
        small.pkt_threshold = 1_000;
        let mut t = FlowTable::new(small);
        for f in 0..(2 * PRESSURE_WINDOW as u16) {
            let _ = t.observe(&pkt(f, 0), 0);
        }
        let ps = t.pressure_stats();
        assert!(ps.churn_milli > 900, "near-total collision churn, got {}", ps.churn_milli);
        assert!(t.pressure_milli() >= ps.churn_milli);
        assert_eq!(ps.churn_milli_hwm, ps.churn_milli);
        assert!(ps.collision_window_hwm > 0);
        assert_eq!(ps.occupancy_hwm, 2);
    }

    #[test]
    fn full_but_quiet_table_reads_at_most_half_pressure() {
        // Both slots taken, zero churn: the occupancy component alone caps
        // at 500 per-mille, below any degraded-mode entry threshold — a
        // full table that nobody is fighting over is not overload.
        let mut small = FlowTableConfig { slots_per_table: 1, ..cfg() };
        small.pkt_threshold = 1_000;
        let mut t = FlowTable::new(small);
        let _ = t.observe(&pkt(1, 0), 0);
        let _ = t.observe(&pkt(2, 0), 0);
        assert_eq!(t.occupancy(), 2);
        assert_eq!(t.pressure_milli(), 500);
    }

    #[test]
    fn timed_out_displacement_counts_as_eviction_churn() {
        let mut small = FlowTableConfig { slots_per_table: 1, ..cfg() };
        small.pkt_threshold = 1_000;
        let mut t = FlowTable::new(small);
        let _ = t.observe(&pkt(1, 0), 0);
        let _ = t.observe(&pkt(2, 0), 0);
        // 5 s later a new flow displaces the stale resident in table 1.
        let _ = t.observe(&pkt(3, 5000), 5_000_000_000);
        let ps = t.pressure_stats();
        assert_eq!(ps.evictions, 1);
        // Displacement keeps the resident count flat (one out, one in).
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn pressure_stats_merge_maxes_rates_and_sums_totals() {
        let a = PressureStats {
            pressure_milli: 800,
            churn_milli: 800,
            churn_milli_hwm: 900,
            occupancy_hwm: 10,
            collision_window_hwm: 100,
            eviction_window_hwm: 5,
            evictions: 7,
        };
        let b = PressureStats {
            pressure_milli: 100,
            churn_milli: 100,
            churn_milli_hwm: 950,
            occupancy_hwm: 3,
            collision_window_hwm: 40,
            eviction_window_hwm: 9,
            evictions: 2,
        };
        let m = a.merge(&b);
        assert_eq!(m.pressure_milli, 800);
        assert_eq!(m.churn_milli_hwm, 950);
        assert_eq!(m.occupancy_hwm, 13);
        assert_eq!(m.collision_window_hwm, 100);
        assert_eq!(m.eviction_window_hwm, 9);
        assert_eq!(m.evictions, 9);
    }

    #[test]
    fn timed_out_foreign_resident_is_evicted() {
        let mut small = FlowTableConfig { slots_per_table: 1, ..cfg() };
        small.pkt_threshold = 100;
        let mut t = FlowTable::new(small);
        let _ = t.observe(&pkt(1, 0), 0);
        let _ = t.observe(&pkt(2, 0), 0);
        // 5 s later both residents are stale; a new flow takes a slot.
        assert_eq!(t.observe(&pkt(3, 5000), 5_000_000_000), InsertOutcome::Early { pkt_count: 1 });
    }
}
