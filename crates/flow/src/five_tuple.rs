//! Flow identity: the classic 5-tuple and the direction-symmetric bi-hash.

/// IP protocol numbers this workspace cares about.
pub const PROTO_ICMP: u8 = 1;
/// TCP protocol number.
pub const PROTO_TCP: u8 = 6;
/// UDP protocol number.
pub const PROTO_UDP: u8 = 17;

/// The (src ip, dst ip, src port, dst port, protocol) flow key.
///
/// Serialized as 13 bytes in digests (paper App. B.2: 13 B flow ID).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    pub src_ip: u32,
    pub dst_ip: u32,
    pub src_port: u16,
    pub dst_port: u16,
    pub proto: u8,
}

impl FiveTuple {
    pub fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, proto: u8) -> Self {
        Self { src_ip, dst_ip, src_port, dst_port, proto }
    }

    /// The same flow seen in the opposite direction.
    pub fn reversed(&self) -> Self {
        Self {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// Canonical orientation: the endpoint with the smaller (ip, port) pair
    /// becomes the source. Both directions of a flow canonicalise equally.
    pub fn canonical(&self) -> Self {
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port) {
            *self
        } else {
            self.reversed()
        }
    }

    /// Direction-symmetric **bi-hash** (HorusEye §data-plane): both
    /// directions of a flow hash to the same value, enabling bidirectional
    /// flow indexing with a single register array. The two endpoints are
    /// hashed independently and combined with a commutative operation.
    pub fn bi_hash(&self, seed: u64) -> u64 {
        let a = mix(((self.src_ip as u64) << 16) | self.src_port as u64, seed);
        let b = mix(((self.dst_ip as u64) << 16) | self.dst_port as u64, seed);
        // Commutative combine (+, ^) keeps direction symmetry while the
        // per-endpoint mixing avoids the trivial collisions of a plain XOR
        // of raw addresses.
        mix(a.wrapping_add(b) ^ (self.proto as u64), seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Direction-*sensitive* hash for exact-match tables (blacklist).
    pub fn exact_hash(&self, seed: u64) -> u64 {
        let mut h = seed;
        h = mix(h ^ self.src_ip as u64, seed);
        h = mix(h ^ self.dst_ip as u64, seed.rotate_left(17));
        h = mix(h ^ ((self.src_port as u64) << 32 | self.dst_port as u64), seed.rotate_left(31));
        mix(h ^ self.proto as u64, seed.rotate_left(47))
    }

    /// 13-byte digest encoding: src ip, dst ip, ports, proto.
    pub fn to_digest_bytes(&self) -> [u8; 13] {
        let mut out = [0u8; 13];
        out[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        out[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        out[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        out[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        out[12] = self.proto;
        out
    }

    /// Inverse of [`Self::to_digest_bytes`].
    pub fn from_digest_bytes(b: &[u8; 13]) -> Self {
        Self {
            src_ip: u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
            dst_ip: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
            src_port: u16::from_be_bytes([b[8], b[9]]),
            dst_port: u16::from_be_bytes([b[10], b[11]]),
            proto: b[12],
        }
    }
}

/// SplitMix64-style avalanche mixer — cheap, stateless, good diffusion;
/// the same construction Tofino pipelines approximate with CRC-based hashes.
fn mix(mut x: u64, seed: u64) -> u64 {
    x = x.wrapping_add(seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> FiveTuple {
        FiveTuple::new(0x0A00_0001, 0xC0A8_0102, 443, 51234, PROTO_TCP)
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let f = t();
        let r = f.reversed();
        assert_eq!(r.src_ip, f.dst_ip);
        assert_eq!(r.dst_port, f.src_port);
        assert_eq!(r.reversed(), f);
    }

    #[test]
    fn canonical_is_direction_invariant() {
        let f = t();
        assert_eq!(f.canonical(), f.reversed().canonical());
    }

    #[test]
    fn bi_hash_is_direction_symmetric() {
        let f = t();
        assert_eq!(f.bi_hash(42), f.reversed().bi_hash(42));
    }

    #[test]
    fn bi_hash_distinguishes_flows() {
        let f = t();
        let g = FiveTuple::new(0x0A00_0001, 0xC0A8_0102, 443, 51235, PROTO_TCP);
        assert_ne!(f.bi_hash(42), g.bi_hash(42));
        let h = FiveTuple::new(0x0A00_0001, 0xC0A8_0102, 443, 51234, PROTO_UDP);
        assert_ne!(f.bi_hash(42), h.bi_hash(42));
    }

    #[test]
    fn bi_hash_depends_on_seed() {
        let f = t();
        assert_ne!(f.bi_hash(1), f.bi_hash(2));
    }

    #[test]
    fn exact_hash_is_direction_sensitive() {
        let f = t();
        assert_ne!(f.exact_hash(42), f.reversed().exact_hash(42));
    }

    #[test]
    fn digest_roundtrip() {
        let f = t();
        assert_eq!(FiveTuple::from_digest_bytes(&f.to_digest_bytes()), f);
    }

    #[test]
    fn bi_hash_spreads_over_slots() {
        // Sanity: 10k distinct flows into 4096 slots. A uniform hash
        // occupies ~4096·(1 − e^(−10000/4096)) ≈ 3740 slots; accept a
        // generous band around that.
        let mut used = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            let f = FiveTuple::new(0x0A000000 + i, 0xC0A80101, 1000 + (i % 5000) as u16, 80, 6);
            used.insert(f.bi_hash(7) % 4096);
        }
        assert!(used.len() > 3600, "only {} slots used", used.len());
    }
}
