//! Streaming per-flow statistics.
//!
//! [`FlowStats`] is the O(1) register state a programmable switch keeps per
//! flow: packet/byte counters, running min/max, and Welford mean/variance
//! accumulators for packet size and inter-packet delay. Every update is a
//! single pass — the same access pattern stateful ALUs implement in
//! hardware.

use crate::packet::Packet;

/// Welford online mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (the switch computes over all observed packets,
    /// not a sample estimate).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Per-flow feature state, updated one packet at a time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowStats {
    /// Packets observed.
    pub pkt_count: u64,
    /// Total wire bytes.
    pub total_bytes: u64,
    pub min_size: u16,
    pub max_size: u16,
    size: Welford,
    /// First packet timestamp (ns).
    pub first_ts_ns: u64,
    /// Most recent packet timestamp (ns).
    pub last_ts_ns: u64,
    /// Minimum inter-packet delay (ns); u64::MAX until two packets seen.
    pub min_ipd_ns: u64,
    pub max_ipd_ns: u64,
    ipd: Welford,
    ttl_sum: u64,
    pub syn_count: u64,
    pub ack_count: u64,
    pub rst_fin_count: u64,
    /// Destination port of the first packet (flow orientation).
    pub dst_port: u16,
    pub proto: u8,
    /// TTL of the most recent packet.
    pub last_ttl: u8,
}

impl FlowStats {
    /// Initialises state from the first packet of a flow.
    pub fn from_first_packet(p: &Packet) -> Self {
        let mut s = Self {
            pkt_count: 0,
            total_bytes: 0,
            min_size: u16::MAX,
            max_size: 0,
            size: Welford::default(),
            first_ts_ns: p.ts_ns,
            last_ts_ns: p.ts_ns,
            min_ipd_ns: u64::MAX,
            max_ipd_ns: 0,
            ipd: Welford::default(),
            ttl_sum: 0,
            syn_count: 0,
            ack_count: 0,
            rst_fin_count: 0,
            dst_port: p.five.dst_port,
            proto: p.five.proto,
            last_ttl: p.ttl,
        };
        s.update(p);
        s
    }

    /// Records one packet. Timestamps must be non-decreasing; out-of-order
    /// packets contribute a zero IPD rather than panicking (what a switch
    /// register pipeline would compute).
    pub fn update(&mut self, p: &Packet) {
        if self.pkt_count > 0 {
            let ipd = p.ts_ns.saturating_sub(self.last_ts_ns);
            self.min_ipd_ns = self.min_ipd_ns.min(ipd);
            self.max_ipd_ns = self.max_ipd_ns.max(ipd);
            self.ipd.push(ipd as f64 / 1e9);
        }
        self.pkt_count += 1;
        self.total_bytes += p.wire_len as u64;
        self.min_size = self.min_size.min(p.wire_len);
        self.max_size = self.max_size.max(p.wire_len);
        self.size.push(p.wire_len as f64);
        self.last_ts_ns = self.last_ts_ns.max(p.ts_ns);
        self.ttl_sum += p.ttl as u64;
        self.last_ttl = p.ttl;
        if p.flags.syn {
            self.syn_count += 1;
        }
        if p.flags.ack {
            self.ack_count += 1;
        }
        if p.flags.rst || p.flags.fin {
            self.rst_fin_count += 1;
        }
    }

    /// Flow duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.last_ts_ns - self.first_ts_ns) as f64 / 1e9
    }

    pub fn mean_size(&self) -> f64 {
        self.size.mean()
    }

    pub fn var_size(&self) -> f64 {
        self.size.variance()
    }

    pub fn std_size(&self) -> f64 {
        self.size.std_dev()
    }

    /// Mean inter-packet delay in seconds (0 with fewer than two packets).
    pub fn mean_ipd_secs(&self) -> f64 {
        self.ipd.mean()
    }

    pub fn var_ipd(&self) -> f64 {
        self.ipd.variance()
    }

    pub fn std_ipd(&self) -> f64 {
        self.ipd.std_dev()
    }

    /// Minimum IPD in seconds; 0 until two packets are seen.
    pub fn min_ipd_secs(&self) -> f64 {
        if self.min_ipd_ns == u64::MAX {
            0.0
        } else {
            self.min_ipd_ns as f64 / 1e9
        }
    }

    pub fn max_ipd_secs(&self) -> f64 {
        self.max_ipd_ns as f64 / 1e9
    }

    pub fn mean_ttl(&self) -> f64 {
        if self.pkt_count == 0 {
            0.0
        } else {
            self.ttl_sum as f64 / self.pkt_count as f64
        }
    }

    /// Whether the flow has been idle longer than `timeout_ns` at time `now`.
    pub fn timed_out(&self, now_ns: u64, timeout_ns: u64) -> bool {
        now_ns.saturating_sub(self.last_ts_ns) > timeout_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::five_tuple::{FiveTuple, PROTO_TCP};
    use crate::packet::TcpFlags;

    fn pkt(ts_ms: u64, len: u16) -> Packet {
        Packet {
            ts_ns: ts_ms * 1_000_000,
            five: FiveTuple::new(1, 2, 1000, 80, PROTO_TCP),
            wire_len: len,
            ttl: 64,
            flags: TcpFlags::default(),
        }
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs = [3.0, 7.0, 7.0, 19.0];
        let mut w = Welford::default();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / 4.0;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 4.0;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn single_packet_flow_has_zero_ipd_stats() {
        let s = FlowStats::from_first_packet(&pkt(10, 100));
        assert_eq!(s.pkt_count, 1);
        assert_eq!(s.mean_ipd_secs(), 0.0);
        assert_eq!(s.min_ipd_secs(), 0.0);
        assert_eq!(s.duration_secs(), 0.0);
        assert_eq!(s.mean_size(), 100.0);
    }

    #[test]
    fn stats_accumulate_over_packets() {
        let mut s = FlowStats::from_first_packet(&pkt(0, 100));
        s.update(&pkt(10, 200));
        s.update(&pkt(30, 300));
        assert_eq!(s.pkt_count, 3);
        assert_eq!(s.total_bytes, 600);
        assert_eq!(s.min_size, 100);
        assert_eq!(s.max_size, 300);
        assert!((s.mean_size() - 200.0).abs() < 1e-9);
        // IPDs: 10 ms, 20 ms.
        assert!((s.mean_ipd_secs() - 0.015).abs() < 1e-9);
        assert!((s.min_ipd_secs() - 0.010).abs() < 1e-9);
        assert!((s.max_ipd_secs() - 0.020).abs() < 1e-9);
        assert!((s.duration_secs() - 0.030).abs() < 1e-9);
    }

    #[test]
    fn flags_counted() {
        let mut first = pkt(0, 60);
        first.flags = TcpFlags::syn_only();
        let mut s = FlowStats::from_first_packet(&first);
        let mut p2 = pkt(1, 60);
        p2.flags = TcpFlags { ack: true, ..Default::default() };
        s.update(&p2);
        let mut p3 = pkt(2, 60);
        p3.flags = TcpFlags { fin: true, ack: true, ..Default::default() };
        s.update(&p3);
        assert_eq!(s.syn_count, 1);
        assert_eq!(s.ack_count, 2);
        assert_eq!(s.rst_fin_count, 1);
    }

    #[test]
    fn out_of_order_timestamp_is_tolerated() {
        let mut s = FlowStats::from_first_packet(&pkt(10, 100));
        s.update(&pkt(5, 100)); // earlier timestamp
        assert_eq!(s.min_ipd_ns, 0);
        assert_eq!(s.pkt_count, 2);
    }

    #[test]
    fn timeout_detection() {
        let s = FlowStats::from_first_packet(&pkt(0, 100));
        assert!(!s.timed_out(1_000_000, 2_000_000));
        assert!(s.timed_out(3_000_001, 2_000_000));
    }

    #[test]
    fn mean_ttl_averages() {
        let mut p1 = pkt(0, 100);
        p1.ttl = 64;
        let mut s = FlowStats::from_first_packet(&p1);
        let mut p2 = pkt(1, 100);
        p2.ttl = 32;
        s.update(&p2);
        assert!((s.mean_ttl() - 48.0).abs() < 1e-9);
    }
}
