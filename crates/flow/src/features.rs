//! Feature views over flow state.
//!
//! Three feature sets appear in the paper:
//!
//! * [`FeatureSet::SwitchFl`] — the **13 flow-level features extractable on
//!   the Tofino data plane** (§4.2): per-flow packet count,
//!   total/average/std/variance/min/max packet size,
//!   average/min/variance/std/max inter-packet delay, and flow duration.
//! * [`FeatureSet::PacketLevel`] — the **4 packet-level features** used to
//!   classify *early* packets before flow state is reliable (§3.3.1):
//!   destination port, protocol, packet length, TTL.
//! * [`FeatureSet::Magnifier`] — the richer CPU-side set (§4.1) used by the
//!   Magnifier autoencoder: the 13 switch features plus rate and TCP-flag
//!   statistics that a control plane can compute but a switch cannot.

use crate::packet::Packet;
use crate::stats::FlowStats;

/// Dimensionality of [`FeatureSet::SwitchFl`].
pub const SWITCH_FL_DIM: usize = 13;
/// Dimensionality of [`FeatureSet::PacketLevel`].
pub const PL_DIM: usize = 4;
/// Dimensionality of [`FeatureSet::Magnifier`].
pub const MAGNIFIER_DIM: usize = 21;

/// Which feature view to extract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureSet {
    /// 13 flow-level features computable in the data plane.
    SwitchFl,
    /// 4 packet-level features of a single packet.
    PacketLevel,
    /// 21 flow-level features for CPU experiments (Magnifier-grade).
    Magnifier,
}

impl FeatureSet {
    pub fn dim(self) -> usize {
        match self {
            FeatureSet::SwitchFl => SWITCH_FL_DIM,
            FeatureSet::PacketLevel => PL_DIM,
            FeatureSet::Magnifier => MAGNIFIER_DIM,
        }
    }

    /// Human-readable feature names, index-aligned with the vectors.
    pub fn names(self) -> &'static [&'static str] {
        match self {
            FeatureSet::SwitchFl => &[
                "pkt_count",
                "total_size",
                "mean_size",
                "std_size",
                "var_size",
                "min_size",
                "max_size",
                "mean_ipd",
                "min_ipd",
                "var_ipd",
                "std_ipd",
                "max_ipd",
                "duration",
            ],
            FeatureSet::PacketLevel => &["dst_port", "proto", "pkt_len", "ttl"],
            FeatureSet::Magnifier => &[
                "pkt_count",
                "total_size",
                "mean_size",
                "std_size",
                "var_size",
                "min_size",
                "max_size",
                "mean_ipd",
                "min_ipd",
                "var_ipd",
                "std_ipd",
                "max_ipd",
                "duration",
                "pkts_per_sec",
                "bytes_per_sec",
                "mean_ttl",
                "syn_ratio",
                "ack_ratio",
                "rst_fin_ratio",
                "dst_port",
                "proto",
            ],
        }
    }
}

/// Extracts the 13 switch flow-level features from accumulated flow state.
pub fn switch_fl_features(s: &FlowStats) -> Vec<f32> {
    let mut v = Vec::with_capacity(SWITCH_FL_DIM);
    switch_fl_features_into(s, &mut v);
    v
}

/// Allocation-free variant of [`switch_fl_features`]: clears `out` and
/// fills it with the 13 features, reusing its capacity.
pub fn switch_fl_features_into(s: &FlowStats, out: &mut Vec<f32>) {
    out.clear();
    out.extend_from_slice(&[
        s.pkt_count as f32,
        s.total_bytes as f32,
        s.mean_size() as f32,
        s.std_size() as f32,
        s.var_size() as f32,
        if s.min_size == u16::MAX { 0.0 } else { s.min_size as f32 },
        s.max_size as f32,
        s.mean_ipd_secs() as f32,
        s.min_ipd_secs() as f32,
        s.var_ipd() as f32,
        s.std_ipd() as f32,
        s.max_ipd_secs() as f32,
        s.duration_secs() as f32,
    ]);
}

/// Extracts the 4 packet-level features from a single packet.
pub fn packet_level_features(p: &Packet) -> Vec<f32> {
    vec![p.five.dst_port as f32, p.five.proto as f32, p.wire_len as f32, p.ttl as f32]
}

/// Stack-array variant of [`packet_level_features`] for hot paths that
/// must not allocate.
#[inline]
pub fn packet_level_features_array(p: &Packet) -> [f32; PL_DIM] {
    [p.five.dst_port as f32, p.five.proto as f32, p.wire_len as f32, p.ttl as f32]
}

/// Extracts the 21 Magnifier-grade features from accumulated flow state.
pub fn magnifier_features(s: &FlowStats) -> Vec<f32> {
    let mut v = switch_fl_features(s);
    let dur = s.duration_secs();
    // Rates guard against zero-duration (single burst) flows.
    let pkts_per_sec = if dur > 0.0 { s.pkt_count as f64 / dur } else { s.pkt_count as f64 };
    let bytes_per_sec = if dur > 0.0 { s.total_bytes as f64 / dur } else { s.total_bytes as f64 };
    let n = s.pkt_count.max(1) as f64;
    v.extend_from_slice(&[
        pkts_per_sec as f32,
        bytes_per_sec as f32,
        s.mean_ttl() as f32,
        (s.syn_count as f64 / n) as f32,
        (s.ack_count as f64 / n) as f32,
        (s.rst_fin_count as f64 / n) as f32,
        s.dst_port as f32,
        s.proto as f32,
    ]);
    v
}

/// Monotone log-compression for heavy-tailed flow features:
/// `v ↦ ln(1 + 1000·v)`.
///
/// Packet sizes, counts, delays and durations span 4–6 decades; min-max
/// scaling raw values squashes the low end (a 2 ms flood IPD and a 0.5 s
/// keep-alive IPD both land within 0.1 % of zero), starving both the
/// autoencoders and the tree splits of resolution exactly where attacks
/// live. Because the map is strictly monotone, any axis-aligned rule
/// learned in log space (`ln(1+1000·v) < c`) is realizable on raw switch
/// values as `v < (e^c − 1)/1000` — the data plane never computes a log.
pub fn log_compress(v: f32) -> f32 {
    (1.0 + 1000.0 * v.max(0.0)).ln()
}

/// Applies [`log_compress`] to every element in place.
pub fn log_compress_vec(v: &mut [f32]) {
    for x in v {
        *x = log_compress(*x);
    }
}

/// Extracts the requested flow-level feature view; panics for
/// [`FeatureSet::PacketLevel`], which needs a packet, not flow state.
pub fn flow_features(set: FeatureSet, s: &FlowStats) -> Vec<f32> {
    match set {
        FeatureSet::SwitchFl => switch_fl_features(s),
        FeatureSet::Magnifier => magnifier_features(s),
        FeatureSet::PacketLevel => {
            panic!("packet-level features are extracted per packet, not per flow")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::five_tuple::{FiveTuple, PROTO_UDP};
    use crate::packet::TcpFlags;

    fn flow() -> FlowStats {
        let mk = |ts_ms: u64, len: u16| Packet {
            ts_ns: ts_ms * 1_000_000,
            five: FiveTuple::new(1, 2, 1000, 53, PROTO_UDP),
            wire_len: len,
            ttl: 64,
            flags: TcpFlags::default(),
        };
        let mut s = FlowStats::from_first_packet(&mk(0, 100));
        s.update(&mk(10, 200));
        s.update(&mk(20, 300));
        s
    }

    #[test]
    fn dims_match_declared_constants() {
        let s = flow();
        assert_eq!(switch_fl_features(&s).len(), SWITCH_FL_DIM);
        assert_eq!(magnifier_features(&s).len(), MAGNIFIER_DIM);
        let p = Packet {
            ts_ns: 0,
            five: FiveTuple::new(1, 2, 3, 4, 6),
            wire_len: 60,
            ttl: 64,
            flags: TcpFlags::default(),
        };
        assert_eq!(packet_level_features(&p).len(), PL_DIM);
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let s = flow();
        let mut out = vec![99.0; 3]; // stale contents must be cleared
        switch_fl_features_into(&s, &mut out);
        assert_eq!(out, switch_fl_features(&s));
        let p = Packet {
            ts_ns: 0,
            five: FiveTuple::new(1, 2, 3, 4, 6),
            wire_len: 60,
            ttl: 64,
            flags: TcpFlags::default(),
        };
        assert_eq!(packet_level_features_array(&p).to_vec(), packet_level_features(&p));
    }

    #[test]
    fn names_align_with_dims() {
        for set in [FeatureSet::SwitchFl, FeatureSet::PacketLevel, FeatureSet::Magnifier] {
            assert_eq!(set.names().len(), set.dim(), "{set:?}");
        }
    }

    #[test]
    fn switch_features_values() {
        let v = switch_fl_features(&flow());
        assert_eq!(v[0], 3.0); // pkt_count
        assert_eq!(v[1], 600.0); // total
        assert_eq!(v[2], 200.0); // mean
        assert_eq!(v[5], 100.0); // min
        assert_eq!(v[6], 300.0); // max
        assert!((v[7] - 0.01).abs() < 1e-6); // mean IPD 10 ms
        assert!((v[12] - 0.02).abs() < 1e-6); // duration 20 ms
    }

    #[test]
    fn magnifier_features_extend_switch_features() {
        let s = flow();
        let sw = switch_fl_features(&s);
        let mg = magnifier_features(&s);
        assert_eq!(&mg[..SWITCH_FL_DIM], &sw[..]);
        // pkts_per_sec = 3 / 0.02 = 150
        assert!((mg[13] - 150.0).abs() < 1e-3);
        assert_eq!(mg[19], 53.0); // dst_port
        assert_eq!(mg[20], PROTO_UDP as f32);
    }

    #[test]
    fn magnifier_rates_safe_for_zero_duration() {
        let p = Packet {
            ts_ns: 0,
            five: FiveTuple::new(1, 2, 3, 4, 6),
            wire_len: 60,
            ttl: 64,
            flags: TcpFlags::default(),
        };
        let s = FlowStats::from_first_packet(&p);
        let v = magnifier_features(&s);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "per packet")]
    fn flow_features_rejects_packet_level() {
        let _ = flow_features(FeatureSet::PacketLevel, &flow());
    }
}
