//! Property-based tests for the flow substrate.

use iguard_flow::features::log_compress;
use iguard_flow::five_tuple::FiveTuple;
use iguard_flow::packet::{Packet, TcpFlags};
use iguard_flow::stats::FlowStats;
use iguard_flow::wire::checksum;
use proptest::prelude::*;

fn arb_five_tuple() -> impl Strategy<Value = FiveTuple> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), prop_oneof![Just(6u8), Just(17u8)])
        .prop_map(|(a, b, sp, dp, proto)| FiveTuple::new(a, b, sp, dp, proto))
}

proptest! {
    /// The bi-hash never distinguishes a flow from its reverse.
    #[test]
    fn bi_hash_direction_symmetric(five in arb_five_tuple(), seed in any::<u64>()) {
        prop_assert_eq!(five.bi_hash(seed), five.reversed().bi_hash(seed));
    }

    /// Canonicalisation is idempotent and direction-invariant.
    #[test]
    fn canonical_idempotent(five in arb_five_tuple()) {
        prop_assert_eq!(five.canonical(), five.canonical().canonical());
        prop_assert_eq!(five.canonical(), five.reversed().canonical());
    }

    /// Digest bytes round-trip exactly.
    #[test]
    fn digest_roundtrip(five in arb_five_tuple()) {
        prop_assert_eq!(FiveTuple::from_digest_bytes(&five.to_digest_bytes()), five);
    }

    /// A buffer containing its own RFC 1071 checksum always verifies, and
    /// flipping any byte breaks it (for non-degenerate buffers).
    #[test]
    fn checksum_self_verifies(mut data in proptest::collection::vec(any::<u8>(), 4..64)) {
        data[0] &= 0x7F; // keep a mutation target deterministic
        // Zero a 2-byte field, compute, insert.
        data[2] = 0;
        data[3] = 0;
        let ck = checksum::checksum(&data);
        data[2..4].copy_from_slice(&ck.to_be_bytes());
        prop_assert!(checksum::verify(&data));
    }

    /// Packet wire serialisation round-trips for valid TCP/UDP packets.
    #[test]
    fn packet_bytes_roundtrip(
        five in arb_five_tuple(),
        len in 60u16..1500,
        ttl in 1u8..=255,
        ts in any::<u32>(),
    ) {
        let p = Packet { ts_ns: ts as u64, five, wire_len: len, ttl, flags: TcpFlags::default() };
        let q = Packet::from_bytes(p.ts_ns, &p.to_bytes()).unwrap();
        prop_assert_eq!(p, q);
    }

    /// Streaming flow stats match a two-pass computation.
    #[test]
    fn welford_stats_match_two_pass(
        sizes in proptest::collection::vec(54u16..1500, 2..40),
        gaps_ms in proptest::collection::vec(1u64..2000, 1..39),
    ) {
        let n = sizes.len().min(gaps_ms.len() + 1);
        let five = FiveTuple::new(1, 2, 1000, 80, 6);
        let mut ts = 0u64;
        let mut pkts = Vec::new();
        for (i, &len) in sizes[..n].iter().enumerate() {
            if i > 0 {
                ts += gaps_ms[i - 1] * 1_000_000;
            }
            pkts.push(Packet { ts_ns: ts, five, wire_len: len, ttl: 64, flags: TcpFlags::default() });
        }
        let mut stats = FlowStats::from_first_packet(&pkts[0]);
        for p in &pkts[1..] {
            stats.update(p);
        }
        let mean: f64 = sizes[..n].iter().map(|&s| s as f64).sum::<f64>() / n as f64;
        let var: f64 =
            sizes[..n].iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        prop_assert!((stats.mean_size() - mean).abs() < 1e-6 * mean.max(1.0));
        prop_assert!((stats.var_size() - var).abs() < 1e-4 * var.max(1.0));
        prop_assert_eq!(stats.pkt_count, n as u64);
    }

    /// Log compression is strictly monotone on non-negative inputs.
    #[test]
    fn log_compress_monotone(a in 0.0f32..1e6, b in 0.0f32..1e6) {
        if a < b {
            prop_assert!(log_compress(a) < log_compress(b));
        }
    }
}
