//! Randomized-input tests for the flow substrate, on the in-repo
//! `proptest_lite` harness (seeded loop, no shrinking).

use iguard_flow::features::log_compress;
use iguard_flow::five_tuple::FiveTuple;
use iguard_flow::packet::{Packet, TcpFlags};
use iguard_flow::stats::FlowStats;
use iguard_flow::wire::checksum;
use iguard_runtime::proptest_lite;
use iguard_runtime::rng::Rng;

fn arb_five_tuple(rng: &mut Rng) -> FiveTuple {
    let proto = if rng.gen_bool(0.5) { 6u8 } else { 17u8 };
    FiveTuple::new(
        rng.next_u64() as u32,
        rng.next_u64() as u32,
        rng.gen_range(0u16..=u16::MAX),
        rng.gen_range(0u16..=u16::MAX),
        proto,
    )
}

proptest_lite! {
    /// The bi-hash never distinguishes a flow from its reverse.
    fn bi_hash_direction_symmetric(rng) {
        let five = arb_five_tuple(rng);
        let seed = rng.next_u64();
        assert_eq!(five.bi_hash(seed), five.reversed().bi_hash(seed));
    }

    /// Canonicalisation is idempotent and direction-invariant.
    fn canonical_idempotent(rng) {
        let five = arb_five_tuple(rng);
        assert_eq!(five.canonical(), five.canonical().canonical());
        assert_eq!(five.canonical(), five.reversed().canonical());
    }

    /// Digest bytes round-trip exactly.
    fn digest_roundtrip(rng) {
        let five = arb_five_tuple(rng);
        assert_eq!(FiveTuple::from_digest_bytes(&five.to_digest_bytes()), five);
    }

    /// A buffer containing its own RFC 1071 checksum always verifies.
    fn checksum_self_verifies(rng) {
        let len = rng.gen_range(4usize..64);
        let mut data: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        data[0] &= 0x7F; // keep a mutation target deterministic
        // Zero a 2-byte field, compute, insert.
        data[2] = 0;
        data[3] = 0;
        let ck = checksum::checksum(&data);
        data[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(checksum::verify(&data));
    }

    /// Packet wire serialisation round-trips for valid TCP/UDP packets.
    fn packet_bytes_roundtrip(rng) {
        let p = Packet {
            ts_ns: rng.next_u64() as u32 as u64,
            five: arb_five_tuple(rng),
            wire_len: rng.gen_range(60u16..1500),
            ttl: rng.gen_range(1u8..=255),
            flags: TcpFlags::default(),
        };
        let q = Packet::from_bytes(p.ts_ns, &p.to_bytes()).unwrap();
        assert_eq!(p, q);
    }

    /// Streaming flow stats match a two-pass computation.
    fn welford_stats_match_two_pass(rng) {
        let sizes: Vec<u16> =
            (0..rng.gen_range(2usize..40)).map(|_| rng.gen_range(54u16..1500)).collect();
        let gaps_ms: Vec<u64> =
            (0..rng.gen_range(1usize..39)).map(|_| rng.gen_range(1u64..2000)).collect();
        let n = sizes.len().min(gaps_ms.len() + 1);
        let five = FiveTuple::new(1, 2, 1000, 80, 6);
        let mut ts = 0u64;
        let mut pkts = Vec::new();
        for (i, &len) in sizes[..n].iter().enumerate() {
            if i > 0 {
                ts += gaps_ms[i - 1] * 1_000_000;
            }
            pkts.push(Packet { ts_ns: ts, five, wire_len: len, ttl: 64, flags: TcpFlags::default() });
        }
        let mut stats = FlowStats::from_first_packet(&pkts[0]);
        for p in &pkts[1..] {
            stats.update(p);
        }
        let mean: f64 = sizes[..n].iter().map(|&s| s as f64).sum::<f64>() / n as f64;
        let var: f64 =
            sizes[..n].iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((stats.mean_size() - mean).abs() < 1e-6 * mean.max(1.0));
        assert!((stats.var_size() - var).abs() < 1e-4 * var.max(1.0));
        assert_eq!(stats.pkt_count, n as u64);
    }

    /// Log compression is strictly monotone on non-negative inputs.
    fn log_compress_monotone(rng) {
        let a = rng.gen_range(0.0f32..1e6);
        let b = rng.gen_range(0.0f32..1e6);
        if a < b {
            assert!(log_compress(a) < log_compress(b));
        }
    }
}
