//! # iguard-switch — software emulation of the Tofino data plane
//!
//! The paper deploys iGuard on an Edgecore 32X (Tofino 1). This crate
//! emulates the parts of that deployment the evaluation measures:
//!
//! * [`tcam`] — ternary match tables: range→ternary prefix expansion per
//!   field, entry counting, and longest-priority matching — the mechanism
//!   whitelist rules are installed with and the source of Table 1's TCAM
//!   numbers. Range→TCAM compilation is **grid-exact**: an installed entry
//!   matches key `k` iff the float rule contains `dequantize(k)`, so the
//!   TCAM model, the float rules, and the compiled indexes agree on every
//!   representable key.
//! * [`rule_index`] — [`rule_index::RangeIndex`]: the compiled first-match
//!   index of a [`RangeTable`] (binary-searchable per-field cut points +
//!   priority-ordered rule bitmaps), returning the identical entry as the
//!   linear scan at a fraction of the cost.
//! * [`ruleset`] — the transactional whitelist lifecycle: canonical
//!   entry ordering, the minimal install/remove diff between two compiled
//!   [`RangeTable`]s, and the versioned [`ruleset::RulesetTxn`] the
//!   backends apply hitlessly (double-buffered epochs, see [`pipeline`]).
//! * [`resources`] — a Tofino-1-like resource model (TCAM/SRAM blocks,
//!   stateful ALUs, VLIW actions, pipeline stages) that converts an
//!   installed iGuard configuration into the utilisation percentages of
//!   Table 1 and the memory fraction ρ of the §4.2.1 reward.
//! * [`pipeline`] — the per-packet match-action pipeline of Fig. 4 with
//!   all six execution paths (blacklist, early/brown, threshold/blue,
//!   collision/orange, early-decision/purple, loopback/green), digest
//!   emission, and loopback mirroring.
//! * [`data_plane`] — the [`DataPlane`] trait every backend implements;
//!   the controller and replay harness are generic over it.
//! * [`sharded`] — [`ShardedPipeline`]: the same pipeline semantics
//!   partitioned across logical shards and driven on the runtime's worker
//!   pool, with deterministic (sequence-ordered) digest merging.
//! * [`channel`] — the fallible digest/action channels between data plane
//!   and controller, driven by a seeded
//!   [`FaultPlan`](iguard_runtime::FaultPlan) (drop / duplicate / reorder /
//!   delay / outage faults, deterministically replayable).
//! * [`controller`] — the control plane: consumes digests (idempotently,
//!   dedup'd on sequence tags), installs blacklist rules (FIFO or LRU
//!   eviction) with bounded retry + backoff on send failures, clears flow
//!   storage, degrades gracefully when saturated, checkpoints and rebuilds
//!   after crashes, and accounts control-plane bandwidth (App. B.2).
//! * [`replay`] — trace replay through any [`DataPlane`] with
//!   cycle-accounting to estimate throughput and per-packet latency
//!   (App. B.1), including a HorusEye-style control-plane detour model for
//!   comparison, plus [`replay::replay_chaos`] for fault-injected runs.

#![forbid(unsafe_code)]

pub mod channel;
pub mod controller;
pub mod data_plane;
pub mod pipeline;
pub mod replay;
pub mod resources;
pub mod rule_index;
pub mod ruleset;
pub mod sharded;
pub mod sketched;
pub mod tcam;

pub use channel::{ActionChannel, ChannelStats, DigestChannel};
pub use controller::{
    Controller, ControllerConfig, ControllerSnapshot, EvictionPolicy, RetryPolicy,
};
pub use data_plane::{DataPlane, OverloadStats, SketchStats};
pub use pipeline::{
    OverloadConfig, PacketVerdict, PathTaken, Pipeline, PipelineConfig, ScalarPipeline, SeqDigest,
    WhitelistCounters, RESYNC_SEQ_BASE,
};
pub use replay::{
    replay_chaos_traced_checked, ChaosConfig, CrashRecovery, CrashSpec, MitigationLog,
    MitigationRecord,
};
pub use resources::{ResourceModel, ResourceUsage};
pub use rule_index::{RangeIndex, RangeScratch};
pub use ruleset::{canonical_entries, RulesetCounters, RulesetDiff, RulesetTxn};
pub use sharded::{ShardedPipeline, ShardedPipelineConfig, LOGICAL_SHARDS};
pub use sketched::{SketchEviction, SketchedPipeline, SketchedPipelineConfig};
pub use tcam::{RangeEntry, RangeTable, TcamTable, TernaryEntry};
