//! Ternary match tables, native range matching, and range→ternary
//! expansion.
//!
//! Whitelist rules are conjunctions of per-field ranges. Two cost models
//! exist on real hardware:
//!
//! * **Prefix expansion** ([`range_to_prefixes`]): a range becomes up to
//!   `2w − 2` ternary prefixes, and a multi-field rule would need the
//!   *product* of its fields' prefix counts — prohibitive beyond a couple
//!   of range fields.
//! * **Native range match** ([`RangeTable`]): Tofino's TCAM implements
//!   range matching directly with 4-bit DirtCAM slices at roughly twice
//!   the bit cost of an exact field, keeping **one entry per rule**. This
//!   is how 13-range-field whitelist rules are actually installable, and
//!   it is the cost model the resource accounting (paper Table 1) uses.

use iguard_core::error::{IguardError, TcamError};
use iguard_core::rules::RuleSet;
use iguard_telemetry::{counter, span};

/// Fixed-point encoding of one feature into a TCAM field.
#[derive(Clone, Copy, Debug)]
pub struct FieldSpec {
    /// Field width in bits (≤ 32).
    pub bits: u8,
    /// Multiplier applied to the f32 feature before rounding to integer
    /// (e.g. 1000 to carry milliseconds in an integer field).
    pub scale: f32,
}

impl FieldSpec {
    pub fn new(bits: u8, scale: f32) -> Self {
        Self::try_new(bits, scale).expect("valid field spec")
    }

    /// Fallible constructor: reports invalid widths/scales as
    /// [`IguardError::Tcam`] instead of panicking — for rule sets compiled
    /// from untrusted or tuned configurations.
    pub fn try_new(bits: u8, scale: f32) -> Result<Self, IguardError> {
        if bits < 1 || bits > 32 {
            return Err(TcamError::BadFieldWidth { bits }.into());
        }
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(TcamError::BadScale.into());
        }
        Ok(Self { bits, scale })
    }

    /// Largest representable field value.
    pub fn max_value(&self) -> u32 {
        if self.bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.bits) - 1
        }
    }

    /// Quantises a feature value, saturating at the field width.
    ///
    /// Scale and compare in `f64`: a product of two `f32`s is exact in
    /// `f64` (24 + 24 significand bits), and `max_value() as f64` holds
    /// every `u32` exactly — whereas `max_value() as f32` rounds
    /// `u32::MAX` up to 2³², so the old `f32` comparison failed to
    /// saturate values that scale to exactly `u32::MAX` and mis-rounded
    /// near the top of 25-bit-plus domains.
    pub fn quantize(&self, v: f32) -> u32 {
        if !v.is_finite() {
            return if v > 0.0 { self.max_value() } else { 0 };
        }
        let scaled = (v as f64 * self.scale as f64).round();
        if scaled <= 0.0 {
            0
        } else if scaled >= self.max_value() as f64 {
            self.max_value()
        } else {
            scaled as u32
        }
    }

    /// Quantises a whole feature column into `out` (one batched field of a
    /// structure-of-arrays key block). Semantically `out[i] =
    /// self.quantize(vals[i])`; the tight loop over one field's values
    /// keeps the scale and saturation bound in registers instead of
    /// re-reading a `FieldSpec` per packet.
    pub fn quantize_column(&self, vals: &[f32], out: &mut [u32]) {
        assert_eq!(vals.len(), out.len());
        let scale = self.scale as f64;
        let max = self.max_value();
        let max_f = max as f64;
        for (o, &v) in out.iter_mut().zip(vals) {
            *o = if !v.is_finite() {
                if v > 0.0 {
                    max
                } else {
                    0
                }
            } else {
                let scaled = (v as f64 * scale).round();
                if scaled <= 0.0 {
                    0
                } else if scaled >= max_f {
                    max
                } else {
                    scaled as u32
                }
            };
            debug_assert_eq!(*o, self.quantize(v));
        }
    }

    /// The canonical feature value of grid key `k` — the representative
    /// point the compiled table's semantics are defined on: an installed
    /// entry covers `k` iff the float rule contains `dequantize(k)`.
    /// Monotone non-decreasing in `k` (division by a positive scale), which
    /// is what lets [`compile_ruleset_checked`] binary-search the exact
    /// boundary keys of each rule.
    pub fn dequantize(&self, k: u32) -> f32 {
        k as f32 / self.scale
    }

    /// Smallest key `k ∈ [0, max_value()]` with `dequantize(k) >= bound`,
    /// or `max_value() + 1` when no key reaches `bound`. `bound` must not
    /// be NaN (callers reject NaN rule bounds as empty).
    fn first_key_at_or_above(&self, bound: f32) -> u64 {
        let max = self.max_value() as u64;
        if !(self.dequantize(max as u32) >= bound) {
            return max + 1;
        }
        if self.dequantize(0) >= bound {
            return 0;
        }
        // Invariant: dequantize(lo) < bound <= dequantize(hi).
        let (mut lo, mut hi) = (0u64, max);
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.dequantize(mid as u32) >= bound {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

/// One ternary entry: per-field (value, mask) pairs. A key matches when
/// `key & mask == value & mask` for every field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TernaryEntry {
    pub fields: Vec<(u32, u32)>,
    /// Lower number = higher priority.
    pub priority: u32,
}

impl TernaryEntry {
    pub fn matches(&self, key: &[u32]) -> bool {
        debug_assert_eq!(key.len(), self.fields.len());
        self.fields.iter().zip(key).all(|(&(v, m), &k)| k & m == v & m)
    }
}

/// Expands the inclusive integer range `[lo, hi]` within a `width`-bit
/// field into minimal covering prefixes `(value, mask)`.
pub fn range_to_prefixes(lo: u32, hi: u32, width: u8) -> Vec<(u32, u32)> {
    assert!(width >= 1 && width <= 32);
    let field_max = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
    assert!(lo <= hi, "empty range");
    assert!(hi <= field_max, "range exceeds field width");
    let mut out = Vec::new();
    let mut lo = lo as u64;
    let hi = hi as u64;
    while lo <= hi {
        // The largest power-of-two block starting at `lo` that stays ≤ hi.
        let max_align = if lo == 0 { width as u32 } else { lo.trailing_zeros() };
        let mut block_bits = max_align.min(width as u32);
        while block_bits > 0 && lo + (1u64 << block_bits) - 1 > hi {
            block_bits -= 1;
        }
        let mask =
            if block_bits >= 32 { 0 } else { (!((1u64 << block_bits) - 1)) as u32 & field_max };
        out.push((lo as u32, mask));
        lo += 1u64 << block_bits;
    }
    out
}

/// A ternary table with first-match-by-priority semantics.
#[derive(Clone, Debug, Default)]
pub struct TcamTable {
    entries: Vec<TernaryEntry>,
    /// Bit width per field (for documentation / slice accounting).
    pub field_bits: Vec<u8>,
}

impl TcamTable {
    pub fn new(field_bits: Vec<u8>) -> Self {
        Self { entries: Vec::new(), field_bits }
    }

    pub fn push(&mut self, entry: TernaryEntry) {
        debug_assert_eq!(entry.fields.len(), self.field_bits.len());
        self.entries.push(entry);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest-priority (lowest number) matching entry, if any.
    pub fn lookup(&self, key: &[u32]) -> Option<&TernaryEntry> {
        counter!("switch.tcam.lookup").inc();
        let hit = self.entries.iter().filter(|e| e.matches(key)).min_by_key(|e| e.priority);
        if hit.is_some() {
            counter!("switch.tcam.hit").inc();
        }
        hit
    }

    /// Sum of field widths — the key width a physical TCAM must slice.
    pub fn key_bits(&self) -> u32 {
        self.field_bits.iter().map(|&b| b as u32).sum()
    }
}

/// One native-range entry: inclusive `[lo, hi]` per field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeEntry {
    pub fields: Vec<(u32, u32)>,
    /// Lower number = higher priority.
    pub priority: u32,
}

impl RangeEntry {
    pub fn matches(&self, key: &[u32]) -> bool {
        debug_assert_eq!(key.len(), self.fields.len());
        self.fields.iter().zip(key).all(|(&(lo, hi), &k)| (lo..=hi).contains(&k))
    }
}

/// A TCAM programmed with native range matching (DirtCAM slices): one
/// entry per rule, regardless of how many fields carry ranges.
#[derive(Clone, Debug, Default)]
pub struct RangeTable {
    entries: Vec<RangeEntry>,
    /// Bit width per field.
    pub field_bits: Vec<u8>,
    /// Rules the compiler skipped because they cover no grid point in some
    /// dimension (sub-quantum width, or NaN bounds). Installing them would
    /// make the TCAM match keys the float rule rejects; skipping keeps the
    /// table exactly faithful. `len() + skipped_empty` = source rule count.
    pub skipped_empty: u64,
}

impl RangeTable {
    pub fn new(field_bits: Vec<u8>) -> Self {
        Self { entries: Vec::new(), field_bits, skipped_empty: 0 }
    }

    pub fn push(&mut self, entry: RangeEntry) {
        debug_assert_eq!(entry.fields.len(), self.field_bits.len());
        self.entries.push(entry);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The installed entries, in push order.
    pub fn entries(&self) -> &[RangeEntry] {
        &self.entries
    }

    /// Highest-priority matching entry, if any.
    pub fn lookup(&self, key: &[u32]) -> Option<&RangeEntry> {
        counter!("switch.tcam.lookup").inc();
        let hit = self.entries.iter().filter(|e| e.matches(key)).min_by_key(|e| e.priority);
        if hit.is_some() {
            counter!("switch.tcam.hit").inc();
        }
        hit
    }

    /// Position (in push order) of the highest-priority matching entry —
    /// the linear-scan reference [`crate::rule_index::RangeIndex`] must
    /// reproduce. Ties on priority resolve to the earliest entry, matching
    /// [`RangeTable::lookup`]'s `min_by_key`. Telemetry-free: this is the
    /// comparison arm of parity tests and debug assertions.
    pub fn lookup_idx(&self, key: &[u32]) -> Option<usize> {
        (0..self.entries.len())
            .filter(|&i| self.entries[i].matches(key))
            .min_by_key(|&i| self.entries[i].priority)
    }

    /// Key width after range encoding: DirtCAM range matching costs about
    /// twice the bits of an exact match (each 4-bit nibble needs a 16-bit
    /// one-hot slice arrangement; 2x is the conventional estimate).
    pub fn encoded_key_bits(&self) -> u32 {
        self.field_bits.iter().map(|&b| 2 * b as u32).sum()
    }
}

/// Compiles a whitelist [`RuleSet`] into a native-range TCAM table: at
/// most one entry per hypercube.
///
/// The table's semantics are the float rules restricted to the canonical
/// grid: entry `r` matches key `k` **iff** cube `r` contains the point
/// `dequantize(k)` per field. Because `dequantize` is monotone, the keys a
/// cube covers in each dimension form the contiguous range
/// `[first_key(lo), first_key(hi) − 1]` found by binary search on the
/// actual `f32` comparison — so TCAM↔float parity on grid points is exact
/// by construction, with no special cases:
///
/// * an upper bound at or beyond the domain edge covers up to
///   `max_value()` only if `dequantize(max_value()) < hi` — a half-open
///   cube ending exactly at the edge value excludes the top key;
/// * a cube narrower than one quantum covers *no* key and is skipped
///   (counted in [`RangeTable::skipped_empty`]) instead of being widened
///   to a point range the float rule rejects.
///
/// Entry priorities remain the source cube positions, so first-match rule
/// identity is preserved across the skip.
pub fn compile_ruleset(rules: &RuleSet, specs: &[FieldSpec]) -> RangeTable {
    compile_ruleset_checked(rules, specs).expect("one FieldSpec per feature")
}

/// Fallible variant of [`compile_ruleset`]: dimension mismatches surface
/// as [`IguardError::Tcam`] rather than a panic.
pub fn compile_ruleset_checked(
    rules: &RuleSet,
    specs: &[FieldSpec],
) -> Result<RangeTable, IguardError> {
    if rules.bounds.len() != specs.len() {
        return Err(
            TcamError::DimensionMismatch { rules: rules.bounds.len(), specs: specs.len() }.into()
        );
    }
    Ok(span!("switch.tcam.compile").time(|| {
        let mut table = RangeTable::new(specs.iter().map(|s| s.bits).collect());
        'cubes: for (prio, cube) in rules.whitelist.iter().enumerate() {
            let mut fields = Vec::with_capacity(specs.len());
            for ((&lo, &hi), spec) in cube.lo.iter().zip(&cube.hi).zip(specs) {
                if lo.is_nan() || hi.is_nan() {
                    // NaN bounds fail every `contains` comparison: the
                    // cube matches nothing.
                    table.skipped_empty += 1;
                    counter!("switch.tcam.skip_empty").inc();
                    continue 'cubes;
                }
                let klo = spec.first_key_at_or_above(lo);
                let khi = spec.first_key_at_or_above(hi);
                if klo >= khi {
                    table.skipped_empty += 1;
                    counter!("switch.tcam.skip_empty").inc();
                    continue 'cubes;
                }
                fields.push((klo as u32, (khi - 1) as u32));
            }
            table.push(RangeEntry { fields, priority: prio as u32 });
            counter!("switch.tcam.install").inc();
        }
        table
    }))
}

/// Quantises a feature vector into a TCAM lookup key.
///
/// Allocates a fresh `Vec` per call — fine for setup and tests; hot paths
/// reuse a scratch buffer via [`quantize_key_into`] or quantize whole
/// columns with [`FieldSpec::quantize_column`].
pub fn quantize_key(x: &[f32], specs: &[FieldSpec]) -> Vec<u32> {
    let mut out = Vec::with_capacity(specs.len());
    quantize_key_into(x, specs, &mut out);
    out
}

/// Allocation-free [`quantize_key`]: clears `out` and fills it with the
/// quantized key, reusing its capacity.
pub fn quantize_key_into(x: &[f32], specs: &[FieldSpec], out: &mut Vec<u32>) {
    assert_eq!(x.len(), specs.len());
    out.clear();
    out.extend(x.iter().zip(specs).map(|(&v, s)| s.quantize(v)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_exactly(prefixes: &[(u32, u32)], lo: u32, hi: u32, width: u8) {
        let max = if width == 32 { u32::MAX } else { (1 << width) - 1 };
        let upper = max.min(hi.saturating_add(4));
        for v in lo.saturating_sub(4)..=upper {
            let matched = prefixes.iter().any(|&(val, mask)| v & mask == val & mask);
            assert_eq!(matched, (lo..=hi).contains(&v), "value {v} in [{lo},{hi}]");
        }
    }

    #[test]
    fn full_range_is_one_entry() {
        let p = range_to_prefixes(0, 255, 8);
        assert_eq!(p, vec![(0, 0)]);
    }

    #[test]
    fn exact_value_is_full_mask() {
        let p = range_to_prefixes(7, 7, 8);
        assert_eq!(p, vec![(7, 0xFF)]);
    }

    #[test]
    fn classic_worst_case_range() {
        // [1, 14] in 4 bits: the textbook 6-entry expansion (2w − 2).
        let p = range_to_prefixes(1, 14, 4);
        assert_eq!(p.len(), 6);
        covers_exactly(&p, 1, 14, 4);
    }

    #[test]
    fn random_ranges_cover_exactly() {
        for &(lo, hi) in &[(0u32, 10u32), (3, 200), (100, 100), (5, 255), (37, 141)] {
            let p = range_to_prefixes(lo, hi, 8);
            covers_exactly(&p, lo, hi, 8);
        }
    }

    #[test]
    fn wide_field_range() {
        let p = range_to_prefixes(1000, 70000, 32);
        let hit = |val: u32| p.iter().any(|&(v, m)| val & m == v & m);
        assert!(!hit(999));
        assert!((1000..=1100).all(hit)); // spot-check the low end
        assert!(hit(65000));
        assert!(hit(70000));
        assert!(!hit(70001));
    }

    #[test]
    fn quantize_saturates() {
        let spec = FieldSpec::new(8, 1.0);
        assert_eq!(spec.quantize(-5.0), 0);
        assert_eq!(spec.quantize(300.0), 255);
        assert_eq!(spec.quantize(42.4), 42);
        assert_eq!(spec.quantize(f32::INFINITY), 255);
        assert_eq!(spec.quantize(f32::NEG_INFINITY), 0);
    }

    #[test]
    fn quantize_applies_scale() {
        let spec = FieldSpec::new(16, 1000.0);
        assert_eq!(spec.quantize(1.5), 1500);
    }

    /// The pinned f32-precision divergence: 16 777 215 × 3 = 50 331 645
    /// exactly in f64, but the f32 product rounds down to 50 331 644 (the
    /// result needs 26 significand bits). The old f32 path returned the
    /// wrong key.
    #[test]
    fn quantize_is_exact_beyond_f32_precision() {
        let spec = FieldSpec::new(32, 3.0);
        assert_eq!(spec.quantize(16_777_215.0), 50_331_645);
    }

    /// Edge behaviour at and around `u32::MAX` for a full-width field:
    /// `max_value() as f32` is 2³² (not representable), so the old
    /// comparison was against the wrong bound; in f64 every u32 is exact.
    #[test]
    fn quantize_32bit_edges() {
        let spec = FieldSpec::new(32, 1.0);
        // Largest f32 below 2³²: must pass through unsaturated.
        assert_eq!(spec.quantize(4_294_967_040.0), 4_294_967_040);
        // u32::MAX itself is not an f32; its nearest (2³²) saturates.
        assert_eq!(spec.quantize(u32::MAX as f32), u32::MAX);
        assert_eq!(spec.quantize(5e9), u32::MAX);
        assert_eq!(spec.quantize(f32::INFINITY), u32::MAX);
        assert_eq!(spec.quantize(-1.0), 0);
    }

    /// A half-open cube ending exactly at the top grid value must exclude
    /// the top key — the old compiler's saturation check made the entry
    /// inclusive of `max_value()` there.
    #[test]
    fn domain_edge_upper_bound_is_exclusive() {
        use iguard_core::rules::Hypercube;
        let spec = FieldSpec::new(8, 1.0);
        let rules = RuleSet {
            bounds: vec![(0.0, 256.0)],
            whitelist: vec![Hypercube { lo: vec![0.0], hi: vec![255.0] }],
            total_regions: 1,
        };
        let table = compile_ruleset(&rules, &[spec]);
        assert_eq!(table.len(), 1);
        assert!(table.lookup(&[254]).is_some());
        assert!(table.lookup(&[255]).is_none(), "hi = dequantize(255) is excluded");
        assert!(!rules.matches(&[spec.dequantize(255)]));
        // Only a bound past the top value (or +inf) covers the top key.
        let open = RuleSet {
            bounds: vec![(0.0, 256.0)],
            whitelist: vec![Hypercube { lo: vec![0.0], hi: vec![f32::INFINITY] }],
            total_regions: 1,
        };
        assert!(compile_ruleset(&open, &[spec]).lookup(&[255]).is_some());
    }

    /// A cube narrower than one quantum covers no grid point: it must be
    /// skipped, not widened to a point range the float rule rejects.
    #[test]
    fn sub_quantum_cube_is_skipped() {
        use iguard_core::rules::Hypercube;
        let spec = FieldSpec::new(8, 1.0);
        let rules = RuleSet {
            bounds: vec![(0.0, 256.0)],
            whitelist: vec![
                Hypercube { lo: vec![0.4], hi: vec![0.6] },
                Hypercube { lo: vec![10.0], hi: vec![20.0] },
            ],
            total_regions: 2,
        };
        let table = compile_ruleset(&rules, &[spec]);
        assert_eq!(table.len(), 1, "only the wide cube installs");
        assert_eq!(table.skipped_empty, 1);
        assert!(table.lookup(&[0]).is_none(), "old compiler matched key 0 here");
        // Priority still names the source cube.
        assert_eq!(table.lookup(&[15]).unwrap().priority, 1);
        // The grid has no point inside [0.4, 0.6), so the float rules
        // agree with the table on every key.
        for k in 0..=255u32 {
            assert_eq!(table.lookup(&[k]).is_some(), rules.matches(&[spec.dequantize(k)]));
        }
    }

    /// NaN rule bounds compile to nothing (contains() is always false).
    #[test]
    fn nan_bounds_are_skipped() {
        use iguard_core::rules::Hypercube;
        let rules = RuleSet {
            bounds: vec![(0.0, 256.0)],
            whitelist: vec![Hypercube { lo: vec![f32::NAN], hi: vec![10.0] }],
            total_regions: 1,
        };
        let table = compile_ruleset(&rules, &[FieldSpec::new(8, 1.0)]);
        assert_eq!(table.len(), 0);
        assert_eq!(table.skipped_empty, 1);
    }

    #[test]
    fn table_priority_order() {
        let mut t = TcamTable::new(vec![8]);
        t.push(TernaryEntry { fields: vec![(0, 0)], priority: 5 }); // catch-all
        t.push(TernaryEntry { fields: vec![(7, 0xFF)], priority: 1 });
        let hit = t.lookup(&[7]).unwrap();
        assert_eq!(hit.priority, 1);
        let other = t.lookup(&[9]).unwrap();
        assert_eq!(other.priority, 5);
    }

    #[test]
    fn compiled_ruleset_agrees_with_ruleset() {
        use iguard_core::rules::Hypercube;
        // Whitelist: x0 ∈ [0, 100), x1 ∈ [50, 200).
        let rules = RuleSet {
            bounds: vec![(0.0, 256.0), (0.0, 256.0)],
            whitelist: vec![Hypercube { lo: vec![0.0, 50.0], hi: vec![100.0, 200.0] }],
            total_regions: 2,
        };
        let specs = vec![FieldSpec::new(8, 1.0), FieldSpec::new(8, 1.0)];
        let table = compile_ruleset(&rules, &specs);
        assert!(!table.is_empty());
        let mut key = Vec::new();
        for probe in [[50.0f32, 100.0], [99.0, 50.0], [100.0, 100.0], [50.0, 200.0], [255.0, 255.0]]
        {
            quantize_key_into(&probe, &specs, &mut key);
            assert_eq!(key, quantize_key(&probe, &specs));
            let tcam_benign = table.lookup(&key).is_some();
            assert_eq!(tcam_benign, rules.matches(&probe), "disagreement at {probe:?}");
        }
    }

    /// The per-column quantizer agrees with the scalar one on every edge
    /// shape: ±inf, NaN-free negatives, saturation at the field top, and
    /// exact rounding boundaries under a fractional scale.
    #[test]
    fn quantize_column_matches_scalar() {
        for spec in [FieldSpec::new(8, 1.0), FieldSpec::new(8, 3.7), FieldSpec::new(32, 1000.0)] {
            let vals = [
                -1.0e30f32,
                f32::NEG_INFINITY,
                -0.0,
                0.0,
                0.1,
                0.5,
                1.0,
                68.9,
                255.0,
                256.0,
                1.0e30,
                f32::INFINITY,
                4.29e9,
            ];
            let mut out = vec![0u32; vals.len()];
            spec.quantize_column(&vals, &mut out);
            for (&v, &k) in vals.iter().zip(&out) {
                assert_eq!(k, spec.quantize(v), "spec {spec:?}, v = {v}");
            }
        }
    }

    #[test]
    fn infinite_bounds_saturate() {
        use iguard_core::rules::Hypercube;
        let rules = RuleSet {
            bounds: vec![(0.0, 256.0)],
            whitelist: vec![Hypercube { lo: vec![f32::NEG_INFINITY], hi: vec![f32::INFINITY] }],
            total_regions: 1,
        };
        let specs = vec![FieldSpec::new(8, 1.0)];
        let table = compile_ruleset(&rules, &specs);
        assert_eq!(table.len(), 1);
        assert!(table.lookup(&[0]).is_some());
        assert!(table.lookup(&[255]).is_some());
    }
}
