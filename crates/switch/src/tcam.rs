//! Ternary match tables, native range matching, and range→ternary
//! expansion.
//!
//! Whitelist rules are conjunctions of per-field ranges. Two cost models
//! exist on real hardware:
//!
//! * **Prefix expansion** ([`range_to_prefixes`]): a range becomes up to
//!   `2w − 2` ternary prefixes, and a multi-field rule would need the
//!   *product* of its fields' prefix counts — prohibitive beyond a couple
//!   of range fields.
//! * **Native range match** ([`RangeTable`]): Tofino's TCAM implements
//!   range matching directly with 4-bit DirtCAM slices at roughly twice
//!   the bit cost of an exact field, keeping **one entry per rule**. This
//!   is how 13-range-field whitelist rules are actually installable, and
//!   it is the cost model the resource accounting (paper Table 1) uses.

use iguard_core::error::{IguardError, TcamError};
use iguard_core::rules::RuleSet;
use iguard_telemetry::{counter, span};

/// Fixed-point encoding of one feature into a TCAM field.
#[derive(Clone, Copy, Debug)]
pub struct FieldSpec {
    /// Field width in bits (≤ 32).
    pub bits: u8,
    /// Multiplier applied to the f32 feature before rounding to integer
    /// (e.g. 1000 to carry milliseconds in an integer field).
    pub scale: f32,
}

impl FieldSpec {
    pub fn new(bits: u8, scale: f32) -> Self {
        Self::try_new(bits, scale).expect("valid field spec")
    }

    /// Fallible constructor: reports invalid widths/scales as
    /// [`IguardError::Tcam`] instead of panicking — for rule sets compiled
    /// from untrusted or tuned configurations.
    pub fn try_new(bits: u8, scale: f32) -> Result<Self, IguardError> {
        if bits < 1 || bits > 32 {
            return Err(TcamError::BadFieldWidth { bits }.into());
        }
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(TcamError::BadScale.into());
        }
        Ok(Self { bits, scale })
    }

    /// Largest representable field value.
    pub fn max_value(&self) -> u32 {
        if self.bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.bits) - 1
        }
    }

    /// Quantises a feature value, saturating at the field width.
    pub fn quantize(&self, v: f32) -> u32 {
        if !v.is_finite() {
            return if v > 0.0 { self.max_value() } else { 0 };
        }
        let scaled = (v * self.scale).round();
        if scaled <= 0.0 {
            0
        } else if scaled >= self.max_value() as f32 {
            self.max_value()
        } else {
            scaled as u32
        }
    }
}

/// One ternary entry: per-field (value, mask) pairs. A key matches when
/// `key & mask == value & mask` for every field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TernaryEntry {
    pub fields: Vec<(u32, u32)>,
    /// Lower number = higher priority.
    pub priority: u32,
}

impl TernaryEntry {
    pub fn matches(&self, key: &[u32]) -> bool {
        debug_assert_eq!(key.len(), self.fields.len());
        self.fields.iter().zip(key).all(|(&(v, m), &k)| k & m == v & m)
    }
}

/// Expands the inclusive integer range `[lo, hi]` within a `width`-bit
/// field into minimal covering prefixes `(value, mask)`.
pub fn range_to_prefixes(lo: u32, hi: u32, width: u8) -> Vec<(u32, u32)> {
    assert!(width >= 1 && width <= 32);
    let field_max = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
    assert!(lo <= hi, "empty range");
    assert!(hi <= field_max, "range exceeds field width");
    let mut out = Vec::new();
    let mut lo = lo as u64;
    let hi = hi as u64;
    while lo <= hi {
        // The largest power-of-two block starting at `lo` that stays ≤ hi.
        let max_align = if lo == 0 { width as u32 } else { lo.trailing_zeros() };
        let mut block_bits = max_align.min(width as u32);
        while block_bits > 0 && lo + (1u64 << block_bits) - 1 > hi {
            block_bits -= 1;
        }
        let mask =
            if block_bits >= 32 { 0 } else { (!((1u64 << block_bits) - 1)) as u32 & field_max };
        out.push((lo as u32, mask));
        lo += 1u64 << block_bits;
    }
    out
}

/// A ternary table with first-match-by-priority semantics.
#[derive(Clone, Debug, Default)]
pub struct TcamTable {
    entries: Vec<TernaryEntry>,
    /// Bit width per field (for documentation / slice accounting).
    pub field_bits: Vec<u8>,
}

impl TcamTable {
    pub fn new(field_bits: Vec<u8>) -> Self {
        Self { entries: Vec::new(), field_bits }
    }

    pub fn push(&mut self, entry: TernaryEntry) {
        debug_assert_eq!(entry.fields.len(), self.field_bits.len());
        self.entries.push(entry);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest-priority (lowest number) matching entry, if any.
    pub fn lookup(&self, key: &[u32]) -> Option<&TernaryEntry> {
        self.entries.iter().filter(|e| e.matches(key)).min_by_key(|e| e.priority)
    }

    /// Sum of field widths — the key width a physical TCAM must slice.
    pub fn key_bits(&self) -> u32 {
        self.field_bits.iter().map(|&b| b as u32).sum()
    }
}

/// One native-range entry: inclusive `[lo, hi]` per field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeEntry {
    pub fields: Vec<(u32, u32)>,
    /// Lower number = higher priority.
    pub priority: u32,
}

impl RangeEntry {
    pub fn matches(&self, key: &[u32]) -> bool {
        debug_assert_eq!(key.len(), self.fields.len());
        self.fields.iter().zip(key).all(|(&(lo, hi), &k)| (lo..=hi).contains(&k))
    }
}

/// A TCAM programmed with native range matching (DirtCAM slices): one
/// entry per rule, regardless of how many fields carry ranges.
#[derive(Clone, Debug, Default)]
pub struct RangeTable {
    entries: Vec<RangeEntry>,
    /// Bit width per field.
    pub field_bits: Vec<u8>,
}

impl RangeTable {
    pub fn new(field_bits: Vec<u8>) -> Self {
        Self { entries: Vec::new(), field_bits }
    }

    pub fn push(&mut self, entry: RangeEntry) {
        debug_assert_eq!(entry.fields.len(), self.field_bits.len());
        self.entries.push(entry);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest-priority matching entry, if any.
    pub fn lookup(&self, key: &[u32]) -> Option<&RangeEntry> {
        counter!("switch.tcam.lookup").inc();
        let hit = self.entries.iter().filter(|e| e.matches(key)).min_by_key(|e| e.priority);
        if hit.is_some() {
            counter!("switch.tcam.hit").inc();
        }
        hit
    }

    /// Key width after range encoding: DirtCAM range matching costs about
    /// twice the bits of an exact match (each 4-bit nibble needs a 16-bit
    /// one-hot slice arrangement; 2x is the conventional estimate).
    pub fn encoded_key_bits(&self) -> u32 {
        self.field_bits.iter().map(|&b| 2 * b as u32).sum()
    }
}

/// Compiles a whitelist [`RuleSet`] into a native-range TCAM table: one
/// entry per hypercube. Infinite bounds saturate at the field domain
/// edges; half-open `[lo, hi)` feature boxes become inclusive integer
/// ranges `[q(lo), q(hi) − 1]` (or the full top of the domain when `hi`
/// saturates).
pub fn compile_ruleset(rules: &RuleSet, specs: &[FieldSpec]) -> RangeTable {
    compile_ruleset_checked(rules, specs).expect("one FieldSpec per feature")
}

/// Fallible variant of [`compile_ruleset`]: dimension mismatches surface
/// as [`IguardError::Tcam`] rather than a panic.
pub fn compile_ruleset_checked(
    rules: &RuleSet,
    specs: &[FieldSpec],
) -> Result<RangeTable, IguardError> {
    if rules.bounds.len() != specs.len() {
        return Err(
            TcamError::DimensionMismatch { rules: rules.bounds.len(), specs: specs.len() }.into()
        );
    }
    Ok(span!("switch.tcam.compile").time(|| {
        let mut table = RangeTable::new(specs.iter().map(|s| s.bits).collect());
        for (prio, cube) in rules.whitelist.iter().enumerate() {
            let fields: Vec<(u32, u32)> = cube
                .lo
                .iter()
                .zip(&cube.hi)
                .zip(specs)
                .map(|((&lo, &hi), spec)| {
                    let qlo = spec.quantize(lo);
                    let qhi_raw = spec.quantize(hi);
                    let saturated = hi.is_infinite() || hi * spec.scale >= spec.max_value() as f32;
                    let qhi = if saturated {
                        spec.max_value()
                    } else if qhi_raw > qlo {
                        qhi_raw - 1
                    } else {
                        qlo
                    };
                    (qlo, qhi)
                })
                .collect();
            table.push(RangeEntry { fields, priority: prio as u32 });
            counter!("switch.tcam.install").inc();
        }
        table
    }))
}

/// Quantises a feature vector into a TCAM lookup key.
pub fn quantize_key(x: &[f32], specs: &[FieldSpec]) -> Vec<u32> {
    assert_eq!(x.len(), specs.len());
    x.iter().zip(specs).map(|(&v, s)| s.quantize(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_exactly(prefixes: &[(u32, u32)], lo: u32, hi: u32, width: u8) {
        let max = if width == 32 { u32::MAX } else { (1 << width) - 1 };
        let upper = max.min(hi.saturating_add(4));
        for v in lo.saturating_sub(4)..=upper {
            let matched = prefixes.iter().any(|&(val, mask)| v & mask == val & mask);
            assert_eq!(matched, (lo..=hi).contains(&v), "value {v} in [{lo},{hi}]");
        }
    }

    #[test]
    fn full_range_is_one_entry() {
        let p = range_to_prefixes(0, 255, 8);
        assert_eq!(p, vec![(0, 0)]);
    }

    #[test]
    fn exact_value_is_full_mask() {
        let p = range_to_prefixes(7, 7, 8);
        assert_eq!(p, vec![(7, 0xFF)]);
    }

    #[test]
    fn classic_worst_case_range() {
        // [1, 14] in 4 bits: the textbook 6-entry expansion (2w − 2).
        let p = range_to_prefixes(1, 14, 4);
        assert_eq!(p.len(), 6);
        covers_exactly(&p, 1, 14, 4);
    }

    #[test]
    fn random_ranges_cover_exactly() {
        for &(lo, hi) in &[(0u32, 10u32), (3, 200), (100, 100), (5, 255), (37, 141)] {
            let p = range_to_prefixes(lo, hi, 8);
            covers_exactly(&p, lo, hi, 8);
        }
    }

    #[test]
    fn wide_field_range() {
        let p = range_to_prefixes(1000, 70000, 32);
        let hit = |val: u32| p.iter().any(|&(v, m)| val & m == v & m);
        assert!(!hit(999));
        assert!((1000..=1100).all(hit)); // spot-check the low end
        assert!(hit(65000));
        assert!(hit(70000));
        assert!(!hit(70001));
    }

    #[test]
    fn quantize_saturates() {
        let spec = FieldSpec::new(8, 1.0);
        assert_eq!(spec.quantize(-5.0), 0);
        assert_eq!(spec.quantize(300.0), 255);
        assert_eq!(spec.quantize(42.4), 42);
        assert_eq!(spec.quantize(f32::INFINITY), 255);
        assert_eq!(spec.quantize(f32::NEG_INFINITY), 0);
    }

    #[test]
    fn quantize_applies_scale() {
        let spec = FieldSpec::new(16, 1000.0);
        assert_eq!(spec.quantize(1.5), 1500);
    }

    #[test]
    fn table_priority_order() {
        let mut t = TcamTable::new(vec![8]);
        t.push(TernaryEntry { fields: vec![(0, 0)], priority: 5 }); // catch-all
        t.push(TernaryEntry { fields: vec![(7, 0xFF)], priority: 1 });
        let hit = t.lookup(&[7]).unwrap();
        assert_eq!(hit.priority, 1);
        let other = t.lookup(&[9]).unwrap();
        assert_eq!(other.priority, 5);
    }

    #[test]
    fn compiled_ruleset_agrees_with_ruleset() {
        use iguard_core::rules::Hypercube;
        // Whitelist: x0 ∈ [0, 100), x1 ∈ [50, 200).
        let rules = RuleSet {
            bounds: vec![(0.0, 256.0), (0.0, 256.0)],
            whitelist: vec![Hypercube { lo: vec![0.0, 50.0], hi: vec![100.0, 200.0] }],
            total_regions: 2,
        };
        let specs = vec![FieldSpec::new(8, 1.0), FieldSpec::new(8, 1.0)];
        let table = compile_ruleset(&rules, &specs);
        assert!(!table.is_empty());
        for probe in [[50.0f32, 100.0], [99.0, 50.0], [100.0, 100.0], [50.0, 200.0], [255.0, 255.0]]
        {
            let key = quantize_key(&probe, &specs);
            let tcam_benign = table.lookup(&key).is_some();
            assert_eq!(tcam_benign, rules.matches(&probe), "disagreement at {probe:?}");
        }
    }

    #[test]
    fn infinite_bounds_saturate() {
        use iguard_core::rules::Hypercube;
        let rules = RuleSet {
            bounds: vec![(0.0, 256.0)],
            whitelist: vec![Hypercube { lo: vec![f32::NEG_INFINITY], hi: vec![f32::INFINITY] }],
            total_regions: 1,
        };
        let specs = vec![FieldSpec::new(8, 1.0)];
        let table = compile_ruleset(&rules, &specs);
        assert_eq!(table.len(), 1);
        assert!(table.lookup(&[0]).is_some());
        assert!(table.lookup(&[255]).is_some());
    }
}
